"""Benchmarks: regenerate Figures 5-7 (the short-message VMesh story)."""

from repro.experiments.paperdata import VMESH_CROSSOVER_RANGE_BYTES


def test_fig5_vmesh_prediction(run_experiment_once):
    result = run_experiment_once("fig5_vmesh_pred")
    # Model crossover: VMesh wins at 8 B, loses by 128 B.
    r8 = result.row_by("m bytes", 8)
    r128 = result.row_by("m bytes", 128)
    assert r8["VMesh pred us"] < r8["Eq.3 direct us"]
    assert r128["VMesh pred us"] > r128["Eq.3 direct us"]


def test_fig6_compare_512(run_experiment_once):
    result = run_experiment_once("fig6_compare_512")
    speedups = {r["m bytes"]: r["VMesh speedup"] for r in result.rows}
    smallest = min(speedups)
    largest = max(speedups)
    # VMesh clearly wins at the smallest size and loses at the largest.
    assert speedups[smallest] > 1.2
    assert speedups[largest] < 1.0
    # Crossover within (or adjacent to) the paper's 32-64 B window.
    lo, hi = VMESH_CROSSOVER_RANGE_BYTES
    crossed = [m for m in sorted(speedups) if speedups[m] <= 1.0]
    assert crossed, "VMesh never crossed below AR"
    assert crossed[0] <= 4 * hi


def test_fig7_compare_4096(run_experiment_once):
    result = run_experiment_once("fig7_compare_4096")
    r8 = result.row_by("m bytes", 8)
    # At 8 B the combining scheme beats both AR and TPS.
    assert r8["VMesh/AR speedup"] > 1.2
    assert r8["VMesh/TPS speedup"] > 1.0
