#!/usr/bin/env python
"""Simulator-core microbenchmark and timing-regression gate.

Measures two things and writes them to ``BENCH_simcore.json`` at the
repo root (committed, so the perf trajectory is tracked across PRs):

* **single-point throughput** — wall time and events/second for one
  all-to-all simulation (the PR's acceptance point is the 512-node
  ``8x8x8`` adaptive-routing run at ``--scale paper``; ``--scale ci``
  uses a ``4x4x4`` point small enough for a smoke job);
* **sweep scaling** — wall time for a cold message-size sweep at
  ``jobs=1`` vs ``jobs=4`` through :mod:`repro.runner`, with the cache
  disabled so every point actually simulates.

``--check`` compares the measured single-point throughput against the
committed ``baseline.json`` for the same scale and exits non-zero on a
>2x slowdown (events/second is used rather than raw wall time so the
gate tracks simulator work, not machine speed differences in the sweep
fan-out), and additionally gates the **analytics-off overhead**: the
default ``simulate_alltoall`` path (observability disabled) must stay
within 5 % of the bare ``TorusNetwork`` core on the same program — the
zero-overhead-when-disabled contract, measured rather than assumed.
Refresh the baseline with ``--write-baseline`` after an intentional
perf-relevant change, on a quiet machine.

Usage::

    python benchmarks/perf/bench_simcore.py --scale ci --check
    python benchmarks/perf/bench_simcore.py --scale paper
"""

from __future__ import annotations

import argparse
import cProfile
import json
import os
import platform
import sys
import time
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO = HERE.parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.api import simulate_alltoall  # noqa: E402
from repro.model.torus import TorusShape  # noqa: E402
from repro.net.faultsim import build_network  # noqa: E402
from repro.net.simulator import TorusNetwork  # noqa: E402
from repro.obs.provenance import git_describe  # noqa: E402
from repro.runner import SimPoint, run_points  # noqa: E402
from repro.strategies import ARDirect  # noqa: E402

#: Layout version of the bench report / committed baseline (bumped when
#: fields change meaning; ``--check`` warns on a mismatched baseline).
BENCH_SCHEMA = 2


def bench_provenance() -> dict:
    """Where/when a bench report was measured — rides into the report,
    the merged baseline, and the run-history store's bench records."""
    return {
        "schema": BENCH_SCHEMA,
        "git": git_describe(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
    }


def assert_observability_disabled() -> None:
    """The benchmark must exercise the un-instrumented hot path.

    Both guards would trip if someone made instrumentation the default:
    the default-constructed network must be the plain class (not an
    ``InstrumentedTorusNetwork``), and its type must carry none of the
    observability attributes.
    """
    net = build_network(TorusShape.parse("2x2x2"))
    if type(net) is not TorusNetwork:
        raise SystemExit(
            f"bench precondition failed: build_network() returned "
            f"{type(net).__name__}, expected plain TorusNetwork"
        )
    for attr in ("tracer", "metrics"):
        if hasattr(net, attr):
            raise SystemExit(
                f"bench precondition failed: plain network has {attr!r}"
            )

#: Single-point benchmark per scale: (shape, msg_bytes, seed, repeats).
POINTS = {
    "ci": ("4x4x4", 64, 1, 3),
    "paper": ("8x8x8", 64, 1, 1),
}

#: Sweep-scaling benchmark per scale: (shape, msg sizes, seed).
SWEEPS = {
    "ci": ("4x4x4", [256, 320, 384, 448], 1),
    "paper": ("8x8x4", [16, 32, 48, 64], 1),
}

SLOWDOWN_LIMIT = 2.0


def bench_single_point(scale: str) -> dict:
    spec, msg, seed, repeats = POINTS[scale]
    shape = TorusShape.parse(spec)
    best = None
    run = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        run = simulate_alltoall(ARDirect(), shape, msg, seed=seed)
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    assert run is not None and best is not None
    events = run.result.events_processed
    return {
        "name": f"single_point_{scale}",
        "shape": spec,
        "msg_bytes": msg,
        "seed": seed,
        "repeats": repeats,
        "wall_s": round(best, 4),
        "events": events,
        "events_per_sec": round(events / best, 1),
        "time_cycles": run.result.time_cycles,
    }


#: Max tolerated overhead of the default (analytics-off) path over the
#: bare simulator core, as a fraction of its wall time.
ANALYTICS_OFF_LIMIT = 0.05

#: A/B sample budget per scale: (repeats, runs aggregated per sample).
#: min-of-N CPU time converges on the true floor of each leg, and both
#: legs run identical work.  A single ci-scale run is ~0.1s — short
#: enough that CPU frequency and cache state swing individual samples
#: by several percent, so ci aggregates 3 runs per sample and takes 9
#: samples; a paper-scale run is already seconds long, so 3 plain
#: samples suffice (and keep the bench under a minute).
ANALYTICS_OFF_BUDGET = {
    "ci": (9, 3),
    "paper": (3, 1),
}


def bench_analytics_overhead(scale: str) -> dict:
    """A/B gate for the zero-overhead-when-disabled contract.

    Times the network the default path selects (``build_network`` with
    no obs/check/faults — exactly what ``simulate_alltoall`` runs when
    observability is off) against a bare ``TorusNetwork`` on the *same*
    prebuilt program, interleaved, CPU-time min-of-N.  Link analytics,
    tracing and checking are all opt-in subclasses, so the two must be
    within noise of each other; a default path that runs >5 % slower
    than the raw core means someone leaked instrumentation into the
    analytics-off configuration.
    """
    from repro.model.machine import MachineParams

    spec, msg, seed, _ = POINTS[scale]
    shape = TorusShape.parse(spec)
    params = MachineParams.bluegene_l()
    strategy = ARDirect()

    # Untimed warmup of both legs: the first simulation of a process
    # pays allocator growth and cold caches, which would otherwise land
    # entirely on the first timed sample.
    build_network(shape, params).run(
        strategy.build_program(shape, msg, params, seed)
    )
    TorusNetwork(shape, params).run(
        strategy.build_program(shape, msg, params, seed)
    )

    repeats, inner = ANALYTICS_OFF_BUDGET[scale]
    best_default = None
    best_core = None
    ratios = []
    events = None
    for _ in range(repeats):
        # Interleaved A/B over the identical prebuilt program, CPU time
        # (process_time is blind to scheduler preemption): only
        # net.run() is inside the timed region, so the comparison
        # measures the network class the default path selected, not
        # program-build or model-prediction noise.  The verdict uses the
        # median of *paired* per-iteration ratios — both legs of a pair
        # see the same machine state, so common-mode noise (frequency
        # scaling, cache pressure from neighbors) divides out.
        runs_default = [
            (strategy.build_program(shape, msg, params, seed),
             build_network(shape, params))
            for _ in range(inner)
        ]
        t0 = time.process_time()
        for program, net in runs_default:
            res_default = net.run(program)
        dt_default = time.process_time() - t0
        best_default = (
            dt_default if best_default is None
            else min(best_default, dt_default)
        )

        runs_core = [
            (strategy.build_program(shape, msg, params, seed),
             TorusNetwork(shape, params))
            for _ in range(inner)
        ]
        t0 = time.process_time()
        for program, net in runs_core:
            res_core = net.run(program)
        dt_core = time.process_time() - t0
        best_core = dt_core if best_core is None else min(best_core, dt_core)
        ratios.append(dt_default / dt_core)
        if res_default.events_processed != res_core.events_processed:
            raise SystemExit(
                "bench precondition failed: default path and bare core "
                "replayed different event streams "
                f"({res_default.events_processed} vs "
                f"{res_core.events_processed})"
            )
        events = res_core.events_processed
    assert best_default is not None and best_core is not None
    ratios.sort()
    median_ratio = ratios[len(ratios) // 2]
    floor_ratio = best_default / best_core
    # Two independent overhead estimators: the ratio of per-leg floors
    # and the median paired ratio.  A real instrumentation leak (a
    # subclass in the default path) inflates both consistently; timing
    # noise rarely inflates both at once, so the gate takes the smaller
    # estimate and stays robust on loud machines.
    overhead = min(median_ratio, floor_ratio) - 1.0
    return {
        "name": f"analytics_off_overhead_{scale}",
        "shape": spec,
        "msg_bytes": msg,
        "seed": seed,
        "repeats": repeats,
        "events": events,
        "cpu_s_default": round(best_default, 4),
        "cpu_s_core": round(best_core, 4),
        "median_ratio": round(median_ratio, 4),
        "overhead_frac": round(overhead, 4),
    }


#: Worker count of the parallel leg of the sweep-scaling benchmark.
SWEEP_WORKERS = 4


def bench_sweep_scaling(scale: str) -> dict:
    spec, sizes, seed = SWEEPS[scale]
    shape = TorusShape.parse(spec)
    # Cache off: both runs must execute every simulation for the
    # comparison to measure the pool, not the cache.
    os.environ["REPRO_CACHE"] = "0"
    timings = {}
    for jobs in (1, SWEEP_WORKERS):
        pts = [SimPoint(ARDirect(), shape, m, seed=seed) for m in sizes]
        t0 = time.perf_counter()
        run_points(pts, jobs=jobs)
        timings[jobs] = time.perf_counter() - t0
    os.environ.pop("REPRO_CACHE", None)
    # The worker/CPU counts are stamped into the record so a reader (and
    # --check) can tell a real scaling regression from a machine that
    # simply cannot express jobs-level parallelism.
    return {
        "name": f"sweep_scaling_{scale}",
        "shape": spec,
        "points": len(sizes),
        "workers": SWEEP_WORKERS,
        "cpus": os.cpu_count() or 1,
        "wall_s_jobs1": round(timings[1], 4),
        "wall_s_jobs4": round(timings[SWEEP_WORKERS], 4),
        "parallel_speedup": round(timings[1] / timings[SWEEP_WORKERS], 2),
    }


def check(report: dict, baseline_path: Path) -> int:
    baseline = json.loads(baseline_path.read_text())
    base_by_name = {b["name"]: b for b in baseline["benchmarks"]}
    # Provenance sanity (warn-only: the numeric gates below still run —
    # a stale-layout baseline usually still has comparable numbers, but
    # the reader deserves to know the comparison crosses schema versions).
    base_schema = baseline.get("schema")
    if base_schema != report["schema"]:
        print(
            f"  WARNING: baseline schema {base_schema} != report schema "
            f"{report['schema']}; refresh with --write-baseline"
        )
    if "provenance" not in baseline:
        print(
            "  WARNING: baseline has no provenance record (predates "
            "schema 2); refresh with --write-baseline"
        )
    failures = []
    for bench in report["benchmarks"]:
        if "overhead_frac" in bench:
            # Self-contained gate (no baseline needed): the default
            # analytics-off path may not exceed the bare core by more
            # than ANALYTICS_OFF_LIMIT.
            frac = bench["overhead_frac"]
            verdict = "FAIL" if frac > ANALYTICS_OFF_LIMIT else "ok"
            print(
                f"  {bench['name']}: default path "
                f"{bench['cpu_s_default']}s vs core "
                f"{bench['cpu_s_core']}s (overhead {frac * 100:+.1f}%, "
                f"limit +{ANALYTICS_OFF_LIMIT * 100:.0f}%) [{verdict}]"
            )
            if frac > ANALYTICS_OFF_LIMIT:
                failures.append(bench["name"])
            continue
        base = base_by_name.get(bench["name"])
        if base is None:
            continue
        if "events_per_sec" in bench:
            ratio = base["events_per_sec"] / bench["events_per_sec"]
            verdict = "FAIL" if ratio > SLOWDOWN_LIMIT else "ok"
            print(
                f"  {bench['name']}: {bench['events_per_sec']:.0f} ev/s "
                f"(baseline {base['events_per_sec']:.0f}, "
                f"slowdown x{ratio:.2f}, limit x{SLOWDOWN_LIMIT}) [{verdict}]"
            )
            if ratio > SLOWDOWN_LIMIT:
                failures.append(bench["name"])
            # Sanity: the optimized core must still replay the exact same
            # event stream as when the baseline was recorded.
            if base.get("events") != bench.get("events"):
                print(
                    f"  {bench['name']}: event count changed "
                    f"{base.get('events')} -> {bench.get('events')} [FAIL]"
                )
                failures.append(bench["name"] + ":events")
        elif "parallel_speedup" in bench:
            workers = bench.get("workers", SWEEP_WORKERS)
            cpus = bench.get("cpus", 0)
            if cpus < workers:
                # A machine with fewer CPUs than sweep workers measures
                # only multiprocessing overhead; its ~1.0 "speedup" says
                # nothing about pool scaling, so there is nothing to gate.
                print(
                    f"  {bench['name']}: skipped "
                    f"({cpus} cpu(s) cannot express {workers} workers)"
                )
                continue
            base_sp = base.get("parallel_speedup")
            if not base_sp or base.get("cpus", 0) < base.get(
                "workers", SWEEP_WORKERS
            ):
                print(
                    f"  {bench['name']}: skipped "
                    f"(baseline recorded without usable parallelism)"
                )
                continue
            ratio = base_sp / bench["parallel_speedup"]
            verdict = "FAIL" if ratio > SLOWDOWN_LIMIT else "ok"
            print(
                f"  {bench['name']}: speedup x{bench['parallel_speedup']:.2f} "
                f"(baseline x{base_sp:.2f}, ratio x{ratio:.2f}, "
                f"limit x{SLOWDOWN_LIMIT}) [{verdict}]"
            )
            if ratio > SLOWDOWN_LIMIT:
                failures.append(bench["name"])
    if failures:
        print(f"timing regression: {', '.join(failures)}")
        return 1
    print("timing check passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", choices=sorted(POINTS), default="ci")
    ap.add_argument(
        "--output", type=Path, default=REPO / "BENCH_simcore.json"
    )
    ap.add_argument("--baseline", type=Path, default=HERE / "baseline.json")
    ap.add_argument(
        "--profile",
        type=Path,
        default=None,
        metavar="PSTATS",
        help="also run the single point under cProfile and dump the raw "
        "pstats data here (CI uploads the ci-point dump as a perf-smoke "
        "artifact for hot-spot hunts)",
    )
    ap.add_argument(
        "--check",
        action="store_true",
        help=f"fail on >{SLOWDOWN_LIMIT}x slowdown vs the committed baseline",
    )
    ap.add_argument(
        "--write-baseline",
        action="store_true",
        help="record this run as the new committed baseline",
    )
    args = ap.parse_args(argv)

    assert_observability_disabled()
    prov = bench_provenance()
    report = {
        "schema": BENCH_SCHEMA,
        "scale": args.scale,
        "python": prov["python"],
        "machine": prov["machine"],
        "cpus": prov["cpus"],
        "provenance": prov,
        "benchmarks": [
            bench_single_point(args.scale),
            bench_analytics_overhead(args.scale),
            bench_sweep_scaling(args.scale),
        ],
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    for b in report["benchmarks"]:
        print(json.dumps(b))
    print(f"wrote {args.output}")

    if args.profile is not None:
        # A separate profiled run, after the timed ones, so profiler
        # overhead never contaminates the recorded numbers.
        spec, msg, seed, _ = POINTS[args.scale]
        shape = TorusShape.parse(spec)
        pr = cProfile.Profile()
        pr.enable()
        simulate_alltoall(ARDirect(), shape, msg, seed=seed)
        pr.disable()
        pr.dump_stats(args.profile)
        print(f"wrote {args.profile}")

    if args.write_baseline:
        # Merge by benchmark name so ci- and paper-scale baselines can
        # coexist in one committed file.
        merged = dict(report)
        if args.baseline.exists():
            old = json.loads(args.baseline.read_text())
            fresh = {b["name"] for b in report["benchmarks"]}
            merged["benchmarks"] = [
                b for b in old.get("benchmarks", []) if b["name"] not in fresh
            ] + report["benchmarks"]
        args.baseline.write_text(json.dumps(merged, indent=2) + "\n")
        print(f"wrote {args.baseline}")
    if args.check:
        return check(report, args.baseline)
    return 0


if __name__ == "__main__":
    sys.exit(main())
