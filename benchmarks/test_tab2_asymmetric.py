"""Benchmark: regenerate Table 2 (AR on asymmetric partitions).

The paper's shape: every asymmetric partition runs below the symmetric
baseline of Table 1, with the strongly elongated tori losing the most.
"""

from repro.experiments.registry import run_experiment


def test_tab2_asymmetric(run_experiment_once, scale):
    result = run_experiment_once("tab2_asymmetric")
    tab1 = run_experiment("tab1_symmetric", scale=scale)
    sym_best = max(tab1.column("AR % of peak"))
    for row in result.rows:
        # Asymmetric partitions do not beat the symmetric baseline.
        assert row["AR % of peak"] <= sym_best * 1.05, row["partition"]
