"""Benchmark: regenerate Table 3 (TPS on all partitions).

Paper shape: TPS >= AR on every asymmetric partition (the headline
result), the linear-dimension rule matches the paper's column, and the
512-node symmetric midplane — where TPS is CPU-bound — is TPS's weak
case.
"""


def test_tab3_tps(run_experiment_once):
    result = run_experiment_once("tab3_tps")
    for row in result.rows:
        if row["partition"] == "8x8x8":
            continue  # the CPU-bound case: AR legitimately wins there
        assert row["TPS % of peak"] >= row["AR % of peak"] * 0.9, row["partition"]


def test_tab3_linear_dimension_rule(run_experiment_once):
    result = run_experiment_once("tab3_tps")
    for row in result.rows:
        if row["partition"] in ("8x8x8", "16x16x16"):
            continue  # fully symmetric: the choice is arbitrary
        assert row["phase1 dim"] == row["paper dim"], row["partition"]
