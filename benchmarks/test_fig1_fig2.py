"""Benchmarks: regenerate Figures 1 and 2 (AR throughput vs m, with the
Eq. 3 prediction)."""


def test_fig1_ar_midplane(run_experiment_once):
    result = run_experiment_once("fig1_ar_midplane")
    pcts = result.column("% of peak")
    # Throughput rises with message size (alpha amortizes away).
    assert pcts[-1] > pcts[0]
    # The model tracks the measurement within a factor of 2 everywhere.
    for row in result.rows:
        ratio = row["measured us"] / row["Eq.3 us"]
        assert 0.5 < ratio < 3.0, row


def test_fig2_ar_4096(run_experiment_once):
    result = run_experiment_once("fig2_ar_4096")
    eq3 = result.column("Eq.3 % of peak")
    # Model efficiency is monotone in m and approaches peak (the tiny
    # scale stops at m=464 B where Eq. 3 predicts ~83%).
    assert all(b >= a for a, b in zip(eq3, eq3[1:]))
    assert eq3[-1] > 80.0
