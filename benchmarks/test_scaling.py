"""Benchmark: the scaling-study extension (efficiency vs machine size)."""


def test_scaling_study(run_experiment_once):
    result = run_experiment_once("scaling_study")
    rows = result.rows
    assert len(rows) >= 2
    # The model's CPU/network balance falls as the machine grows
    # (Section 2: processing demand ~ 1/average hops).
    balances = result.column("cpu/net balance")
    assert balances[-1] < balances[0]
    # TPS's advantage over AR grows with the asymmetric dimension.
    gaps = [r["TPS % of peak"] - r["AR % of peak"] for r in rows]
    assert gaps[-1] > gaps[0]
