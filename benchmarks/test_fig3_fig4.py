"""Benchmarks: regenerate Figure 3 (per-node throughput vs partition) and
Figure 4 (direct strategies compared)."""

import pytest


def test_fig3_throughput(run_experiment_once):
    result = run_experiment_once("fig3_throughput")
    for row in result.rows:
        # Measured throughput never exceeds the bisection bound.
        assert row["large-m MB/s/node"] <= row["peak MB/s/node"] * 1.01
        # Figure 3's claim: one packet already gets most of the
        # large-message throughput.
        assert row["1-packet MB/s/node"] > 0.4 * row["large-m MB/s/node"]


def test_fig4_direct(run_experiment_once):
    result = run_experiment_once("fig4_direct")
    sym = result.row_by("partition", "8x8x8")
    # DR loses to AR on the symmetric torus (head-of-line blocking).
    assert sym["DR %"] < sym["AR %"]
    # Throttling never collapses performance (the paper saw a 2-3% gain;
    # our more congestion-prone router gains more on asymmetric shapes -
    # a documented deviation, see EXPERIMENTS.md).
    for row in result.rows:
        assert row["AR-throttle %"] > row["AR %"] - 10.0


@pytest.mark.xfail(
    strict=False,
    reason="known deviation: the paper measured DR best when X is the "
    "longest dimension (every DR packet injects on an X link); our "
    "packet-granularity bubble-ring model instead gridlocks the heavily "
    "injected X rings at scaled sizes.  Recorded in EXPERIMENTS.md.",
)
def test_fig4_dr_prefers_x_longest(run_experiment_once, scale):
    result = run_experiment_once("fig4_direct")
    x_row = result.row_by("partition", "16x8x8")
    z_row = result.row_by("partition", "8x8x16")
    assert x_row["DR %"] > z_row["DR %"]
    if scale != "tiny":
        y_row = result.row_by("partition", "8x16x8")
        assert x_row["DR %"] > y_row["DR %"]
