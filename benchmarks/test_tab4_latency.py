"""Benchmark: regenerate Table 4 (1-byte latency, TPS vs AR).

Paper shape: on small symmetric partitions the extra forwarding hop makes
TPS slower than AR for 1 B messages.
"""


def test_tab4_latency(run_experiment_once):
    result = run_experiment_once("tab4_latency")
    small = result.row_by("partition", "8x8x8")
    assert small["TPS ms"] > small["AR ms"]
    for row in result.rows:
        assert row["TPS ms"] > 0 and row["AR ms"] > 0
