"""Benchmark harness configuration.

Each benchmark runs one experiment driver exactly once (``pedantic`` with
a single round — an experiment is minutes of simulated traffic, not a
microbenchmark), prints the regenerated table/figure rows, writes them to
``benchmark_results/``, and asserts the paper's qualitative shape.

Scale defaults to ``tiny`` so the suite completes quickly; set
``REPRO_SCALE=small`` (the paper-shaped default) or ``full`` for the real
runs recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent / "benchmark_results"


@pytest.fixture(scope="session")
def scale() -> str:
    return os.environ.get("REPRO_SCALE", "tiny")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def run_experiment_once(benchmark, scale, results_dir):
    """Run a driver once under pytest-benchmark and record its table."""

    def _run(exp_id: str, seed: int = 0):
        from repro.experiments.registry import run_experiment

        result = benchmark.pedantic(
            run_experiment,
            args=(exp_id,),
            kwargs={"scale": scale, "seed": seed},
            rounds=1,
            iterations=1,
        )
        text = result.render()
        print()
        print(text)
        (results_dir / f"{exp_id}.txt").write_text(text + "\n")
        return result

    return _run
