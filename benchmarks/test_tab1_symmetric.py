"""Benchmark: regenerate Table 1 (AR on symmetric partitions)."""


def test_tab1_symmetric(run_experiment_once):
    result = run_experiment_once("tab1_symmetric")
    pcts = result.column("AR % of peak")
    # Qualitative shape: symmetric partitions are uniformly efficient -
    # no partition collapses relative to the best one.
    assert min(pcts) > 0.6 * max(pcts)
    # And all are meaningfully above the heavily-contended regime.
    assert all(p > 40.0 for p in pcts)
