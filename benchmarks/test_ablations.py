"""Benchmarks: the design-choice ablations DESIGN.md calls out."""

import pytest


def test_ablate_tps_axis(run_experiment_once):
    result = run_experiment_once("ablate_tps_axis")
    by_axis = {r["linear dim"]: r["TPS % of peak"] for r in result.rows}
    chosen = next(
        r["linear dim"] for r in result.rows if r["rule's choice"] == "<--"
    )
    # The selection rule's pick is at worst a few points off the best axis.
    assert by_axis[chosen] >= max(by_axis.values()) - 8.0


def test_ablate_tps_pipelining(run_experiment_once):
    result = run_experiment_once("ablate_tps_pipelining")
    reserved = result.row_by("variant", "reserved FIFOs (paper)")
    shared = result.row_by("variant", "shared FIFOs")
    # Reserving FIFO groups per phase must not hurt; the paper relies on
    # it to overlap the phases.
    assert reserved["TPS % of peak"] >= shared["TPS % of peak"] * 0.95


@pytest.mark.xfail(
    strict=False,
    reason="known deviation, see test_fig4_dr_prefers_x_longest and "
    "EXPERIMENTS.md.",
)
def test_ablate_dr_axis(run_experiment_once):
    result = run_experiment_once("ablate_dr_axis")
    by_partition = {r["partition"]: r["DR % of peak"] for r in result.rows}
    # Section 3.2: DR performs best when X is the longest dimension.
    assert by_partition["16x8x8"] >= by_partition["8x16x8"]
    assert by_partition["16x8x8"] >= by_partition["8x8x16"]


def test_ablate_vmesh_factors(run_experiment_once):
    result = run_experiment_once("ablate_vmesh_factors")
    times = [r["time us"] for r in result.rows]
    # The balanced (last) factorization beats the degenerate Px1 (first).
    assert times[-1] < times[0]


def test_ablate_credit_overhead(run_experiment_once):
    result = run_experiment_once("ablate_credit_overhead")
    plain = result.row_by("packets/credit", "none")
    ten = result.row_by("packets/credit", 10)
    # Section 5: ~1% predicted bandwidth overhead at 10 packets/credit,
    # and the measured slowdown stays small.
    assert ten["predicted bw overhead %"] < 2.0
    assert ten["time vs plain TPS %"] < 115.0
    assert plain["time vs plain TPS %"] == 100.0
