"""Partition shapes: mesh/torus grids of one, two or three dimensions.

The paper's evaluation runs on partitions written like ``8x8x16`` (torus in
every dimension) or ``8x8x2M`` (the trailing ``M`` marks a dimension that is
a *mesh* — no wrap links — rather than a torus, as in Table 2).
:class:`TorusShape` captures the shape plus per-dimension wrap flags and
derives every topological quantity the models and the simulator need:
node count, longest dimension M, per-dimension mean hop counts, directed
link counts, contention factors and bisection bandwidth.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import cached_property
from typing import Iterator, Sequence

from repro.util.coords import (
    Coord,
    all_coords,
    coord_to_rank,
    hop_vector,
    mean_hops_per_dim,
    rank_to_coord,
)
from repro.util.validation import check_positive_int, require

_DIM_RE = re.compile(r"^(\d+)(M?)$", re.IGNORECASE)


@dataclass(frozen=True)
class TorusShape:
    """A BG/L partition: per-dimension extents and wrap (torus) flags.

    Parameters
    ----------
    dims:
        Extent of each dimension, X first (``(40, 32, 16)`` for the paper's
        largest partition).
    torus:
        Per-dimension flag; ``True`` means wrap links are present (torus),
        ``False`` means mesh.  Defaults to all-torus.
    """

    dims: tuple[int, ...]
    torus: tuple[bool, ...]

    def __init__(
        self,
        dims: Sequence[int],
        torus: Sequence[bool] | None = None,
    ) -> None:
        dims_t = tuple(check_positive_int(d, "dimension extent") for d in dims)
        require(1 <= len(dims_t) <= 3, "TorusShape supports 1-3 dimensions")
        if torus is None:
            torus_t = tuple(True for _ in dims_t)
        else:
            torus_t = tuple(bool(t) for t in torus)
        require(len(torus_t) == len(dims_t), "torus flags must match dims")
        # A wrap link on a 1- or 2-extent dimension is degenerate: treat any
        # dimension of extent <= 2 declared torus as torus only if extent > 2
        # for link-count purposes is handled in links_in_dim; keep flags as
        # given so labels round-trip.
        object.__setattr__(self, "dims", dims_t)
        object.__setattr__(self, "torus", torus_t)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def parse(cls, label: str) -> "TorusShape":
        """Parse a paper-style label such as ``"8x8x16"`` or ``"8x8x2M"``.

        A trailing ``M`` on a dimension marks it as a mesh (Table 2
        notation).  Separators may be ``x`` or ``X`` with optional spaces.
        """
        parts = [p.strip() for p in re.split(r"[xX]", label)]
        require(
            all(parts) and 1 <= len(parts) <= 3,
            f"cannot parse shape label {label!r}",
        )
        dims: list[int] = []
        torus: list[bool] = []
        for part in parts:
            m = _DIM_RE.match(part)
            require(m is not None, f"cannot parse dimension {part!r}")
            assert m is not None
            dims.append(int(m.group(1)))
            torus.append(m.group(2) == "")
        return cls(dims, torus)

    @classmethod
    def line(cls, n: int, torus: bool = True) -> "TorusShape":
        """1-D partition (a torus line unless *torus* is False)."""
        return cls((n,), (torus,))

    @classmethod
    def plane(cls, nx: int, ny: int, torus: bool = True) -> "TorusShape":
        """2-D partition."""
        return cls((nx, ny), (torus, torus))

    @classmethod
    def cube(cls, nx: int, ny: int, nz: int, torus: bool = True) -> "TorusShape":
        """3-D partition."""
        return cls((nx, ny, nz), (torus, torus, torus))

    # ------------------------------------------------------------------ #
    # basic topology
    # ------------------------------------------------------------------ #

    @property
    def ndim(self) -> int:
        """Number of dimensions (1-3)."""
        return len(self.dims)

    @cached_property
    def nnodes(self) -> int:
        """Total node count P."""
        p = 1
        for d in self.dims:
            p *= d
        return p

    @property
    def label(self) -> str:
        """Paper-style label, e.g. ``"8x8x2M"``."""
        return "x".join(
            f"{d}{'' if t else 'M'}" for d, t in zip(self.dims, self.torus)
        )

    @cached_property
    def max_dim(self) -> int:
        """M = extent of the longest dimension (paper's Section 2.1)."""
        return max(self.dims)

    @cached_property
    def longest_axis(self) -> int:
        """Index of the longest dimension (lowest index on ties)."""
        return self.dims.index(self.max_dim)

    @cached_property
    def is_symmetric(self) -> bool:
        """True when all dimensions are equal-extent tori (the regime in
        which the paper's direct AR strategy reaches peak)."""
        return all(self.torus) and len(set(self.dims)) == 1

    def wrap_effective(self, axis: int) -> bool:
        """Whether wrap links actually shorten paths on *axis* (a torus flag
        on a dimension of extent <= 2 adds no distinct links)."""
        return self.torus[axis] and self.dims[axis] > 2

    # ------------------------------------------------------------------ #
    # coordinates
    # ------------------------------------------------------------------ #

    def coord(self, rank: int) -> Coord:
        """Coordinate of *rank* (X fastest)."""
        return rank_to_coord(rank, self.dims)

    def rank(self, coord: Sequence[int]) -> int:
        """Rank of *coord*."""
        return coord_to_rank(coord, self.dims)

    def coords(self) -> Iterator[Coord]:
        """All coordinates in rank order."""
        return all_coords(self.dims)

    def hops(self, src: Sequence[int], dst: Sequence[int]) -> Coord:
        """Signed shortest-path hop vector from *src* to *dst*."""
        return hop_vector(src, dst, self.dims, self.torus)

    # ------------------------------------------------------------------ #
    # link accounting
    # ------------------------------------------------------------------ #

    def links_in_dim(self, axis: int) -> int:
        """Number of *directed* links in dimension *axis*.

        Torus: every node owns one + and one - link => 2P (paper Section
        2.1: "the total number of links in the maximum dimension is 2*P").
        Mesh: each row of extent n has 2(n-1) directed links.
        """
        n = self.dims[axis]
        if n == 1:
            return 0
        if self.torus[axis] and n > 2:
            return 2 * self.nnodes
        # Mesh (or a 2-extent "torus", whose wrap link duplicates the mesh
        # link and adds no distinct channel on real BG/L hardware).
        return 2 * self.nnodes * (n - 1) // n

    @cached_property
    def total_links(self) -> int:
        """Total directed links in the partition."""
        return sum(self.links_in_dim(a) for a in range(self.ndim))

    def mean_hops(self, axis: int) -> float:
        """Mean |hops| in *axis* over all ordered (src,dst) pairs."""
        return mean_hops_per_dim(self.dims[axis], self.wrap_effective(axis))

    @cached_property
    def mean_total_hops(self) -> float:
        """Mean total hops of a uniformly random packet."""
        return sum(self.mean_hops(a) for a in range(self.ndim))

    # ------------------------------------------------------------------ #
    # contention / bisection
    # ------------------------------------------------------------------ #

    def contention_factor_dim(self, axis: int) -> float:
        """Per-dimension contention factor C_d for uniform all-to-all.

        Defined so the network-limited all-to-all time along dimension d is
        ``P * C_d * m * beta`` (Eq. 2 generalizes to
        C_d = n/8 for a torus dimension and n/4 for a mesh dimension, both
        obtained from the bisection of that dimension).
        """
        n = self.dims[axis]
        if n == 1:
            return 0.0
        if self.wrap_effective(axis):
            return n / 8.0
        return n / 4.0

    @cached_property
    def contention_factor(self) -> float:
        """C = max_d C_d.  Equals M/8 on an all-torus partition (Eq. 2)."""
        return max(
            self.contention_factor_dim(a) for a in range(self.ndim)
        )

    @cached_property
    def bottleneck_axis(self) -> int:
        """Dimension whose bisection limits the all-to-all (argmax C_d)."""
        factors = [self.contention_factor_dim(a) for a in range(self.ndim)]
        return factors.index(max(factors))

    def bisection_links(self, axis: int) -> int:
        """Directed links crossing the mid-plane of *axis* in one direction."""
        n = self.dims[axis]
        if n == 1:
            return 0
        rows = self.nnodes // n
        return 2 * rows if self.wrap_effective(axis) else rows

    def per_node_peak_bandwidth(self, beta_cycles_per_byte: float) -> float:
        """Peak per-node all-to-all payload bandwidth in bytes/cycle.

        Each node sources P*m bytes during T_peak = P*C*m*beta, so the
        per-node rate is 1/(C*beta) — the "peak bisection bandwidth per
        node" series of Figure 3.
        """
        require(beta_cycles_per_byte > 0, "beta must be positive")
        c = self.contention_factor
        if c == 0.0:
            return float("inf")
        return 1.0 / (c * beta_cycles_per_byte)

    # ------------------------------------------------------------------ #
    # dunder conveniences
    # ------------------------------------------------------------------ #

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.label

    def __len__(self) -> int:
        return self.nnodes
