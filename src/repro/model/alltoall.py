"""Equations 2-4: the paper's all-to-all cost models.

* Eq. 2 — network-limited peak:      ``T_peak = P * C * m * beta`` with
  ``C = M/8`` on a torus (generalized per-dimension in
  :meth:`repro.model.torus.TorusShape.contention_factor`).
* Eq. 3 — simple direct strategies:  ``T ~= P*alpha + P*C*(m+h)*beta``.
* Eq. 4 — balanced 2-D virtual mesh: ``T ~= (Pvx+Pvy)*alpha +
  2*P*(m+proto)*(C*beta + gamma)``.

These are the "prediction" series of Figures 1, 2 and 5 and define the
"percent of peak" metric used by every table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.model.machine import MachineParams
from repro.model.torus import TorusShape
from repro.util.validation import check_positive_int, require


def peak_time_cycles(
    shape: TorusShape, m_bytes: float, params: MachineParams
) -> float:
    """Eq. 2: best-possible all-to-all time, cycles (no startup, payload
    *m_bytes* per destination)."""
    require(m_bytes >= 0, "message size must be >= 0")
    return shape.nnodes * shape.contention_factor * m_bytes * (
        params.beta_cycles_per_byte
    )


def simple_direct_time_cycles(
    shape: TorusShape, m_bytes: int, params: MachineParams
) -> float:
    """Eq. 3: predicted time of a direct (AR-style) all-to-all, cycles.

    The header rides once per message; the startup is paid once per
    destination.
    """
    require(m_bytes >= 0, "message size must be >= 0")
    p = shape.nnodes
    return p * params.alpha_packet_cycles + p * shape.contention_factor * (
        m_bytes + params.header_bytes
    ) * params.beta_cycles_per_byte


def vmesh_time_cycles(
    shape: TorusShape,
    m_bytes: int,
    params: MachineParams,
    pvx: int,
    pvy: int,
) -> float:
    """Eq. 4: predicted time of the balanced 2-D virtual-mesh strategy.

    ``pvx`` rows x ``pvy`` columns must factor the node count.  Each of the
    two phases moves every node's full P*m bytes once (hence the factor 2),
    paying network (C*beta) plus the intermediate memcpy (gamma) per byte,
    with an 8 B protocol header per combined chunk.
    """
    check_positive_int(pvx, "pvx")
    check_positive_int(pvy, "pvy")
    require(pvx * pvy == shape.nnodes, "virtual mesh must tile the partition")
    require(m_bytes >= 0, "message size must be >= 0")
    p = shape.nnodes
    per_byte = (
        shape.contention_factor * params.beta_cycles_per_byte
        + params.gamma_cycles_per_byte
    )
    return (pvx + pvy) * params.alpha_message_cycles + 2.0 * p * (
        m_bytes + params.proto_bytes
    ) * per_byte


def ar_vmesh_crossover_bytes(params: MachineParams) -> int:
    """Message size where Eq. 3 and Eq. 4 beta-terms balance:
    ``m = h - 2*proto`` (Section 4.2; ~32 B with the paper's parameters).

    The paper notes the *observed* crossover lands between 32 and 64 B
    because 256 B packets run the network more efficiently than 64 B ones.
    """
    return params.header_bytes - 2 * params.proto_bytes


@dataclass(frozen=True)
class ThroughputPoint:
    """One point of a throughput-vs-message-size series."""

    m_bytes: int
    time_cycles: float
    #: Per-node payload bandwidth, bytes/cycle: P*m / T.
    per_node_bytes_per_cycle: float
    #: Fraction of the Eq. 2 peak in [0, ~1].
    fraction_of_peak: float


def throughput_point(
    shape: TorusShape,
    m_bytes: int,
    time_cycles: float,
    params: MachineParams,
) -> ThroughputPoint:
    """Package a measured/predicted all-to-all time as a throughput point."""
    require(time_cycles > 0, "time must be positive")
    peak = peak_time_cycles(shape, m_bytes, params)
    return ThroughputPoint(
        m_bytes=m_bytes,
        time_cycles=time_cycles,
        per_node_bytes_per_cycle=shape.nnodes * m_bytes / time_cycles,
        fraction_of_peak=(peak / time_cycles) if peak > 0 else 0.0,
    )


def percent_of_peak(
    shape: TorusShape,
    m_bytes: int,
    time_cycles: float,
    params: MachineParams,
) -> float:
    """Percent of the Eq. 2 peak achieved by an all-to-all taking
    *time_cycles* (the metric of Tables 1-3)."""
    return 100.0 * throughput_point(shape, m_bytes, time_cycles, params).fraction_of_peak


def asymptotic_direct_efficiency(
    shape: TorusShape, params: MachineParams, m_bytes: int = 1 << 20
) -> float:
    """Large-message fraction of peak that Eq. 3 predicts (header overhead
    only; contention beyond C is not modeled by Eq. 3)."""
    t = simple_direct_time_cycles(shape, m_bytes, params)
    return peak_time_cycles(shape, m_bytes, params) / t


def balanced_vmesh_factors(p: int) -> tuple[int, int]:
    """Factor *p* as pvx*pvy with pvx/pvy as close to square as possible and
    pvx >= pvy (Section 4.2: "keep the number of rows and columns about the
    same")."""
    check_positive_int(p, "p")
    best = (p, 1)
    for pvy in range(1, int(math.isqrt(p)) + 1):
        if p % pvy == 0:
            best = (p // pvy, pvy)
    return best
