"""Equation 1: the point-to-point message cost model.

``T_ptp = alpha + (m + h) * C * beta + L`` where

* ``alpha``  — non-pipelinable startup (processor + network),
* ``m``      — message payload bytes,
* ``h``      — software header bytes,
* ``C``      — contention delay factor (1.0 on an idle network),
* ``beta``   — per-byte transfer time,
* ``L``      — network latency, proportional to hop count.

All times in processor cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.machine import MachineParams
from repro.util.validation import check_nonneg, require


@dataclass(frozen=True)
class PtpCostBreakdown:
    """Cost components of one point-to-point message, in cycles."""

    startup: float
    transfer: float
    latency: float

    @property
    def total(self) -> float:
        """Total cycles (Eq. 1)."""
        return self.startup + self.transfer + self.latency


def ptp_time_cycles(
    params: MachineParams,
    m_bytes: int,
    hops: int = 0,
    contention: float = 1.0,
    message_level: bool = False,
) -> PtpCostBreakdown:
    """Evaluate Eq. 1 for one message.

    Parameters
    ----------
    params:
        Machine cost parameters.
    m_bytes:
        Payload size in bytes.
    hops:
        Network hops the first packet traverses; sets the latency term
        ``L = hops * hop_latency``.
    contention:
        The ``C`` factor; 1.0 models an unloaded network, ``M/8`` models a
        saturating all-to-all (Section 2.1).
    message_level:
        Use the message runtime's startup (1170 cycles) instead of the
        packet runtime's (450 cycles).
    """
    require(m_bytes >= 0, "message size must be >= 0")
    check_nonneg(contention, "contention")
    check_nonneg(hops, "hops")
    alpha = (
        params.alpha_message_cycles if message_level else params.alpha_packet_cycles
    )
    transfer = (
        (m_bytes + params.header_bytes) * contention * params.beta_cycles_per_byte
    )
    latency = hops * params.hop_latency_cycles
    return PtpCostBreakdown(startup=alpha, transfer=transfer, latency=latency)
