"""Exact per-link load accounting for uniform all-to-all traffic.

For minimal routing the set of per-dimension displacements a packet makes is
fixed by (src, dst); only the *interleaving* differs between adaptive and
deterministic routing.  Aggregate per-dimension byte-hops are therefore
routing-independent, and per-link loads under dimension-ordered routing have
the closed forms implemented here.  These loads explain the paper's central
observation (Section 3.2): on a ``2n x n x n`` torus the X links carry twice
the load of the Y and Z links, so adaptive routing backs up behind X.

Loads are reported in *bytes per directed link* for an all-to-all in which
each of the P nodes sends ``m_bytes`` to every node (self included, matching
the Section 2.1 model's accounting; excluding self-traffic changes loads by
O(1/P) and is available via ``include_self=False``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.machine import MachineParams
from repro.model.torus import TorusShape
from repro.util.validation import require


def _pair_displacement_counts(n: int, torus: bool, include_self: bool) -> np.ndarray:
    """count[k] = number of ordered (s, t) pairs in one dimension whose
    shortest |displacement| is k, for s, t in [0, n)."""
    counts = np.zeros(n, dtype=np.int64)
    for s in range(n):
        for t in range(n):
            if not include_self and s == t:
                # handled by caller at full-coordinate granularity; per-dim
                # we always include all pairs and correct at the top level.
                pass
            if torus and n > 2:
                d = (t - s) % n
                k = min(d, n - d)
            else:
                k = abs(t - s)
            counts[k] += 1
    return counts


def dim_byte_hops(
    shape: TorusShape, m_bytes: float, include_self: bool = True
) -> np.ndarray:
    """Total byte-hops the all-to-all induces in each dimension.

    byte_hops[d] = m * sum over ordered (src,dst) pairs of |disp_d|.
    Factorizes: (P/n_d)^2 * (pairwise 1-D hop sum) * m, optionally minus the
    (zero-hop) self pairs, which contribute nothing anyway.
    """
    require(m_bytes >= 0, "m_bytes must be >= 0")
    p = shape.nnodes
    out = np.zeros(shape.ndim, dtype=np.float64)
    for axis in range(shape.ndim):
        n = shape.dims[axis]
        counts = _pair_displacement_counts(n, shape.wrap_effective(axis), True)
        hop_sum_1d = float(np.dot(counts, np.arange(n)))
        rows = p // n
        out[axis] = rows * rows * hop_sum_1d * m_bytes
    return out


def uniform_link_loads(
    shape: TorusShape, m_bytes: float
) -> np.ndarray:
    """Per-directed-link byte load in each dimension if the dimension's
    byte-hops spread perfectly evenly over its links (exact for torus
    dimensions under any minimal routing, optimistic for mesh)."""
    hops = dim_byte_hops(shape, m_bytes)
    loads = np.zeros(shape.ndim, dtype=np.float64)
    for axis in range(shape.ndim):
        links = shape.links_in_dim(axis)
        loads[axis] = hops[axis] / links if links else 0.0
    return loads


def dor_max_link_loads(shape: TorusShape, m_bytes: float) -> np.ndarray:
    """Max per-directed-link byte load in each dimension under
    dimension-ordered minimal routing.

    Torus dimension: symmetric, so equals the uniform load, P*n*m/8 per
    link on an even torus.  Mesh dimension: the centre link is hottest,
    ``max_i (i+1)(n-1-i) * (P/n) * m``.
    """
    p = shape.nnodes
    loads = np.zeros(shape.ndim, dtype=np.float64)
    for axis in range(shape.ndim):
        n = shape.dims[axis]
        if n == 1:
            continue
        rows = p // n
        if shape.wrap_effective(axis):
            counts = _pair_displacement_counts(n, True, True)
            hop_sum_1d = float(np.dot(counts, np.arange(n)))
            loads[axis] = rows * rows * hop_sum_1d * m_bytes / shape.links_in_dim(axis)
        else:
            i = np.arange(n - 1, dtype=np.float64)
            crossing_pairs = (i + 1.0) * (n - 1.0 - i)
            loads[axis] = float(crossing_pairs.max()) * rows * m_bytes
    return loads


def network_lower_bound_cycles(
    shape: TorusShape, m_bytes: float, params: MachineParams
) -> float:
    """Link-capacity lower bound on the all-to-all time: the hottest link's
    byte load times beta.  Coincides with Eq. 2's peak on all-torus
    partitions (a consistency check the tests enforce)."""
    loads = dor_max_link_loads(shape, m_bytes)
    return float(loads.max(initial=0.0)) * params.beta_cycles_per_byte


@dataclass(frozen=True)
class DimUtilization:
    """Relative steady-state utilization of each dimension's links during a
    saturating all-to-all (bottleneck dimension = 1.0)."""

    per_axis: tuple[float, ...]
    bottleneck_axis: int

    @property
    def mean(self) -> float:
        """Link-weighted mean relative utilization; 1.0 on a symmetric
        torus, < 1 on asymmetric shapes (the slack that lets adaptive
        routing over-commit Y/Z buffers, Section 3.2)."""
        return sum(self.per_axis) / len(self.per_axis)


def dim_utilization(shape: TorusShape) -> DimUtilization:
    """Relative per-dimension link utilization for uniform all-to-all."""
    loads = uniform_link_loads(shape, 1.0)
    peak = loads.max(initial=0.0)
    if peak <= 0:
        rel = tuple(0.0 for _ in range(shape.ndim))
        return DimUtilization(per_axis=rel, bottleneck_axis=0)
    rel = tuple(float(x / peak) for x in loads)
    return DimUtilization(
        per_axis=rel, bottleneck_axis=int(np.argmax(loads))
    )
