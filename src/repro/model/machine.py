"""Machine parameters of the Blue Gene/L node and torus network.

All values default to the numbers measured in the paper (Sections 2-4):

====================  =======================================================
``alpha_packet``      450 cycles (~0.64 us) per-destination startup of the
                      packet-level AR runtime (Section 3).
``alpha_message``     1170 cycles (~1.7 us) per-message startup of the
                      message-level runtime used by VMesh (Section 4.2).
``beta``              6.48 ns/B per-link / per-byte network transfer time.
``gamma``             1.6 ns/B memory-copy cost for VMesh combining.
``header_bytes``      48 B software header, carried in the first packet of a
                      message only.
``proto_bytes``       8 B VMesh protocol header per combined message chunk.
``packet_bytes``      256 B max torus packet, 32 B granularity, and the
                      runtime's 64 B minimum; 240 B max payload per packet.
``cpu_links``         A core can keep ~4 links busy when data is out of L1
                      (5 when in L1) — Section 2.
====================  =======================================================

Time is carried in 700 MHz processor cycles everywhere (see
:mod:`repro.util.units`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import cached_property

from repro.util.units import per_byte_ns_to_cycles, us_to_cycles
from repro.util.validation import check_nonneg, check_positive_int, require


@dataclass(frozen=True)
class MachineParams:
    """Cost and micro-architecture parameters of a BG/L-like machine."""

    #: Per-destination startup of the packet runtime, cycles (paper: 450).
    alpha_packet_cycles: float = 450.0
    #: Per-message startup of the message runtime, cycles (paper: 1170).
    alpha_message_cycles: float = 1170.0
    #: Per-byte network transfer time, ns/B (paper: 6.48).
    beta_ns_per_byte: float = 6.48
    #: Memory-copy cost for intermediate combining, ns/B (paper: 1.6).
    gamma_ns_per_byte: float = 1.6
    #: Software message header, bytes, first packet only (paper: 48).
    header_bytes: int = 48
    #: VMesh protocol header per combined chunk, bytes (paper: 8).
    proto_bytes: int = 8
    #: Maximum torus packet size, bytes (paper: 256).
    packet_max_bytes: int = 256
    #: Torus packet size granularity, bytes (paper: 32).
    packet_granularity: int = 32
    #: Smallest packet the runtime sends, bytes (paper: 64).
    packet_min_bytes: int = 64
    #: Max payload in a full packet, bytes (paper: 240 of 256).
    packet_payload_max: int = 240
    #: Links a core can keep busy, data not in L1 (paper: ~4).
    cpu_links: float = 4.0
    #: Links a core can keep busy, data in L1 (paper: ~5).
    cpu_links_l1: float = 5.0
    #: Dynamic (adaptively routed) virtual channels per link (BG/L: 2).
    num_dynamic_vcs: int = 2
    #: Bubble/deterministic escape VCs per link (BG/L: 1).
    num_bubble_vcs: int = 1
    #: Simulated VC buffer depth in full-size packets.  The hardware VC is
    #: 1 KB (~4 packets), but its credits are *flit-granular* and turn over
    #: far faster than a packet-granularity token model allows; 16 nominal
    #: packet slots is the calibrated equivalent elasticity — it reproduces
    #: the symmetric-torus AR baseline while preserving the asymmetric
    #: congestion collapse of Section 3.2 (deeper buffers wash it out,
    #: shallower ones starve symmetric tori).  See DESIGN.md section 5.
    vc_depth_packets: int = 16
    #: Router/wire latency per hop, cycles (~100 ns on BG/L).
    hop_latency_cycles: float = 70.0
    #: Per-packet processor handling cost, cycles (injection or reception).
    packet_cpu_cycles: float = 100.0
    #: Injection FIFOs per node (BG/L torus has several; >=2 lets TPS
    #: reserve disjoint groups per phase).
    num_injection_fifos: int = 4
    #: Injection FIFO depth in packets.
    injection_fifo_depth: int = 8

    def __post_init__(self) -> None:
        check_nonneg(self.alpha_packet_cycles, "alpha_packet_cycles")
        check_nonneg(self.alpha_message_cycles, "alpha_message_cycles")
        require(self.beta_ns_per_byte > 0, "beta must be positive")
        check_nonneg(self.gamma_ns_per_byte, "gamma_ns_per_byte")
        check_positive_int(self.packet_max_bytes, "packet_max_bytes")
        check_positive_int(self.packet_granularity, "packet_granularity")
        check_positive_int(self.packet_min_bytes, "packet_min_bytes")
        check_positive_int(self.packet_payload_max, "packet_payload_max")
        require(
            self.packet_max_bytes % self.packet_granularity == 0,
            "packet_max_bytes must be a multiple of packet_granularity",
        )
        require(
            self.packet_min_bytes % self.packet_granularity == 0,
            "packet_min_bytes must be a multiple of packet_granularity",
        )
        require(
            self.packet_payload_max <= self.packet_max_bytes,
            "payload cannot exceed packet size",
        )
        require(self.cpu_links > 0, "cpu_links must be positive")
        check_positive_int(self.num_dynamic_vcs, "num_dynamic_vcs")
        check_positive_int(self.num_bubble_vcs, "num_bubble_vcs")
        check_positive_int(self.vc_depth_packets, "vc_depth_packets")
        check_positive_int(self.num_injection_fifos, "num_injection_fifos")
        check_positive_int(self.injection_fifo_depth, "injection_fifo_depth")

    # ------------------------------------------------------------------ #
    # derived rates (cycles)
    # ------------------------------------------------------------------ #

    @cached_property
    def beta_cycles_per_byte(self) -> float:
        """Per-byte link time in cycles/B (~4.54 at the paper's beta)."""
        return per_byte_ns_to_cycles(self.beta_ns_per_byte)

    @cached_property
    def gamma_cycles_per_byte(self) -> float:
        """Per-byte memcpy time in cycles/B."""
        return per_byte_ns_to_cycles(self.gamma_ns_per_byte)

    @cached_property
    def link_bytes_per_cycle(self) -> float:
        """Raw one-link bandwidth in B/cycle (1/beta)."""
        return 1.0 / self.beta_cycles_per_byte

    @cached_property
    def cpu_bytes_per_cycle(self) -> float:
        """Node processor messaging bandwidth: ~cpu_links links' worth."""
        return self.cpu_links * self.link_bytes_per_cycle

    @cached_property
    def cpu_incremental_cycles_per_byte(self) -> float:
        """Per-byte CPU handling cost *beyond* the fixed per-packet cost,
        calibrated so a full-size packet costs exactly its share of the
        cpu_links byte rate:  ``packet_cpu + 256*incr = 256/cpu_rate``.
        Short packets then process *less* efficiently per byte, matching
        the paper's observation that 64 B packets waste throughput."""
        full = self.packet_max_bytes
        total = full / self.cpu_bytes_per_cycle
        return max(0.0, (total - self.packet_cpu_cycles) / full)

    def cpu_packet_handling_cycles(self, wire_bytes: int) -> float:
        """CPU cycles to inject or drain one packet of *wire_bytes*."""
        return (
            self.packet_cpu_cycles
            + wire_bytes * self.cpu_incremental_cycles_per_byte
        )

    def packet_service_cycles(self, packet_bytes: int) -> float:
        """Cycles a link is occupied transmitting one *packet_bytes* packet."""
        check_positive_int(packet_bytes, "packet_bytes")
        return packet_bytes * self.beta_cycles_per_byte

    # ------------------------------------------------------------------ #
    # packetization
    # ------------------------------------------------------------------ #

    def round_packet(self, raw_bytes: int) -> int:
        """Round a raw on-wire byte count to a legal torus packet size:
        a multiple of ``packet_granularity`` between ``packet_min_bytes``
        and ``packet_max_bytes``."""
        require(raw_bytes >= 1, "raw_bytes must be >= 1")
        require(
            raw_bytes <= self.packet_max_bytes,
            f"{raw_bytes} B exceeds max packet {self.packet_max_bytes} B",
        )
        g = self.packet_granularity
        rounded = ((raw_bytes + g - 1) // g) * g
        return max(rounded, self.packet_min_bytes)

    def packetize_message(self, payload_bytes: int) -> list[int]:
        """On-wire packet sizes for a *payload_bytes* message.

        The 48 B software header rides in the first packet (Section 3), so
        a 1 B message becomes a single 64 B packet and the per-message
        on-wire total is ~(m + h) rounded up to packet granularity.
        """
        require(payload_bytes >= 0, "payload must be >= 0")
        remaining = payload_bytes + self.header_bytes
        sizes: list[int] = []
        while remaining > 0:
            chunk = min(remaining, self.packet_max_bytes)
            sizes.append(self.round_packet(chunk))
            remaining -= chunk
        return sizes

    def message_wire_bytes(self, payload_bytes: int) -> int:
        """Total on-wire bytes for one message (header + rounding included)."""
        return sum(self.packetize_message(payload_bytes))

    # ------------------------------------------------------------------ #
    # variants
    # ------------------------------------------------------------------ #

    def with_updates(self, **changes: object) -> "MachineParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]

    @classmethod
    def bluegene_l(cls) -> "MachineParams":
        """The paper's measured BG/L parameter set (the defaults)."""
        return cls()
