"""Analytic performance models from the paper (Sections 2-4).

Exposes the machine parameter set (:class:`MachineParams`), partition
shapes (:class:`TorusShape`), the Eq. 1-4 cost models, exact per-link load
accounting and contention/asymmetry analysis.
"""

from repro.model.machine import MachineParams
from repro.model.torus import TorusShape
from repro.model.pointtopoint import PtpCostBreakdown, ptp_time_cycles
from repro.model.alltoall import (
    ThroughputPoint,
    ar_vmesh_crossover_bytes,
    asymptotic_direct_efficiency,
    balanced_vmesh_factors,
    peak_time_cycles,
    percent_of_peak,
    simple_direct_time_cycles,
    throughput_point,
    vmesh_time_cycles,
)
from repro.model.linkload import (
    DimUtilization,
    dim_byte_hops,
    dim_utilization,
    dor_max_link_loads,
    network_lower_bound_cycles,
    uniform_link_loads,
)
from repro.model.contention import (
    AsymmetryMetrics,
    ar_efficiency_estimate,
    asymmetry_metrics,
    contention_parameter,
    expect_ar_degradation,
)

__all__ = [
    "MachineParams",
    "TorusShape",
    "PtpCostBreakdown",
    "ptp_time_cycles",
    "ThroughputPoint",
    "ar_vmesh_crossover_bytes",
    "asymptotic_direct_efficiency",
    "balanced_vmesh_factors",
    "peak_time_cycles",
    "percent_of_peak",
    "simple_direct_time_cycles",
    "throughput_point",
    "vmesh_time_cycles",
    "DimUtilization",
    "dim_byte_hops",
    "dim_utilization",
    "dor_max_link_loads",
    "network_lower_bound_cycles",
    "uniform_link_loads",
    "AsymmetryMetrics",
    "ar_efficiency_estimate",
    "asymmetry_metrics",
    "contention_parameter",
    "expect_ar_degradation",
]
