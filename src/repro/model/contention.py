"""Contention analysis: the C = M/8 derivation and asymmetry metrics.

Section 2.1 derives the all-to-all contention parameter from link counting:
P^2*n packets each travel M/4 links of the longest dimension on average, the
dimension has 2P directed links, so the network time is
``P * (M/8) * m * beta`` and the per-message contention factor is C = M/8.
:func:`contention_parameter` reproduces that derivation from the exact
link-load accounting in :mod:`repro.model.linkload` (the tests verify the
two agree on even-extent tori).

Section 3.2 observes that adaptive routing *under-performs* this bound on
asymmetric tori: idle capacity on the short dimensions lets packets pile
into Y/Z VC buffers whose head waits for a saturated X link, clogging the
network.  That effect is a router-microarchitecture phenomenon which the
packet simulator (:mod:`repro.net`) reproduces mechanistically; here we
additionally provide (a) structural *imbalance metrics* that predict when
the effect appears, and (b) an explicitly-empirical efficiency estimate
calibrated to the paper's Table 2, used only to sanity-band Tier-C numbers
for partitions too large to simulate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.model.linkload import dim_utilization, uniform_link_loads
from repro.model.torus import TorusShape


def contention_parameter(shape: TorusShape) -> float:
    """The paper's C (Eq. 2): M/8 on an all-torus partition, generalized to
    max over dimensions of (n/8 torus, n/4 mesh)."""
    return shape.contention_factor


def _mesh_uniformity(n: int) -> float:
    """Mean/max per-link load within one mesh dimension of extent n under
    uniform all-to-all (1.0 means perfectly even, as on a torus)."""
    if n <= 2:
        return 1.0
    i = np.arange(n - 1, dtype=np.float64)
    loads = (i + 1.0) * (n - 1.0 - i)
    return float(loads.mean() / loads.max())


@dataclass(frozen=True)
class AsymmetryMetrics:
    """Structural asymmetry of a partition w.r.t. uniform all-to-all."""

    #: Per-dimension relative link utilization (bottleneck = 1.0), with
    #: within-dimension mesh non-uniformity folded in.
    relative_utilization: tuple[float, ...]
    #: Mean of relative_utilization; 1.0 iff perfectly balanced.
    balance: float
    #: Bottleneck dimension index.
    bottleneck_axis: int

    @property
    def is_balanced(self) -> bool:
        """True when every dimension's links run equally hot (symmetric
        torus), i.e. adaptive routing has no idle capacity to over-commit."""
        return self.balance > 0.999


def asymmetry_metrics(shape: TorusShape) -> AsymmetryMetrics:
    """Compute the asymmetry metrics driving AR's contention loss."""
    util = dim_utilization(shape)
    rel = []
    for axis in range(shape.ndim):
        u = util.per_axis[axis]
        if not shape.wrap_effective(axis):
            u *= _mesh_uniformity(shape.dims[axis])
        rel.append(u)
    # Renormalize in case mesh uniformity shifted the max.
    peak = max(rel) if rel else 1.0
    rel = [r / peak if peak > 0 else 0.0 for r in rel]
    loads = uniform_link_loads(shape, 1.0)
    return AsymmetryMetrics(
        relative_utilization=tuple(rel),
        balance=sum(rel) / len(rel),
        bottleneck_axis=int(np.argmax(loads)),
    )


def expect_ar_degradation(shape: TorusShape) -> bool:
    """Whether Section 3.2 predicts adaptive-routing congestion losses:
    any dimension with meaningful slack relative to the bottleneck."""
    return not asymmetry_metrics(shape).is_balanced


# --------------------------------------------------------------------- #
# Empirical Table-2 calibration (Tier C only; see module docstring)
# --------------------------------------------------------------------- #

#: Fit constants for ar_efficiency_estimate: loss grows with imbalance and,
#: weakly, with machine size (deeper networks congest further).  Calibrated
#: against the paper's Table 2 (accuracy ~ +/- 7 percentage points; the
#: packet simulator, not this fit, is the reproduction instrument).
_AR_FIT_BASE = 0.99
_AR_FIT_IMBALANCE = 0.55
_AR_FIT_SCALE = 0.018
_AR_FIT_SCALE_PIVOT_LOG2P = 9.0  # 512 nodes


def ar_efficiency_estimate(shape: TorusShape) -> float:
    """Empirical estimate of the AR direct strategy's large-message fraction
    of peak.  Returns ~0.99 on symmetric tori and degrades with imbalance
    and scale, matching Table 2 to within a few points."""
    metrics = asymmetry_metrics(shape)
    imbalance = 1.0 - metrics.balance
    log2p = math.log2(max(shape.nnodes, 1))
    size_excess = max(0.0, log2p - _AR_FIT_SCALE_PIVOT_LOG2P)
    eff = (
        _AR_FIT_BASE
        - _AR_FIT_IMBALANCE * imbalance
        - _AR_FIT_SCALE * size_excess * (1.0 if imbalance > 1e-9 else 0.0)
    )
    return float(min(_AR_FIT_BASE, max(0.05, eff)))
