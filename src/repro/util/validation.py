"""Small argument-validation helpers with consistent error types.

All public entry points validate their inputs through these helpers so that
misuse raises ``ValueError``/``TypeError`` with a clear message instead of
failing deep inside the simulator.
"""

from __future__ import annotations

from typing import Any


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless *condition* holds."""
    if not condition:
        raise ValueError(message)


def check_positive_int(value: Any, name: str) -> int:
    """Validate that *value* is an integer >= 1 and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        try:
            ivalue = int(value)
        except (TypeError, ValueError):
            raise TypeError(f"{name} must be an integer, got {value!r}") from None
        if ivalue != value:
            raise TypeError(f"{name} must be an integer, got {value!r}")
        value = ivalue
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return int(value)


def check_nonneg(value: float, name: str) -> float:
    """Validate that *value* is a finite number >= 0 and return it."""
    try:
        fvalue = float(value)
    except (TypeError, ValueError):
        raise TypeError(f"{name} must be a number, got {value!r}") from None
    if not (fvalue >= 0.0):  # catches NaN too
        raise ValueError(f"{name} must be >= 0, got {value}")
    return fvalue
