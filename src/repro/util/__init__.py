"""Low-level utilities shared by every subsystem.

This package holds the pieces that are deliberately free of any policy:
coordinate algebra on mesh/torus dimensions (:mod:`repro.util.coords`),
unit conversions between processor cycles, seconds and bandwidths
(:mod:`repro.util.units`), deterministic seeded random-stream derivation
(:mod:`repro.util.rng`) and argument validation helpers
(:mod:`repro.util.validation`).
"""

from repro.util.coords import (
    coord_to_rank,
    rank_to_coord,
    signed_displacement,
    hop_vector,
    hop_count,
    all_coords,
    mean_hops_per_dim,
)
from repro.util.rng import derive_rng, derive_seed
from repro.util.units import (
    CLOCK_HZ,
    NS_PER_CYCLE,
    cycles_to_ns,
    cycles_to_us,
    cycles_to_ms,
    cycles_to_s,
    ns_to_cycles,
    us_to_cycles,
    bytes_per_cycle_to_gb_per_s,
    per_byte_ns_to_cycles,
)
from repro.util.validation import require, check_positive_int, check_nonneg

__all__ = [
    "coord_to_rank",
    "rank_to_coord",
    "signed_displacement",
    "hop_vector",
    "hop_count",
    "all_coords",
    "mean_hops_per_dim",
    "derive_rng",
    "derive_seed",
    "CLOCK_HZ",
    "NS_PER_CYCLE",
    "cycles_to_ns",
    "cycles_to_us",
    "cycles_to_ms",
    "cycles_to_s",
    "ns_to_cycles",
    "us_to_cycles",
    "bytes_per_cycle_to_gb_per_s",
    "per_byte_ns_to_cycles",
    "require",
    "check_positive_int",
    "check_nonneg",
]
