"""Deterministic derivation of independent random streams.

Every stochastic component (per-node destination permutations, arbitration
tie-breaks, ...) derives its own :class:`numpy.random.Generator` from a
single experiment seed plus a structured key, so results are reproducible
regardless of the order in which components draw.
"""

from __future__ import annotations

import zlib
from typing import Union

import numpy as np

KeyPart = Union[int, str]


def derive_seed(seed: int, *key: KeyPart) -> int:
    """Derive a child seed from *seed* and a structured *key*.

    The key parts (ints or strings) are folded through CRC32 so that
    ("node", 12) and ("node", 21) give unrelated child seeds.  Stable across
    runs and platforms.
    """
    h = zlib.crc32(repr(int(seed)).encode())
    for part in key:
        h = zlib.crc32(repr(part).encode(), h)
    return h & 0x7FFFFFFF


def derive_rng(seed: int, *key: KeyPart) -> np.random.Generator:
    """Return an independent ``Generator`` for (*seed*, *key*).

    Uses ``SeedSequence`` spawned from the derived child seed, giving
    high-quality independent streams.
    """
    return np.random.default_rng(np.random.SeedSequence(derive_seed(seed, *key)))
