"""Coordinate algebra on mesh/torus partitions.

Blue Gene/L partitions are one-, two- or three-dimensional grids where every
dimension is independently either a *torus* (wrap links present) or a *mesh*
(no wrap links).  Ranks are linearized X-fastest, matching the BG/L XYZ
coordinate order used throughout the paper: rank = x + Px*(y + Py*z).

All functions are shape-generic (any number of dimensions >= 1) so the same
code serves the paper's line (1-D), plane (2-D) and 3-D torus experiments.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

from repro.util.validation import require

Coord = tuple[int, ...]


def coord_to_rank(coord: Sequence[int], dims: Sequence[int]) -> int:
    """Linearize *coord* on a grid of extents *dims*, X (dims[0]) fastest.

    >>> coord_to_rank((1, 2, 3), (8, 8, 8))
    209
    """
    require(len(coord) == len(dims), "coord/dims dimensionality mismatch")
    rank = 0
    stride = 1
    for c, d in zip(coord, dims):
        require(0 <= c < d, f"coordinate {c} out of range [0,{d})")
        rank += c * stride
        stride *= d
    return rank


def rank_to_coord(rank: int, dims: Sequence[int]) -> Coord:
    """Inverse of :func:`coord_to_rank`.

    >>> rank_to_coord(209, (8, 8, 8))
    (1, 2, 3)
    """
    total = 1
    for d in dims:
        total *= d
    require(0 <= rank < total, f"rank {rank} out of range [0,{total})")
    coord = []
    for d in dims:
        coord.append(rank % d)
        rank //= d
    return tuple(coord)


def all_coords(dims: Sequence[int]) -> Iterator[Coord]:
    """Iterate every coordinate of the grid in rank order (X fastest)."""
    # itertools.product varies the *last* axis fastest, so reverse twice.
    for rev in itertools.product(*(range(d) for d in reversed(dims))):
        yield tuple(reversed(rev))


def signed_displacement(src: int, dst: int, size: int, torus: bool) -> int:
    """Shortest signed per-dimension displacement from *src* to *dst*.

    On a torus dimension the displacement is wrap-aware and lies in
    (-size/2, size/2]; ties (exactly size/2 on an even torus) break toward
    the positive direction, matching the deterministic tie-break used by the
    BG/L routing hardware description.  On a mesh dimension it is simply
    ``dst - src``.
    """
    require(0 <= src < size and 0 <= dst < size, "coordinate out of range")
    if not torus:
        return dst - src
    d = (dst - src) % size
    if d > size // 2:
        d -= size
    elif d == size // 2 and size % 2 == 0:
        # exactly halfway: either direction is shortest; pick +.
        d = size // 2
    return d


def hop_vector(
    src: Sequence[int],
    dst: Sequence[int],
    dims: Sequence[int],
    torus: Sequence[bool],
) -> Coord:
    """Per-dimension signed hop counts along a shortest path."""
    require(
        len(src) == len(dst) == len(dims) == len(torus),
        "dimensionality mismatch",
    )
    return tuple(
        signed_displacement(s, d, n, t)
        for s, d, n, t in zip(src, dst, dims, torus)
    )


def hop_count(
    src: Sequence[int],
    dst: Sequence[int],
    dims: Sequence[int],
    torus: Sequence[bool],
) -> int:
    """Total (Manhattan, wrap-aware) hops along a shortest path."""
    return sum(abs(h) for h in hop_vector(src, dst, dims, torus))


def mean_hops_per_dim(size: int, torus: bool) -> float:
    """Average |displacement| in one dimension over all ordered (src, dst)
    pairs drawn uniformly (self-pairs included, as in the paper's model).

    Torus of size n: paper's Section 2 uses n/4.  The exact all-pairs
    average is n/4 for even n (each |d| in 1..n/2-1 appears twice per
    source, d = n/2 once), and (n^2-1)/(4n) for odd n; we return the exact
    value and note that it equals the paper's n/4 for the even sizes BG/L
    uses.

    Mesh of size n: exact all-pairs average is (n^2 - 1) / (3 n).
    """
    require(size >= 1, "dimension size must be >= 1")
    n = size
    if n == 1:
        return 0.0
    if torus:
        if n % 2 == 0:
            return n / 4.0
        return (n * n - 1) / (4.0 * n)
    return (n * n - 1) / (3.0 * n)
