"""Unit conversions between processor cycles, wall-clock time and bandwidth.

The whole simulator keeps time in integer *processor cycles* of the 700 MHz
BG/L PPC440 core (the clock the paper quotes its alpha/beta numbers in:
450 cycles ~= 0.64 us startup, 6.48 ns/byte ~= 4.536 cycles/byte).
Conversions to ns/us/ms happen only at reporting boundaries.
"""

from __future__ import annotations

#: BG/L compute-node clock (Hz).  700 MHz PPC440.
CLOCK_HZ: float = 700.0e6

#: Nanoseconds per processor cycle (~1.42857 ns).
NS_PER_CYCLE: float = 1.0e9 / CLOCK_HZ


def cycles_to_ns(cycles: float) -> float:
    """Convert cycles to nanoseconds."""
    return cycles * NS_PER_CYCLE


def cycles_to_us(cycles: float) -> float:
    """Convert cycles to microseconds."""
    return cycles * NS_PER_CYCLE * 1e-3


def cycles_to_ms(cycles: float) -> float:
    """Convert cycles to milliseconds."""
    return cycles * NS_PER_CYCLE * 1e-6


def cycles_to_s(cycles: float) -> float:
    """Convert cycles to seconds."""
    return cycles * NS_PER_CYCLE * 1e-9


def ns_to_cycles(ns: float) -> float:
    """Convert nanoseconds to (fractional) cycles."""
    return ns / NS_PER_CYCLE


def us_to_cycles(us: float) -> float:
    """Convert microseconds to (fractional) cycles."""
    return us * 1e3 / NS_PER_CYCLE


def per_byte_ns_to_cycles(ns_per_byte: float) -> float:
    """Convert a per-byte cost in ns/B to cycles/B."""
    return ns_per_byte / NS_PER_CYCLE


def bytes_per_cycle_to_gb_per_s(bytes_per_cycle: float) -> float:
    """Convert a rate in bytes/cycle to GB/s (10^9 bytes per second)."""
    return bytes_per_cycle * CLOCK_HZ / 1e9
