"""Self-contained HTML run reports with a machine-readable JSON sidecar.

:func:`write_report` turns the observability payloads a sweep collected
(one ``link_stats``/``metrics`` payload per simulation point, from
:func:`repro.obs.context.observe`) plus any finished
:class:`~repro.experiments.common.ExperimentResult` tables into two
files under one directory:

* ``report.html`` — a dependency-free single file: a comparative
  percent-of-peak summary across every point, then per-point sections
  with per-axis utilization heatmaps (inline SVG, one cell per node),
  the phase bandwidth table, the congestion hot-spot list, the analytic
  model diff, and a provenance block;
* ``report.json`` — the same numbers as plain JSON (the sidecar CI and
  downstream tooling consume; written with ``allow_nan=False`` so a
  NaN/infinite statistic fails the generation loudly rather than
  producing an unparseable artifact).

The generator is pure post-processing: it never runs simulations and
accepts any mix of points (pristine, faulty, different shapes); points
without ``link_stats`` counters fall back to the always-collected
busy-cycle/packet matrices when given full runs, and are listed without
analytics otherwise.
"""

from __future__ import annotations

import html
import json
import os
import time
from typing import Any, Iterable, Optional

from repro.obs.linkstats import (
    AXIS_NAMES,
    LinkAnalytics,
    parse_point_label,
)
from repro.obs.provenance import git_describe

#: Version of the JSON sidecar layout.
REPORT_SCHEMA = 1

REPORT_HTML = "report.html"
REPORT_JSON = "report.json"


# --------------------------------------------------------------------- #
# sidecar assembly
# --------------------------------------------------------------------- #


def _point_record(entry: dict, params: Any = None) -> dict:
    """Sidecar record for one collected observability payload."""
    label = entry.get("point", "unknown")
    rec: dict[str, Any] = {"point": label}
    try:
        rec.update(parse_point_label(label))
    except ValueError:
        pass
    ls = entry.get("link_stats")
    if ls is not None:
        la = LinkAnalytics.from_payload(ls)
        rec["summary"] = la.summary(rec.get("msg_bytes"), params=params)
        rec["heatmaps"] = {
            AXIS_NAMES[a]: [
                float(x) for x in la.axis_node_utilization(a)
            ]
            for a in range(la.shape.ndim)
        }
        rec["dims"] = list(la.shape.dims)
    metrics = entry.get("metrics")
    if metrics is not None:
        # Keep only the derived utilization timeseries (the bandwidth-
        # over-time view); raw series stay in --metrics output.
        rec["utilization_timeseries"] = {
            name.split(".", 1)[1]: series
            for name, series in metrics.items()
            if name.startswith("link_utilization.")
        }
    return rec


def _experiment_record(res: Any) -> dict:
    """Sidecar record for one ExperimentResult (duck-typed)."""
    return {
        "exp_id": res.exp_id,
        "title": res.title,
        "columns": list(res.columns),
        "rows": [dict(r) for r in res.rows],
        "notes": list(res.notes),
        "provenance": res.provenance,
        "failures": [dict(f) for f in res.failures],
    }


def _trend_entry(rec: dict) -> dict:
    """One compact trend sample from a history run record."""
    meta = rec.get("meta") or {}
    return {
        "id": rec.get("id"),
        "payload_digest": rec.get("payload_digest"),
        "timestamp_unix": meta.get("timestamp_unix"),
        "wall_s": meta.get("wall_s"),
        "metrics": dict(rec.get("payload", {}).get("metrics") or {}),
    }


def _collect_trends(
    history: Optional[str], experiments: Iterable[Any]
) -> dict[str, list[dict]]:
    """Per-experiment trend series from the run-history store.

    Tolerates a missing/empty/unreadable store — the report must render
    even when history tracking only just started.
    """
    if history is None:
        return {}
    try:
        from repro.obs.history import RunHistory

        store = RunHistory(history)
        out: dict[str, list[dict]] = {}
        for res in experiments:
            exp_id = getattr(res, "exp_id", None)
            if exp_id is None:
                continue
            recs = store.trend(exp_id)
            if recs:
                out[exp_id] = [_trend_entry(r) for r in recs]
        return out
    except Exception:  # noqa: BLE001 - trends are strictly best-effort
        return {}


def build_sidecar(
    entries: Iterable[dict],
    experiments: Iterable[Any] = (),
    title: str = "Run report",
    params: Any = None,
    history: Optional[str] = None,
) -> dict:
    """The machine-readable report: everything the HTML renders."""
    experiments = list(experiments)
    return {
        "schema": REPORT_SCHEMA,
        "title": title,
        "generated_unix": time.time(),
        "git": git_describe(),
        "points": [_point_record(e, params=params) for e in entries],
        "experiments": [_experiment_record(r) for r in experiments],
        "trends": _collect_trends(history, experiments),
    }


# --------------------------------------------------------------------- #
# HTML rendering
# --------------------------------------------------------------------- #

_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em;
       color: #1a1a2e; max-width: 72em; }
h1 { border-bottom: 2px solid #16213e; padding-bottom: .3em; }
h2 { margin-top: 2em; color: #16213e; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #cbd5e1; padding: .35em .7em;
         text-align: right; font-variant-numeric: tabular-nums; }
th { background: #eef2f7; }
td.l, th.l { text-align: left; }
.prov { background: #f6f8fa; border: 1px solid #d0d7de; padding: 1em;
        font-family: monospace; font-size: .85em; white-space: pre-wrap; }
.warn { color: #b91c1c; font-weight: 600; }
.ok { color: #15803d; font-weight: 600; }
svg { margin: .4em 1em .4em 0; }
.axislabel { font-size: .8em; fill: #475569; }
"""


def _esc(v: Any) -> str:
    return html.escape(str(v))


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        return f"{v:,.2f}"
    if isinstance(v, int):
        return f"{v:,}"
    return _esc(v)


def _table(columns: list[str], rows: list[list], left: int = 1) -> str:
    """Render an HTML table; the first *left* columns left-align."""
    cls = lambda i: ' class="l"' if i < left else ""
    head = "".join(
        f"<th{cls(i)}>{_esc(c)}</th>" for i, c in enumerate(columns)
    )
    body = "".join(
        "<tr>"
        + "".join(f"<td{cls(i)}>{_fmt(v)}</td>" for i, v in enumerate(row))
        + "</tr>"
        for row in rows
    )
    return f"<table><tr>{head}</tr>{body}</table>"


def _heat_color(u: float) -> str:
    """White (idle) -> red (fully busy) ramp."""
    u = min(max(u, 0.0), 1.0)
    c = int(round(255 * (1.0 - u)))
    return f"rgb(255,{c},{c})"


def _heatmap_svg(axis: str, dims: list[int], values: list[float]) -> str:
    """One cell per node: x = first dimension, remaining dimensions
    stacked as rows (row-major node order, axis 0 fastest)."""
    nx = dims[0] if dims else 1
    rows = max(1, len(values) // max(nx, 1))
    cell, pad, top = 18, 2, 16
    w = nx * cell + pad * 2
    h = rows * cell + pad * 2 + top
    cells = []
    for i, u in enumerate(values):
        cx, cy = i % nx, i // nx
        cells.append(
            f'<rect x="{pad + cx * cell}" y="{top + pad + cy * cell}" '
            f'width="{cell - 1}" height="{cell - 1}" '
            f'fill="{_heat_color(u)}" stroke="#94a3b8" stroke-width="0.5">'
            f"<title>node {i}: {u * 100:.1f}%</title></rect>"
        )
    return (
        f'<svg width="{w}" height="{h}" xmlns="http://www.w3.org/2000/svg">'
        f'<text x="{pad}" y="12" class="axislabel">axis {_esc(axis)}'
        f"</text>{''.join(cells)}</svg>"
    )


def _point_section(rec: dict) -> str:
    out = [f"<h2>{_esc(rec['point'])}</h2>"]
    summary = rec.get("summary")
    if summary is None:
        out.append("<p>No link-stats payload collected for this point.</p>")
        return "".join(out)
    axes = list(summary["axis_percent_of_peak"].keys())
    out.append(
        _table(
            ["metric"] + axes + ["overall"],
            [
                ["percent of peak"]
                + [summary["axis_percent_of_peak"][a] for a in axes]
                + [summary["percent_of_peak"]],
                ["directed links"]
                + [summary["links_per_axis"][a] for a in axes]
                + [sum(summary["links_per_axis"].values())],
            ],
        )
    )
    heat = rec.get("heatmaps")
    if heat and rec.get("dims"):
        out.append("<div>")
        for axis, values in heat.items():
            out.append(_heatmap_svg(axis, rec["dims"], values))
        out.append("</div>")
    phases = summary.get("phases") or []
    if phases:
        out.append("<h3>Phase bandwidth</h3>")
        out.append(
            _table(
                ["phase"]
                + [f"% peak {a}" for a in axes]
                + ["busy cycles"],
                [
                    [p["phase"]]
                    + [p.get(f"pct_peak_{a}", 0.0) for a in axes]
                    + [p["busy_cycles"]]
                    for p in phases
                ],
            )
        )
    hot = summary.get("hotspots") or []
    if hot:
        out.append("<h3>Hottest links</h3>")
        out.append(
            _table(
                ["link", "utilization", "packets", "stall cycles", "drops"],
                [
                    [
                        f"{tuple(e['coords'])} {e['direction']}",
                        f"{e['utilization'] * 100:.1f}%",
                        e["packets"],
                        e.get("stall_cycles", 0.0),
                        e.get("drops", 0),
                    ]
                    for e in hot
                ],
            )
        )
    model = summary.get("model")
    if model is not None:
        verdict = (
            '<span class="ok">agrees</span>'
            if model["agrees"]
            else '<span class="warn">DISAGREES</span>'
        )
        out.append(
            f"<h3>Analytic model diff ({verdict} — measured/predicted "
            f"within [{model['ratio_bounds'][0]:.3f}, "
            f"{model['ratio_bounds'][1]:.3f}], axis spread "
            f"{model['axis_spread']:.4f} &le; "
            f"{model['axis_spread_tolerance']})</h3>"
        )
        out.append(
            _table(
                [
                    "axis",
                    "measured B/link",
                    "predicted B/link",
                    "ratio",
                ],
                [
                    [
                        r["axis"],
                        r["measured_bytes_per_link"],
                        r["predicted_bytes_per_link"],
                        r["ratio"] if r["ratio"] is not None else "-",
                    ]
                    for r in model["per_axis"]
                ],
            )
        )
    deg = summary.get("degraded_links") or []
    if deg:
        out.append('<h3 class="warn">Degraded links detected</h3>')
        out.append(
            _table(
                ["link", "effective beta", "slowdown"],
                [
                    [
                        f"{tuple(e['coords'])} {e['direction']}",
                        e["effective_beta"],
                        f"{e['slowdown']:.2f}x",
                    ]
                    for e in deg
                ],
            )
        )
    return "".join(out)


def _sparkline_svg(values: list[float], w: int = 180, h: int = 36) -> str:
    """Inline sparkline: a polyline over *values*, latest point marked."""
    pts = [float(v) for v in values]
    if not pts:
        return ""
    pad = 3
    lo, hi = min(pts), max(pts)
    span = (hi - lo) or 1.0
    n = len(pts)
    step = (w - 2 * pad) / max(n - 1, 1)
    coords = [
        (
            pad + i * step,
            h - pad - (v - lo) / span * (h - 2 * pad),
        )
        for i, v in enumerate(pts)
    ]
    poly = " ".join(f"{x:.1f},{y:.1f}" for x, y in coords)
    lx, ly = coords[-1]
    return (
        f'<svg width="{w}" height="{h}" '
        f'xmlns="http://www.w3.org/2000/svg">'
        f'<polyline points="{poly}" fill="none" stroke="#2563eb" '
        f'stroke-width="1.5"/>'
        f'<circle cx="{lx:.1f}" cy="{ly:.1f}" r="2.5" fill="#dc2626">'
        f"<title>latest: {pts[-1]:g} (min {lo:g}, max {hi:g}, "
        f"{n} runs)</title></circle></svg>"
    )


def _trend_section(exp_id: str, samples: list[dict]) -> str:
    """Sparkline table: one row per tracked metric across recorded runs."""
    if len(samples) < 2:
        return ""
    names: list[str] = []
    for s in samples:
        for name in s.get("metrics") or {}:
            if name not in names:
                names.append(name)
    rows = []
    wall = [s.get("wall_s") for s in samples]
    if all(isinstance(v, (int, float)) for v in wall):
        rows.append(("wall_s", [float(v) for v in wall]))
    for name in names:
        series = [(s.get("metrics") or {}).get(name) for s in samples]
        if all(isinstance(v, (int, float)) for v in series):
            rows.append((name, [float(v) for v in series]))
    if not rows:
        return ""
    out = [
        f"<h3>Trend: {len(samples)} recorded runs</h3>",
        "<table><tr><th class='l'>metric</th><th>latest</th>"
        "<th class='l'>history</th></tr>",
    ]
    for name, series in rows:
        out.append(
            f"<tr><td class='l'>{_esc(name)}</td>"
            f"<td>{series[-1]:,.4g}</td>"
            f"<td class='l'>{_sparkline_svg(series)}</td></tr>"
        )
    out.append("</table>")
    return "".join(out)


def _experiment_section(rec: dict) -> str:
    out = [f"<h2>[{_esc(rec['exp_id'])}] {_esc(rec['title'])}</h2>"]
    cols = rec["columns"]
    out.append(
        _table(cols, [[r.get(c, "") for c in cols] for r in rec["rows"]])
    )
    for note in rec["notes"]:
        out.append(f"<p><em>{_esc(note)}</em></p>")
    if rec["failures"]:
        out.append(
            f'<p class="warn">INCOMPLETE: {len(rec["failures"])} point(s) '
            f"failed.</p>"
        )
        out.append(
            f'<div class="prov">{_esc(json.dumps(rec["failures"], indent=2))}'
            f"</div>"
        )
    if rec.get("provenance"):
        out.append("<h3>Provenance</h3>")
        out.append(
            f'<div class="prov">'
            f'{_esc(json.dumps(rec["provenance"], indent=2, sort_keys=True))}'
            f"</div>"
        )
    return "".join(out)


def render_html(sidecar: dict) -> str:
    """The self-contained HTML report for *sidecar*."""
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{_esc(sidecar['title'])}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{_esc(sidecar['title'])}</h1>",
        f'<div class="prov">git: {_esc(sidecar["git"])}\n'
        f'generated: {time.strftime("%Y-%m-%d %H:%M:%S %Z", time.localtime(sidecar["generated_unix"]))}\n'
        f"points: {len(sidecar['points'])}    "
        f"experiments: {len(sidecar['experiments'])}</div>",
    ]
    summarized = [p for p in sidecar["points"] if p.get("summary")]
    if summarized:
        parts.append("<h2>Percent of peak, all points</h2>")
        axes = sorted(
            {
                a
                for p in summarized
                for a in p["summary"]["axis_percent_of_peak"]
            }
        )
        parts.append(
            _table(
                ["point", "time (cycles)"]
                + [f"% peak {a}" for a in axes]
                + ["% peak (bottleneck)", "model"],
                [
                    [
                        p["point"],
                        p["summary"]["time_cycles"],
                        *[
                            p["summary"]["axis_percent_of_peak"].get(a, "-")
                            for a in axes
                        ],
                        p["summary"]["percent_of_peak"],
                        (
                            "-"
                            if p["summary"].get("model") is None
                            else (
                                "agrees"
                                if p["summary"]["model"]["agrees"]
                                else "DISAGREES"
                            )
                        ),
                    ]
                    for p in summarized
                ],
            )
        )
    for p in sidecar["points"]:
        parts.append(_point_section(p))
    trends = sidecar.get("trends") or {}
    for e in sidecar["experiments"]:
        parts.append(_experiment_section(e))
        samples = trends.get(e["exp_id"])
        if samples:
            parts.append(_trend_section(e["exp_id"], samples))
    parts.append("</body></html>")
    return "".join(parts)


# --------------------------------------------------------------------- #
# entry point
# --------------------------------------------------------------------- #


def write_report(
    out_dir: str,
    entries: Iterable[dict],
    experiments: Iterable[Any] = (),
    title: str = "Run report",
    params: Any = None,
    history: Optional[str] = None,
) -> tuple[str, str]:
    """Write ``report.html`` + ``report.json`` under *out_dir*.

    *entries* are collected observability payloads (each a dict with a
    ``point`` label and optional ``link_stats``/``metrics`` keys — what
    :func:`repro.obs.context.observe` yields); *experiments* are
    finished :class:`ExperimentResult` objects rendered as comparative
    tables.  With *history* (a run-history store path,
    :mod:`repro.obs.history`), each experiment section gains a trend
    table with sparklines over the recorded runs of that experiment.
    Returns ``(html_path, json_path)``.
    """
    sidecar = build_sidecar(
        entries, experiments, title=title, params=params, history=history
    )
    os.makedirs(out_dir, exist_ok=True)
    json_path = os.path.join(out_dir, REPORT_JSON)
    html_path = os.path.join(out_dir, REPORT_HTML)
    with open(json_path, "w", encoding="utf-8") as f:
        json.dump(sidecar, f, indent=2, sort_keys=True, allow_nan=False)
        f.write("\n")
    with open(html_path, "w", encoding="utf-8") as f:
        f.write(render_html(sidecar))
    return html_path, json_path
