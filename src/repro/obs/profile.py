"""Opt-in phase-level time profiler for the torus simulator.

The paper's optimization story is told per *communication phase*: the
TPS schedule overlaps ``tps1``/``tps2`` traffic, the virtual-mesh
strategy pipelines ``vmesh1`` into ``vmesh2``, and the win over the
direct ``direct`` baseline comes from where each phase's time goes.
Every packet already carries its strategy's ``PHASE_*`` tag
(:mod:`repro.strategies.data`); this module aggregates those tags into a
per-phase time attribution:

* **simulated time** — per-(phase, axis) link-busy cycles, the phase's
  first/last active cycle (its span inside the collective), launch and
  delivery counts;
* **host time** — the run's wall/CPU seconds, apportioned across phases
  by their share of total link-busy cycles.  This is an *estimate* (the
  event loop interleaves phases arbitrarily finely), clearly labeled as
  such in the payload; the simulated-cycle numbers are exact.

The profiler is an opt-in observability layer (``ObsConfig.profile``;
CLI ``--profile``): it lives on the instrumented network subclasses
(:mod:`repro.net.instrumented`), so the profiling-off default path runs
the *plain* simulator classes, bit-identical to a run before this module
existed.  The payload rides ``extras["obs"]["profile"]`` through the
canonical codec; :func:`profile_chrome_events` renders it as a span
track alongside the packet tracer in one Perfetto-loadable file.
"""

from __future__ import annotations

from typing import Iterable, Optional

#: Version pin of the ``extras["obs"]["profile"]`` payload layout.
PROFILE_SCHEMA = 1

_AXIS_NAMES = ("x", "y", "z")


class PhaseProfiler:
    """Aggregates per-phase time attribution during one simulation run.

    Fed by the instrumented network's launch/delivery hooks (read-only
    observers, ``super()`` first — the simulation is unperturbed).  All
    inputs are in simulated cycles; host wall/CPU time is attached once
    at result assembly.
    """

    __slots__ = ("_ndim", "_phases")

    def __init__(self, ndim: int) -> None:
        self._ndim = ndim
        #: phase -> [launches, deliveries, final_deliveries,
        #:           first_cycle, last_cycle, busy_by_axis]
        self._phases: dict[str, list] = {}

    def _entry(self, phase: str) -> list:
        e = self._phases.get(phase)
        if e is None:
            e = self._phases[phase] = [
                0, 0, 0, float("inf"), 0.0, [0.0] * self._ndim
            ]
        return e

    def on_launch(
        self, phase: str, axis: int, now_cycles: float, dur_cycles: float
    ) -> None:
        """One link occupancy interval attributed to *phase*."""
        e = self._entry(phase)
        e[0] += 1
        if now_cycles < e[3]:
            e[3] = now_cycles
        end = now_cycles + dur_cycles
        if end > e[4]:
            e[4] = end
        e[5][axis] += dur_cycles

    def on_delivery(self, phase: str, now_cycles: float, final: bool) -> None:
        """One packet of *phase* drained by its destination CPU."""
        e = self._entry(phase)
        e[1] += 1
        if final:
            e[2] += 1
        if now_cycles < e[3]:
            e[3] = now_cycles
        if now_cycles > e[4]:
            e[4] = now_cycles

    def to_payload(
        self,
        time_cycles: float,
        events_processed: int,
        wall_s: Optional[float] = None,
        cpu_s: Optional[float] = None,
    ) -> dict:
        """JSON-native snapshot (rides the canonical result codec)."""
        total_busy = sum(sum(e[5]) for e in self._phases.values())
        phases = {}
        for name in sorted(self._phases):
            launches, deliveries, finals, first, last, by_axis = (
                self._phases[name]
            )
            busy = sum(by_axis)
            share = (busy / total_busy) if total_busy > 0 else 0.0
            entry = {
                "launches": launches,
                "deliveries": deliveries,
                "final_deliveries": finals,
                "first_cycle": first if first != float("inf") else 0.0,
                "last_cycle": last,
                "span_cycles": (
                    (last - first) if first != float("inf") else 0.0
                ),
                "busy_cycles": busy,
                "busy_by_axis": {
                    _AXIS_NAMES[a]: by_axis[a] for a in range(self._ndim)
                },
                "busy_share": share,
            }
            # Host-time attribution: proportional to link-busy share.
            # An estimate by construction (phases interleave within the
            # event loop); the cycle numbers above are exact.
            if wall_s is not None:
                entry["wall_s_est"] = wall_s * share
            if cpu_s is not None:
                entry["cpu_s_est"] = cpu_s * share
            phases[name] = entry
        out = {
            "schema": PROFILE_SCHEMA,
            "time_cycles": time_cycles,
            "events_processed": events_processed,
            "total_busy_cycles": total_busy,
            "phases": phases,
        }
        if wall_s is not None:
            out["wall_s"] = wall_s
        if cpu_s is not None:
            out["cpu_s"] = cpu_s
        return out


# --------------------------------------------------------------------- #
# exporters
# --------------------------------------------------------------------- #


def profile_chrome_events(
    payload: dict, pid: int = 10_000_000, label: str = ""
) -> Iterable[dict]:
    """Chrome trace-event records for one profile payload.

    One "process" holds a ``phases`` span track (each phase's active
    span, ``first_cycle``..``last_cycle``) — loadable in the same
    Perfetto view as the packet tracer's node tracks.  ``pid`` defaults
    far above the tracer's node-derived process ids so the tracks never
    collide.
    """
    prefix = f"{label}:" if label else ""
    yield {
        "ph": "M", "name": "process_name", "pid": pid,
        "args": {"name": f"{prefix}phase profile"},
    }
    for tid, (name, e) in enumerate(sorted(payload["phases"].items())):
        yield {
            "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
            "args": {"name": f"phase {name}"},
        }
        yield {
            "ph": "X", "name": name, "cat": "phase",
            "pid": pid, "tid": tid,
            "ts": e["first_cycle"], "dur": e["span_cycles"],
            "args": {
                "launches": e["launches"],
                "deliveries": e["deliveries"],
                "busy_cycles": e["busy_cycles"],
                "busy_share": e["busy_share"],
            },
        }


def merge_profiles(payloads: Iterable[dict]) -> dict:
    """Aggregate several per-point profile payloads into one summary.

    Sums counts and busy cycles per phase across points (host-time
    estimates are summed too); spans are not merged — ``first``/``last``
    cycles are meaningless across independent simulations.
    """
    phases: dict[str, dict] = {}
    total_busy = 0.0
    wall = 0.0
    cpu = 0.0
    points = 0
    have_wall = False
    have_cpu = False
    for p in payloads:
        points += 1
        total_busy += p.get("total_busy_cycles", 0.0)
        if "wall_s" in p:
            wall += p["wall_s"]
            have_wall = True
        if "cpu_s" in p:
            cpu += p["cpu_s"]
            have_cpu = True
        for name, e in p.get("phases", {}).items():
            agg = phases.get(name)
            if agg is None:
                agg = phases[name] = {
                    "launches": 0,
                    "deliveries": 0,
                    "final_deliveries": 0,
                    "busy_cycles": 0.0,
                    "wall_s_est": 0.0,
                    "cpu_s_est": 0.0,
                }
            agg["launches"] += e["launches"]
            agg["deliveries"] += e["deliveries"]
            agg["final_deliveries"] += e["final_deliveries"]
            agg["busy_cycles"] += e["busy_cycles"]
            agg["wall_s_est"] += e.get("wall_s_est", 0.0)
            agg["cpu_s_est"] += e.get("cpu_s_est", 0.0)
    for agg in phases.values():
        agg["busy_share"] = (
            agg["busy_cycles"] / total_busy if total_busy > 0 else 0.0
        )
    out = {
        "schema": PROFILE_SCHEMA,
        "points": points,
        "total_busy_cycles": total_busy,
        "phases": {k: phases[k] for k in sorted(phases)},
    }
    if have_wall:
        out["wall_s"] = wall
    if have_cpu:
        out["cpu_s"] = cpu
    return out
