"""Cross-run history store with regression verdicts.

Every sweep this repo runs is forgotten the moment it ends: the cache
remembers *results* (keyed by configuration), but nothing remembers
*runs* — how long they took, what they measured, and whether the numbers
moved between two checkouts.  :class:`RunHistory` closes that gap with
an append-only JSONL store (schema-pinned header, per-line flush,
torn-tail healing — the same durability model as
:class:`~repro.runner.supervise.SweepJournal`) that records one line per
:class:`~repro.experiments.common.ExperimentResult` or bench summary.

Each record is split in two, deliberately:

* ``payload`` — the *deterministic* identity and outcome of the run:
  experiment id, scale, seed, result-schema version, the provenance
  config fingerprint, the table columns, a digest over the rendered
  rows, and per-column means of every numeric column.  Its canonical
  JSON is hashed into ``payload_digest`` — a ``jobs=4`` sweep produces
  byte-identical payloads (and therefore digests) to a ``jobs=1`` sweep,
  which is how the store proves the run it recorded is the run the
  tables show.
* ``meta`` — everything *non-deterministic*: wall time, git revision,
  machine, timestamp, cache/simulated split.  Excluded from the digest
  so environmental noise never breaks payload identity.

``python -m repro.obs.history`` is the companion CLI::

    python -m repro.obs.history list  runs/history.jsonl
    python -m repro.obs.history show  runs/history.jsonl -1
    python -m repro.obs.history diff  runs/history.jsonl -2 -1
    python -m repro.obs.history append-bench BENCH_history.jsonl BENCH_simcore.json

``diff`` compares two records metric by metric with a tolerance band
(default ±10 %) and emits a single verdict — ``regression``,
``improvement`` or ``neutral`` — exiting non-zero on a regression so CI
can gate on it.  Wall-clock metrics regress upward, throughput metrics
regress downward; a changed ``payload_digest`` between records of the
same configuration is additionally flagged as outcome drift (the
simulation itself changed, not just its speed).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import logging
import math
import os
import platform
import sys
import time
from pathlib import Path
from typing import Any, Optional

_log = logging.getLogger("repro.obs.history")

#: History line-format version (independent of the result payload schema).
HISTORY_VERSION = 1

#: Relative change within which two metric values are "the same run".
DEFAULT_TOLERANCE = 0.10

#: Metric-name direction table: what counts as a *regression*.
#: ``lower`` = lower is better (regression when the value grows),
#: ``higher`` = higher is better (regression when it shrinks).  Names not
#: matched here are reported as informational drift, never a verdict —
#: a column whose "good" direction is unknown must not fail CI.
_LOWER_IS_BETTER = (
    "wall_s", "cpu_s", "time_cycles", "time_us", "time_ms", "latency",
    "cycles", "stall", "overhead",
)
_HIGHER_IS_BETTER = (
    "events_per_sec", "percent_of_peak", "pct", "peak", "speedup",
    "mb_per_s", "bandwidth", "throughput",
)


def metric_direction(name: str) -> Optional[str]:
    """``"lower"`` / ``"higher"`` / ``None`` (no verdict) for *name*."""
    low = name.lower()
    for pat in _HIGHER_IS_BETTER:
        if pat in low:
            return "higher"
    for pat in _LOWER_IS_BETTER:
        if pat in low:
            return "lower"
    return None


def _canonical(value: Any) -> str:
    """Canonical JSON text (sorted keys, no whitespace) for digesting."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def payload_digest(payload: dict) -> str:
    """SHA-256 over the canonical JSON of *payload*."""
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()


# --------------------------------------------------------------------- #
# record construction
# --------------------------------------------------------------------- #


def _numeric_column_means(columns: list, rows: list[dict]) -> dict:
    """Per-column mean of every all-numeric, all-finite column.

    Deterministic by construction (the tables themselves are
    bit-identical across job counts), and the raw material for
    "did the simulated numbers move" comparisons between runs.
    """
    means: dict[str, float] = {}
    for col in columns:
        vals = [r.get(col) for r in rows if col in r]
        if not vals:
            continue
        nums = []
        for v in vals:
            if isinstance(v, bool) or not isinstance(v, (int, float)):
                break
            if not math.isfinite(v):
                break
            nums.append(float(v))
        else:
            means[col] = sum(nums) / len(nums)
    return means


def experiment_record(result: Any) -> dict:
    """``(payload, meta)`` assembled into one record for *result*.

    *result* is duck-typed (:class:`ExperimentResult`): ``exp_id``,
    ``columns``, ``rows``, ``failures`` and optionally ``provenance``.
    """
    prov = getattr(result, "provenance", None) or {}
    payload = {
        "kind": "experiment",
        "exp_id": result.exp_id,
        "scale": prov.get("scale"),
        "seed": prov.get("seed"),
        "schema": prov.get("schema_version"),
        "config_fingerprint": prov.get("config_fingerprint"),
        "points": prov.get("points"),
        "columns": list(result.columns),
        "rows_digest": hashlib.sha256(
            _canonical([dict(r) for r in result.rows]).encode("utf-8")
        ).hexdigest(),
        "metrics": _numeric_column_means(result.columns, result.rows),
    }
    meta = {
        "git": prov.get("git"),
        "python": prov.get("python"),
        "wall_s": prov.get("wall_s"),
        "points_simulated": prov.get("points_simulated"),
        "points_cached": prov.get("points_cached"),
        "points_failed": len(getattr(result, "failures", []) or []),
        "timestamp_unix": time.time(),
    }
    return _record(payload, meta)


#: Bench report keys copied into the deterministic payload per benchmark
#: (identity of the measured work) vs. the perf meta (the measurement).
_BENCH_PAYLOAD_KEYS = ("shape", "msg_bytes", "seed", "events", "time_cycles")
_BENCH_METRIC_KEYS = (
    "wall_s", "events_per_sec", "cpu_s_default", "cpu_s_core",
    "overhead_frac", "wall_s_jobs1", "wall_s_jobs4", "parallel_speedup",
)


def bench_record(report: dict) -> dict:
    """Record for one ``BENCH_simcore.json``-style report."""
    payload = {
        "kind": "bench",
        "scale": report.get("scale"),
        "schema": report.get("schema"),
        "benchmarks": {
            b["name"]: {
                k: b[k] for k in _BENCH_PAYLOAD_KEYS if k in b
            }
            for b in report.get("benchmarks", [])
        },
    }
    metrics: dict[str, float] = {}
    for b in report.get("benchmarks", []):
        for k in _BENCH_METRIC_KEYS:
            if k in b and isinstance(b[k], (int, float)):
                metrics[f"{b['name']}.{k}"] = float(b[k])
    meta = {
        "git": report.get("provenance", {}).get("git"),
        "python": report.get("python", platform.python_version()),
        "machine": report.get("machine"),
        "cpus": report.get("cpus"),
        "metrics": metrics,
        "timestamp_unix": time.time(),
    }
    return _record(payload, meta)


def _record(payload: dict, meta: dict) -> dict:
    digest = payload_digest(payload)
    return {
        "kind": "run",
        "id": digest[:12],
        "payload": payload,
        "payload_digest": digest,
        "meta": meta,
    }


# --------------------------------------------------------------------- #
# the store
# --------------------------------------------------------------------- #


class RunHistory:
    """Append-only JSONL history of runs (see module docstring).

    *path* may be the ``.jsonl`` file itself or a directory (the store
    then lives at ``<dir>/history.jsonl`` — what ``--history DIR``
    passes).  Loading skips torn/malformed lines with a warning and
    refuses only on a ``history_version`` it does not speak; records
    from older *payload* schemas load fine (each record pins its own
    schema, and :func:`diff_records` warns when they differ).
    """

    FILENAME = "history.jsonl"

    def __init__(self, path) -> None:
        p = Path(path)
        if p.suffix != ".jsonl":
            p = p / self.FILENAME
        self.path = p

    # -- writing ---------------------------------------------------- #

    def append(self, record: dict) -> dict:
        """Append one record (flushed immediately); returns it."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        torn_tail = False
        if not fresh:
            with open(self.path, "rb") as fh:
                fh.seek(-1, os.SEEK_END)
                torn_tail = fh.read(1) != b"\n"
        with open(self.path, "a", encoding="utf-8") as fh:
            if torn_tail:
                # Terminate a line torn by a SIGKILL mid-write so this
                # record does not splice into the malformed JSON.
                fh.write("\n")
            if fresh:
                fh.write(
                    _canonical(
                        {
                            "kind": "header",
                            "history_version": HISTORY_VERSION,
                        }
                    )
                    + "\n"
                )
            fh.write(_canonical(record) + "\n")
            fh.flush()
        return record

    def append_experiment(self, result: Any) -> dict:
        """Record one finished :class:`ExperimentResult`."""
        return self.append(experiment_record(result))

    def append_bench(self, report: dict) -> dict:
        """Record one bench report (``BENCH_simcore.json`` contents)."""
        return self.append(bench_record(report))

    # -- reading ---------------------------------------------------- #

    def records(self) -> list[dict]:
        """Every well-formed run record, in append order."""
        if not self.path.exists():
            return []
        out: list[dict] = []
        with open(self.path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except ValueError:
                    _log.warning(
                        "history %s: skipping malformed line %d "
                        "(torn write from an interrupted run?)",
                        self.path,
                        lineno,
                    )
                    continue
                kind = rec.get("kind")
                if kind == "header":
                    version = rec.get("history_version")
                    if version != HISTORY_VERSION:
                        raise ValueError(
                            f"history {self.path} is line-format version "
                            f"{version}, this build speaks "
                            f"{HISTORY_VERSION}"
                        )
                elif kind == "run":
                    if isinstance(rec.get("payload"), dict):
                        out.append(rec)
                    else:
                        _log.warning(
                            "history %s: skipping bad run line %d",
                            self.path,
                            lineno,
                        )
                else:
                    _log.warning(
                        "history %s: skipping unknown record kind %r "
                        "on line %d",
                        self.path,
                        kind,
                        lineno,
                    )
        return out

    def resolve(self, ref: str, records: Optional[list[dict]] = None) -> dict:
        """One record by *ref*: an index (``-1`` = latest), ``last`` /
        ``prev``, or an ``id`` / digest prefix."""
        recs = self.records() if records is None else records
        if not recs:
            raise LookupError(f"history {self.path} has no run records")
        ref = str(ref).strip()
        if ref in ("last", "latest"):
            return recs[-1]
        if ref in ("prev", "previous"):
            if len(recs) < 2:
                raise LookupError(
                    f"history {self.path} has no previous record"
                )
            return recs[-2]
        try:
            return recs[int(ref)]
        except ValueError:
            pass
        except IndexError:
            raise LookupError(
                f"history {self.path}: index {ref} out of range "
                f"(have {len(recs)} record(s))"
            ) from None
        matches = [
            r
            for r in recs
            if r.get("id", "").startswith(ref)
            or r.get("payload_digest", "").startswith(ref)
        ]
        if not matches:
            raise LookupError(f"history {self.path}: no record matches {ref!r}")
        # A digest prefix may legitimately recur (identical reruns);
        # the latest is what a human asking by id means.
        return matches[-1]

    def trend(self, exp_id: str, limit: int = 30) -> list[dict]:
        """The last *limit* records for one experiment id (sparkline
        feed for :mod:`repro.obs.report`)."""
        recs = [
            r
            for r in self.records()
            if r["payload"].get("exp_id") == exp_id
        ]
        return recs[-limit:]


# --------------------------------------------------------------------- #
# diffing
# --------------------------------------------------------------------- #


def _flat_metrics(rec: dict) -> dict[str, float]:
    """Comparable numeric metrics of one record: payload column means,
    bench perf metrics and wall time, flattened to one namespace."""
    out: dict[str, float] = {}
    for name, v in (rec["payload"].get("metrics") or {}).items():
        if isinstance(v, (int, float)) and math.isfinite(v):
            out[name] = float(v)
    meta = rec.get("meta") or {}
    for name, v in (meta.get("metrics") or {}).items():
        if isinstance(v, (int, float)) and math.isfinite(v):
            out[name] = float(v)
    wall = meta.get("wall_s")
    if isinstance(wall, (int, float)) and math.isfinite(wall):
        out["wall_s"] = float(wall)
    return out


def diff_records(
    old: dict, new: dict, tolerance: float = DEFAULT_TOLERANCE
) -> dict:
    """Compare two history records; returns the structured diff.

    Per shared metric: ``ratio = new / old`` and a classification —
    ``neutral`` inside ``[1 - tolerance, 1 + tolerance]``, else
    ``regression`` / ``improvement`` by the metric's direction (or
    ``drift`` for direction-less metrics, which never drives the
    verdict).  The overall ``verdict`` is ``regression`` if any metric
    regressed, else ``improvement`` if any improved, else ``neutral``.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0")
    a, b = _flat_metrics(old), _flat_metrics(new)
    metrics = []
    for name in sorted(set(a) & set(b)):
        va, vb = a[name], b[name]
        ratio = (vb / va) if va else (1.0 if vb == va else math.inf)
        direction = metric_direction(name)
        if 1.0 - tolerance <= ratio <= 1.0 + tolerance:
            cls = "neutral"
        elif direction is None:
            cls = "drift"
        elif (ratio > 1.0) == (direction == "lower"):
            cls = "regression"
        else:
            cls = "improvement"
        metrics.append(
            {
                "name": name,
                "old": va,
                "new": vb,
                "ratio": ratio if math.isfinite(ratio) else None,
                "direction": direction,
                "class": cls,
            }
        )
    classes = {m["class"] for m in metrics}
    if "regression" in classes:
        verdict = "regression"
    elif "improvement" in classes:
        verdict = "improvement"
    else:
        verdict = "neutral"
    warnings = []
    pa, pb = old["payload"], new["payload"]
    if pa.get("kind") != pb.get("kind"):
        warnings.append(
            f"comparing a {pa.get('kind')} record to a {pb.get('kind')} one"
        )
    for key in ("exp_id", "scale", "seed"):
        if pa.get(key) != pb.get(key) and (key in pa or key in pb):
            warnings.append(
                f"{key} differs: {pa.get(key)!r} vs {pb.get(key)!r}"
            )
    if pa.get("schema") != pb.get("schema"):
        warnings.append(
            f"result schema differs: {pa.get('schema')} vs {pb.get('schema')}"
        )
    outcome_changed = (
        old.get("payload_digest") != new.get("payload_digest")
        and pa.get("config_fingerprint") == pb.get("config_fingerprint")
        and pa.get("config_fingerprint") is not None
    )
    if outcome_changed:
        warnings.append(
            "outcome drift: same configuration, different payload digest "
            "(the simulated numbers changed, not just the speed)"
        )
    return {
        "verdict": verdict,
        "tolerance": tolerance,
        "old_id": old.get("id"),
        "new_id": new.get("id"),
        "outcome_changed": outcome_changed,
        "metrics": metrics,
        "warnings": warnings,
    }


def format_diff(diff: dict) -> str:
    """Human-readable rendering of a :func:`diff_records` result."""
    lines = [
        f"history diff {diff['old_id']} -> {diff['new_id']} "
        f"(tolerance ±{diff['tolerance'] * 100:.0f}%)"
    ]
    for m in diff["metrics"]:
        ratio = m["ratio"]
        lines.append(
            f"  {m['name']}: {m['old']:g} -> {m['new']:g} "
            f"(x{ratio:.3f}) [{m['class']}]"
            if ratio is not None
            else f"  {m['name']}: {m['old']:g} -> {m['new']:g} [{m['class']}]"
        )
    for w in diff["warnings"]:
        lines.append(f"  warning: {w}")
    lines.append(f"verdict: {diff['verdict']}")
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #


def main(argv: Optional[list[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.obs.history",
        description="Inspect and diff the cross-run history store.",
    )
    sub = ap.add_subparsers(dest="cmd", required=True)
    p_list = sub.add_parser("list", help="list recorded runs")
    p_list.add_argument("path", help="history file or directory")
    p_show = sub.add_parser("show", help="print one record as JSON")
    p_show.add_argument("path")
    p_show.add_argument("ref", help="index, id prefix, 'last' or 'prev'")
    p_diff = sub.add_parser(
        "diff",
        help="compare two runs; exit 1 on a regression verdict",
    )
    p_diff.add_argument("path")
    p_diff.add_argument("ref_a", nargs="?", default="prev")
    p_diff.add_argument("ref_b", nargs="?", default="last")
    p_diff.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="relative change treated as neutral (default 0.10)",
    )
    p_bench = sub.add_parser(
        "append-bench",
        help="record a BENCH_simcore.json report into the history",
    )
    p_bench.add_argument("path")
    p_bench.add_argument("report", help="bench report JSON file")
    args = ap.parse_args(argv)

    history = RunHistory(args.path)
    if args.cmd == "list":
        recs = history.records()
        for i, rec in enumerate(recs):
            p, meta = rec["payload"], rec.get("meta", {})
            what = p.get("exp_id") or p.get("kind")
            wall = meta.get("wall_s")
            print(
                f"{i:3d}  {rec['id']}  {what:<24s} "
                f"scale={p.get('scale')} seed={p.get('seed')} "
                f"wall={wall if wall is not None else '-'}s "
                f"git={meta.get('git')}"
            )
        if not recs:
            print(f"(no records in {history.path})")
        return 0
    if args.cmd == "show":
        print(json.dumps(history.resolve(args.ref), indent=2, sort_keys=True))
        return 0
    if args.cmd == "append-bench":
        with open(args.report, "r", encoding="utf-8") as fh:
            report = json.load(fh)
        rec = history.append_bench(report)
        print(f"recorded {rec['id']} into {history.path}")
        return 0
    # diff
    recs = history.records()
    if len(recs) < 2 and args.ref_a in ("prev", "previous"):
        print(
            f"nothing to compare: {history.path} has "
            f"{len(recs)} record(s)"
        )
        return 0
    old = history.resolve(args.ref_a, recs)
    new = history.resolve(args.ref_b, recs)
    diff = diff_records(old, new, tolerance=args.tolerance)
    print(format_diff(diff))
    return 1 if diff["verdict"] == "regression" else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
