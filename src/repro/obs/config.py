"""Observability configuration: what a run records, if anything.

One frozen :class:`ObsConfig` travels from the CLI (``--trace`` /
``--metrics``) through :func:`repro.runner.run_points` into
:func:`repro.api.simulate_alltoall` and finally
:func:`repro.net.faultsim.build_network`, which instantiates an
instrumented network only when :attr:`ObsConfig.enabled` is true.  The
default (``None`` everywhere) means the plain un-instrumented simulator
runs — observability disabled is not a cheap path, it is *the same* path
as before this subsystem existed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.obs.metrics import DEFAULT_BUCKET_CYCLES, DEFAULT_MAX_BUCKETS
from repro.obs.tracer import DEFAULT_CAPACITY, EVENT_KINDS


@dataclass(frozen=True)
class ObsConfig:
    """Per-run observability switches.

    Attributes
    ----------
    trace:
        Record packet-lifecycle events into a bounded ring buffer.
    trace_capacity:
        Ring size in events (overflow keeps the latest events).
    trace_sample:
        Keep every packet whose id is ``0 (mod trace_sample)``; 1 keeps
        everything.  Sampling is by deterministic packet id, so the same
        packets are traced on every run and across job counts.
    trace_kinds:
        Restrict recording to these event kinds (None = all of
        :data:`repro.obs.tracer.EVENT_KINDS`).
    metrics:
        Maintain the :class:`~repro.obs.metrics.MetricsRegistry`
        (per-axis utilization time series, FIFO depth, backlog, latency
        histograms).
    metrics_bucket_cycles:
        Initial time-series bucket width, cycles.
    metrics_max_buckets:
        Bucket cap per series (width doubles beyond it).
    link_stats:
        Collect per-link analytics (wire bytes, per-VC packet counts,
        stall cycles, per-link drops, per-node retransmissions, per-phase
        busy cycles) and attach them to the result as
        ``extras["obs"]["link_stats"]`` for
        :mod:`repro.obs.linkstats` / :mod:`repro.obs.report`.
    profile:
        Run the phase-level time profiler
        (:mod:`repro.obs.profile`): per-(phase, axis) busy cycles,
        phase spans, and wall/CPU attribution estimates, attached as
        ``extras["obs"]["profile"]``.
    """

    trace: bool = False
    trace_capacity: int = DEFAULT_CAPACITY
    trace_sample: int = 1
    trace_kinds: Optional[frozenset] = None
    metrics: bool = False
    metrics_bucket_cycles: float = DEFAULT_BUCKET_CYCLES
    metrics_max_buckets: int = DEFAULT_MAX_BUCKETS
    link_stats: bool = False
    profile: bool = False

    def __post_init__(self) -> None:
        if self.trace_capacity < 1:
            raise ValueError("trace_capacity must be >= 1")
        if self.trace_sample < 1:
            raise ValueError("trace_sample must be >= 1")
        if self.trace_kinds is not None:
            unknown = frozenset(self.trace_kinds) - frozenset(EVENT_KINDS)
            if unknown:
                raise ValueError(
                    f"unknown trace event kinds: {sorted(unknown)}"
                )
        if self.metrics_bucket_cycles <= 0:
            raise ValueError("metrics_bucket_cycles must be positive")
        if self.metrics_max_buckets < 2:
            raise ValueError("metrics_max_buckets must be >= 2")

    @property
    def enabled(self) -> bool:
        """Whether this config instruments the network at all."""
        return (
            self.trace or self.metrics or self.link_stats or self.profile
        )
