"""Run provenance: enough metadata to trust (or reproduce) a result.

Every :class:`~repro.experiments.common.ExperimentResult` gets a
provenance record attached by :func:`repro.experiments.registry.run_experiment`:
the result schema version, the seed and scale, the git revision of the
working tree, a fingerprint over the exact simulation points executed
(their cache keys, which already cover shape/strategy/options/config/
faults), and the wall-time vs simulated-cycles accounting that separates
"the simulator got slower" from "the simulated collective got slower".

The record is plain JSON types; nothing in it feeds back into simulation
or caching (wall time and git state must never perturb a cache key).
"""

from __future__ import annotations

import hashlib
import platform
import subprocess
from functools import lru_cache
from pathlib import Path

#: Version of the provenance record layout.
PROVENANCE_VERSION = 1


@lru_cache(maxsize=1)
def git_describe() -> str:
    """``git describe --always --dirty`` of the repo, or a sentinel.

    Runs in the directory holding this package (not the caller's cwd),
    so the revision describes the code that actually executed.  Cached
    per process; failures degrade to a sentinel rather than raising —
    provenance must never fail a run.  The sentinels distinguish the
    two failure families: ``"unavailable"`` means git itself could not
    answer (the binary is missing, or the 5-second subprocess timeout
    fired on a wedged object store); ``"unknown"`` means git ran but
    had nothing to say (not a checkout, empty output).
    """
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unavailable"
    except subprocess.SubprocessError:
        return "unavailable"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip() or "unknown"


def config_fingerprint(point_keys: list[str]) -> str:
    """SHA-256 over the ordered cache keys of the points a run executed.

    The point keys already hash everything outcome-relevant (schema,
    shape, strategy + options, message size, seed, machine parameters,
    network config, fault plan), so this one digest pins the entire
    sweep configuration.
    """
    h = hashlib.sha256()
    for k in point_keys:
        h.update(k.encode("ascii"))
        h.update(b"\n")
    return h.hexdigest()


def provenance_record(
    *,
    schema_version: int,
    seed: int,
    scale: str | None,
    point_keys: list[str],
    wall_s: float,
    simulated_cycles: float,
    simulated_events: int,
    points_simulated: int,
    points_cached: int,
    retries: int = 0,
    timeouts: int = 0,
    quarantined: int = 0,
    points_failed: int = 0,
) -> dict:
    """Build the provenance dict attached to an experiment result.

    The supervision counters (``retries``/``timeouts``/``quarantined``/
    ``points_failed``) record how bumpy the road to this result was: a
    record with nonzero ``points_failed`` describes a *partial* result,
    and nonzero retries mean the numbers were reproduced only after
    rescheduling (still bit-identical — retried points re-execute the
    same deterministic simulation).
    """
    return {
        "provenance_version": PROVENANCE_VERSION,
        "schema_version": schema_version,
        "seed": seed,
        "scale": scale,
        "git": git_describe(),
        "python": platform.python_version(),
        "config_fingerprint": config_fingerprint(point_keys),
        "points": len(point_keys),
        "points_simulated": points_simulated,
        "points_cached": points_cached,
        "points_failed": points_failed,
        "retries": retries,
        "timeouts": timeouts,
        "quarantined": quarantined,
        "wall_s": round(wall_s, 4),
        "simulated_cycles": simulated_cycles,
        "simulated_events": simulated_events,
    }
