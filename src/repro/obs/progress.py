"""Live sweep telemetry: a single-writer status line + worker heartbeats.

A multi-hour sweep used to run silently: the only signs of life were the
final tables and whatever ``-v`` logging scrolled past.  This module
gives the parent process one coordinated view of a sweep in flight:

* :class:`SweepProgress` — counts (completed / running / failed /
  retrying), the cache-hit split, an EWMA-based ETA, and the stalest
  in-flight point (from heartbeats), rendered as a carriage-return
  status line when stderr is a TTY and as periodic ``repro`` logger
  lines otherwise — CI logs and piped output never see ANSI control
  sequences.
* :class:`OutputCoordinator` — the single stderr writer.  Log records
  and the status line share one stream; the coordinator erases the
  status line, lets the record through, and redraws, so worker log
  lines and the progress bar coexist instead of shredding each other.
  :func:`repro.obs.logconf.setup_logging` routes its handler through
  :func:`coordinated_handler`.
* Heartbeats — each supervised attempt (see
  :mod:`repro.runner.supervise`) emits ``{key, label, attempt,
  elapsed_s, sim_cycles, delivered, pid}`` records: one immediately when
  the attempt starts and one per interval while it runs, sampled live
  from the simulator's clock.  A wedged worker is therefore visible
  (its heartbeat elapsed keeps growing while ``sim_cycles`` stalls)
  *before* the watchdog kills it.

Activation: :func:`resolve_progress` — on by default, ``REPRO_PROGRESS=0``
(or the CLI's ``--no-progress``) turns it off, ``--quiet`` suppresses it
implicitly (the renderer follows the ``repro`` logger's level).
Everything here is parent-side and post-hoc; nothing touches the
simulator hot path or perturbs results.
"""

from __future__ import annotations

import logging
import os
import shutil
import sys
import threading
import time
from typing import Optional

_log = logging.getLogger("repro.obs.progress")

#: Seconds between status-line repaints (TTY mode).
RENDER_INTERVAL_S = 0.1

#: Seconds between progress log lines (non-TTY mode).
LOG_INTERVAL_S = 5.0

#: EWMA smoothing factor for per-point durations (higher = snappier ETA).
EWMA_ALPHA = 0.3

#: A running point whose latest heartbeat is older than this many
#: seconds (and at least twice the EWMA duration) is called out as
#: stale on the status line.
STALE_AFTER_S = 5.0


def _is_tty(stream) -> bool:
    try:
        return bool(stream.isatty())
    except (AttributeError, ValueError, OSError):
        return False


# --------------------------------------------------------------------- #
# the single stderr writer
# --------------------------------------------------------------------- #


class OutputCoordinator:
    """Serializes the status line and log records onto one stream.

    At most one status line is active at a time (sweeps do not nest in
    practice; a nested ``begin`` simply takes the line over).  All
    writes — status repaints and log records alike — happen under one
    lock, and a log record is bracketed by erase/redraw so it lands on
    its own line.  When the status stream is not a TTY no control
    sequences are ever written; log records pass straight through.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._stream = None
        self._status = ""

    def begin_status(self, stream) -> bool:
        """Claim the status line on *stream*; returns whether *stream*
        is a TTY (the caller skips :meth:`set_status` when not)."""
        with self._lock:
            self._clear_locked()
            self._stream = stream
            self._status = ""
        return _is_tty(stream)

    def set_status(self, text: str) -> None:
        """Repaint the status line (no-op without an active stream)."""
        with self._lock:
            stream = self._stream
            if stream is None:
                return
            width = shutil.get_terminal_size(fallback=(80, 24)).columns
            self._status = text[: max(width - 1, 10)]
            self._paint_locked()

    def end_status(self) -> None:
        """Erase the status line and release the stream."""
        with self._lock:
            self._clear_locked()
            self._stream = None
            self._status = ""

    def log_write(self, stream, text: str) -> None:
        """Write one log record, lifting the status line out of its way."""
        with self._lock:
            active = self._stream is not None and self._status
            if active:
                self._erase_locked()
            try:
                stream.write(text)
                stream.flush()
            finally:
                if active:
                    self._paint_locked()

    # -- locked primitives ------------------------------------------ #

    def _paint_locked(self) -> None:
        try:
            self._stream.write("\r\x1b[2K" + self._status)
            self._stream.flush()
        except (ValueError, OSError):  # closed stream mid-teardown
            pass

    def _erase_locked(self) -> None:
        try:
            self._stream.write("\r\x1b[2K")
            self._stream.flush()
        except (ValueError, OSError):
            pass

    def _clear_locked(self) -> None:
        if self._stream is not None and self._status:
            self._erase_locked()


#: Process-wide coordinator (log handlers and renderers share it).
coordinator = OutputCoordinator()


class CoordinatedStreamHandler(logging.StreamHandler):
    """``StreamHandler`` that routes its writes through the coordinator,
    so emitting a record while a status line is drawn erases and redraws
    it instead of splicing into it."""

    def emit(self, record: logging.LogRecord) -> None:
        try:
            msg = self.format(record) + self.terminator
            coordinator.log_write(self.stream, msg)
        except RecursionError:  # pragma: no cover - logging contract
            raise
        except Exception:  # pragma: no cover - logging contract
            self.handleError(record)


def coordinated_handler(stream) -> logging.StreamHandler:
    """The handler :func:`repro.obs.logconf.setup_logging` attaches."""
    return CoordinatedStreamHandler(stream)


# --------------------------------------------------------------------- #
# the renderer
# --------------------------------------------------------------------- #


def _fmt_eta(seconds: float) -> str:
    seconds = max(int(round(seconds)), 0)
    if seconds >= 3600:
        return f"{seconds // 3600}:{seconds % 3600 // 60:02d}:{seconds % 60:02d}"
    return f"{seconds // 60}:{seconds % 60:02d}"


class SweepProgress:
    """Parent-side sweep telemetry (one instance per ``run_sweep``).

    Fed by the supervised executor's event stream (``start`` / ``retry``
    / ``timeout`` / ``crash`` / ``failed`` / ``pool_break``), completion
    callbacks and heartbeat records.  Thread-safe: sequential sweeps
    deliver heartbeats from an in-process sampler thread.
    """

    def __init__(
        self,
        stream=None,
        render_interval_s: float = RENDER_INTERVAL_S,
        log_interval_s: float = LOG_INTERVAL_S,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.render_interval_s = render_interval_s
        self.log_interval_s = log_interval_s
        self._lock = threading.RLock()
        self._tty = False
        self._active = False
        self.total = 0
        self.cached = 0
        self.jobs = 1
        self.completed = 0
        self.failed = 0
        self.retries = 0
        #: key -> (label, started_monotonic) for in-flight attempts.
        self._running: dict[str, tuple[str, float]] = {}
        #: keys waiting out a retry backoff.
        self._retrying: set[str] = set()
        #: key -> latest heartbeat record.
        self._beats: dict[str, dict] = {}
        self.heartbeats = 0
        self._ewma_s: Optional[float] = None
        self._t0 = 0.0
        self._last_render = 0.0
        self._last_log = 0.0

    # -- lifecycle --------------------------------------------------- #

    def begin(self, total: int, cached: int, jobs: int) -> None:
        with self._lock:
            self.total = total
            self.cached = cached
            self.jobs = max(jobs, 1)
            self._t0 = time.monotonic()
            self._last_log = self._t0
            self._active = True
            self._tty = coordinator.begin_status(self.stream)
        self._render(force=True)

    def finish(self) -> None:
        with self._lock:
            if not self._active:
                return
            self._active = False
            coordinator.end_status()
            summary = self._summary_locked()
        _log.info("sweep finished: %s", summary)

    # -- feeds -------------------------------------------------------- #

    def event(self, kind: str, task) -> None:
        with self._lock:
            if kind == "start":
                self._running[task.key] = (task.label, time.monotonic())
                self._retrying.discard(task.key)
            elif kind == "retry":
                self.retries += 1
                self._running.pop(task.key, None)
                self._beats.pop(task.key, None)
                self._retrying.add(task.key)
            elif kind in ("timeout", "crash"):
                self._running.pop(task.key, None)
                self._beats.pop(task.key, None)
            elif kind == "failed":
                self.failed += 1
                self._running.pop(task.key, None)
                self._beats.pop(task.key, None)
                self._retrying.discard(task.key)
            elif kind == "pool_break":
                # Every in-flight future died with the pool; survivors
                # re-announce themselves with fresh start events.
                self._running.clear()
                self._beats.clear()
        self._render()

    def complete(self, task) -> None:
        with self._lock:
            self.completed += 1
            entry = self._running.pop(task.key, None)
            self._beats.pop(task.key, None)
            self._retrying.discard(task.key)
            if entry is not None:
                dt = time.monotonic() - entry[1]
                self._ewma_s = (
                    dt
                    if self._ewma_s is None
                    else EWMA_ALPHA * dt + (1.0 - EWMA_ALPHA) * self._ewma_s
                )
        self._render()

    def heartbeat(self, rec: dict) -> None:
        with self._lock:
            self.heartbeats += 1
            key = rec.get("key")
            if key is not None:
                self._beats[key] = rec
        self._render()

    # -- rendering ---------------------------------------------------- #

    def _eta_s_locked(self) -> Optional[float]:
        if self._ewma_s is None:
            return None
        remaining = self.total - self.cached - self.completed - self.failed
        if remaining <= 0:
            return 0.0
        return remaining * self._ewma_s / self.jobs

    def _stale_locked(self) -> Optional[dict]:
        """The stalest in-flight heartbeat worth calling out, if any."""
        worst = None
        for rec in self._beats.values():
            el = rec.get("elapsed_s")
            if not isinstance(el, (int, float)):
                continue
            if worst is None or el > worst.get("elapsed_s", 0.0):
                worst = rec
        if worst is None:
            return None
        el = worst["elapsed_s"]
        if el < STALE_AFTER_S:
            return None
        if self._ewma_s is not None and el < 2.0 * self._ewma_s:
            return None
        return worst

    def _summary_locked(self) -> str:
        done = self.completed + self.cached
        parts = [f"{done}/{self.total} done"]
        if self._running:
            parts.append(f"{len(self._running)} running")
        if self._retrying:
            parts.append(f"{len(self._retrying)} retrying")
        if self.failed:
            parts.append(f"{self.failed} failed")
        if self.retries:
            parts.append(f"{self.retries} retries")
        if self.total:
            pct = 100.0 * self.cached / self.total
            parts.append(f"cache {self.cached}/{self.total} ({pct:.0f}%)")
        eta = self._eta_s_locked()
        if eta is not None and (self._running or self._retrying):
            parts.append(f"eta {_fmt_eta(eta)}")
        stale = self._stale_locked()
        if stale is not None:
            cyc = stale.get("sim_cycles")
            at = f" @ {cyc:.3g} cycles" if isinstance(cyc, float) else ""
            parts.append(
                f"slowest {stale.get('label', stale.get('key', '?'))} "
                f"{stale['elapsed_s']:.0f}s{at}"
            )
        return " | ".join(parts)

    def _render(self, force: bool = False) -> None:
        with self._lock:
            if not self._active:
                return
            now = time.monotonic()
            if self._tty:
                if not force and now - self._last_render < self.render_interval_s:
                    return
                self._last_render = now
                coordinator.set_status("sweep " + self._summary_locked())
            else:
                if not force and now - self._last_log < self.log_interval_s:
                    return
                self._last_log = now
                _log.info("sweep progress: %s", self._summary_locked())


# --------------------------------------------------------------------- #
# activation
# --------------------------------------------------------------------- #


def progress_wanted() -> bool:
    """Whether sweep telemetry is enabled for this process.

    ``REPRO_PROGRESS=0`` (or ``--no-progress``) disables; ``1`` forces
    on.  The default follows the ``repro`` logger: anything quieter than
    WARNING (``--quiet``) disables telemetry entirely — the status line
    included, since quiet means *quiet*.
    """
    env = os.environ.get("REPRO_PROGRESS", "").strip().lower()
    if env in ("0", "off", "false", "no"):
        return False
    if env in ("1", "on", "true", "yes"):
        return True
    return logging.getLogger("repro").getEffectiveLevel() < logging.ERROR


def resolve_progress(total: int, stream=None) -> Optional[SweepProgress]:
    """A renderer for a *total*-point sweep, or None when disabled."""
    if total <= 0 or not progress_wanted():
        return None
    return SweepProgress(stream=stream)
