"""Link-level analytics over the per-link counters a run collects.

The instrumented networks attach a ``link_stats`` payload to
``SimulationResult.extras["obs"]`` when :attr:`ObsConfig.link_stats` is
set (and the plain core always carries ``link_busy_cycles`` /
``link_packets``).  This module turns those raw counters into the
numbers the paper actually reports:

* per-axis **percent of peak** link utilization — busy cycles divided by
  the axis's aggregate link-cycle capacity over the run (a link
  transmitting is running at full link bandwidth, so its busy fraction
  *is* its fraction of theoretical peak; the paper's ~98 % claim is this
  number on the bottleneck axis);
* per-**phase** utilization (the strategy traffic-class markers:
  ``tps1``/``tps2``/``vmesh1``/... — how much of each axis each phase
  consumed);
* congestion **hot-spots** — links ranked by busy fraction, with stall
  cycles and queue pressure attached;
* a **model diff** against the analytic
  :func:`repro.model.linkload.uniform_link_loads` prediction: the ratio
  of measured wire bytes to predicted payload bytes per link must be the
  same wire-overhead factor on every axis, so unequal ratios localize a
  load imbalance to an axis;
* **degraded-link detection** — the effective cycles-per-byte of every
  link (busy / wire bytes) against the machine's ``beta``; a fault-plan
  degraded link shows up as an outlier without any reference run.

Everything here is pure post-processing: no simulator state, plain
dict/numpy in, plain dicts out (JSON-ready for the report sidecar).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.model.linkload import uniform_link_loads
from repro.model.torus import TorusShape

AXIS_NAMES = ("x", "y", "z", "w", "v", "u")

#: Fallback wire-overhead band for the measured/predicted byte ratio on
#: a pristine uniform all-to-all when no :class:`MachineParams` is
#: available to compute the exact packetization overhead: header bytes
#: plus packet-size rounding put the ratio strictly above 1.0 and (for
#: the BG/L 48 B header on a >= 64 B payload) at or below 2.0.
DEFAULT_RATIO_BOUNDS = (1.0, 2.0)
#: Max relative spread between per-axis ratios: the overhead factor is
#: common to all axes, so on a calibrated run the spread is ~0 (measured
#: 0.0 on 4x4x2/4x4x4/8x4x4 sweeps over 64..4096 B messages); 5 % leaves
#: room for mesh-dimension edge effects.
DEFAULT_AXIS_SPREAD = 0.05
#: Relative half-width of the ratio band around the exact packetization
#: overhead when MachineParams are supplied.
DEFAULT_RATIO_RTOL = 0.10


_LABEL_RE = re.compile(
    r"^(?P<name>.+)@(?P<dims>\d+(?:x\d+)*)/(?P<msg>\d+)B/"
    r"seed(?P<seed>\d+)(?P<faulty>/faulty)?$"
)


def parse_point_label(label: str) -> dict:
    """Parse a :func:`repro.runner.pool.point_label` string.

    Returns ``{"strategy", "dims", "msg_bytes", "seed", "faulty"}``.
    The format is pinned by a round-trip test against ``point_label``.
    """
    m = _LABEL_RE.match(label)
    if m is None:
        raise ValueError(f"unparseable point label: {label!r}")
    return {
        "strategy": m.group("name"),
        "dims": tuple(int(d) for d in m.group("dims").split("x")),
        "msg_bytes": int(m.group("msg")),
        "seed": int(m.group("seed")),
        "faulty": m.group("faulty") is not None,
    }


@dataclass(frozen=True)
class LinkAnalytics:
    """Per-link counters of one run, reshaped for analysis.

    All link arrays are ``(nnodes, ndirs)`` with the simulator's flat
    link layout (``li = node * ndirs + direction``; direction ``2a`` is
    the + face of axis ``a``, ``2a + 1`` the - face).
    """

    shape: TorusShape
    time_cycles: float
    beta: float
    nvcs: int
    #: Surviving directed links per axis (== ``links_in_dim`` pristine).
    links_per_axis: tuple[int, ...]
    busy_cycles: np.ndarray
    packets: np.ndarray
    #: Extended counters — present only on ``link_stats`` runs.
    wire_bytes: Optional[np.ndarray] = None
    vc_packets: Optional[np.ndarray] = None
    stall_cycles: Optional[np.ndarray] = None
    drops: Optional[np.ndarray] = None
    retx_by_node: Optional[np.ndarray] = None
    phase_busy: dict = field(default_factory=dict)
    injected_wire_bytes: int = 0
    #: ``asdict(MachineParams)`` of the simulated machine, when the
    #: payload carried it — lets the model diff reconstruct the exact
    #: packetization overhead.
    machine: Optional[dict] = None

    # -------------------------------------------------------------- #
    # constructors
    # -------------------------------------------------------------- #

    @classmethod
    def from_payload(cls, payload: dict) -> "LinkAnalytics":
        """Build from an ``extras["obs"]["link_stats"]`` dict (fresh or
        decoded from the JSON sidecar/cache)."""
        shape = TorusShape(tuple(payload["dims"]), tuple(payload["torus"]))
        p, ndirs = shape.nnodes, int(payload["ndirs"])
        nvcs = int(payload["nvcs"])

        def grid(key: str, dtype) -> np.ndarray:
            return np.asarray(payload[key], dtype=dtype).reshape(p, ndirs)

        return cls(
            shape=shape,
            time_cycles=float(payload["time_cycles"]),
            beta=float(payload["beta"]),
            nvcs=nvcs,
            links_per_axis=tuple(int(n) for n in payload["links_per_axis"]),
            busy_cycles=grid("busy_cycles", np.float64),
            packets=grid("packets", np.int64),
            wire_bytes=grid("wire_bytes", np.int64),
            vc_packets=np.asarray(
                payload["vc_packets"], dtype=np.int64
            ).reshape(p * ndirs, nvcs),
            stall_cycles=grid("stall_cycles", np.float64),
            drops=grid("drops", np.int64),
            retx_by_node=np.asarray(payload["retx_by_node"], dtype=np.int64),
            phase_busy={
                k: list(v) for k, v in payload["phase_busy"].items()
            },
            injected_wire_bytes=int(payload["injected_wire_bytes"]),
            machine=payload.get("machine"),
        )

    @classmethod
    def from_result(
        cls, result: Any, shape: TorusShape, beta: float
    ) -> "LinkAnalytics":
        """Build the always-available subset from a plain
        :class:`~repro.net.trace.SimulationResult` (no ``link_stats``
        payload needed: the core collects busy cycles and packet counts
        on every run).  Prefers the full payload when present."""
        obs = result.extras.get("obs") if isinstance(result.extras, dict) else None
        if obs and "link_stats" in obs:
            return cls.from_payload(obs["link_stats"])
        packets = result.link_packets
        if packets is None:
            packets = np.zeros_like(result.link_busy_cycles, dtype=np.int64)
        return cls(
            shape=shape,
            time_cycles=float(result.time_cycles),
            beta=beta,
            nvcs=0,
            links_per_axis=tuple(
                shape.links_in_dim(a) for a in range(shape.ndim)
            ),
            busy_cycles=np.asarray(result.link_busy_cycles, dtype=np.float64),
            packets=np.asarray(packets, dtype=np.int64),
            injected_wire_bytes=int(result.injected_wire_bytes),
        )

    # -------------------------------------------------------------- #
    # utilization / percent of peak
    # -------------------------------------------------------------- #

    def utilization(self) -> np.ndarray:
        """Busy fraction of every directed link over the run."""
        if self.time_cycles <= 0:
            return np.zeros_like(self.busy_cycles)
        return self.busy_cycles / self.time_cycles

    def axis_percent_of_peak(self) -> list[float]:
        """Percent of aggregate link capacity each axis sustained.

        100 * (axis busy cycles) / (time_cycles * directed links in the
        axis).  A busy link streams at the full link rate, so this is a
        true percent-of-peak-bandwidth, the paper's headline metric.
        """
        out = []
        for a in range(self.shape.ndim):
            nlinks = self.links_per_axis[a]
            denom = self.time_cycles * nlinks
            busy = float(self.busy_cycles[:, 2 * a : 2 * a + 2].sum())
            out.append(100.0 * busy / denom if denom > 0 else 0.0)
        return out

    def percent_of_peak(self) -> float:
        """Percent of peak on the bottleneck (hottest) axis.

        The all-to-all finishes when the most-loaded axis drains, so the
        bottleneck axis's sustained fraction is *the* percent-of-peak
        figure (Section 2.1's Eq. 2 denominator is that axis's
        capacity)."""
        per_axis = self.axis_percent_of_peak()
        return max(per_axis) if per_axis else 0.0

    def phase_table(self) -> list[dict]:
        """Per-phase percent-of-peak rows (one per traffic-class marker).

        Requires a ``link_stats`` run; empty list otherwise."""
        rows = []
        for phase, per_axis_busy in sorted(self.phase_busy.items()):
            row = {"phase": phase}
            total = 0.0
            for a in range(self.shape.ndim):
                busy = float(per_axis_busy[a])
                total += busy
                denom = self.time_cycles * self.links_per_axis[a]
                row[f"pct_peak_{AXIS_NAMES[a]}"] = (
                    100.0 * busy / denom if denom > 0 else 0.0
                )
            row["busy_cycles"] = total
            rows.append(row)
        return rows

    # -------------------------------------------------------------- #
    # hot spots / degradation
    # -------------------------------------------------------------- #

    def _coords(self, node: int) -> tuple[int, ...]:
        out = []
        rem = node
        for d in self.shape.dims:
            out.append(rem % d)
            rem //= d
        return tuple(out)

    def hotspots(self, top: int = 10) -> list[dict]:
        """The *top* most-loaded links, hottest first.

        Each entry names the link (node, coords, direction), its busy
        fraction, packet count, and — on ``link_stats`` runs — its wire
        bytes, stall cycles and drops."""
        util = self.utilization()
        p, ndirs = util.shape
        flat = util.ravel()
        order = np.argsort(flat, kind="stable")[::-1][:top]
        out = []
        for li in order:
            li = int(li)
            if flat[li] <= 0.0:
                break
            u, d = divmod(li, ndirs)
            axis = d >> 1
            entry = {
                "node": u,
                "coords": list(self._coords(u)),
                "direction": f"{AXIS_NAMES[axis]}{'+' if d % 2 == 0 else '-'}",
                "axis": AXIS_NAMES[axis],
                "utilization": float(flat[li]),
                "busy_cycles": float(self.busy_cycles[u, d]),
                "packets": int(self.packets[u, d]),
            }
            if self.wire_bytes is not None:
                entry["wire_bytes"] = int(self.wire_bytes[u, d])
            if self.stall_cycles is not None:
                entry["stall_cycles"] = float(self.stall_cycles[u, d])
            if self.drops is not None:
                entry["drops"] = int(self.drops[u, d])
            out.append(entry)
        return out

    def effective_beta(self) -> Optional[np.ndarray]:
        """Measured cycles-per-byte of every link (NaN where idle).

        On a pristine run every entry equals the machine ``beta``; a
        fault-plan ``degraded_links`` multiplier shows up directly as
        ``multiplier * beta`` on the affected link."""
        if self.wire_bytes is None:
            return None
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(
                self.wire_bytes > 0,
                self.busy_cycles / np.maximum(self.wire_bytes, 1),
                np.nan,
            )

    def degraded_links(self, threshold: float = 1.25) -> list[dict]:
        """Links whose effective cycles-per-byte exceeds ``threshold *
        beta`` — fault-degraded (or pathologically slow) links, found
        without any reference run.  Requires a ``link_stats`` run."""
        eff = self.effective_beta()
        if eff is None:
            return []
        out = []
        p, ndirs = eff.shape
        bad = np.argwhere(
            np.nan_to_num(eff, nan=0.0) > threshold * self.beta
        )
        for u, d in bad:
            u, d = int(u), int(d)
            axis = d >> 1
            out.append(
                {
                    "node": u,
                    "coords": list(self._coords(u)),
                    "direction": (
                        f"{AXIS_NAMES[axis]}{'+' if d % 2 == 0 else '-'}"
                    ),
                    "effective_beta": float(eff[u, d]),
                    "slowdown": float(eff[u, d] / self.beta),
                    "busy_cycles": float(self.busy_cycles[u, d]),
                    "wire_bytes": int(self.wire_bytes[u, d]),
                }
            )
        out.sort(key=lambda e: e["slowdown"], reverse=True)
        return out

    # -------------------------------------------------------------- #
    # analytic-model diff
    # -------------------------------------------------------------- #

    def model_comparison(
        self,
        msg_bytes: int,
        params: Any = None,
        ratio_bounds: Optional[tuple[float, float]] = None,
        axis_spread: float = DEFAULT_AXIS_SPREAD,
    ) -> dict:
        """Diff measured per-link byte loads against the analytic model.

        :func:`repro.model.linkload.uniform_link_loads` predicts the
        *payload* bytes each directed link carries for a uniform
        all-to-all of ``msg_bytes`` per pair.  Measured wire bytes add a
        packet-header + rounding overhead that is *common to all axes*,
        so the per-axis measured/predicted ratios must (a) each sit
        inside the expected overhead band and (b) agree with each other
        within ``axis_spread`` (relative).  An axis whose ratio drifts
        from its peers carries misrouted or imbalanced load.

        With *params* (a :class:`~repro.model.machine.MachineParams`)
        the band is the *exact* single-message packetization overhead
        ``message_wire_bytes(m)/m`` within
        :data:`DEFAULT_RATIO_RTOL`; multi-phase strategies that
        repacketize en route (TPS/VMesh) need the looser default band.
        Requires a ``link_stats`` run (``wire_bytes``).
        """
        if params is None and self.machine is not None:
            from repro.model.machine import MachineParams

            params = MachineParams(**self.machine)
        if ratio_bounds is None:
            if params is not None:
                expected = params.message_wire_bytes(msg_bytes) / msg_bytes
                ratio_bounds = (
                    expected * (1.0 - DEFAULT_RATIO_RTOL),
                    expected * (1.0 + DEFAULT_RATIO_RTOL),
                )
            else:
                ratio_bounds = DEFAULT_RATIO_BOUNDS
        if self.wire_bytes is None:
            raise ValueError(
                "model_comparison requires a link_stats run (no wire-byte "
                "counters on this result)"
            )
        predicted = uniform_link_loads(self.shape, float(msg_bytes))
        per_axis = []
        ratios = []
        for a in range(self.shape.ndim):
            nlinks = self.links_per_axis[a]
            measured = (
                float(self.wire_bytes[:, 2 * a : 2 * a + 2].sum()) / nlinks
                if nlinks
                else 0.0
            )
            pred = float(predicted[a])
            ratio = measured / pred if pred > 0 else None
            if ratio is not None:
                ratios.append(ratio)
            per_axis.append(
                {
                    "axis": AXIS_NAMES[a],
                    "measured_bytes_per_link": measured,
                    "predicted_bytes_per_link": pred,
                    "ratio": ratio,
                }
            )
        if ratios:
            spread = (max(ratios) - min(ratios)) / max(ratios)
            in_bounds = all(
                ratio_bounds[0] <= r <= ratio_bounds[1] for r in ratios
            )
            agrees = in_bounds and spread <= axis_spread
        else:
            spread, agrees = 0.0, True
        return {
            "msg_bytes": msg_bytes,
            "per_axis": per_axis,
            "ratio_bounds": list(ratio_bounds),
            "axis_spread_tolerance": axis_spread,
            "axis_spread": spread,
            "agrees": agrees,
        }

    # -------------------------------------------------------------- #
    # summaries
    # -------------------------------------------------------------- #

    def summary(
        self, msg_bytes: Optional[int] = None, params: Any = None
    ) -> dict:
        """JSON-ready analytic summary of this run (the report sidecar's
        per-point payload)."""
        per_axis = self.axis_percent_of_peak()
        out: dict[str, Any] = {
            "time_cycles": self.time_cycles,
            "percent_of_peak": self.percent_of_peak(),
            "axis_percent_of_peak": {
                AXIS_NAMES[a]: per_axis[a] for a in range(self.shape.ndim)
            },
            "links_per_axis": {
                AXIS_NAMES[a]: self.links_per_axis[a]
                for a in range(self.shape.ndim)
            },
            "total_packets": int(self.packets.sum()),
            "hotspots": self.hotspots(),
            "phases": self.phase_table(),
        }
        if self.stall_cycles is not None:
            out["total_stall_cycles"] = float(self.stall_cycles.sum())
        if self.drops is not None:
            out["total_drops"] = int(self.drops.sum())
        if self.retx_by_node is not None:
            out["total_retx"] = int(self.retx_by_node.sum())
        if msg_bytes is not None and self.wire_bytes is not None:
            out["model"] = self.model_comparison(msg_bytes, params=params)
        out["degraded_links"] = self.degraded_links()
        return out

    def axis_node_utilization(self, axis: int) -> np.ndarray:
        """Per-node busy fraction on *axis* (mean of the node's two
        directed links) — the heatmap raster."""
        if self.time_cycles <= 0:
            return np.zeros(self.shape.nnodes)
        busy = self.busy_cycles[:, 2 * axis : 2 * axis + 2]
        return busy.mean(axis=1) / self.time_cycles
