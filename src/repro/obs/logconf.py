"""Structured logging setup shared by the CLI and ad-hoc scripts.

The package logs under the ``repro`` logger hierarchy
(``repro.runner.pool`` for sweep execution, ``repro.runner.cache`` for
cache anomalies, ``repro.experiments`` for driver progress).  Library
code only ever *emits*; this module is the single place that attaches a
handler, so importing repro never configures global logging behind an
application's back.
"""

from __future__ import annotations

import logging
import sys

#: Verbosity -> level for the ``repro`` logger tree.
_LEVELS = {-1: logging.ERROR, 0: logging.WARNING, 1: logging.INFO}


def setup_logging(verbosity: int = 0, stream=None) -> logging.Logger:
    """Attach one stderr handler to the ``repro`` logger.

    ``verbosity``: -1 (``--quiet``) errors only, 0 warnings (default),
    1 (``-v``) info/progress, >=2 (``-vv``) debug.  Idempotent: calling
    again reconfigures the existing handler instead of stacking new ones.
    """
    logger = logging.getLogger("repro")
    level = _LEVELS.get(min(verbosity, 1), logging.DEBUG)
    if verbosity >= 2:
        level = logging.DEBUG
    logger.setLevel(level)
    fmt = logging.Formatter(
        "%(asctime)s %(levelname)-7s %(name)s: %(message)s",
        datefmt="%H:%M:%S",
    )
    stream = stream if stream is not None else sys.stderr
    for h in list(logger.handlers):
        if getattr(h, "_repro_cli", False):
            logger.removeHandler(h)
    # Coordinated handler: writes share one lock with the sweep status
    # line (repro.obs.progress), so a log record lifts the line out of
    # its way instead of splicing into it.  Identical to a plain
    # StreamHandler when no status line is active.
    from repro.obs.progress import coordinated_handler

    handler = coordinated_handler(stream)
    handler.setFormatter(fmt)
    handler._repro_cli = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    logger.propagate = False
    return logger
