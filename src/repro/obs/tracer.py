"""Packet-lifecycle event tracer with bounded memory and two exporters.

The instrumented network (:mod:`repro.net.instrumented`) emits one event
row per packet-lifecycle transition:

========== ===================================================== =========
kind       meaning                                               fields
========== ===================================================== =========
``inject`` a packet left a node's CPU into an injection FIFO     node, pid
``link``   a link transmission (occupancy interval)              node, dir, dur, pid
``queue``  a packet enqueued behind others in a VC buffer        node, dir, depth, pid
``deliver``a packet drained by the destination CPU               node, pid, src, t0 (inject time), phase, final
``drop``   a lossy link ate a packet (fault runs)                node, dir, pid
``retx``   the reliability layer re-sent a timed-out packet      node, seq, attempt
``reroute``a hop forced off the minimal torus path by faults     node, dir, pid
========== ===================================================== =========

Rows live in a ring buffer (``deque(maxlen=capacity)``): a trace never
grows without bound, and when it overflows it keeps the *latest* events —
the end of a collective is where stragglers and throttle windows show up.
``sample`` keeps every packet whose id is ``0 (mod sample)``; sampling by
packet id (assigned deterministically at injection) means the same packets
are kept on every run, so traces are bit-identical across job counts.

Two exporters:

* :func:`write_jsonl` — one JSON object per line, sorted by (time, seq);
  greppable, diffable, and the format of the committed golden trace.
* :func:`write_chrome_trace` — Chrome trace-event JSON loadable in
  Perfetto (https://ui.perfetto.dev): each node is a "process", each link
  direction a "thread", link occupancy intervals render as duration
  slices and the other lifecycle events as instants.  Timestamps are
  simulated cycles, displayed as if microseconds.
"""

from __future__ import annotations

import json
from collections import deque
from typing import IO, Iterable, Optional, Union

#: Direction labels for 1-3 dimensions (matches repro.net.topology).
_DIR_NAMES = ("+X", "-X", "+Y", "-Y", "+Z", "-Z")

#: Default ring-buffer capacity (events).
DEFAULT_CAPACITY = 500_000

#: Event kinds a tracer can record, in export order.
EVENT_KINDS = (
    "inject", "link", "queue", "deliver", "drop", "retx", "reroute",
)

#: Per-kind field names following (t, kind).
_FIELDS = {
    "inject": ("node", "pid"),
    "link": ("node", "dir", "dur", "pid"),
    "queue": ("node", "dir", "depth", "pid"),
    "deliver": ("node", "pid", "src", "t0", "phase", "final"),
    "drop": ("node", "dir", "pid"),
    "retx": ("node", "seq", "attempt"),
    "reroute": ("node", "dir", "pid"),
}


class Tracer:
    """Bounded, sampled recorder of simulation lifecycle events.

    The instrumented network calls :meth:`want` (sampling gate) and the
    ``emit_*`` methods; everything else is export-side.
    """

    __slots__ = ("capacity", "sample", "kinds", "events", "total", "_seq")

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        sample: int = 1,
        kinds: Optional[Iterable[str]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if sample < 1:
            raise ValueError("sample must be >= 1")
        self.capacity = capacity
        self.sample = sample
        if kinds is None:
            self.kinds = frozenset(EVENT_KINDS)
        else:
            kinds = frozenset(kinds)
            unknown = kinds - frozenset(EVENT_KINDS)
            if unknown:
                raise ValueError(
                    f"unknown trace event kinds: {sorted(unknown)}; "
                    f"known: {list(EVENT_KINDS)}"
                )
            self.kinds = kinds
        #: Ring of (t, seq, kind, *fields) rows; seq makes sort stable.
        self.events: deque[tuple] = deque(maxlen=capacity)
        #: Events emitted (recorded + overwritten); ``total - len(events)``
        #: is how many the ring dropped.
        self.total = 0
        self._seq = 0

    # -------------------------------------------------------------- #
    # recording (hot on traced runs only)
    # -------------------------------------------------------------- #

    def want(self, pid: int) -> bool:
        """Whether the packet with id *pid* is in the sample."""
        return pid % self.sample == 0

    def emit(self, t: float, kind: str, *fields) -> None:
        self._seq += 1
        self.total += 1
        self.events.append((t, self._seq, kind) + fields)

    # -------------------------------------------------------------- #
    # export
    # -------------------------------------------------------------- #

    @property
    def dropped(self) -> int:
        """Events the ring buffer overwrote."""
        return self.total - len(self.events)

    def event_counts(self) -> dict[str, int]:
        """Recorded (retained) events per kind."""
        counts: dict[str, int] = {}
        for row in self.events:
            k = row[2]
            counts[k] = counts.get(k, 0) + 1
        return counts

    def rows(self) -> list[tuple]:
        """Retained rows sorted by (time, emission order)."""
        return sorted(self.events)

    def to_payload(self) -> dict:
        """JSON-native snapshot (rides the runner codec across workers)."""
        return {
            "total": self.total,
            "dropped": self.dropped,
            "sample": self.sample,
            "capacity": self.capacity,
            "counts": {k: v for k, v in sorted(self.event_counts().items())},
            "events": [list(r) for r in self.rows()],
        }


def _named_rows(payload: dict) -> Iterable[dict]:
    """Rows of a tracer payload as name->value dicts (JSONL records)."""
    for row in payload["events"]:
        t, _seq, kind = row[0], row[1], row[2]
        rec = {"t": t, "kind": kind}
        for name, value in zip(_FIELDS[kind], row[3:]):
            rec[name] = value
        yield rec


def write_jsonl(
    payload: dict, dest: Union[str, IO[str]], point: Optional[str] = None
) -> int:
    """Write a tracer payload as JSON Lines; returns rows written.

    *dest* is a path or an open text file (multi-point traces append to
    one handle).  *point* adds a ``point`` label field to every row.
    """
    close = False
    if isinstance(dest, str):
        fh = open(dest, "w", encoding="utf-8")
        close = True
    else:
        fh = dest
    n = 0
    try:
        for rec in _named_rows(payload):
            if point is not None:
                rec["point"] = point
            fh.write(json.dumps(rec, sort_keys=True) + "\n")
            n += 1
    finally:
        if close:
            fh.close()
    return n


def _dir_name(d: int) -> str:
    return _DIR_NAMES[d] if 0 <= d < len(_DIR_NAMES) else f"dir{d}"


def chrome_events(
    payload: dict, pid_base: int = 0, label: str = ""
) -> Iterable[dict]:
    """Chrome trace-event records for one tracer payload.

    ``pid_base`` offsets the Perfetto process ids so several points can
    share one trace file without their tracks colliding; ``label``
    prefixes the process names.
    """
    seen_pids: set[tuple[int, int]] = set()
    prefix = f"{label}:" if label else ""
    for row in payload["events"]:
        t, _seq, kind = row[0], row[1], row[2]
        fields = dict(zip(_FIELDS[kind], row[3:]))
        node = fields.get("node", 0)
        cpid = pid_base + node
        # Link events get their own thread per direction; lifecycle
        # instants share thread 0 ("cpu").
        tid = fields["dir"] + 1 if "dir" in fields else 0
        if (cpid, tid) not in seen_pids:
            if not any(p == cpid for p, _ in seen_pids):
                yield {
                    "ph": "M", "name": "process_name", "pid": cpid,
                    "args": {"name": f"{prefix}node {node}"},
                }
            seen_pids.add((cpid, tid))
            tname = "cpu" if tid == 0 else f"link {_dir_name(tid - 1)}"
            yield {
                "ph": "M", "name": "thread_name", "pid": cpid, "tid": tid,
                "args": {"name": tname},
            }
        if kind == "link":
            yield {
                "ph": "X", "name": f"pkt {fields['pid']}", "cat": "link",
                "pid": cpid, "tid": tid, "ts": t, "dur": fields["dur"],
                "args": {"pid": fields["pid"]},
            }
        else:
            args = {
                k: v for k, v in fields.items() if k not in ("node", "dir")
            }
            yield {
                "ph": "i", "s": "t", "name": kind, "cat": kind,
                "pid": cpid, "tid": tid, "ts": t, "args": args,
            }


def write_chrome_trace(
    payloads: Union[dict, list],
    path: str,
    labels: Optional[list[str]] = None,
    extra_records: Optional[Iterable[dict]] = None,
) -> int:
    """Write one or many tracer payloads as a Perfetto-loadable trace.

    *payloads* is a single payload or a list (one per simulation point);
    node tracks of point *i* are namespaced into their own process-id
    range.  *extra_records* appends pre-built trace-event records (e.g.
    the phase-profiler span track,
    :func:`repro.obs.profile.profile_chrome_events`) into the same
    document.  Returns the number of trace records written.
    """
    if isinstance(payloads, dict):
        payloads = [payloads]
    records: list[dict] = []
    stride = 1
    for p in payloads:
        for row in p["events"]:
            fields = dict(zip(_FIELDS[row[2]], row[3:]))
            stride = max(stride, fields.get("node", 0) + 1)
    for i, p in enumerate(payloads):
        label = labels[i] if labels and i < len(labels) else (
            f"point{i}" if len(payloads) > 1 else ""
        )
        records.extend(chrome_events(p, pid_base=i * stride, label=label))
    if extra_records is not None:
        records.extend(extra_records)
    doc = {"traceEvents": records, "displayTimeUnit": "ns"}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, separators=(",", ":"))
        fh.write("\n")
    return len(records)
