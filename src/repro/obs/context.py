"""Process-wide observability context and per-sweep collection.

The experiment drivers funnel every simulation through
:func:`repro.runner.run_points`, but their signatures don't carry an
observability argument (and shouldn't — tracing a table reproduction is a
diagnosis mode, not an input that changes its result).  The CLI instead
*activates* an :class:`~repro.obs.config.ObsConfig` here; ``run_points``
consults it when its own ``obs`` argument is ``None``, and deposits each
executed point's observability payload (trace + metrics, already
JSON-native from the canonical codec) into the active collector in input
order — so a ``jobs=4`` sweep collects exactly what a ``jobs=1`` sweep
does.

Use as a context manager::

    with observe(ObsConfig(trace=True)) as collected:
        run_experiment("fig1_ar_midplane", scale="tiny")
    write_chrome_trace([c["trace"] for c in collected], "trace.json")
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

from repro.obs.config import ObsConfig

#: Active config (None = observability off) and its collector list.
_active: Optional[ObsConfig] = None
_collected: Optional[list] = None


def active_config() -> Optional[ObsConfig]:
    """The process-wide config, or None when observability is off."""
    return _active


def collect(point_label: str, payload: dict) -> None:
    """Deposit one executed point's observability payload (runner hook)."""
    if _collected is not None:
        _collected.append(dict(payload, point=point_label))


def collected() -> list:
    """Payloads collected so far under the active context."""
    return list(_collected) if _collected is not None else []


@contextlib.contextmanager
def observe(cfg: ObsConfig) -> Iterator[list]:
    """Activate *cfg* for the dynamic extent of the block.

    Yields the live collector list: one entry per executed simulation
    point, in sweep input order, each carrying ``point`` (label),
    ``metrics`` and/or ``trace`` keys.  Nesting is not supported (the
    inner context wins, restoring the outer one on exit).
    """
    global _active, _collected
    prev = (_active, _collected)
    _active = cfg
    _collected = []
    try:
        yield _collected
    finally:
        _active, _collected = prev
