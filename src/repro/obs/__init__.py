"""End-to-end observability: tracing, metrics and run provenance.

Three layers, all opt-in and all zero-cost when off (the plain simulator
classes carry no instrumentation and no branches):

* **Event tracer** (:mod:`repro.obs.tracer`) — packet lifecycle events
  and link-occupancy intervals in a bounded, sampled ring buffer,
  exportable as JSONL or a Perfetto-loadable Chrome trace.
* **Metrics registry** (:mod:`repro.obs.metrics`) — counters, gauges,
  latency histograms and per-axis link-utilization time series.
* **Provenance** (:mod:`repro.obs.provenance`) — schema/seed/git/config
  fingerprint plus wall-vs-simulated time, attached to every experiment
  result.
* **Link analytics** (:mod:`repro.obs.linkstats`) — per-link/per-VC
  utilization, percent-of-peak, hot-spot and model-diff analysis over
  the counters a ``link_stats`` run collects.
* **Run reports** (:mod:`repro.obs.report`) — self-contained HTML +
  JSON-sidecar reports over a sweep's collected payloads (the CLI's
  ``--report DIR``).  Import it as ``repro.obs.report`` — it pulls in
  no simulator code, but is kept out of this namespace so importing
  :mod:`repro.obs.config` stays featherweight for pool workers.
* **Sweep telemetry** (:mod:`repro.obs.progress`) — the live status
  line, worker-heartbeat display and single-writer stderr coordinator
  the runner drives during a sweep.
* **Phase profiler** (:mod:`repro.obs.profile`) — per-(phase, axis)
  busy-cycle attribution with wall/CPU estimates and a Chrome-trace
  span track (``ObsConfig(profile=True)`` / the CLI's ``--profile``).
* **Run history** (:mod:`repro.obs.history`) — append-only JSONL store
  of experiment/bench results with deterministic payload digests and
  regression/improvement/neutral diff verdicts (``--history DIR`` /
  ``python -m repro.obs.history``).

Activation: pass an :class:`ObsConfig` to
:func:`repro.api.simulate_alltoall` / :func:`repro.runner.run_points`,
or wrap a whole sweep in :func:`observe` (what the CLI's ``--trace`` /
``--metrics`` flags do).  See DESIGN.md section 10.
"""

from repro.obs.config import ObsConfig
from repro.obs.context import active_config, collect, collected, observe
from repro.obs.linkstats import LinkAnalytics, parse_point_label
from repro.obs.logconf import setup_logging
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
    aggregate_metrics,
)
from repro.obs.history import RunHistory, diff_records, format_diff
from repro.obs.profile import (
    PhaseProfiler,
    merge_profiles,
    profile_chrome_events,
)
from repro.obs.progress import (
    SweepProgress,
    coordinated_handler,
    coordinator,
    progress_wanted,
    resolve_progress,
)
from repro.obs.provenance import (
    config_fingerprint,
    git_describe,
    provenance_record,
)
from repro.obs.tracer import (
    EVENT_KINDS,
    Tracer,
    chrome_events,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "ObsConfig",
    "active_config",
    "collect",
    "collected",
    "observe",
    "LinkAnalytics",
    "parse_point_label",
    "setup_logging",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TimeSeries",
    "aggregate_metrics",
    "RunHistory",
    "diff_records",
    "format_diff",
    "PhaseProfiler",
    "merge_profiles",
    "profile_chrome_events",
    "SweepProgress",
    "coordinated_handler",
    "coordinator",
    "progress_wanted",
    "resolve_progress",
    "config_fingerprint",
    "git_describe",
    "provenance_record",
    "EVENT_KINDS",
    "Tracer",
    "chrome_events",
    "write_chrome_trace",
    "write_jsonl",
]
