"""Metrics registry: counters, gauges and time-bucketed series.

The simulator's end-of-run summary (:class:`repro.net.trace.SimStats`)
grew one ad-hoc field per observable; this module replaces that growth
path with a small registry of named instruments that an instrumented
network (:mod:`repro.net.instrumented`) updates while it runs:

* :class:`Counter` — monotone event counts (packets dropped per axis,
  queue-full stalls, ...);
* :class:`Gauge` — last/peak of an instantaneous quantity (forward
  backlog, injection-FIFO depth);
* :class:`Histogram` — power-of-two bucketed value distribution
  (delivery latencies);
* :class:`TimeSeries` — a value accumulated into fixed-width time
  buckets (per-axis link-busy cycles over time, the paper's "which axis
  saturates when" view).  The bucket width doubles (and the series
  re-bins) whenever the bucket count would exceed a cap, so a series is
  bounded regardless of how long the run gets.

Everything exports to plain JSON types via :meth:`MetricsRegistry.to_dict`
so metrics payloads ride the runner's canonical codec unchanged.

**Zero-overhead contract:** nothing here is ever touched by an
uninstrumented run.  The plain :class:`~repro.net.simulator.TorusNetwork`
carries no registry, no instrument and no ``if enabled`` branch; the
registry only exists on the instrumented subclasses that
:func:`repro.net.faultsim.build_network` instantiates when an
:class:`~repro.obs.config.ObsConfig` asks for metrics.
"""

from __future__ import annotations

from typing import Optional

#: Default cap on buckets per time series (re-bin by doubling beyond it).
DEFAULT_MAX_BUCKETS = 512

#: Default initial time-bucket width, cycles.  Tiny runs stay at this
#: resolution; long runs re-bin upward to honor the bucket cap.
DEFAULT_BUCKET_CYCLES = 1024.0


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value of an instantaneous quantity, plus its peak."""

    __slots__ = ("value", "peak", "samples")

    def __init__(self) -> None:
        self.value = 0.0
        self.peak = 0.0
        self.samples = 0

    def set(self, v: float) -> None:
        self.value = v
        self.samples += 1
        if v > self.peak:
            self.peak = v

    def to_dict(self) -> dict:
        return {
            "type": "gauge",
            "value": self.value,
            "peak": self.peak,
            "samples": self.samples,
        }


class Histogram:
    """Power-of-two bucketed distribution of a non-negative value.

    Bucket ``i`` counts observations in ``[2**(i-1), 2**i)`` (bucket 0
    counts values < 1).  Cheap to update, bounded in size, and precise
    enough for latency-shape questions ("is the tail 2x or 20x the
    median?").
    """

    __slots__ = ("counts", "total", "sum", "min", "max")

    def __init__(self) -> None:
        self.counts: list[int] = []
        self.total = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, v: float) -> None:
        self.total += 1
        self.sum += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        b = 0
        x = v
        while x >= 1.0:
            x /= 2.0
            b += 1
        counts = self.counts
        if b >= len(counts):
            counts.extend([0] * (b + 1 - len(counts)))
        counts[b] += 1

    def to_dict(self) -> dict:
        return {
            "type": "histogram",
            "buckets_pow2": list(self.counts),
            "count": self.total,
            "sum": self.sum,
            "min": self.min if self.total else 0.0,
            "max": self.max,
            "mean": (self.sum / self.total) if self.total else 0.0,
        }


class TimeSeries:
    """A quantity accumulated into fixed-width time buckets.

    ``add(t, v)`` adds *v* to the bucket containing time *t*.  When the
    bucket index would exceed ``max_buckets``, the bucket width doubles
    and existing buckets are pairwise re-binned, so memory is bounded for
    arbitrarily long runs while short runs keep fine resolution.  An
    interval that spans buckets is attributed entirely to its start
    bucket (documented approximation; bucket widths are far larger than
    one link service time in practice).
    """

    __slots__ = ("bucket_cycles", "max_buckets", "buckets")

    def __init__(
        self,
        bucket_cycles: float = DEFAULT_BUCKET_CYCLES,
        max_buckets: int = DEFAULT_MAX_BUCKETS,
    ) -> None:
        if bucket_cycles <= 0:
            raise ValueError("bucket_cycles must be positive")
        if max_buckets < 2:
            raise ValueError("max_buckets must be >= 2")
        self.bucket_cycles = float(bucket_cycles)
        self.max_buckets = max_buckets
        self.buckets: list[float] = []

    def add(self, t: float, v: float) -> None:
        i = int(t / self.bucket_cycles)
        while i >= self.max_buckets:
            # Double the bucket width and fold pairs together.
            b = self.buckets
            self.buckets = [
                b[j] + (b[j + 1] if j + 1 < len(b) else 0.0)
                for j in range(0, len(b), 2)
            ]
            self.bucket_cycles *= 2.0
            i = int(t / self.bucket_cycles)
        b = self.buckets
        if i >= len(b):
            b.extend([0.0] * (i + 1 - len(b)))
        b[i] += v

    def to_dict(self) -> dict:
        return {
            "type": "timeseries",
            "bucket_cycles": self.bucket_cycles,
            "buckets": list(self.buckets),
        }


class MetricsRegistry:
    """Named instruments for one simulation run.

    ``counter``/``gauge``/``histogram``/``timeseries`` get-or-create by
    name (idempotent, so instrumentation sites need no setup phase).
    """

    __slots__ = ("_instruments", "default_bucket_cycles", "max_buckets")

    def __init__(
        self,
        default_bucket_cycles: float = DEFAULT_BUCKET_CYCLES,
        max_buckets: int = DEFAULT_MAX_BUCKETS,
    ) -> None:
        self._instruments: dict[str, object] = {}
        self.default_bucket_cycles = default_bucket_cycles
        self.max_buckets = max_buckets

    def _get(self, name: str, cls, *args):
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(*args)
            self._instruments[name] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, not {cls.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def timeseries(
        self, name: str, bucket_cycles: Optional[float] = None
    ) -> TimeSeries:
        return self._get(
            name,
            TimeSeries,
            bucket_cycles or self.default_bucket_cycles,
            self.max_buckets,
        )

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def to_dict(self) -> dict:
        """JSON-native snapshot, sorted by instrument name."""
        return {
            name: self._instruments[name].to_dict()  # type: ignore[attr-defined]
            for name in self.names()
        }


def aggregate_metrics(per_point: list[dict]) -> dict:
    """Combine per-point metric snapshots into one summary.

    Counters sum; gauges keep the max peak; histograms merge bucketwise;
    time series are left per-point (summing series with different bucket
    widths would be misleading) but their totals are summed.
    """
    out: dict[str, dict] = {}
    for snap in per_point:
        for name, m in snap.items():
            kind = m.get("type")
            agg = out.get(name)
            if agg is None:
                if kind == "counter":
                    out[name] = {"type": "counter", "value": m["value"]}
                elif kind == "gauge":
                    out[name] = {
                        "type": "gauge",
                        "peak": m["peak"],
                        "samples": m["samples"],
                    }
                elif kind == "histogram":
                    out[name] = {
                        "type": "histogram",
                        "buckets_pow2": list(m["buckets_pow2"]),
                        "count": m["count"],
                        "sum": m["sum"],
                        "min": m["min"],
                        "max": m["max"],
                    }
                elif kind == "timeseries":
                    out[name] = {
                        "type": "timeseries",
                        "total": sum(m["buckets"]),
                        "points": 1,
                    }
                continue
            if kind == "counter":
                agg["value"] += m["value"]
            elif kind == "gauge":
                agg["peak"] = max(agg["peak"], m["peak"])
                agg["samples"] += m["samples"]
            elif kind == "histogram":
                a, b = agg["buckets_pow2"], m["buckets_pow2"]
                if len(b) > len(a):
                    a.extend([0] * (len(b) - len(a)))
                for i, v in enumerate(b):
                    a[i] += v
                agg["count"] += m["count"]
                agg["sum"] += m["sum"]
                agg["min"] = min(agg["min"], m["min"])
                agg["max"] = max(agg["max"], m["max"])
            elif kind == "timeseries":
                agg["total"] += sum(m["buckets"])
                agg["points"] += 1
    for name, agg in out.items():
        if agg.get("type") == "histogram" and agg["count"]:
            agg["mean"] = agg["sum"] / agg["count"]
    return out
