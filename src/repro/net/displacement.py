"""Wrap-aware shortest-displacement lookup tables.

This module is the single home of the "wrap / mod / halfbits" branch
cluster that decides which way around the torus a packet travels on one
axis.  The same logic used to be written out inline four times in
:mod:`repro.net.simulator` (``_disp``, ``_dor_dir``, ``_vc_for_link``,
``_try_send_head``) and consulted again by the fault-aware subclass; it is
now computed **once per shape** into flat per-axis lookup tables, and the
hot path does a couple of list indexings instead of a mod and three
comparisons per routing decision.

Semantics (pinned by ``tests/net/test_displacement.py`` against the
original inline logic):

* mesh axis: the displacement is the plain coordinate difference;
* torus axis: the difference is reduced to the representative of smallest
  magnitude in ``(-n/2, n/2]``;
* an exact-half displacement on an *even* torus axis is minimal both ways;
  the packet's per-axis ``halfbits`` bit picks the sign (bit set resolves
  ``+``), so the two directions carry equal load in aggregate — a fixed
  tie-break would overload one direction by 25 % and cap all-to-all at
  80 % of the Eq. 2 peak.

Tables are indexed ``[axis][halfbit][ccur * n + cdst]`` with ``n`` the
axis extent.  For axes where the halfbit cannot matter (odd extent, mesh,
extent <= 2) both halfbit variants share one list object, so a 3-D shape
costs at most six small lists.  :func:`displacement_tables` memoizes per
shape: every simulation point of a sweep over the same partition reuses
the same table objects.
"""

from __future__ import annotations

from functools import lru_cache

from repro.model.torus import TorusShape


def reference_displacement(
    extent: int, wrap: bool, delta: int, halfbit: int
) -> int:
    """Scalar reference: the simulator's original inline branch cluster.

    ``delta`` is the raw coordinate difference ``cdst - ccur``; ``halfbit``
    is the packet's tie-break bit for this axis (nonzero resolves ``+``).
    Kept as the executable specification the tables are built from (and
    tested against); never called on the hot path.
    """
    d = delta
    if wrap:
        d %= extent
        half = extent // 2
        if d > half:
            d -= extent
        elif d == half and not (extent & 1) and not halfbit:
            d -= extent
    return d


class DisplacementTables:
    """Per-axis displacement and minimal-direction lookup tables.

    Attributes
    ----------
    disp:
        ``disp[axis][halfbit][ccur * n + cdst]`` -> signed shortest
        displacement on *axis* (wrap-aware).
    dirs:
        Same indexing -> direction index ``2*axis + (0 if disp > 0 else
        1)``, or ``-1`` when the displacement is zero (axis resolved).
    """

    __slots__ = ("shape", "disp", "dirs")

    def __init__(self, shape: TorusShape) -> None:
        self.shape = shape
        disp: list[tuple[list[int], list[int]]] = []
        dirs: list[tuple[list[int], list[int]]] = []
        for axis in range(shape.ndim):
            n = shape.dims[axis]
            wrap = shape.wrap_effective(axis)
            per_hb_disp: list[list[int]] = []
            per_hb_dir: list[list[int]] = []
            for hb in (0, 1):
                dtab = [0] * (n * n)
                rtab = [0] * (n * n)
                for cc in range(n):
                    base = cc * n
                    for cd in range(n):
                        d = reference_displacement(n, wrap, cd - cc, hb)
                        dtab[base + cd] = d
                        rtab[base + cd] = (
                            -1 if d == 0 else 2 * axis + (0 if d > 0 else 1)
                        )
                per_hb_disp.append(dtab)
                per_hb_dir.append(rtab)
            if per_hb_disp[0] == per_hb_disp[1]:
                # Halfbit can't matter here (mesh, odd, or tiny extent):
                # share one table object for both variants.
                per_hb_disp[1] = per_hb_disp[0]
                per_hb_dir[1] = per_hb_dir[0]
            disp.append((per_hb_disp[0], per_hb_disp[1]))
            dirs.append((per_hb_dir[0], per_hb_dir[1]))
        self.disp = tuple(disp)
        self.dirs = tuple(dirs)

    # Convenience accessors (tests, analysis; the simulator indexes the
    # raw tables directly).

    def displacement(
        self, axis: int, ccur: int, cdst: int, halfbits: int = 0
    ) -> int:
        """Shortest signed displacement ``ccur -> cdst`` on *axis*."""
        n = self.shape.dims[axis]
        return self.disp[axis][(halfbits >> axis) & 1][ccur * n + cdst]

    def direction(
        self, axis: int, ccur: int, cdst: int, halfbits: int = 0
    ) -> int:
        """Minimal direction index on *axis*, or -1 when already aligned."""
        n = self.shape.dims[axis]
        return self.dirs[axis][(halfbits >> axis) & 1][ccur * n + cdst]


@lru_cache(maxsize=128)
def displacement_tables(shape: TorusShape) -> DisplacementTables:
    """Memoized tables for *shape* (shared across simulator instances —
    every point of a sweep over one partition reuses the same objects)."""
    return DisplacementTables(shape)
