"""Event-driven packet-level simulator of the BG/L torus network.

Models the router micro-architecture the paper's analysis rests on
(Sections 2-4):

* input-queued routers with per-(direction, VC) buffers and token (credit)
  flow control — a sender transmits only after reserving a downstream slot;
* two *dynamic* VCs routed adaptively (JSQ: the candidate (direction, VC)
  with the most free downstream tokens wins) plus one *bubble* escape VC
  routed in dimension order, with the bubble rule (a packet newly entering
  a bubble ring needs two free slots, a continuing one needs one)
  preventing deadlock;
* per-packet routing mode: ``ADAPTIVE`` (dynamic VCs, bubble as escape) or
  ``DETERMINISTIC`` (bubble VC only, dimension order) — the AR vs DR
  distinction of Section 3;
* injection FIFOs grouped so that strategies (TPS) can reserve FIFOs per
  phase, making phase-1 packets never queue behind phase-2 packets;
* a node CPU that can keep only ~4 links busy (Section 2): injection,
  reception draining and software forwarding all share one byte-rate
  budget, served round-robin — this is what makes TPS CPU-bound on a
  512-node midplane (Table 3) while through-traffic is routed entirely in
  "hardware" (virtual cut-through) and costs the CPU nothing.

Timing is store-and-forward at packet granularity (service = bytes * beta
per link hop, plus a per-hop router latency); this approximates virtual
cut-through faithfully for throughput studies because all-to-all traffic
is deeply pipelined (the approximation is documented in DESIGN.md).

The simulation is deterministic for a given (program, seed): arbitration
uses rotating priorities, not random draws.

Implementation notes: this is the package's hottest code.  The v2 core is
struct-of-arrays end to end (DESIGN.md §13 describes the layout in full);
results are bit-identical to the straightforward object-per-packet
implementation.  The load-bearing structures:

* **Packet pool.**  Packets live as integer handles into the parallel
  columns of a :class:`repro.net.packet.PacketPool`; a real ``Packet``
  object is materialized only at the delivery boundary for the node
  program.  No per-hop allocation, no attribute dictionaries.

* **Integer timebase.**  All event times are cycle values scaled by
  ``TICK_SCALE`` = 2**64.  Scaling by a power of two is exact and commutes
  with IEEE-754 rounding, so arithmetic on scaled "ticks" is an exact
  isomorphism of the unscaled arithmetic — and every physically meaningful
  duration (>= 2**-11 cycles) scales to an *integer-valued* double.
  Unscaling by ``TICK_UNSCALE`` at the result boundary reproduces the
  historical floats bit for bit.

* **Calendar-queue scheduler.**  Events at the same tick share a bucket
  (``dict`` keyed by tick); a heap orders only the *distinct* pending
  ticks.  When time advances, the whole bucket is drained into the
  immediate FIFO and consumed in posting order, which reproduces the
  global (time, seq) order of a plain heap without storing sequence
  numbers at all (events posted while processing tick T land either in
  the FIFO, behind the bucket's remains, or in strictly later buckets).

* **Interned events.**  Five of the six event kinds are per-entity
  constants — ``(kind, a, b, c)`` tuples built once at construction —
  so posting them allocates nothing.  Only ARRIVE carries a per-flight
  payload (destination, input port, packet handle).

* **Flat ring buffers + port bitmask.**  VC queues and injection FIFOs
  are fixed-stride rings over one flat list; reception FIFOs over
  another.  A per-node bitmask of non-empty ports lets arbitration
  rotate over waiting ports only, via low-bit extraction.

* wrap-aware displacement decisions index precomputed per-axis tables
  (:mod:`repro.net.displacement`) instead of re-running the mod/halfbits
  branch cluster on every routing decision.

``tests/net`` pins the semantics; the golden trace and differential
harness pin bit-identity.
"""

from __future__ import annotations

import gc
import itertools
from collections import deque
from heapq import heappop, heappush
from typing import Iterator, Optional

import numpy as np

from repro.model.machine import MachineParams
from repro.model.torus import TorusShape
from repro.net.config import NetworkConfig
from repro.net.displacement import displacement_tables
from repro.net.errors import DeadlockError, SimulationLimitError
from repro.net.packet import PacketPool, PacketSpec, RoutingMode
from repro.net.program import NodeProgram
from repro.net.topology import Topology
from repro.net.trace import SimStats, SimulationResult

# --------------------------------------------------------------------- #
# integer timebase
# --------------------------------------------------------------------- #
#
# Event times are cycles scaled by 2**64.  Multiplying a double by a
# power of two is exact (only the exponent changes), and IEEE-754
# rounding commutes with it: fl(a*S + b*S) == fl(a + b) * S.  So the
# scheduler runs on integer-valued "tick" doubles while every derived
# statistic, unscaled at the boundary, is bit-identical to the unscaled
# computation.  Any duration of at least 2**-11 cycles (all physical
# costs are >= 1 cycle) scales to an exact integer.

#: Ticks per cycle (2.0 ** 64).
TICK_SCALE = 18446744073709551616.0
#: Cycles per tick (2.0 ** -64); multiplication by this is exact.
TICK_UNSCALE = 2.0 ** -64

# Event kinds (dispatch on small ints for speed).
_EV_LINK_FREE = 0
_EV_ARRIVE = 1
_EV_TOKEN = 2
_EV_CPU_DONE = 3
_EV_CPU_WAKE = 4
_EV_FIFO_FREE = 5
# Extra kinds used by the fault-aware subclass (kept here so every event
# kind has one home).
_EV_RETX = 6
_EV_OUTAGE = 7

# CPU work sources, round-robined.
_SRC_RECV = 0
_SRC_FORWARD = 1
_SRC_PLAN = 2

_ADAPTIVE = int(RoutingMode.ADAPTIVE)

#: The network currently inside :meth:`TorusNetwork.run`, if any.  Set
#: and cleared per run; read *cross-thread* by the heartbeat sampler
#: (:mod:`repro.runner.supervise`) via :func:`live_progress`.  A plain
#: dict slot: assignment is atomic, and the readers tolerate torn or
#: slightly stale values — this is telemetry, not synchronization.
_live: dict = {"net": None}


def live_progress():
    """``(sim_cycles, delivered_packets)`` of the in-flight run, or None.

    Best-effort and read-only: sampled from another thread while the
    main loop mutates the same fields, so the two numbers may be
    mutually inconsistent by an event or two.  Good enough to tell a
    progressing simulation from a wedged one, which is its only job.
    """
    net = _live["net"]
    if net is None:
        return None
    try:
        return (net._now * TICK_UNSCALE, net.stats.delivered_packets)
    except (AttributeError, TypeError):  # pragma: no cover - teardown race
        return None


class TorusNetwork:
    """One simulated BG/L partition.

    Construct once per run; :meth:`run` executes a node program to
    quiescence and returns a :class:`SimulationResult`.
    """

    __slots__ = (
        "shape", "params", "config", "topo", "stats",
        "_p", "_ndim", "_ndirs", "_nvcs", "_ndyn", "_bubble", "_nfifos",
        "_vc_depth", "_bubble_entry",
        "_nbr", "_coord", "_colm", "_dims", "_wrap", "_half",
        "_dtab", "_dirtab",
        "_link_busy", "_tokens", "_fifo_free", "_recv_free",
        "_q_buf", "_q_hd", "_q_n", "_q_shift", "_q_mask",
        "_rp_buf", "_rp_hd", "_rp_n", "_rp_shift", "_rp_mask",
        "_cpu_active", "_cpu_rr", "_cpu_pending",
        "_fwd_pending", "_plan_next", "_plan_iter", "_plan_last_start",
        "_pace", "_fifo_rr", "_ngroups",
        "_arb", "_nports", "_nvp", "_queued", "_pmask",
        "_port_dir", "_port_vc", "_port_axis", "_pbit", "_nbit", "_pm_vc",
        "_tok_evs", "_fifo_evs", "_link_evs", "_cpu_evs", "_wake_evs",
        "_buckets", "_theap", "_immediate", "_now", "_pid", "_busy_cycles",
        "_link_packets", "_program", "_num_links",
        "_pool", "_P_pid", "_P_src", "_P_dst", "_P_wire", "_P_mode",
        "_P_tag", "_P_final", "_P_inject", "_P_hops", "_P_vc", "_P_half",
        "_P_seq", "_P_down",
        "_beta", "_hop_latency", "_cpu_fixed", "_cpu_incr", "_alpha",
        "_svc_f", "_svc_t", "_cpu_f", "_cpu_t", "_tbl_len",
        "_hop_t",
    )

    def __init__(
        self,
        shape: TorusShape,
        params: Optional[MachineParams] = None,
        config: Optional[NetworkConfig] = None,
    ) -> None:
        self.shape = shape
        self.params = params or MachineParams.bluegene_l()
        self.config = config or NetworkConfig.from_machine(self.params)
        self.topo = Topology(shape)

        p = shape.nnodes
        cfg = self.config
        self._p = p
        self._ndim = shape.ndim
        self._ndirs = self.topo.ndirs
        self._nvcs = cfg.num_vcs
        self._ndyn = cfg.num_dynamic_vcs
        self._bubble = cfg.bubble_vc
        self._nfifos = cfg.num_injection_fifos
        self._vc_depth = cfg.vc_depth
        self._bubble_entry = cfg.bubble_entry_tokens

        # --- topology tables as plain Python lists (hot path) ------------
        self._nbr: list[list[int]] = self.topo.neighbor.tolist()
        # _coord[axis][node]
        self._coord: list[list[int]] = [
            self.topo.coords[:, a].tolist() for a in range(self._ndim)
        ]
        self._dims = shape.dims
        self._wrap = tuple(shape.wrap_effective(a) for a in range(self._ndim))
        self._half = tuple(d // 2 for d in shape.dims)
        # Displacement/direction tables (shared per shape, see
        # repro.net.displacement) and row-premultiplied coordinates so a
        # routing decision is two list indexings and an add.
        dt = displacement_tables(shape)
        self._dtab = dt.disp
        self._dirtab = dt.dirs
        self._colm: list[list[int]] = [
            [c * shape.dims[a] for c in self._coord[a]]
            for a in range(self._ndim)
        ]

        # --- network state ------------------------------------------------
        ndirs, nvcs = self._ndirs, self._nvcs
        self._link_busy: list[float] = [0.0] * (p * ndirs)
        self._tokens: list[int] = [cfg.vc_depth] * (p * ndirs * nvcs)
        self._fifo_free: list[int] = [cfg.injection_fifo_depth] * (
            p * self._nfifos
        )
        self._recv_free: list[int] = [cfg.reception_fifo_depth] * p

        # --- ports and ring buffers ---------------------------------------
        # Port order per node: (in_dir, vc) pairs first, then injection
        # FIFO indices.  All per-port queues of all nodes share ONE flat
        # ring-buffer array with a fixed power-of-two stride; a queue is
        # (head index, length) into its stride-aligned window.  Occupancy
        # is bounded by credits (vc_depth / injection_fifo_depth), so a
        # ring can never overflow its window on a correct run.
        nvp = ndirs * nvcs
        self._nvp = nvp
        nports = nvp + self._nfifos
        self._nports = nports
        self._port_dir: list[int] = [pt // nvcs for pt in range(nvp)] + [
            -1
        ] * self._nfifos
        self._port_vc: list[int] = [pt % nvcs for pt in range(nvp)] + [
            -1
        ] * self._nfifos
        self._port_axis: list[int] = [
            (pt // nvcs) >> 1 for pt in range(nvp)
        ] + [-1] * self._nfifos
        self._pbit: list[int] = [1 << pt for pt in range(nports)]
        self._nbit: list[int] = [~(1 << pt) for pt in range(nports)]
        self._pm_vc = (1 << nvp) - 1
        depth = max(cfg.vc_depth, cfg.injection_fifo_depth)
        self._q_shift = qsh = (depth - 1).bit_length()
        self._q_mask = (1 << qsh) - 1
        self._q_buf: list[int] = [0] * ((p * nports) << qsh)
        self._q_hd: list[int] = [0] * (p * nports)
        self._q_n: list[int] = [0] * (p * nports)
        # Reception FIFO ring (packets accepted, waiting for CPU drain).
        self._rp_shift = rsh = (cfg.reception_fifo_depth - 1).bit_length()
        self._rp_mask = (1 << rsh) - 1
        self._rp_buf: list[int] = [0] * (p << rsh)
        self._rp_hd: list[int] = [0] * p
        self._rp_n: list[int] = [0] * p

        # --- CPU state ----------------------------------------------------
        self._cpu_active: list[bool] = [False] * p
        self._cpu_rr: list[int] = [0] * p
        self._cpu_pending: list[Optional[tuple]] = [None] * p
        self._fwd_pending: list[deque[PacketSpec]] = [deque() for _ in range(p)]
        self._plan_next: list[Optional[PacketSpec]] = [None] * p
        self._plan_iter: list[Optional[Iterator[PacketSpec]]] = [None] * p
        self._plan_last_start: list[float] = [float("-inf")] * p
        self._pace: list[float] = [0.0] * p
        self._fifo_rr: list[int] = [0] * p
        self._ngroups = 1

        # --- arbitration rotation per (node, direction) link --------------
        self._arb: list[int] = [0] * (p * ndirs)
        # Packets sitting in any VC queue or injection FIFO of a node
        # (audited by the progress oracle against the ring lengths).
        self._queued: list[int] = [0] * p
        # Bit pt of _pmask[u] set iff port pt of node u is non-empty;
        # arbitration rotates over set bits only.
        self._pmask: list[int] = [0] * p

        # --- packet pool ----------------------------------------------------
        self._pool = pool = PacketPool(max(64, min(p * 4, 1 << 16)))
        self._P_pid = pool.pid
        self._P_src = pool.src
        self._P_dst = pool.dst
        self._P_wire = pool.wire_bytes
        self._P_mode = pool.mode
        self._P_tag = pool.tag
        self._P_final = pool.final_dst
        self._P_inject = pool.inject_time
        self._P_hops = pool.hops
        self._P_vc = pool.vc
        self._P_half = pool.halfbits
        self._P_seq = pool.seq
        self._P_down = pool.downphase

        # --- scheduler ------------------------------------------------------
        # Far-future events keyed by tick -> bucket list; a heap orders the
        # distinct pending ticks.  Events at (or before) the current tick
        # go straight to the immediate FIFO.
        self._buckets: dict[float, list[tuple]] = {}
        self._theap: list[float] = []
        self._immediate: deque[tuple] = deque()
        self._now = 0.0
        self._pid = itertools.count()
        self._busy_cycles: list[float] = [0.0] * (p * ndirs)
        self._link_packets: list[int] = [0] * (p * ndirs)
        self.stats = SimStats()
        self._program: Optional[NodeProgram] = None
        # Directed links that exist; the fault-aware subclass overrides
        # this with the surviving count so utilization stays meaningful.
        self._num_links = self.topo.num_links

        # Derived costs.  Per-size service/CPU costs are precomputed in
        # both unscaled cycles (statistics) and ticks (scheduling).
        prm = self.params
        self._beta = prm.beta_cycles_per_byte
        self._hop_latency = prm.hop_latency_cycles
        self._hop_t = prm.hop_latency_cycles * TICK_SCALE
        self._cpu_fixed = prm.packet_cpu_cycles
        self._cpu_incr = prm.cpu_incremental_cycles_per_byte
        self._alpha = prm.alpha_packet_cycles
        self._svc_f: list[float] = []
        self._svc_t: list[float] = []
        self._cpu_f: list[float] = []
        self._cpu_t: list[float] = []
        self._tbl_len = 0
        self._extend_tables(prm.packet_max_bytes)

        # Interned per-entity event tuples (posting allocates nothing).
        self._fifo_evs: list[tuple] = [
            (_EV_FIFO_FREE, u * self._nfifos + f, u, 0)
            for u in range(p)
            for f in range(self._nfifos)
        ]
        self._link_evs: list[tuple] = [
            (_EV_LINK_FREE, u, d, 0) for u in range(p) for d in range(ndirs)
        ]
        self._cpu_evs: list[tuple] = [(_EV_CPU_DONE, u, 0, 0) for u in range(p)]
        self._wake_evs: list[tuple] = [(_EV_CPU_WAKE, u, 0, 0) for u in range(p)]
        self._tok_evs: list[tuple] = []
        self._build_token_events()

    def _build_token_events(self) -> None:
        """(Re)build the interned TOKEN events.

        ``_tok_evs[ti]`` returns a credit to ``_tokens[ti]`` (same flat
        index) and pokes the upstream neighbor's arbitration; the
        fault-aware subclass re-calls this after masking dead links out
        of the neighbor table, since the upstream node is baked in."""
        ndirs, nvcs = self._ndirs, self._nvcs
        evs = []
        for u in range(self._p):
            nbr_u = self._nbr[u]
            for ind in range(ndirs):
                w = nbr_u[ind]
                bd = ind ^ 1
                base = (u * ndirs + ind) * nvcs
                for vc in range(nvcs):
                    evs.append((_EV_TOKEN, base + vc, w, bd))
        self._tok_evs = evs

    def _extend_tables(self, wire_bytes: int) -> None:
        """Grow the per-size cost tables to cover *wire_bytes*.

        Every packet passes through :meth:`_begin_injection`, whose guard
        is the single growth site; all other users index blindly."""
        beta = self._beta
        cf = self._cpu_fixed
        ci = self._cpu_incr
        svc_f, svc_t = self._svc_f, self._svc_t
        cpu_f, cpu_t = self._cpu_f, self._cpu_t
        for w in range(self._tbl_len, wire_bytes + 1):
            s = w * beta
            svc_f.append(s)
            svc_t.append(s * TICK_SCALE)
            c = cf + w * ci
            cpu_f.append(c)
            cpu_t.append(c * TICK_SCALE)
        self._tbl_len = wire_bytes + 1

    # ------------------------------------------------------------------ #
    # public knobs
    # ------------------------------------------------------------------ #

    def set_fifo_groups(self, ngroups: int) -> None:
        """Partition injection FIFOs into *ngroups* reservation groups
        (TPS uses 2: one per phase).  Must divide the FIFO count."""
        if ngroups < 1 or self._nfifos % ngroups != 0:
            raise ValueError(
                f"ngroups={ngroups} must divide num_injection_fifos="
                f"{self._nfifos}"
            )
        self._ngroups = ngroups

    # ------------------------------------------------------------------ #
    # small helpers
    # ------------------------------------------------------------------ #

    def _post_ev(self, t: float, ev: tuple) -> None:
        """Schedule *ev* at tick *t* (immediate FIFO if not in the
        future, else the calendar bucket for *t*)."""
        if t <= self._now:
            self._immediate.append(ev)
        else:
            b = self._buckets.get(t)
            if b is None:
                self._buckets[t] = [ev]
                heappush(self._theap, t)
            else:
                b.append(ev)

    def _post(self, t: float, kind: int, a: int, b: int, c) -> None:
        self._post_ev(t, (kind, a, b, c))

    def _disp(self, cur: int, dst: int, axis: int, halfbits: int) -> int:
        """Shortest signed displacement cur -> dst on *axis* (wrap-aware).

        An exact-half displacement on an even torus dimension is minimal in
        both directions; the packet's *halfbits* decide which one it uses,
        so the two directions carry equal load in aggregate (a fixed
        tie-break would overload one direction by 25 % and cap all-to-all
        at 80 % of the Eq. 2 peak).  See :mod:`repro.net.displacement`."""
        return self._dtab[axis][(halfbits >> axis) & 1][
            self._colm[axis][cur] + self._coord[axis][dst]
        ]

    def _wants_link(self, u: int, d: int, h: int) -> bool:
        """Whether handle *h* queued at *u* could productively use
        direction *d* (credits aside).

        Cold path: only the instrumented subclasses call this, to decide
        whether a failed arbitration left a direction-matched head waiting
        (stall accounting).  The fault-aware subclass overrides it with
        its distance-table routing truth."""
        axis = d >> 1
        halfbits = self._P_half[h]
        dst = self._P_dst[h]
        if self._P_mode[h] == _ADAPTIVE:
            return d == self._dirtab[axis][(halfbits >> axis) & 1][
                self._colm[axis][u] + self._coord[axis][dst]
            ]
        return self._dor_dir(u, dst, halfbits) == d

    def _dor_dir(self, cur: int, dst: int, halfbits: int) -> int:
        """Dimension-order next direction, or -1 at destination."""
        coord = self._coord
        colm = self._colm
        dirtab = self._dirtab
        for axis in range(self._ndim):
            d = dirtab[axis][(halfbits >> axis) & 1][
                colm[axis][cur] + coord[axis][dst]
            ]
            if d >= 0:
                return d
        return -1

    # ------------------------------------------------------------------ #
    # ring-buffer primitives
    # ------------------------------------------------------------------ #

    def _q_append(self, u: int, port: int, h: int) -> bool:
        """Append handle *h* to port ring (u, port); returns True when the
        port was empty (caller advances the new head)."""
        qi = u * self._nports + port
        n = self._q_n[qi]
        self._q_buf[
            (qi << self._q_shift) | ((self._q_hd[qi] + n) & self._q_mask)
        ] = h
        self._q_n[qi] = n + 1
        self._queued[u] += 1
        if n:
            return False
        self._pmask[u] |= self._pbit[port]
        return True

    def _rp_append(self, u: int, h: int) -> None:
        """Append handle *h* to node *u*'s reception ring."""
        n = self._rp_n[u]
        self._rp_buf[
            (u << self._rp_shift) | ((self._rp_hd[u] + n) & self._rp_mask)
        ] = h
        self._rp_n[u] = n + 1

    # ------------------------------------------------------------------ #
    # sending machinery
    # ------------------------------------------------------------------ #

    def _vc_for_link(
        self, u: int, d: int, v: int, h: int, in_axis: int,
        dynamic_pass: bool,
    ) -> int:
        """VC to use sending handle *h* over (u -> v, direction d), or -1.

        ``in_axis`` is the axis the packet is currently traveling on
        (-1 when coming from an injection FIFO).  ``dynamic_pass`` selects
        the adaptive dynamic-VC pass vs the bubble/escape pass.
        """
        axis = d >> 1
        base = (v * self._ndirs + (d ^ 1)) * self._nvcs
        tokens = self._tokens
        dst = self._P_dst[h]
        halfbits = self._P_half[h]
        if self._P_mode[h] == _ADAPTIVE:
            if dynamic_pass:
                # Minimal progress on this axis iff d is the tabulated
                # minimal direction (-1 when the axis is already resolved).
                if d != self._dirtab[axis][(halfbits >> axis) & 1][
                    self._colm[axis][u] + self._coord[axis][dst]
                ]:
                    return -1
                best, best_free = -1, 0
                for vc in range(self._ndyn):
                    f = tokens[base + vc]
                    if f > best_free:
                        best, best_free = vc, f
                return best
            if self._dor_dir(u, dst, halfbits) != d:
                return -1
            entering = self._P_vc[h] != self._bubble or in_axis != axis
            need = self._bubble_entry if entering else 1
            if tokens[base + self._bubble] >= need:
                return self._bubble
            return -1
        # DETERMINISTIC: bubble VC only, dimension order only.
        if dynamic_pass:
            return -1
        if self._dor_dir(u, dst, halfbits) != d:
            return -1
        entering = self._P_vc[h] != self._bubble or in_axis != axis
        need = self._bubble_entry if entering else 1
        if tokens[base + self._bubble] >= need:
            return self._bubble
        return -1

    def _launch(self, u: int, d: int, v: int, h: int, vc: int) -> None:
        """Start transmitting handle *h* from *u* to *v* on (d, vc).  The
        caller already removed the packet from its queue and released its
        old slot."""
        self._tokens[(v * self._ndirs + (d ^ 1)) * self._nvcs + vc] -= 1
        self._P_vc[h] = vc
        self._P_hops[h] += 1
        self.stats.total_hops += 1
        wb = self._P_wire[h]
        now = self._now
        done = now + self._svc_t[wb]
        li = u * self._ndirs + d
        self._link_busy[li] = done
        self._busy_cycles[li] += self._svc_f[wb]
        self._link_packets[li] += 1
        # Two inlined ``_post_ev`` calls (the hottest event producer).
        buckets = self._buckets
        ev = self._link_evs[li]
        if done <= now:
            self._immediate.append(ev)
        else:
            b = buckets.get(done)
            if b is None:
                buckets[done] = [ev]
                heappush(self._theap, done)
            else:
                b.append(ev)
        # Virtual cut-through: the *header* reaches v after the router/wire
        # latency and may immediately compete for its next hop while the
        # body still streams behind it (an unobstructed header races ahead,
        # as on the real torus); the link itself stays busy for the full
        # service time.  On the packet's FINAL hop the payload is only
        # usable once its tail arrives, so delivery waits for the tail.
        arrive = (done if self._P_dst[h] == v else now) + self._hop_t
        ev = (_EV_ARRIVE, v, (d ^ 1) * self._nvcs + vc, h)
        if arrive <= now:
            self._immediate.append(ev)
        else:
            b = buckets.get(arrive)
            if b is None:
                buckets[arrive] = [ev]
                heappush(self._theap, arrive)
            else:
                b.append(ev)

    def _arbitrate_link(self, u: int, d: int) -> bool:
        """Link (u, d) is free: pick one waiting head packet and launch it.
        Dynamic-VC candidates win over bubble candidates; ties rotate."""
        v = self._nbr[u][d]
        if v < 0:
            return False
        li = u * self._ndirs + d
        m = self._pmask[u]
        if not m or self._link_busy[li] > self._now:
            return False
        nports = self._nports
        nvp = self._nvp
        q_buf = self._q_buf
        q_hd = self._q_hd
        qsh = self._q_shift
        ubase = u * nports
        # Per-link constants hoisted out of the port scan; the routing
        # checks of ``_vc_for_link`` are inlined below (this is the
        # pristine-network fast path — the fault-aware subclass overrides
        # this method with a generic scan through its own ``_vc_for_link``).
        axis = d >> 1
        nvcs = self._nvcs
        ndyn = self._ndyn
        bubble = self._bubble
        tokens = self._tokens
        base = (v * self._ndirs + (d ^ 1)) * self._nvcs
        bubble_tok = tokens[base + bubble]
        dirtab = self._dirtab
        colm = self._colm
        coord = self._coord
        dt_axis = dirtab[axis]
        colm_u = colm[axis][u]
        coord_ax = coord[axis]
        P_dst = self._P_dst
        P_mode = self._P_mode
        P_half = self._P_half
        P_vc = self._P_vc
        start = self._arb[li]
        # Single rotation scan over the NON-EMPTY ports only: rotate the
        # occupancy mask by the arbitration pointer and extract low bits.
        # Launch the first dynamic-VC candidate; if none exists, fall back
        # to the first bubble candidate, memoized during the same scan.
        # The checks are pure and no state mutates before a launch, so
        # this selects exactly the packet the original full port scan
        # (dynamic then bubble) would.
        mm = ((m >> start) | (m << (nports - start))) & ((1 << nports) - 1)
        b_port = -1
        b_h = -1
        b_vc = -1
        while mm:
            low = mm & -mm
            mm -= low
            port = start + low.bit_length() - 1
            if port >= nports:
                port -= nports
            h = q_buf[((ubase + port) << qsh) | q_hd[ubase + port]]
            dst = P_dst[h]
            if port < nvp:
                if dst == u:
                    continue  # waiting for reception space
                in_axis = port // nvcs >> 1
            else:
                in_axis = -1
            halfbits = P_half[h]
            if d != dt_axis[(halfbits >> axis) & 1][colm_u + coord_ax[dst]]:
                # Not this packet's direction on the link's own axis, so
                # neither the adaptive pick nor the bubble fallback (whose
                # dor_dir starts with this axis' entry) can use link d.
                continue
            if P_mode[h] == _ADAPTIVE:
                # Dynamic candidate: most-credit dynamic VC, if any.
                best, best_free = -1, 0
                for vc in range(ndyn):
                    f = tokens[base + vc]
                    if f > best_free:
                        best, best_free = vc, f
                if best >= 0:
                    b_port, b_h, b_vc = port, h, best
                    break
            if b_port < 0:
                # Bubble/escape candidate (both routing modes):
                # dor_dir(u, dst, halfbits) == d iff every earlier axis is
                # already aligned (its dirtab entry is -1).
                for ax in range(axis):
                    if dirtab[ax][(halfbits >> ax) & 1][
                        colm[ax][u] + coord[ax][dst]
                    ] >= 0:
                        break
                else:
                    need = (
                        self._bubble_entry
                        if P_vc[h] != bubble or in_axis != axis
                        else 1
                    )
                    if bubble_tok >= need:
                        b_port, b_h, b_vc = port, h, bubble
        if b_port < 0:
            return False
        port = b_port
        qi = ubase + port
        q_hd[qi] = (q_hd[qi] + 1) & self._q_mask
        n = self._q_n[qi] - 1
        self._q_n[qi] = n
        if not n:
            self._pmask[u] &= self._nbit[port]
        self._queued[u] -= 1
        self._arb[li] = port + 1 if port + 1 < nports else 0
        if port < nvp:
            # Virtual cut-through: the slot frees as the packet streams
            # out, so the credit returns at launch.
            self._immediate.append(self._tok_evs[u * nvp + port])
            self._launch(u, d, v, b_h, b_vc)
            # The queue's new head may be deliverable locally or able to
            # use a different free link right now; no future event is
            # guaranteed to poke it, so advance eagerly.
            self._advance_queue_head(u, port)
        else:
            f = port - nvp
            self._immediate.append(self._fifo_evs[u * self._nfifos + f])
            self._launch(u, d, v, b_h, b_vc)
            # Eagerly advance the FIFO's new head (see above).
            self._advance_fifo_head(u, f)
        return True

    def _try_send_head(self, u: int, h: int, in_axis: int) -> bool:
        """Packet-centric attempt: launch handle *h* (a queue/FIFO head at
        *u*) over the best free link right now (JSQ across its candidate
        directions).  The caller pops the packet on success."""
        link_busy = self._link_busy
        nbr_u = self._nbr[u]
        lbase = u * self._ndirs
        now = self._now
        dst = self._P_dst[h]
        halfbits = self._P_half[h]
        if self._P_mode[h] == _ADAPTIVE:
            coord = self._coord
            colm = self._colm
            dirtab = self._dirtab
            tokens = self._tokens
            best_d, best_vc, best_free = -1, -1, 0
            first_d = -1
            for axis in range(self._ndim):
                d = dirtab[axis][(halfbits >> axis) & 1][
                    colm[axis][u] + coord[axis][dst]
                ]
                if d < 0:
                    continue
                if first_d < 0:
                    # First valid direction in axis order == dor_dir's
                    # answer; memoized for the bubble fallback below.
                    first_d = d
                v = nbr_u[d]
                if v < 0 or link_busy[lbase + d] > now:
                    continue
                base = (v * self._ndirs + (d ^ 1)) * self._nvcs
                for vc in range(self._ndyn):
                    f = tokens[base + vc]
                    if f > best_free:
                        best_d, best_vc, best_free = d, vc, f
            if best_d >= 0:
                self._launch(u, best_d, nbr_u[best_d], h, best_vc)
                return True
            # Bubble escape along the dimension-order direction.
            d = first_d
            if d < 0:
                return False
            v = nbr_u[d]
            if v < 0 or link_busy[lbase + d] > now:
                return False
            entering = self._P_vc[h] != self._bubble or in_axis != (d >> 1)
            base = (v * self._ndirs + (d ^ 1)) * self._nvcs
            need = self._bubble_entry if entering else 1
            if self._tokens[base + self._bubble] >= need:
                self._launch(u, d, v, h, self._bubble)
                return True
            return False
        d = self._dor_dir(u, dst, halfbits)
        if d < 0:
            return False
        v = nbr_u[d]
        if v < 0 or link_busy[lbase + d] > now:
            return False
        entering = self._P_vc[h] != self._bubble or in_axis != (d >> 1)
        base = (v * self._ndirs + (d ^ 1)) * self._nvcs
        need = self._bubble_entry if entering else 1
        if self._tokens[base + self._bubble] >= need:
            self._launch(u, d, v, h, self._bubble)
            return True
        return False

    def _advance_queue_head(self, u: int, port: int) -> None:
        """Try to move the head packet of input port ring (u, port):
        deliver it locally or forward it over a free link."""
        qi = u * self._nports + port
        q_n = self._q_n
        n = q_n[qi]
        if not n:
            return
        q_buf = self._q_buf
        q_hd = self._q_hd
        qsh = self._q_shift
        qmask = self._q_mask
        P_dst = self._P_dst
        recv_free = self._recv_free
        tok_ev = self._tok_evs[u * self._nvp + port]
        imm_append = self._immediate.append
        in_axis = self._port_axis[port]
        while n:
            h = q_buf[(qi << qsh) | q_hd[qi]]
            if P_dst[h] == u:
                if recv_free[u] <= 0:
                    break
                recv_free[u] -= 1
                q_hd[qi] = (q_hd[qi] + 1) & qmask
                n -= 1
                q_n[qi] = n
                self._queued[u] -= 1
                self._rp_append(u, h)
                imm_append(tok_ev)
                if not self._cpu_active[u]:
                    self._cpu_start_next(u)
            else:
                if not self._try_send_head(u, h, in_axis):
                    break
                q_hd[qi] = (q_hd[qi] + 1) & qmask
                n -= 1
                q_n[qi] = n
                self._queued[u] -= 1
                imm_append(tok_ev)
        if not n:
            self._pmask[u] &= self._nbit[port]

    def _advance_fifo_head(self, u: int, f: int) -> None:
        """Try to launch the head packet of injection FIFO *f* at *u*."""
        port = self._nvp + f
        qi = u * self._nports + port
        q_n = self._q_n
        n = q_n[qi]
        if not n:
            return
        q_buf = self._q_buf
        q_hd = self._q_hd
        qsh = self._q_shift
        qmask = self._q_mask
        fifo_ev = self._fifo_evs[u * self._nfifos + f]
        imm_append = self._immediate.append
        while n:
            h = q_buf[(qi << qsh) | q_hd[qi]]
            if not self._try_send_head(u, h, -1):
                break
            q_hd[qi] = (q_hd[qi] + 1) & qmask
            n -= 1
            q_n[qi] = n
            self._queued[u] -= 1
            imm_append(fifo_ev)
        if not n:
            self._pmask[u] &= self._nbit[port]

    def _deliver_local_heads(self, u: int) -> None:
        """A reception slot freed: move any waiting local-delivery heads."""
        m = self._pmask[u] & self._pm_vc
        recv_free = self._recv_free
        while m:
            if recv_free[u] <= 0:
                return
            low = m & -m
            m -= low
            self._advance_queue_head(u, low.bit_length() - 1)

    # ------------------------------------------------------------------ #
    # CPU model
    # ------------------------------------------------------------------ #

    def _cpu_maybe_start(self, u: int) -> None:
        if not self._cpu_active[u]:
            self._cpu_start_next(u)

    def _plan_peek(self, u: int) -> Optional[PacketSpec]:
        nxt = self._plan_next[u]
        if nxt is None:
            it = self._plan_iter[u]
            if it is None:
                return None
            nxt = next(it, None)
            if nxt is None:
                self._plan_iter[u] = None
                return None
            self._plan_next[u] = nxt
        return nxt

    def _pick_fifo(self, u: int, group: int) -> int:
        """Round-robin over the FIFOs of *group* with a free slot (-1 if
        none).  Groups partition FIFOs by index modulo the group count."""
        nf = self._nfifos
        want = group % self._ngroups
        base = self._fifo_rr[u]
        fbase = u * nf
        for k in range(nf):
            f = base + k
            if f >= nf:
                f -= nf
            if f % self._ngroups == want and self._fifo_free[fbase + f] > 0:
                self._fifo_rr[u] = f + 1 if f + 1 < nf else 0
                return f
        return -1

    def _cpu_cost(self, wire_bytes: int) -> float:
        return self._cpu_fixed + wire_bytes * self._cpu_incr

    def _cpu_start_next(self, u: int) -> None:
        """Choose the next CPU op at *u* (round-robin over reception drain,
        forward injection, plan injection) and schedule its completion."""
        now = self._now
        rr = self._cpu_rr[u]
        wake_at = -1.0
        for k in range(3):
            src = rr + k
            if src >= 3:
                src -= 3
            if src == _SRC_RECV:
                n = self._rp_n[u]
                if n:
                    hd = self._rp_hd[u]
                    h = self._rp_buf[(u << self._rp_shift) | hd]
                    self._rp_hd[u] = (hd + 1) & self._rp_mask
                    self._rp_n[u] = n - 1
                    self._cpu_pending[u] = ("recv", h)
                    self._cpu_active[u] = True
                    self._cpu_rr[u] = src + 1
                    self._post_ev(
                        now + self._cpu_t[self._P_wire[h]], self._cpu_evs[u]
                    )
                    return
            elif src == _SRC_FORWARD:
                fp = self._fwd_pending[u]
                if fp:
                    spec = fp[0]
                    f = self._pick_fifo(u, spec.fifo_group)
                    if f >= 0:
                        fp.popleft()
                        self._begin_injection(u, spec, f, src)
                        return
            else:
                spec = self._plan_peek(u)
                if spec is not None:
                    eligible = self._plan_last_start[u] + self._pace[u]
                    if now < eligible:
                        if wake_at < 0 or eligible < wake_at:
                            wake_at = eligible
                        continue
                    f = self._pick_fifo(u, spec.fifo_group)
                    if f >= 0:
                        self._plan_next[u] = None
                        self._plan_last_start[u] = now
                        self._begin_injection(u, spec, f, src)
                        return
        self._cpu_active[u] = False
        if wake_at > now:
            self._post_ev(wake_at, self._wake_evs[u])

    def _begin_injection(
        self, u: int, spec: PacketSpec, fifo: int, src: int
    ) -> None:
        """Reserve a FIFO slot and charge the CPU for injecting *spec*."""
        wb = spec.wire_bytes
        if wb >= self._tbl_len:
            self._extend_tables(wb)
        self._fifo_free[u * self._nfifos + fifo] -= 1
        cost = self._cpu_f[wb] + spec.extra_cpu_cycles
        if spec.new_message:
            cost += spec.alpha_cycles if spec.alpha_cycles >= 0 else self._alpha
        self._cpu_pending[u] = ("inject", spec, fifo)
        self._cpu_active[u] = True
        self._cpu_rr[u] = src + 1
        self._post_ev(self._now + cost * TICK_SCALE, self._cpu_evs[u])

    def _cpu_complete(self, u: int) -> None:
        """Finalize the pending CPU op at *u*, then start the next one."""
        op = self._cpu_pending[u]
        self._cpu_pending[u] = None
        assert op is not None, "CPU completion with no pending op"
        if op[0] == "recv":
            h: int = op[1]
            self._recv_free[u] += 1
            self._finish_delivery(u, h)
            self._deliver_local_heads(u)
        else:  # inject
            spec: PacketSpec = op[1]
            fifo: int = op[2]
            h = self._pool.alloc(next(self._pid), u, spec, self._now)
            self.stats.injected_packets += 1
            self.stats.injected_wire_bytes += spec.wire_bytes
            if spec.dst == u:
                # Local (self) message: bypasses the network entirely.
                self._fifo_free[u * self._nfifos + fifo] += 1
                self._finish_delivery(u, h)
            elif self._q_append(u, self._nvp + fifo, h):
                self._advance_fifo_head(u, fifo)
        self._cpu_start_next(u)

    def _finish_delivery(self, u: int, h: int) -> None:
        """Record a drained packet, run the program's delivery hook, and
        retire the handle."""
        now = self._now
        now_f = now * TICK_UNSCALE
        st = self.stats
        st.delivered_packets += 1
        st.last_delivery = now_f
        inject_t = self._P_inject[h]
        if self._P_final[h] == u:
            st.final_deliveries += 1
            st.last_final_delivery = now_f
            lat = (now - inject_t) * TICK_UNSCALE
            st.final_latency_sum += lat
            if lat > st.final_latency_max:
                st.final_latency_max = lat
        else:
            st.forwarded_packets += 1
        assert self._program is not None
        pkt = self._pool.materialize(h, inject_t * TICK_UNSCALE, now_f)
        fwd = self._program.on_delivery(u, pkt, now_f)
        self._pool.free.append(h)
        if fwd:
            fp = self._fwd_pending[u]
            fp.extend(fwd)
            if len(fp) > st.peak_forward_backlog:
                st.peak_forward_backlog = len(fp)

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #

    def run(self, program: NodeProgram) -> SimulationResult:
        """Execute *program* to quiescence and return the results."""
        self._program = program
        for u in range(self._p):
            self._plan_iter[u] = iter(program.injection_plan(u))
            self._pace[u] = program.pace_cycles(u) * TICK_SCALE
            self._cpu_maybe_start(u)

        max_cycles = self.config.max_cycles
        max_events = self.config.max_events
        # The fused loop inlines the base-class handlers, so it is only
        # safe when every one of them still IS the base-class handler —
        # any subclass override (fault/obs/check mixins) or monkeypatch
        # routes through the generic dispatch loop instead.
        cls = type(self)
        fused = True
        for nm, fn in _FUSED_HOOKS:
            if getattr(cls, nm) is not fn:
                fused = False
                break
        # Garbage collection is suspended for the run: the hot loop
        # allocates almost nothing cyclic, and the collector's periodic
        # scans cost more than they reclaim here.
        gc_was = gc.isenabled()
        gc.disable()
        _live["net"] = self
        try:
            if fused:
                n_events = self._run_fused(max_cycles, max_events)
            else:
                n_events = self._run_dispatch(max_cycles, max_events)
        finally:
            _live["net"] = None
            if gc_was:
                gc.enable()

        st = self.stats
        st.events_processed = n_events
        self._check_quiescent()
        expected = program.expected_final_deliveries()
        if st.final_deliveries != expected:
            raise DeadlockError(
                f"completed with {st.final_deliveries} final deliveries, "
                f"expected {expected}"
            )
        return self._result()

    def _run_dispatch(self, max_cycles: float, max_events: int) -> int:
        """Generic main loop: dispatch every event through the (possibly
        overridden) handler methods.  Used whenever a mixin layers hooks
        over the base class."""
        max_cycles_t = max_cycles * TICK_SCALE
        n_events = 0
        # Hot-loop locals (the loop runs millions of times per collective).
        imm = self._immediate
        imm_pop = imm.popleft
        imm_extend = imm.extend
        theap = self._theap
        bucket_pop = self._buckets.pop
        tick_pop = heappop
        tokens = self._tokens
        fifo_free = self._fifo_free
        pmask = self._pmask
        on_arrive = self._on_arrive
        arbitrate = self._arbitrate_link
        cpu_complete = self._cpu_complete
        cpu_maybe_start = self._cpu_maybe_start
        now = self._now

        # Drain order: the immediate FIFO first; when it empties, pop the
        # next distinct tick and move its whole bucket (already in posting
        # order) onto the FIFO.  This reproduces the exact (time, seq)
        # order of a plain heap — see the module docstring.
        while True:
            if imm:
                kind, a, b, c = imm_pop()
            elif theap:
                self._now = now = tick_pop(theap)
                imm_extend(bucket_pop(now))
                kind, a, b, c = imm_pop()
            else:
                break
            n_events += 1
            if kind == 1:  # _EV_ARRIVE
                on_arrive(a, b, c)
            elif kind == 2:  # _EV_TOKEN
                tokens[a] += 1
                if b >= 0 and pmask[b]:
                    arbitrate(b, c)
            elif kind == 0:  # _EV_LINK_FREE
                if pmask[a]:
                    arbitrate(a, b)
            elif kind == 3:  # _EV_CPU_DONE
                cpu_complete(a)
            elif kind == 5:  # _EV_FIFO_FREE
                fifo_free[a] += 1
                cpu_maybe_start(b)
            else:  # _EV_CPU_WAKE
                cpu_maybe_start(a)
            if now > max_cycles_t:
                raise self._limit_error(
                    f"simulation exceeded {max_cycles:.3g} cycles",
                    n_events,
                )
            if n_events > max_events:
                raise self._limit_error(
                    f"simulation exceeded {max_events} events", n_events
                )
        return n_events

    def _run_fused(self, max_cycles: float, max_events: int) -> int:
        """Fused main loop for the pristine network: `_run_dispatch` with
        every base-class handler inlined as a closure and all simulator
        state hoisted into locals (CPython attribute loads and method
        calls dominate the generic loop's profile).

        The logic is copied verbatim from the handler methods — keep the
        two in lockstep when changing either.  Faithfulness is pinned by
        the traced-vs-plain bit-identity tests (the instrumented run takes
        the generic loop, the plain run takes this one, and their results
        must be equal to the last bit) plus the golden trace and
        differential suites."""
        st = self.stats
        imm = self._immediate
        imm_pop = imm.popleft
        imm_append = imm.append
        imm_extend = imm.extend
        theap = self._theap
        buckets = self._buckets
        bucket_pop = buckets.pop
        bucket_get = buckets.get
        tick_pop = heappop
        tick_push = heappush

        nports = self._nports
        nvp = self._nvp
        nvcs = self._nvcs
        ndyn = self._ndyn
        ndirs = self._ndirs
        ndim = self._ndim
        nfifos = self._nfifos
        bubble = self._bubble
        bubble_entry = self._bubble_entry
        hop_t = self._hop_t
        qsh = self._q_shift
        qmask = self._q_mask
        rsh = self._rp_shift
        rmask = self._rp_mask
        pm_vc = self._pm_vc
        all_ports = (1 << nports) - 1

        q_buf = self._q_buf
        q_hd = self._q_hd
        q_n = self._q_n
        rp_buf = self._rp_buf
        rp_hd = self._rp_hd
        rp_n = self._rp_n
        pmask = self._pmask
        pbit = self._pbit
        nbit = self._nbit
        queued = self._queued
        tokens = self._tokens
        link_busy = self._link_busy
        busy_cycles = self._busy_cycles
        link_packets = self._link_packets
        fifo_free = self._fifo_free
        recv_free = self._recv_free
        arb = self._arb
        nbr = self._nbr
        colm = self._colm
        coord = self._coord
        dirtab = self._dirtab
        port_axis = self._port_axis
        tok_evs = self._tok_evs
        fifo_evs = self._fifo_evs
        link_evs = self._link_evs
        cpu_evs = self._cpu_evs
        wake_evs = self._wake_evs
        svc_f = self._svc_f
        svc_t = self._svc_t
        cpu_tt = self._cpu_t

        P_dst = self._P_dst
        P_mode = self._P_mode
        P_half = self._P_half
        P_vc = self._P_vc
        P_hops = self._P_hops
        P_wire = self._P_wire

        cpu_active = self._cpu_active
        cpu_rr = self._cpu_rr
        cpu_pending = self._cpu_pending
        fwd_pending = self._fwd_pending
        plan_next = self._plan_next
        plan_iter = self._plan_iter
        plan_last_start = self._plan_last_start
        pace = self._pace

        alloc = self._pool.alloc
        pid_next = self._pid.__next__
        pick_fifo = self._pick_fifo
        finish_delivery = self._finish_delivery

        max_cycles_t = max_cycles * TICK_SCALE
        now = self._now
        n_events = 0

        def post_ev(t: float, ev: tuple) -> None:
            if t <= now:
                imm_append(ev)
            else:
                b = bucket_get(t)
                if b is None:
                    buckets[t] = [ev]
                    tick_push(theap, t)
                else:
                    b.append(ev)

        def dor_dir(cur: int, dst: int, halfbits: int) -> int:
            for axis in range(ndim):
                d = dirtab[axis][(halfbits >> axis) & 1][
                    colm[axis][cur] + coord[axis][dst]
                ]
                if d >= 0:
                    return d
            return -1

        def launch(u: int, d: int, v: int, h: int, vc: int) -> None:
            tokens[(v * ndirs + (d ^ 1)) * nvcs + vc] -= 1
            P_vc[h] = vc
            P_hops[h] += 1
            st.total_hops += 1
            wb = P_wire[h]
            done = now + svc_t[wb]
            li = u * ndirs + d
            link_busy[li] = done
            busy_cycles[li] += svc_f[wb]
            link_packets[li] += 1
            ev = link_evs[li]
            if done <= now:
                imm_append(ev)
            else:
                b = bucket_get(done)
                if b is None:
                    buckets[done] = [ev]
                    tick_push(theap, done)
                else:
                    b.append(ev)
            arrive = (done if P_dst[h] == v else now) + hop_t
            ev = (1, v, (d ^ 1) * nvcs + vc, h)
            if arrive <= now:
                imm_append(ev)
            else:
                b = bucket_get(arrive)
                if b is None:
                    buckets[arrive] = [ev]
                    tick_push(theap, arrive)
                else:
                    b.append(ev)

        def try_send_head(u: int, h: int, in_axis: int) -> bool:
            nbr_u = nbr[u]
            lbase = u * ndirs
            dst = P_dst[h]
            halfbits = P_half[h]
            if P_mode[h] == _ADAPTIVE:
                best_d, best_vc, best_free = -1, -1, 0
                first_d = -1
                for axis in range(ndim):
                    d = dirtab[axis][(halfbits >> axis) & 1][
                        colm[axis][u] + coord[axis][dst]
                    ]
                    if d < 0:
                        continue
                    if first_d < 0:
                        # Same table walked in the same axis order, so the
                        # first valid direction IS the dimension-order one:
                        # the bubble fallback below reuses it instead of
                        # recomputing dor_dir.
                        first_d = d
                    v = nbr_u[d]
                    if v < 0 or link_busy[lbase + d] > now:
                        continue
                    base = (v * ndirs + (d ^ 1)) * nvcs
                    for vc in range(ndyn):
                        f = tokens[base + vc]
                        if f > best_free:
                            best_d, best_vc, best_free = d, vc, f
                if best_d >= 0:
                    launch(u, best_d, nbr_u[best_d], h, best_vc)
                    return True
                d = first_d
                if d < 0:
                    return False
                v = nbr_u[d]
                if v < 0 or link_busy[lbase + d] > now:
                    return False
                entering = P_vc[h] != bubble or in_axis != (d >> 1)
                base = (v * ndirs + (d ^ 1)) * nvcs
                need = bubble_entry if entering else 1
                if tokens[base + bubble] >= need:
                    launch(u, d, v, h, bubble)
                    return True
                return False
            d = dor_dir(u, dst, halfbits)
            if d < 0:
                return False
            v = nbr_u[d]
            if v < 0 or link_busy[lbase + d] > now:
                return False
            entering = P_vc[h] != bubble or in_axis != (d >> 1)
            base = (v * ndirs + (d ^ 1)) * nvcs
            need = bubble_entry if entering else 1
            if tokens[base + bubble] >= need:
                launch(u, d, v, h, bubble)
                return True
            return False

        def advance_queue_head(u: int, port: int) -> None:
            qi = u * nports + port
            n = q_n[qi]
            if not n:
                return
            tok_ev = tok_evs[u * nvp + port]
            in_axis = port_axis[port]
            while n:
                h = q_buf[(qi << qsh) | q_hd[qi]]
                if P_dst[h] == u:
                    if recv_free[u] <= 0:
                        break
                    recv_free[u] -= 1
                    q_hd[qi] = (q_hd[qi] + 1) & qmask
                    n -= 1
                    q_n[qi] = n
                    queued[u] -= 1
                    rn = rp_n[u]
                    rp_buf[(u << rsh) | ((rp_hd[u] + rn) & rmask)] = h
                    rp_n[u] = rn + 1
                    imm_append(tok_ev)
                    if not cpu_active[u]:
                        cpu_start_next(u)
                else:
                    if not try_send_head(u, h, in_axis):
                        break
                    q_hd[qi] = (q_hd[qi] + 1) & qmask
                    n -= 1
                    q_n[qi] = n
                    queued[u] -= 1
                    imm_append(tok_ev)
            if not n:
                pmask[u] &= nbit[port]

        def advance_fifo_head(u: int, f: int) -> None:
            port = nvp + f
            qi = u * nports + port
            n = q_n[qi]
            if not n:
                return
            fifo_ev = fifo_evs[u * nfifos + f]
            while n:
                h = q_buf[(qi << qsh) | q_hd[qi]]
                if not try_send_head(u, h, -1):
                    break
                q_hd[qi] = (q_hd[qi] + 1) & qmask
                n -= 1
                q_n[qi] = n
                queued[u] -= 1
                imm_append(fifo_ev)
            if not n:
                pmask[u] &= nbit[port]

        def arbitrate(u: int, d: int) -> None:
            # Both call sites pre-gate on a non-empty port mask and an
            # idle link, so those checks are not repeated here.
            v = nbr[u][d]
            if v < 0:
                return
            li = u * ndirs + d
            m = pmask[u]
            ubase = u * nports
            axis = d >> 1
            base = (v * ndirs + (d ^ 1)) * nvcs
            bubble_tok = tokens[base + bubble]
            dt_axis = dirtab[axis]
            colm_u = colm[axis][u]
            coord_ax = coord[axis]
            start = arb[li]
            b_port = -1
            b_h = -1
            b_vc = -1
            if m & (m - 1):
                mm = ((m >> start) | (m << (nports - start))) & all_ports
            else:
                # Single occupied port (the common case, >half of scans):
                # the rotation is a no-op for candidate selection, so
                # evaluate the lone port directly.
                mm = m
                start = 0
            while mm:
                low = mm & -mm
                mm -= low
                port = start + low.bit_length() - 1
                if port >= nports:
                    port -= nports
                qi = ubase + port
                h = q_buf[(qi << qsh) | q_hd[qi]]
                dst = P_dst[h]
                if port < nvp:
                    if dst == u:
                        continue  # waiting for reception space
                    in_axis = port // nvcs >> 1
                else:
                    in_axis = -1
                halfbits = P_half[h]
                if d != dt_axis[(halfbits >> axis) & 1][
                    colm_u + coord_ax[dst]
                ]:
                    # Not this packet's direction on the link's own axis:
                    # neither the adaptive pick (productive-direction rule)
                    # nor the bubble fallback (dor_dir starts with this
                    # axis' entry) can choose link d.
                    continue
                if P_mode[h] == _ADAPTIVE:
                    best, best_free = -1, 0
                    for vc in range(ndyn):
                        f = tokens[base + vc]
                        if f > best_free:
                            best, best_free = vc, f
                    if best >= 0:
                        b_port, b_h, b_vc = port, h, best
                        break
                if b_port < 0:
                    # dor_dir(u, dst, halfbits) == d iff every earlier axis
                    # is already aligned (its dirtab entry is -1).
                    for ax in range(axis):
                        if dirtab[ax][(halfbits >> ax) & 1][
                            colm[ax][u] + coord[ax][dst]
                        ] >= 0:
                            break
                    else:
                        need = (
                            bubble_entry
                            if P_vc[h] != bubble or in_axis != axis
                            else 1
                        )
                        if bubble_tok >= need:
                            b_port, b_h, b_vc = port, h, bubble
            if b_port < 0:
                return
            port = b_port
            qi = ubase + port
            q_hd[qi] = (q_hd[qi] + 1) & qmask
            n = q_n[qi] - 1
            q_n[qi] = n
            if not n:
                pmask[u] &= nbit[port]
            queued[u] -= 1
            arb[li] = port + 1 if port + 1 < nports else 0
            if port < nvp:
                imm_append(tok_evs[u * nvp + port])
                launch(u, d, v, b_h, b_vc)
                if n:
                    advance_queue_head(u, port)
            else:
                f = port - nvp
                imm_append(fifo_evs[u * nfifos + f])
                launch(u, d, v, b_h, b_vc)
                if n:
                    advance_fifo_head(u, f)

        def begin_injection(u: int, spec, fifo: int, src: int) -> None:
            wb = spec.wire_bytes
            if wb >= self._tbl_len:
                self._extend_tables(wb)
            fifo_free[u * nfifos + fifo] -= 1
            cost = self._cpu_f[wb] + spec.extra_cpu_cycles
            if spec.new_message:
                cost += (
                    spec.alpha_cycles
                    if spec.alpha_cycles >= 0
                    else self._alpha
                )
            cpu_pending[u] = ("inject", spec, fifo)
            cpu_active[u] = True
            cpu_rr[u] = src + 1
            post_ev(now + cost * TICK_SCALE, cpu_evs[u])

        def cpu_start_next(u: int) -> None:
            rr = cpu_rr[u]
            wake_at = -1.0
            for k in range(3):
                src = rr + k
                if src >= 3:
                    src -= 3
                if src == 0:  # _SRC_RECV
                    n = rp_n[u]
                    if n:
                        hd = rp_hd[u]
                        h = rp_buf[(u << rsh) | hd]
                        rp_hd[u] = (hd + 1) & rmask
                        rp_n[u] = n - 1
                        cpu_pending[u] = ("recv", h)
                        cpu_active[u] = True
                        cpu_rr[u] = src + 1
                        post_ev(now + cpu_tt[P_wire[h]], cpu_evs[u])
                        return
                elif src == 1:  # _SRC_FORWARD
                    fp = fwd_pending[u]
                    if fp:
                        spec = fp[0]
                        f = pick_fifo(u, spec.fifo_group)
                        if f >= 0:
                            fp.popleft()
                            begin_injection(u, spec, f, src)
                            return
                else:  # _SRC_PLAN
                    nxt = plan_next[u]
                    if nxt is None:
                        it = plan_iter[u]
                        if it is not None:
                            nxt = next(it, None)
                            if nxt is None:
                                plan_iter[u] = None
                            else:
                                plan_next[u] = nxt
                    if nxt is not None:
                        eligible = plan_last_start[u] + pace[u]
                        if now < eligible:
                            if wake_at < 0 or eligible < wake_at:
                                wake_at = eligible
                            continue
                        f = pick_fifo(u, nxt.fifo_group)
                        if f >= 0:
                            plan_next[u] = None
                            plan_last_start[u] = now
                            begin_injection(u, nxt, f, src)
                            return
            cpu_active[u] = False
            if wake_at > now:
                post_ev(wake_at, wake_evs[u])

        while True:
            if imm:
                kind, a, b, c = imm_pop()
            elif theap:
                self._now = now = tick_pop(theap)
                imm_extend(bucket_pop(now))
                kind, a, b, c = imm_pop()
            else:
                break
            n_events += 1
            if kind == 1:  # _EV_ARRIVE (inlined _on_arrive)
                qi = a * nports + b
                n = q_n[qi]
                if not n and P_dst[c] == a and recv_free[a] > 0:
                    recv_free[a] -= 1
                    rn = rp_n[a]
                    rp_buf[(a << rsh) | ((rp_hd[a] + rn) & rmask)] = c
                    rp_n[a] = rn + 1
                    imm_append(tok_evs[a * nvp + b])
                    if not cpu_active[a]:
                        cpu_start_next(a)
                else:
                    q_buf[(qi << qsh) | ((q_hd[qi] + n) & qmask)] = c
                    q_n[qi] = n + 1
                    queued[a] += 1
                    if not n:
                        pmask[a] |= pbit[b]
                        advance_queue_head(a, b)
            elif kind == 2:  # _EV_TOKEN
                tokens[a] += 1
                # Busy-link gate inlined: ~40 % of token returns poke a
                # still-transmitting upstream link, which the arbitration
                # scan would reject anyway.
                if b >= 0 and pmask[b] and link_busy[b * ndirs + c] <= now:
                    arbitrate(b, c)
            elif kind == 0:  # _EV_LINK_FREE
                if pmask[a] and link_busy[a * ndirs + b] <= now:
                    arbitrate(a, b)
            elif kind == 3:  # _EV_CPU_DONE (inlined _cpu_complete)
                op = cpu_pending[a]
                cpu_pending[a] = None
                if op[0] == "recv":
                    recv_free[a] += 1
                    finish_delivery(a, op[1])
                    # Inlined _deliver_local_heads.
                    m = pmask[a] & pm_vc
                    while m:
                        if recv_free[a] <= 0:
                            break
                        low = m & -m
                        m -= low
                        advance_queue_head(a, low.bit_length() - 1)
                else:  # inject
                    spec = op[1]
                    fifo = op[2]
                    h = alloc(pid_next(), a, spec, now)
                    st.injected_packets += 1
                    st.injected_wire_bytes += spec.wire_bytes
                    if spec.dst == a:
                        # Local (self) message: bypasses the network.
                        fifo_free[a * nfifos + fifo] += 1
                        finish_delivery(a, h)
                    else:
                        port = nvp + fifo
                        qi = a * nports + port
                        n = q_n[qi]
                        q_buf[(qi << qsh) | ((q_hd[qi] + n) & qmask)] = h
                        q_n[qi] = n + 1
                        queued[a] += 1
                        if not n:
                            pmask[a] |= pbit[port]
                            advance_fifo_head(a, fifo)
                cpu_start_next(a)
            elif kind == 5:  # _EV_FIFO_FREE
                fifo_free[a] += 1
                if not cpu_active[b]:
                    cpu_start_next(b)
            else:  # _EV_CPU_WAKE
                if not cpu_active[a]:
                    cpu_start_next(a)
            if now > max_cycles_t:
                raise self._limit_error(
                    f"simulation exceeded {max_cycles:.3g} cycles",
                    n_events,
                )
            if n_events > max_events:
                raise self._limit_error(
                    f"simulation exceeded {max_events} events", n_events
                )
        return n_events

    def _on_arrive(self, v: int, port: int, h: int) -> None:
        """Handle *h* arrives at node *v* on input *port* (= in_dir *
        num_vcs + vc)."""
        qi = v * self._nports + port
        n = self._q_n[qi]
        if not n and self._P_dst[h] == v and self._recv_free[v] > 0:
            # Straight into the reception FIFO; the slot frees immediately.
            self._recv_free[v] -= 1
            self._rp_append(v, h)
            self._immediate.append(self._tok_evs[v * self._nvp + port])
            if not self._cpu_active[v]:
                self._cpu_start_next(v)
            return
        self._q_buf[
            (qi << self._q_shift) | ((self._q_hd[qi] + n) & self._q_mask)
        ] = h
        self._q_n[qi] = n + 1
        self._queued[v] += 1
        if not n:
            self._pmask[v] |= self._pbit[port]
            self._advance_queue_head(v, port)

    # ------------------------------------------------------------------ #
    # completion
    # ------------------------------------------------------------------ #

    def _limit_error(self, reason: str, n_events: int) -> SimulationLimitError:
        """Build a :class:`SimulationLimitError` carrying a snapshot of
        where the run stood when the budget tripped."""
        nports = self._nports
        nvp = self._nvp
        vc_in = 0
        fifo_in = 0
        for qi, n in enumerate(self._q_n):
            if n:
                if qi % nports < nvp:
                    vc_in += n
                else:
                    fifo_in += n
        pending: dict[int, int] = {}
        recv_tot = 0
        fwd_tot = 0
        for u in range(self._p):
            r = self._rp_n[u]
            f = len(self._fwd_pending[u])
            recv_tot += r
            fwd_tot += f
            if r or f:
                pending[u] = r + f
        return SimulationLimitError(
            reason,
            events_processed=n_events,
            packets_in_flight=vc_in + fifo_in,
            pending_by_node=pending,
            recv_pending=recv_tot,
            fwd_pending=fwd_tot,
        )

    def _check_quiescent(self) -> None:
        """Verify no packet or work item is stranded after the event queue
        drained; raise :class:`DeadlockError` with diagnostics otherwise."""
        problems = []
        for u in range(self._p):
            if self._plan_peek(u) is not None:
                problems.append(f"node {u}: plan not exhausted")
            if self._fwd_pending[u]:
                problems.append(
                    f"node {u}: {len(self._fwd_pending[u])} forwards pending"
                )
            if self._rp_n[u]:
                problems.append(
                    f"node {u}: {self._rp_n[u]} receptions pending"
                )
            if self._cpu_active[u]:
                problems.append(f"node {u}: CPU op pending")
        nports = self._nports
        nvp = self._nvp
        fifo_tot = 0
        vc_tot = 0
        for qi, n in enumerate(self._q_n):
            if n:
                if qi % nports < nvp:
                    vc_tot += n
                else:
                    fifo_tot += n
        if fifo_tot:
            problems.append("injection FIFOs non-empty")
        if vc_tot:
            problems.append(f"{vc_tot} packets stranded in VC buffers")
        if problems:
            head = "; ".join(problems[:10])
            raise DeadlockError(
                f"network not quiescent after event drain: {head}"
                + ("; ..." if len(problems) > 10 else "")
            )

    def _result(self) -> SimulationResult:
        st = self.stats
        mean_lat = (
            st.final_latency_sum / st.final_deliveries
            if st.final_deliveries
            else 0.0
        )
        busy = np.asarray(self._busy_cycles, dtype=np.float64).reshape(
            self._p, self._ndirs
        )
        pkts = np.asarray(self._link_packets, dtype=np.int64).reshape(
            self._p, self._ndirs
        )
        return SimulationResult(
            time_cycles=st.last_final_delivery,
            link_busy_cycles=busy,
            link_packets=pkts,
            num_links=self._num_links,
            injected_packets=st.injected_packets,
            delivered_packets=st.delivered_packets,
            final_deliveries=st.final_deliveries,
            forwarded_packets=st.forwarded_packets,
            injected_wire_bytes=st.injected_wire_bytes,
            total_hops=st.total_hops,
            events_processed=st.events_processed,
            mean_final_latency=mean_lat,
            max_final_latency=st.final_latency_max,
            peak_forward_backlog=st.peak_forward_backlog,
            lost_packets=st.lost_packets,
            retransmitted_packets=st.retransmitted_packets,
            duplicate_packets=st.duplicate_packets,
            rerouted_hops=st.rerouted_hops,
            outage_cycles=st.outage_cycles,
        )


#: (name, base implementation) pairs whose bodies `_run_fused` inlines.
#: run() selects the fused loop only while every one of these still
#: resolves to the base implementation on the instance's class — a
#: subclass override or a monkeypatch of any of them (the fault, obs and
#: check layers, sabotage harnesses) falls back to the generic dispatch
#: loop, which calls the methods dynamically.
_FUSED_HOOKS = tuple(
    (nm, getattr(TorusNetwork, nm))
    for nm in (
        "_post_ev",
        "_dor_dir",
        "_vc_for_link",
        "_launch",
        "_arbitrate_link",
        "_try_send_head",
        "_advance_queue_head",
        "_advance_fifo_head",
        "_deliver_local_heads",
        "_cpu_maybe_start",
        "_plan_peek",
        "_cpu_start_next",
        "_begin_injection",
        "_cpu_complete",
        "_on_arrive",
    )
)
