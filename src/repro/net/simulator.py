"""Event-driven packet-level simulator of the BG/L torus network.

Models the router micro-architecture the paper's analysis rests on
(Sections 2-4):

* input-queued routers with per-(direction, VC) buffers and token (credit)
  flow control — a sender transmits only after reserving a downstream slot;
* two *dynamic* VCs routed adaptively (JSQ: the candidate (direction, VC)
  with the most free downstream tokens wins) plus one *bubble* escape VC
  routed in dimension order, with the bubble rule (a packet newly entering
  a bubble ring needs two free slots, a continuing one needs one)
  preventing deadlock;
* per-packet routing mode: ``ADAPTIVE`` (dynamic VCs, bubble as escape) or
  ``DETERMINISTIC`` (bubble VC only, dimension order) — the AR vs DR
  distinction of Section 3;
* injection FIFOs grouped so that strategies (TPS) can reserve FIFOs per
  phase, making phase-1 packets never queue behind phase-2 packets;
* a node CPU that can keep only ~4 links busy (Section 2): injection,
  reception draining and software forwarding all share one byte-rate
  budget, served round-robin — this is what makes TPS CPU-bound on a
  512-node midplane (Table 3) while through-traffic is routed entirely in
  "hardware" (virtual cut-through) and costs the CPU nothing.

Timing is store-and-forward at packet granularity (service = bytes * beta
per link hop, plus a per-hop router latency); this approximates virtual
cut-through faithfully for throughput studies because all-to-all traffic
is deeply pipelined (the approximation is documented in DESIGN.md).

The simulation is deterministic for a given (program, seed): arbitration
uses rotating priorities, not random draws.

Implementation notes: this is the package's hottest code — state lives in
flat Python lists (far faster than NumPy scalar indexing), events wake
exactly the component they enable, and the inner routing/arbitration loops
are written with minimal indirection.  ``tests/net`` pins the semantics.
Three structural optimizations keep the event rate up without changing a
single event's order (results are bit-identical to the straightforward
implementation):

* wrap-aware displacement decisions index precomputed per-axis tables
  (:mod:`repro.net.displacement`) instead of re-running the mod/halfbits
  branch cluster on every routing decision;
* events posted *at the current timestamp* (credit returns, FIFO frees —
  the bulk of the event stream under load) bypass the heap into a FIFO
  that is merged with the heap by the global (time, seq) order, so the
  common case costs O(1) instead of two O(log n) heap operations;
* instances carry ``__slots__``, per-node port->queue object tables are
  built once, and arbitration early-outs when a node has nothing queued.
"""

from __future__ import annotations

import itertools
from collections import deque
from heapq import heappop, heappush
from typing import Iterator, Optional

import numpy as np

from repro.model.machine import MachineParams
from repro.model.torus import TorusShape
from repro.net.config import NetworkConfig
from repro.net.displacement import displacement_tables
from repro.net.errors import DeadlockError, SimulationLimitError
from repro.net.packet import NO_VC, Packet, PacketSpec, RoutingMode
from repro.net.program import NodeProgram
from repro.net.topology import Topology
from repro.net.trace import SimStats, SimulationResult

# Event kinds (dispatch on small ints for speed).
_EV_LINK_FREE = 0
_EV_ARRIVE = 1
_EV_TOKEN = 2
_EV_CPU_DONE = 3
_EV_CPU_WAKE = 4
_EV_FIFO_FREE = 5

# CPU work sources, round-robined.
_SRC_RECV = 0
_SRC_FORWARD = 1
_SRC_PLAN = 2

_ADAPTIVE = int(RoutingMode.ADAPTIVE)


class TorusNetwork:
    """One simulated BG/L partition.

    Construct once per run; :meth:`run` executes a node program to
    quiescence and returns a :class:`SimulationResult`.
    """

    __slots__ = (
        "shape", "params", "config", "topo", "stats",
        "_p", "_ndim", "_ndirs", "_nvcs", "_ndyn", "_bubble", "_nfifos",
        "_vc_depth", "_bubble_entry",
        "_nbr", "_coord", "_colm", "_dims", "_wrap", "_half",
        "_dtab", "_dirtab",
        "_link_busy", "_tokens", "_vcq", "_fifo", "_fifo_free", "_recv_free",
        "_cpu_active", "_cpu_rr", "_cpu_pending", "_recv_pending",
        "_fwd_pending", "_plan_next", "_plan_iter", "_plan_last_start",
        "_pace", "_fifo_rr", "_ngroups",
        "_arb", "_vc_ports", "_nports", "_ports_q", "_queued",
        "_events", "_immediate", "_seq", "_now", "_pid", "_busy_cycles",
        "_program", "_num_links",
        "_beta", "_hop_latency", "_cpu_fixed", "_cpu_incr", "_alpha",
    )

    def __init__(
        self,
        shape: TorusShape,
        params: Optional[MachineParams] = None,
        config: Optional[NetworkConfig] = None,
    ) -> None:
        self.shape = shape
        self.params = params or MachineParams.bluegene_l()
        self.config = config or NetworkConfig.from_machine(self.params)
        self.topo = Topology(shape)

        p = shape.nnodes
        cfg = self.config
        self._p = p
        self._ndim = shape.ndim
        self._ndirs = self.topo.ndirs
        self._nvcs = cfg.num_vcs
        self._ndyn = cfg.num_dynamic_vcs
        self._bubble = cfg.bubble_vc
        self._nfifos = cfg.num_injection_fifos
        self._vc_depth = cfg.vc_depth
        self._bubble_entry = cfg.bubble_entry_tokens

        # --- topology tables as plain Python lists (hot path) ------------
        self._nbr: list[list[int]] = self.topo.neighbor.tolist()
        # _coord[axis][node]
        self._coord: list[list[int]] = [
            self.topo.coords[:, a].tolist() for a in range(self._ndim)
        ]
        self._dims = shape.dims
        self._wrap = tuple(shape.wrap_effective(a) for a in range(self._ndim))
        self._half = tuple(d // 2 for d in shape.dims)
        # Displacement/direction tables (shared per shape, see
        # repro.net.displacement) and row-premultiplied coordinates so a
        # routing decision is two list indexings and an add.
        dt = displacement_tables(shape)
        self._dtab = dt.disp
        self._dirtab = dt.dirs
        self._colm: list[list[int]] = [
            [c * shape.dims[a] for c in self._coord[a]]
            for a in range(self._ndim)
        ]

        # --- network state ------------------------------------------------
        ndirs, nvcs = self._ndirs, self._nvcs
        self._link_busy: list[float] = [0.0] * (p * ndirs)
        self._tokens: list[int] = [cfg.vc_depth] * (p * ndirs * nvcs)
        self._vcq: list[deque[Packet]] = [
            deque() for _ in range(p * ndirs * nvcs)
        ]
        self._fifo: list[deque[Packet]] = [
            deque() for _ in range(p * self._nfifos)
        ]
        self._fifo_free: list[int] = [cfg.injection_fifo_depth] * (
            p * self._nfifos
        )
        self._recv_free: list[int] = [cfg.reception_fifo_depth] * p

        # --- CPU state ----------------------------------------------------
        self._cpu_active: list[bool] = [False] * p
        self._cpu_rr: list[int] = [0] * p
        self._cpu_pending: list[Optional[tuple]] = [None] * p
        self._recv_pending: list[deque[Packet]] = [deque() for _ in range(p)]
        self._fwd_pending: list[deque[PacketSpec]] = [deque() for _ in range(p)]
        self._plan_next: list[Optional[PacketSpec]] = [None] * p
        self._plan_iter: list[Optional[Iterator[PacketSpec]]] = [None] * p
        self._plan_last_start: list[float] = [float("-inf")] * p
        self._pace: list[float] = [0.0] * p
        self._fifo_rr: list[int] = [0] * p
        self._ngroups = 1

        # --- arbitration rotation per (node, direction) link --------------
        self._arb: list[int] = [0] * (p * ndirs)
        # Ports: (in_dir, vc) pairs first, then injection FIFO indices.
        self._vc_ports: list[tuple[int, int]] = [
            (ind, vc) for ind in range(ndirs) for vc in range(nvcs)
        ]
        self._nports = len(self._vc_ports) + self._nfifos
        # Per-node port -> queue object table in port order (VC queues then
        # injection FIFOs): arbitration walks these lists directly instead
        # of recomputing flat indices per port.
        nvp = ndirs * nvcs
        self._ports_q: list[list[deque]] = [
            self._vcq[u * nvp : (u + 1) * nvp]
            + self._fifo[u * self._nfifos : (u + 1) * self._nfifos]
            for u in range(p)
        ]
        # Packets sitting in any VC queue or injection FIFO of a node;
        # arbitration early-outs on zero.
        self._queued: list[int] = [0] * p

        # --- bookkeeping ----------------------------------------------------
        self._events: list[tuple] = []
        # Events posted at the current timestamp bypass the heap into this
        # FIFO; the main loop merges both by global (time, seq) order.
        self._immediate: deque[tuple] = deque()
        self._seq = 0
        self._now = 0.0
        self._pid = itertools.count()
        self._busy_cycles: list[float] = [0.0] * (p * ndirs)
        self.stats = SimStats()
        self._program: Optional[NodeProgram] = None
        # Directed links that exist; the fault-aware subclass overrides
        # this with the surviving count so utilization stays meaningful.
        self._num_links = self.topo.num_links

        # Derived costs.
        prm = self.params
        self._beta = prm.beta_cycles_per_byte
        self._hop_latency = prm.hop_latency_cycles
        self._cpu_fixed = prm.packet_cpu_cycles
        self._cpu_incr = prm.cpu_incremental_cycles_per_byte
        self._alpha = prm.alpha_packet_cycles

    # ------------------------------------------------------------------ #
    # public knobs
    # ------------------------------------------------------------------ #

    def set_fifo_groups(self, ngroups: int) -> None:
        """Partition injection FIFOs into *ngroups* reservation groups
        (TPS uses 2: one per phase).  Must divide the FIFO count."""
        if ngroups < 1 or self._nfifos % ngroups != 0:
            raise ValueError(
                f"ngroups={ngroups} must divide num_injection_fifos="
                f"{self._nfifos}"
            )
        self._ngroups = ngroups

    # ------------------------------------------------------------------ #
    # small helpers
    # ------------------------------------------------------------------ #

    def _post(self, t: float, kind: int, a: int, b: int, c) -> None:
        self._seq = s = self._seq + 1
        if t <= self._now:
            self._immediate.append((t, s, kind, a, b, c))
        else:
            heappush(self._events, (t, s, kind, a, b, c))

    def _disp(self, cur: int, dst: int, axis: int, halfbits: int) -> int:
        """Shortest signed displacement cur -> dst on *axis* (wrap-aware).

        An exact-half displacement on an even torus dimension is minimal in
        both directions; the packet's *halfbits* decide which one it uses,
        so the two directions carry equal load in aggregate (a fixed
        tie-break would overload one direction by 25 % and cap all-to-all
        at 80 % of the Eq. 2 peak).  See :mod:`repro.net.displacement`."""
        return self._dtab[axis][(halfbits >> axis) & 1][
            self._colm[axis][cur] + self._coord[axis][dst]
        ]

    def _dor_dir(self, cur: int, dst: int, halfbits: int) -> int:
        """Dimension-order next direction, or -1 at destination."""
        coord = self._coord
        colm = self._colm
        dirtab = self._dirtab
        for axis in range(self._ndim):
            d = dirtab[axis][(halfbits >> axis) & 1][
                colm[axis][cur] + coord[axis][dst]
            ]
            if d >= 0:
                return d
        return -1

    # ------------------------------------------------------------------ #
    # sending machinery
    # ------------------------------------------------------------------ #

    def _vc_for_link(
        self, u: int, d: int, v: int, pkt: Packet, in_axis: int,
        dynamic_pass: bool,
    ) -> int:
        """VC to use sending *pkt* over (u -> v, direction d), or -1.

        ``in_axis`` is the axis the packet is currently traveling on
        (-1 when coming from an injection FIFO).  ``dynamic_pass`` selects
        the adaptive dynamic-VC pass vs the bubble/escape pass.
        """
        axis = d >> 1
        base = (v * self._ndirs + (d ^ 1)) * self._nvcs
        tokens = self._tokens
        if pkt.mode == _ADAPTIVE:
            if dynamic_pass:
                # Minimal progress on this axis iff d is the tabulated
                # minimal direction (-1 when the axis is already resolved).
                if d != self._dirtab[axis][(pkt.halfbits >> axis) & 1][
                    self._colm[axis][u] + self._coord[axis][pkt.dst]
                ]:
                    return -1
                best, best_free = -1, 0
                for vc in range(self._ndyn):
                    f = tokens[base + vc]
                    if f > best_free:
                        best, best_free = vc, f
                return best
            if self._dor_dir(u, pkt.dst, pkt.halfbits) != d:
                return -1
            entering = pkt.vc != self._bubble or in_axis != axis
            need = self._bubble_entry if entering else 1
            if tokens[base + self._bubble] >= need:
                return self._bubble
            return -1
        # DETERMINISTIC: bubble VC only, dimension order only.
        if dynamic_pass:
            return -1
        if self._dor_dir(u, pkt.dst, pkt.halfbits) != d:
            return -1
        entering = pkt.vc != self._bubble or in_axis != axis
        need = self._bubble_entry if entering else 1
        if tokens[base + self._bubble] >= need:
            return self._bubble
        return -1

    def _launch(
        self, u: int, d: int, v: int, pkt: Packet, vc: int
    ) -> None:
        """Start transmitting *pkt* from *u* to *v* on (d, vc).  The caller
        already removed the packet from its queue and released its old
        slot."""
        idx = (v * self._ndirs + (d ^ 1)) * self._nvcs + vc
        self._tokens[idx] -= 1
        pkt.vc = vc
        pkt.hops += 1
        self.stats.total_hops += 1
        service = pkt.wire_bytes * self._beta
        now = self._now
        done = now + service
        li = u * self._ndirs + d
        self._link_busy[li] = done
        self._busy_cycles[li] += service
        # Two inlined ``_post`` calls (this is the hottest event producer).
        self._seq = s = self._seq + 1
        ev = (done, s, _EV_LINK_FREE, u, d, None)
        if done <= now:
            self._immediate.append(ev)
        else:
            heappush(self._events, ev)
        # Virtual cut-through: the *header* reaches v after the router/wire
        # latency and may immediately compete for its next hop while the
        # body still streams behind it (an unobstructed header races ahead,
        # as on the real torus); the link itself stays busy for the full
        # service time.  On the packet's FINAL hop the payload is only
        # usable once its tail arrives, so delivery waits for the tail.
        arrive = (done if pkt.dst == v else now) + self._hop_latency
        self._seq = s = self._seq + 1
        ev = (arrive, s, _EV_ARRIVE, v, d ^ 1, pkt)
        if arrive <= now:
            self._immediate.append(ev)
        else:
            heappush(self._events, ev)

    def _arbitrate_link(self, u: int, d: int) -> bool:
        """Link (u, d) is free: pick one waiting head packet and launch it.
        Dynamic-VC candidates win over bubble candidates; ties rotate."""
        v = self._nbr[u][d]
        if v < 0:
            return False
        li = u * self._ndirs + d
        if self._link_busy[li] > self._now or not self._queued[u]:
            return False
        nports = self._nports
        nvc_ports = nports - self._nfifos
        ports_q = self._ports_q[u]
        # Per-link constants hoisted out of the port scan; the routing
        # checks of ``_vc_for_link`` are inlined below (this is the
        # pristine-network fast path — the fault-aware subclass overrides
        # this method with a generic scan through its own ``_vc_for_link``).
        axis = d >> 1
        nvcs = self._nvcs
        ndyn = self._ndyn
        bubble = self._bubble
        tokens = self._tokens
        base = (v * self._ndirs + (d ^ 1)) * self._nvcs
        bubble_tok = tokens[base + bubble]
        dt_axis = self._dirtab[axis]
        colm_u = self._colm[axis][u]
        coord_ax = self._coord[axis]
        dor_dir = self._dor_dir
        start = self._arb[li]
        # Single rotation scan: launch the first dynamic-VC candidate; if
        # none exists, fall back to the first bubble candidate, memoized
        # during the same scan.  The checks are pure and no state mutates
        # before a launch, so this selects exactly the packet the original
        # two-pass (dynamic then bubble) scan would.
        b_port = -1
        b_pkt = None
        b_vc = -1
        for k in range(nports):
            port = start + k
            if port >= nports:
                port -= nports
            q = ports_q[port]
            if not q:
                continue
            pkt = q[0]
            dst = pkt.dst
            if port < nvc_ports:
                if dst == u:
                    continue  # waiting for reception space
                in_axis = port // nvcs >> 1
            else:
                in_axis = -1
            if pkt.mode == _ADAPTIVE and d == dt_axis[
                (pkt.halfbits >> axis) & 1
            ][colm_u + coord_ax[dst]]:
                # Dynamic candidate: most-credit dynamic VC, if any.
                best, best_free = -1, 0
                for vc in range(ndyn):
                    f = tokens[base + vc]
                    if f > best_free:
                        best, best_free = vc, f
                if best >= 0:
                    b_port, b_pkt, b_vc = port, pkt, best
                    break
            if b_port < 0 and dor_dir(u, dst, pkt.halfbits) == d:
                # Bubble/escape candidate (both routing modes).
                need = (
                    self._bubble_entry
                    if pkt.vc != bubble or in_axis != axis
                    else 1
                )
                if bubble_tok >= need:
                    b_port, b_pkt, b_vc = port, pkt, bubble
        if b_port < 0:
            return False
        port, pkt = b_port, b_pkt
        ports_q[port].popleft()
        self._queued[u] -= 1
        self._arb[li] = port + 1 if port + 1 < nports else 0
        if port < nvc_ports:
            in_dir, vc = self._vc_ports[port]
            # Virtual cut-through: the slot frees as the packet streams
            # out, so the credit returns at launch.
            self._post(self._now, _EV_TOKEN, u, in_dir, vc)
            self._launch(u, d, v, pkt, b_vc)
            # The queue's new head may be deliverable locally or able to
            # use a different free link right now; no future event is
            # guaranteed to poke it, so advance eagerly.
            self._advance_queue_head(u, in_dir, vc)
        else:
            f = port - nvc_ports
            self._post(self._now, _EV_FIFO_FREE, u, f, None)
            self._launch(u, d, v, pkt, b_vc)
            # Eagerly advance the FIFO's new head (see above).
            self._advance_fifo_head(u, f)
        return True

    def _try_send_head(self, u: int, pkt: Packet, in_axis: int) -> bool:
        """Packet-centric attempt: launch *pkt* (a queue/FIFO head at *u*)
        over the best free link right now (JSQ across its candidate
        directions).  The caller pops the packet on success."""
        link_busy = self._link_busy
        nbr_u = self._nbr[u]
        lbase = u * self._ndirs
        now = self._now
        dst = pkt.dst
        if pkt.mode == _ADAPTIVE:
            coord = self._coord
            colm = self._colm
            dirtab = self._dirtab
            tokens = self._tokens
            halfbits = pkt.halfbits
            best_d, best_vc, best_free = -1, -1, 0
            for axis in range(self._ndim):
                d = dirtab[axis][(halfbits >> axis) & 1][
                    colm[axis][u] + coord[axis][dst]
                ]
                if d < 0:
                    continue
                v = nbr_u[d]
                if v < 0 or link_busy[lbase + d] > now:
                    continue
                base = (v * self._ndirs + (d ^ 1)) * self._nvcs
                for vc in range(self._ndyn):
                    f = tokens[base + vc]
                    if f > best_free:
                        best_d, best_vc, best_free = d, vc, f
            if best_d >= 0:
                self._launch(u, best_d, nbr_u[best_d], pkt, best_vc)
                return True
            # Bubble escape along the dimension-order direction.
            d = self._dor_dir(u, pkt.dst, pkt.halfbits)
            if d < 0:
                return False
            v = nbr_u[d]
            if v < 0 or link_busy[lbase + d] > now:
                return False
            entering = pkt.vc != self._bubble or in_axis != (d >> 1)
            base = (v * self._ndirs + (d ^ 1)) * self._nvcs
            need = self._bubble_entry if entering else 1
            if self._tokens[base + self._bubble] >= need:
                self._launch(u, d, v, pkt, self._bubble)
                return True
            return False
        d = self._dor_dir(u, pkt.dst, pkt.halfbits)
        if d < 0:
            return False
        v = nbr_u[d]
        if v < 0 or link_busy[lbase + d] > now:
            return False
        entering = pkt.vc != self._bubble or in_axis != (d >> 1)
        base = (v * self._ndirs + (d ^ 1)) * self._nvcs
        need = self._bubble_entry if entering else 1
        if self._tokens[base + self._bubble] >= need:
            self._launch(u, d, v, pkt, self._bubble)
            return True
        return False

    def _advance_queue_head(self, u: int, in_dir: int, vc: int) -> None:
        """Try to move the head packet of input queue (u, in_dir, vc):
        deliver it locally or forward it over a free link."""
        q = self._vcq[(u * self._ndirs + in_dir) * self._nvcs + vc]
        while q:
            pkt = q[0]
            if pkt.dst == u:
                if self._recv_free[u] <= 0:
                    return
                q.popleft()
                self._queued[u] -= 1
                self._recv_free[u] -= 1
                self._recv_pending[u].append(pkt)
                self._post(self._now, _EV_TOKEN, u, in_dir, vc)
                self._cpu_maybe_start(u)
                continue
            if self._try_send_head(u, pkt, in_dir >> 1):
                q.popleft()
                self._queued[u] -= 1
                self._post(self._now, _EV_TOKEN, u, in_dir, vc)
                continue
            return

    def _advance_fifo_head(self, u: int, f: int) -> None:
        """Try to launch the head packet of injection FIFO *f* at *u*."""
        fq = self._fifo[u * self._nfifos + f]
        while fq:
            pkt = fq[0]
            if not self._try_send_head(u, pkt, -1):
                return
            fq.popleft()
            self._queued[u] -= 1
            self._post(self._now, _EV_FIFO_FREE, u, f, None)

    def _deliver_local_heads(self, u: int) -> None:
        """A reception slot freed: move any waiting local-delivery heads."""
        nvcs = self._nvcs
        vcq = self._vcq
        recv_free = self._recv_free
        base = u * self._ndirs * nvcs
        for qi in range(base, base + self._ndirs * nvcs):
            if recv_free[u] <= 0:
                return
            if vcq[qi]:
                off = qi - base
                self._advance_queue_head(u, off // nvcs, off % nvcs)

    # ------------------------------------------------------------------ #
    # CPU model
    # ------------------------------------------------------------------ #

    def _cpu_maybe_start(self, u: int) -> None:
        if not self._cpu_active[u]:
            self._cpu_start_next(u)

    def _plan_peek(self, u: int) -> Optional[PacketSpec]:
        nxt = self._plan_next[u]
        if nxt is None:
            it = self._plan_iter[u]
            if it is None:
                return None
            nxt = next(it, None)
            if nxt is None:
                self._plan_iter[u] = None
                return None
            self._plan_next[u] = nxt
        return nxt

    def _pick_fifo(self, u: int, group: int) -> int:
        """Round-robin over the FIFOs of *group* with a free slot (-1 if
        none).  Groups partition FIFOs by index modulo the group count."""
        nf = self._nfifos
        want = group % self._ngroups
        base = self._fifo_rr[u]
        fbase = u * nf
        for k in range(nf):
            f = base + k
            if f >= nf:
                f -= nf
            if f % self._ngroups == want and self._fifo_free[fbase + f] > 0:
                self._fifo_rr[u] = f + 1 if f + 1 < nf else 0
                return f
        return -1

    def _cpu_cost(self, wire_bytes: int) -> float:
        return self._cpu_fixed + wire_bytes * self._cpu_incr

    def _cpu_start_next(self, u: int) -> None:
        """Choose the next CPU op at *u* (round-robin over reception drain,
        forward injection, plan injection) and schedule its completion."""
        now = self._now
        rr = self._cpu_rr[u]
        wake_at = -1.0
        for k in range(3):
            src = rr + k
            if src >= 3:
                src -= 3
            if src == _SRC_RECV:
                rp = self._recv_pending[u]
                if rp:
                    pkt = rp.popleft()
                    cost = self._cpu_cost(pkt.wire_bytes)
                    self._cpu_pending[u] = ("recv", pkt)
                    self._cpu_active[u] = True
                    self._cpu_rr[u] = src + 1
                    self._post(now + cost, _EV_CPU_DONE, u, 0, None)
                    return
            elif src == _SRC_FORWARD:
                fp = self._fwd_pending[u]
                if fp:
                    spec = fp[0]
                    f = self._pick_fifo(u, spec.fifo_group)
                    if f >= 0:
                        fp.popleft()
                        self._begin_injection(u, spec, f, src)
                        return
            else:
                spec = self._plan_peek(u)
                if spec is not None:
                    eligible = self._plan_last_start[u] + self._pace[u]
                    if now < eligible:
                        if wake_at < 0 or eligible < wake_at:
                            wake_at = eligible
                        continue
                    f = self._pick_fifo(u, spec.fifo_group)
                    if f >= 0:
                        self._plan_next[u] = None
                        self._plan_last_start[u] = now
                        self._begin_injection(u, spec, f, src)
                        return
        self._cpu_active[u] = False
        if wake_at > now:
            self._post(wake_at, _EV_CPU_WAKE, u, 0, None)

    def _begin_injection(
        self, u: int, spec: PacketSpec, fifo: int, src: int
    ) -> None:
        """Reserve a FIFO slot and charge the CPU for injecting *spec*."""
        self._fifo_free[u * self._nfifos + fifo] -= 1
        cost = self._cpu_cost(spec.wire_bytes) + spec.extra_cpu_cycles
        if spec.new_message:
            cost += spec.alpha_cycles if spec.alpha_cycles >= 0 else self._alpha
        self._cpu_pending[u] = ("inject", spec, fifo)
        self._cpu_active[u] = True
        self._cpu_rr[u] = src + 1
        self._post(self._now + cost, _EV_CPU_DONE, u, 0, None)

    def _cpu_complete(self, u: int) -> None:
        """Finalize the pending CPU op at *u*, then start the next one."""
        op = self._cpu_pending[u]
        self._cpu_pending[u] = None
        assert op is not None, "CPU completion with no pending op"
        if op[0] == "recv":
            pkt: Packet = op[1]
            self._recv_free[u] += 1
            self._finish_delivery(u, pkt)
            self._deliver_local_heads(u)
        else:  # inject
            spec: PacketSpec = op[1]
            fifo: int = op[2]
            pkt = Packet.from_spec(next(self._pid), u, spec, self._now)
            self.stats.injected_packets += 1
            self.stats.injected_wire_bytes += spec.wire_bytes
            if pkt.dst == u:
                # Local (self) message: bypasses the network entirely.
                self._fifo_free[u * self._nfifos + fifo] += 1
                self._finish_delivery(u, pkt)
            else:
                fq = self._fifo[u * self._nfifos + fifo]
                fq.append(pkt)
                self._queued[u] += 1
                if len(fq) == 1:
                    self._advance_fifo_head(u, fifo)
        self._cpu_start_next(u)

    def _finish_delivery(self, u: int, pkt: Packet) -> None:
        """Record a drained packet and run the program's delivery hook."""
        now = self._now
        pkt.deliver_time = now
        st = self.stats
        st.delivered_packets += 1
        st.last_delivery = now
        if pkt.final_dst == u:
            st.final_deliveries += 1
            st.last_final_delivery = now
            lat = now - pkt.inject_time
            st.final_latency_sum += lat
            if lat > st.final_latency_max:
                st.final_latency_max = lat
        else:
            st.forwarded_packets += 1
        assert self._program is not None
        fwd = self._program.on_delivery(u, pkt, now)
        if fwd:
            fp = self._fwd_pending[u]
            fp.extend(fwd)
            if len(fp) > st.peak_forward_backlog:
                st.peak_forward_backlog = len(fp)

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #

    def run(self, program: NodeProgram) -> SimulationResult:
        """Execute *program* to quiescence and return the results."""
        self._program = program
        for u in range(self._p):
            self._plan_iter[u] = iter(program.injection_plan(u))
            self._pace[u] = program.pace_cycles(u)
            self._cpu_maybe_start(u)

        events = self._events
        imm = self._immediate
        max_cycles = self.config.max_cycles
        max_events = self.config.max_events
        st = self.stats
        n_events = 0
        # Hot-loop locals (the loop runs millions of times per collective).
        imm_pop = imm.popleft
        tokens = self._tokens
        nbr = self._nbr
        fifo_free = self._fifo_free
        queued = self._queued
        ndirs = self._ndirs
        nvcs = self._nvcs
        nfifos = self._nfifos
        on_arrive = self._on_arrive
        arbitrate = self._arbitrate_link
        cpu_complete = self._cpu_complete
        cpu_maybe_start = self._cpu_maybe_start

        # Merge the heap with the immediate FIFO by global (time, seq)
        # order: identical event sequence to a pure heap, but same-time
        # token/FIFO-credit events cost O(1).
        while events or imm:
            if imm and (not events or imm[0] < events[0]):
                t, _, kind, a, b, c = imm_pop()
            else:
                t, _, kind, a, b, c = heappop(events)
            self._now = t
            n_events += 1
            if kind == _EV_ARRIVE:
                on_arrive(a, b, c)
            elif kind == _EV_TOKEN:
                tokens[(a * ndirs + b) * nvcs + c] += 1
                w = nbr[a][b]
                if w >= 0 and queued[w]:
                    arbitrate(w, b ^ 1)
            elif kind == _EV_LINK_FREE:
                if queued[a]:
                    arbitrate(a, b)
            elif kind == _EV_CPU_DONE:
                cpu_complete(a)
            elif kind == _EV_FIFO_FREE:
                fifo_free[a * nfifos + b] += 1
                cpu_maybe_start(a)
            else:  # _EV_CPU_WAKE
                cpu_maybe_start(a)
            if t > max_cycles:
                raise self._limit_error(
                    f"simulation exceeded {max_cycles:.3g} cycles", n_events
                )
            if n_events > max_events:
                raise self._limit_error(
                    f"simulation exceeded {max_events} events", n_events
                )

        st.events_processed = n_events
        self._check_quiescent()
        expected = program.expected_final_deliveries()
        if st.final_deliveries != expected:
            raise DeadlockError(
                f"completed with {st.final_deliveries} final deliveries, "
                f"expected {expected}"
            )
        return self._result()

    def _on_arrive(self, v: int, in_dir: int, pkt: Packet) -> None:
        qi = (v * self._ndirs + in_dir) * self._nvcs + pkt.vc
        q = self._vcq[qi]
        if pkt.dst == v and not q and self._recv_free[v] > 0:
            # Straight into the reception FIFO; the slot frees immediately.
            self._recv_free[v] -= 1
            self._recv_pending[v].append(pkt)
            self._post(self._now, _EV_TOKEN, v, in_dir, pkt.vc)
            self._cpu_maybe_start(v)
            return
        q.append(pkt)
        self._queued[v] += 1
        if len(q) == 1:
            self._advance_queue_head(v, in_dir, pkt.vc)

    # ------------------------------------------------------------------ #
    # completion
    # ------------------------------------------------------------------ #

    def _limit_error(self, reason: str, n_events: int) -> SimulationLimitError:
        """Build a :class:`SimulationLimitError` carrying a snapshot of
        where the run stood when the budget tripped."""
        in_flight = sum(len(q) for q in self._vcq) + sum(
            len(q) for q in self._fifo
        )
        pending: dict[int, int] = {}
        for u in range(self._p):
            n = len(self._recv_pending[u]) + len(self._fwd_pending[u])
            if n:
                pending[u] = n
        return SimulationLimitError(
            reason,
            events_processed=n_events,
            packets_in_flight=in_flight,
            pending_by_node=pending,
        )

    def _check_quiescent(self) -> None:
        """Verify no packet or work item is stranded after the event queue
        drained; raise :class:`DeadlockError` with diagnostics otherwise."""
        problems = []
        for u in range(self._p):
            if self._plan_peek(u) is not None:
                problems.append(f"node {u}: plan not exhausted")
            if self._fwd_pending[u]:
                problems.append(
                    f"node {u}: {len(self._fwd_pending[u])} forwards pending"
                )
            if self._recv_pending[u]:
                problems.append(
                    f"node {u}: {len(self._recv_pending[u])} receptions pending"
                )
            if self._cpu_active[u]:
                problems.append(f"node {u}: CPU op pending")
        if any(self._fifo):
            problems.append("injection FIFOs non-empty")
        stranded = sum(len(q) for q in self._vcq)
        if stranded:
            problems.append(f"{stranded} packets stranded in VC buffers")
        if problems:
            head = "; ".join(problems[:10])
            raise DeadlockError(
                f"network not quiescent after event drain: {head}"
                + ("; ..." if len(problems) > 10 else "")
            )

    def _result(self) -> SimulationResult:
        st = self.stats
        mean_lat = (
            st.final_latency_sum / st.final_deliveries
            if st.final_deliveries
            else 0.0
        )
        busy = np.asarray(self._busy_cycles, dtype=np.float64).reshape(
            self._p, self._ndirs
        )
        return SimulationResult(
            time_cycles=st.last_final_delivery,
            link_busy_cycles=busy,
            num_links=self._num_links,
            injected_packets=st.injected_packets,
            delivered_packets=st.delivered_packets,
            final_deliveries=st.final_deliveries,
            forwarded_packets=st.forwarded_packets,
            injected_wire_bytes=st.injected_wire_bytes,
            total_hops=st.total_hops,
            events_processed=st.events_processed,
            mean_final_latency=mean_lat,
            max_final_latency=st.final_latency_max,
            peak_forward_backlog=st.peak_forward_backlog,
            lost_packets=st.lost_packets,
            retransmitted_packets=st.retransmitted_packets,
            duplicate_packets=st.duplicate_packets,
            rerouted_hops=st.rerouted_hops,
            outage_cycles=st.outage_cycles,
        )
