"""Packet representation and injection specifications.

A :class:`Packet` is the unit the torus moves: up to 256 B on the wire,
carrying a routing mode (adaptive dynamic-VC or deterministic bubble-VC),
the node it must be *delivered* to, and an opaque ``tag`` that node
programs use to recognize forwarded traffic (TPS phase-1 packets, VMesh row
messages, ...).

:class:`PacketSpec` is the strategy-facing description of a packet to
inject; the simulator turns specs into packets at injection time so that
multi-million-packet schedules can be generated lazily.

The timed simulator does not move :class:`Packet` *objects* through the
network: it allocates an integer handle from a :class:`PacketPool` — a
struct-of-arrays store whose parallel columns (``src``, ``dst``,
``wire_bytes``, ``hops``, ...) are plain flat lists indexed by handle —
and threads that handle through queues, events and launches.  A real
``Packet`` is materialized only at the delivery boundary, where node
programs consume it.  The pool recycles handles through a LIFO free list
and doubles its columns in place when it runs dry, so column references
borrowed by the simulator stay valid across regrowth.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable


class RoutingMode(enum.IntEnum):
    """How the torus routes a packet (Section 2: BG/L supports both)."""

    #: JSQ adaptive routing on the dynamic VCs, bubble VC as escape.
    ADAPTIVE = 0
    #: Dimension-ordered routing on the bubble VC only.
    DETERMINISTIC = 1


@dataclass(frozen=True)
class PacketSpec:
    """A packet a node program wants injected.

    Attributes
    ----------
    dst:
        Node rank the *network* delivers this packet to (an intermediate
        node for indirect strategies).
    wire_bytes:
        On-the-wire size, a legal torus packet size (32 B granularity).
    mode:
        Routing mode.
    fifo_group:
        Injection FIFO group; TPS reserves one group per phase so phase-1
        packets are never blocked behind phase-2 packets (Section 4.1).
    new_message:
        True on the first packet of a message: charges the per-message
        startup alpha on the injecting CPU.
    tag:
        Opaque marker handed to the receiving node program.
    final_dst:
        Ultimate destination rank (accounting/verification only).
    payload_bytes:
        Application payload carried (accounting only; <= wire_bytes).
    extra_cpu_cycles:
        Additional CPU cycles to charge when injecting (e.g. the VMesh
        gamma memcpy for combining at intermediates).
    alpha_cycles:
        Startup charged when ``new_message`` (negative = use the machine's
        packet-runtime alpha).  Message-level strategies (MPI, VMesh) set
        the heavier 1170-cycle alpha here.
    seq:
        End-to-end sequence number for at-most-once delivery under packet
        loss (negative = unsequenced; assigned by the fault-aware network
        at first injection and reused verbatim on retransmission).
    """

    dst: int
    wire_bytes: int
    mode: RoutingMode = RoutingMode.ADAPTIVE
    fifo_group: int = 0
    new_message: bool = False
    tag: Hashable = None
    final_dst: int = -1
    payload_bytes: int = 0
    extra_cpu_cycles: float = 0.0
    alpha_cycles: float = -1.0
    seq: int = -1


#: Sentinel for "no VC assigned yet".
NO_VC = -1


@dataclass
class Packet:
    """A live packet inside the simulated network (mutable)."""

    __slots__ = (
        "pid",
        "src",
        "dst",
        "wire_bytes",
        "mode",
        "tag",
        "final_dst",
        "payload_bytes",
        "inject_time",
        "deliver_time",
        "hops",
        "vc",
        "halfbits",
        "seq",
        "downphase",
    )

    pid: int
    src: int
    dst: int
    wire_bytes: int
    mode: RoutingMode
    tag: Hashable
    final_dst: int
    payload_bytes: int
    inject_time: float
    deliver_time: float
    hops: int
    vc: int
    #: Per-axis direction choice for exact-half torus displacements (bit a
    #: set => axis a resolves +).  Fixed at injection from a hash of the
    #: packet id so the two minimal directions are used evenly, matching
    #: the hardware/runtime behavior the paper's Eq. 2 peak assumes; a
    #: fixed tie-break would overload one direction by 25 % on even tori.
    halfbits: int
    #: End-to-end sequence number (negative = unsequenced run).
    seq: int
    #: Up*/down* escape phase under faults: True once the packet has taken
    #: a down link on the escape VC (it may then never climb again while it
    #: stays on that VC).  Reset whenever the packet moves adaptively.
    downphase: bool

    @classmethod
    def from_spec(
        cls, pid: int, src: int, spec: PacketSpec, now: float
    ) -> "Packet":
        """Materialize a packet from its spec at injection time."""
        return cls(
            pid=pid,
            src=src,
            dst=spec.dst,
            wire_bytes=spec.wire_bytes,
            mode=spec.mode,
            tag=spec.tag,
            final_dst=spec.final_dst if spec.final_dst >= 0 else spec.dst,
            payload_bytes=spec.payload_bytes,
            inject_time=now,
            deliver_time=-1.0,
            hops=0,
            vc=NO_VC,
            halfbits=(pid * 0x9E3779B1) >> 7,
            seq=spec.seq,
            downphase=False,
        )


class PacketPool:
    """Struct-of-arrays packet store with integer handles.

    Each live packet is an index ``h`` into the parallel columns below;
    the timed simulator queues, routes and retires handles instead of
    ``Packet`` objects.  Columns mirror :class:`Packet` fields, except
    that ``mode`` is stored as a plain ``int`` (the :class:`RoutingMode`
    value) and ``inject_time`` is stored in whatever timebase the owner
    uses (the simulator stores scaled ticks).  ``deliver_time`` has no
    column: delivery is the moment the handle dies, so the owner passes
    the delivery timestamp straight to :meth:`materialize`.

    Handles are recycled through a LIFO ``free`` list (hot handles stay
    cache-warm).  When the pool runs dry it doubles every column *in
    place* via ``list.extend``, so references to the column lists held
    by the simulator remain valid across regrowth.
    """

    __slots__ = (
        "capacity",
        "free",
        "pid",
        "src",
        "dst",
        "wire_bytes",
        "mode",
        "tag",
        "final_dst",
        "payload_bytes",
        "inject_time",
        "hops",
        "vc",
        "halfbits",
        "seq",
        "downphase",
    )

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("pool capacity must be positive")
        self.capacity = capacity
        # Popped from the tail: handle 0 is handed out first.
        self.free = list(range(capacity - 1, -1, -1))
        self.pid = [0] * capacity
        self.src = [0] * capacity
        self.dst = [0] * capacity
        self.wire_bytes = [0] * capacity
        self.mode = [0] * capacity
        self.tag: list[Hashable] = [None] * capacity
        self.final_dst = [0] * capacity
        self.payload_bytes = [0] * capacity
        self.inject_time = [0.0] * capacity
        self.hops = [0] * capacity
        self.vc = [NO_VC] * capacity
        self.halfbits = [0] * capacity
        self.seq = [-1] * capacity
        self.downphase = [False] * capacity

    @property
    def live(self) -> int:
        """Number of handles currently allocated."""
        return self.capacity - len(self.free)

    def grow(self) -> None:
        """Double capacity, extending every column in place."""
        old = self.capacity
        new = old * 2
        self.pid.extend([0] * old)
        self.src.extend([0] * old)
        self.dst.extend([0] * old)
        self.wire_bytes.extend([0] * old)
        self.mode.extend([0] * old)
        self.tag.extend([None] * old)
        self.final_dst.extend([0] * old)
        self.payload_bytes.extend([0] * old)
        self.inject_time.extend([0.0] * old)
        self.hops.extend([0] * old)
        self.vc.extend([NO_VC] * old)
        self.halfbits.extend([0] * old)
        self.seq.extend([-1] * old)
        self.downphase.extend([False] * old)
        self.free.extend(range(new - 1, old - 1, -1))
        self.capacity = new

    def alloc(
        self, pid: int, src: int, spec: PacketSpec, inject_time: float
    ) -> int:
        """Allocate a handle initialized exactly as
        :meth:`Packet.from_spec` would initialize a packet."""
        free = self.free
        if not free:
            self.grow()
            free = self.free
        h = free.pop()
        self.pid[h] = pid
        self.src[h] = src
        self.dst[h] = spec.dst
        self.wire_bytes[h] = spec.wire_bytes
        self.mode[h] = int(spec.mode)
        self.tag[h] = spec.tag
        self.final_dst[h] = spec.final_dst if spec.final_dst >= 0 else spec.dst
        self.payload_bytes[h] = spec.payload_bytes
        self.inject_time[h] = inject_time
        self.hops[h] = 0
        self.vc[h] = NO_VC
        self.halfbits[h] = (pid * 0x9E3779B1) >> 7
        self.seq[h] = spec.seq
        self.downphase[h] = False
        return h

    def release(self, h: int) -> None:
        """Return a handle to the free list (caller must not use it
        again until re-allocated)."""
        self.free.append(h)

    def materialize(
        self, h: int, inject_time: float, deliver_time: float
    ) -> Packet:
        """Build a real :class:`Packet` from a handle at the delivery
        boundary, with caller-supplied (unscaled) timestamps."""
        return Packet(
            self.pid[h],
            self.src[h],
            self.dst[h],
            self.wire_bytes[h],
            RoutingMode(self.mode[h]),
            self.tag[h],
            self.final_dst[h],
            self.payload_bytes[h],
            inject_time,
            deliver_time,
            self.hops[h],
            self.vc[h],
            self.halfbits[h],
            self.seq[h],
            self.downphase[h],
        )
