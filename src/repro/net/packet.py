"""Packet representation and injection specifications.

A :class:`Packet` is the unit the torus moves: up to 256 B on the wire,
carrying a routing mode (adaptive dynamic-VC or deterministic bubble-VC),
the node it must be *delivered* to, and an opaque ``tag`` that node
programs use to recognize forwarded traffic (TPS phase-1 packets, VMesh row
messages, ...).

:class:`PacketSpec` is the strategy-facing description of a packet to
inject; the simulator turns specs into packets at injection time so that
multi-million-packet schedules can be generated lazily.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable


class RoutingMode(enum.IntEnum):
    """How the torus routes a packet (Section 2: BG/L supports both)."""

    #: JSQ adaptive routing on the dynamic VCs, bubble VC as escape.
    ADAPTIVE = 0
    #: Dimension-ordered routing on the bubble VC only.
    DETERMINISTIC = 1


@dataclass(frozen=True)
class PacketSpec:
    """A packet a node program wants injected.

    Attributes
    ----------
    dst:
        Node rank the *network* delivers this packet to (an intermediate
        node for indirect strategies).
    wire_bytes:
        On-the-wire size, a legal torus packet size (32 B granularity).
    mode:
        Routing mode.
    fifo_group:
        Injection FIFO group; TPS reserves one group per phase so phase-1
        packets are never blocked behind phase-2 packets (Section 4.1).
    new_message:
        True on the first packet of a message: charges the per-message
        startup alpha on the injecting CPU.
    tag:
        Opaque marker handed to the receiving node program.
    final_dst:
        Ultimate destination rank (accounting/verification only).
    payload_bytes:
        Application payload carried (accounting only; <= wire_bytes).
    extra_cpu_cycles:
        Additional CPU cycles to charge when injecting (e.g. the VMesh
        gamma memcpy for combining at intermediates).
    alpha_cycles:
        Startup charged when ``new_message`` (negative = use the machine's
        packet-runtime alpha).  Message-level strategies (MPI, VMesh) set
        the heavier 1170-cycle alpha here.
    seq:
        End-to-end sequence number for at-most-once delivery under packet
        loss (negative = unsequenced; assigned by the fault-aware network
        at first injection and reused verbatim on retransmission).
    """

    dst: int
    wire_bytes: int
    mode: RoutingMode = RoutingMode.ADAPTIVE
    fifo_group: int = 0
    new_message: bool = False
    tag: Hashable = None
    final_dst: int = -1
    payload_bytes: int = 0
    extra_cpu_cycles: float = 0.0
    alpha_cycles: float = -1.0
    seq: int = -1


#: Sentinel for "no VC assigned yet".
NO_VC = -1


@dataclass
class Packet:
    """A live packet inside the simulated network (mutable)."""

    __slots__ = (
        "pid",
        "src",
        "dst",
        "wire_bytes",
        "mode",
        "tag",
        "final_dst",
        "payload_bytes",
        "inject_time",
        "deliver_time",
        "hops",
        "vc",
        "halfbits",
        "seq",
        "downphase",
    )

    pid: int
    src: int
    dst: int
    wire_bytes: int
    mode: RoutingMode
    tag: Hashable
    final_dst: int
    payload_bytes: int
    inject_time: float
    deliver_time: float
    hops: int
    vc: int
    #: Per-axis direction choice for exact-half torus displacements (bit a
    #: set => axis a resolves +).  Fixed at injection from a hash of the
    #: packet id so the two minimal directions are used evenly, matching
    #: the hardware/runtime behavior the paper's Eq. 2 peak assumes; a
    #: fixed tie-break would overload one direction by 25 % on even tori.
    halfbits: int
    #: End-to-end sequence number (negative = unsequenced run).
    seq: int
    #: Up*/down* escape phase under faults: True once the packet has taken
    #: a down link on the escape VC (it may then never climb again while it
    #: stays on that VC).  Reset whenever the packet moves adaptively.
    downphase: bool

    @classmethod
    def from_spec(
        cls, pid: int, src: int, spec: PacketSpec, now: float
    ) -> "Packet":
        """Materialize a packet from its spec at injection time."""
        return cls(
            pid=pid,
            src=src,
            dst=spec.dst,
            wire_bytes=spec.wire_bytes,
            mode=spec.mode,
            tag=spec.tag,
            final_dst=spec.final_dst if spec.final_dst >= 0 else spec.dst,
            payload_bytes=spec.payload_bytes,
            inject_time=now,
            deliver_time=-1.0,
            hops=0,
            vc=NO_VC,
            halfbits=(pid * 0x9E3779B1) >> 7,
            seq=spec.seq,
            downphase=False,
        )
