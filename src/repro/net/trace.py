"""Simulation instrumentation and results.

:class:`SimStats` accumulates counters during a run;
:class:`SimulationResult` is the immutable summary handed back to callers,
carrying everything the experiment harness needs: completion time, per-link
utilization, delivery latencies and event counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.model.torus import TorusShape


@dataclass(slots=True)
class SimStats:
    """Mutable in-flight counters (one per simulation run)."""

    injected_packets: int = 0
    delivered_packets: int = 0
    final_deliveries: int = 0
    forwarded_packets: int = 0
    injected_wire_bytes: int = 0
    total_hops: int = 0
    events_processed: int = 0
    last_final_delivery: float = 0.0
    last_delivery: float = 0.0
    #: Sum of (deliver - inject) over final deliveries.
    final_latency_sum: float = 0.0
    #: Max (deliver - inject) over final deliveries.
    final_latency_max: float = 0.0
    #: Peak per-node backlog of forwarding work (packets received but not
    #: yet re-injected) — the intermediate memory credit flow control
    #: bounds (Section 5).
    peak_forward_backlog: int = 0
    #: Packets dropped on a lossy link (fault injection only).
    lost_packets: int = 0
    #: Sender-side retransmissions issued after a timeout.
    retransmitted_packets: int = 0
    #: Duplicate deliveries discarded by receiver-side dedup.
    duplicate_packets: int = 0
    #: Hops taken in a non-minimal direction to route around faults.
    rerouted_hops: int = 0
    #: Sum over links of configured outage-window cycles.
    outage_cycles: float = 0.0


@dataclass(frozen=True)
class SimulationResult:
    """Summary of one simulated collective."""

    #: Completion time: last *final* delivery, cycles.
    time_cycles: float
    #: Per-(node, direction) link busy cycles.
    link_busy_cycles: np.ndarray
    #: Number of directed links that exist.
    num_links: int
    injected_packets: int
    delivered_packets: int
    final_deliveries: int
    forwarded_packets: int
    injected_wire_bytes: int
    total_hops: int
    events_processed: int
    mean_final_latency: float
    max_final_latency: float
    peak_forward_backlog: int = 0
    #: Fault observability (all zero on a pristine run).
    lost_packets: int = 0
    retransmitted_packets: int = 0
    duplicate_packets: int = 0
    rerouted_hops: int = 0
    outage_cycles: float = 0.0
    #: Per-(node, direction) packets launched onto each directed link,
    #: same layout as :attr:`link_busy_cycles`.  Always collected (the
    #: counter is one integer add per launch); ``None`` only on results
    #: built by code predating the counter.
    link_packets: Optional[np.ndarray] = None
    extras: dict = field(default_factory=dict)

    @property
    def mean_link_utilization(self) -> float:
        """Mean busy fraction over existing links during the run."""
        if self.time_cycles <= 0 or self.num_links == 0:
            return 0.0
        return float(self.link_busy_cycles.sum()) / (
            self.time_cycles * self.num_links
        )

    @property
    def max_link_utilization(self) -> float:
        """Busy fraction of the hottest link."""
        if self.time_cycles <= 0 or self.link_busy_cycles.size == 0:
            return 0.0
        return float(self.link_busy_cycles.max()) / self.time_cycles

    def _check_shape(self, shape: TorusShape) -> None:
        """Reject a *shape* that cannot be the one this run simulated.

        The busy matrix is (nnodes, 2*ndim); passing a mismatched shape
        used to index out of bounds or silently misattribute columns to
        the wrong axis.
        """
        nnodes, ncols = self.link_busy_cycles.shape
        if shape.nnodes != nnodes or 2 * shape.ndim != ncols:
            raise ValueError(
                f"shape {shape.dims} (nnodes={shape.nnodes}, "
                f"ndim={shape.ndim}) does not match this run's busy "
                f"matrix of {nnodes} nodes x {ncols} directions"
            )

    def axis_utilization(self, shape: TorusShape) -> list[float]:
        """Mean busy fraction per dimension (+/- pooled), confirming the
        Section 3.2 analysis that long dimensions run hotter.

        Degenerate axes are handled explicitly: an extent-1 dimension has
        no links (utilization 0.0), and an extent-2 dimension counts its
        links once even when the torus flag is set (the wrap link *is*
        the mesh link, which :meth:`TorusShape.links_in_dim` already
        accounts for)."""
        self._check_shape(shape)
        out = []
        for axis in range(shape.ndim):
            cols = [2 * axis, 2 * axis + 1]
            busy = self.link_busy_cycles[:, cols]
            nlinks = shape.links_in_dim(axis)
            if nlinks == 0 or self.time_cycles <= 0:
                out.append(0.0)
            else:
                out.append(float(busy.sum()) / (self.time_cycles * nlinks))
        return out
