"""Simulator error types."""

from __future__ import annotations


class SimulationError(RuntimeError):
    """Base class for simulator failures."""


class DeadlockError(SimulationError):
    """The event queue drained while packets were still undelivered.

    A correctly configured simulation cannot deadlock (the bubble escape VC
    guarantees forward progress); this error therefore indicates either a
    mis-built node program (e.g. a forwarding rule that drops packets) or a
    configuration whose reception queues were disabled.  The message carries
    a per-node diagnostic snapshot.
    """


class SimulationLimitError(SimulationError):
    """The simulation exceeded its configured cycle or event budget."""
