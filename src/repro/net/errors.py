"""Simulator error types."""

from __future__ import annotations

from typing import Mapping, Optional, Sequence


class SimulationError(RuntimeError):
    """Base class for simulator failures."""


class DeadlockError(SimulationError):
    """The event queue drained while packets were still undelivered.

    A correctly configured simulation cannot deadlock (the bubble escape VC
    guarantees forward progress); this error therefore indicates either a
    mis-built node program (e.g. a forwarding rule that drops packets) or a
    configuration whose reception queues were disabled.  The message carries
    a per-node diagnostic snapshot.
    """


class SimulationLimitError(SimulationError):
    """The simulation exceeded its configured cycle or event budget.

    Carries a diagnostic snapshot of where the simulation stood when the
    budget ran out (mirroring :class:`DeadlockError`'s per-node report), so
    a runaway run can be triaged without re-running under a debugger:

    * ``events_processed`` — events handled before the limit tripped;
    * ``packets_in_flight`` — packets sitting in VC buffers and injection
      FIFOs at that moment;
    * ``recv_pending`` — packets accepted into reception FIFOs but not yet
      drained by their node's CPU;
    * ``fwd_pending`` — forward/retransmission specs awaiting re-injection;
    * ``pending_by_node`` — per-node count of CPU work still queued
      (receptions to drain plus forwards to re-inject), non-zero nodes only.
    """

    def __init__(
        self,
        reason: str,
        *,
        events_processed: int = 0,
        packets_in_flight: int = 0,
        pending_by_node: Optional[Mapping[int, int]] = None,
        recv_pending: int = 0,
        fwd_pending: int = 0,
    ) -> None:
        self.events_processed = events_processed
        self.packets_in_flight = packets_in_flight
        self.recv_pending = recv_pending
        self.fwd_pending = fwd_pending
        self.pending_by_node = dict(pending_by_node or {})
        msg = reason
        if (
            events_processed
            or packets_in_flight
            or recv_pending
            or fwd_pending
            or self.pending_by_node
        ):
            hot = sorted(
                self.pending_by_node.items(), key=lambda kv: -kv[1]
            )[:8]
            hot_s = ", ".join(f"node {u}: {n}" for u, n in hot) or "none"
            msg = (
                f"{reason} [events_processed={events_processed}, "
                f"packets_in_flight={packets_in_flight}, "
                f"recv_pending={recv_pending}, fwd_pending={fwd_pending}, "
                f"pending work ({len(self.pending_by_node)} nodes): {hot_s}]"
            )
        super().__init__(msg)


class PartitionedNetworkError(SimulationError):
    """A fault plan disconnects the surviving torus.

    Raised by connectivity validation before any traffic is simulated: the
    plan's dead links/nodes leave at least one surviving node unreachable
    from the rest, so no routing table can keep the collective complete.
    ``unreachable`` lists the stranded ranks.
    """

    def __init__(self, msg: str, unreachable: Sequence[int] = ()) -> None:
        self.unreachable = tuple(unreachable)
        if self.unreachable:
            shown = ", ".join(str(u) for u in self.unreachable[:16])
            more = "..." if len(self.unreachable) > 16 else ""
            msg = f"{msg} (unreachable ranks: {shown}{more})"
        super().__init__(msg)
