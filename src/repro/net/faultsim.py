"""Fault-aware variant of the torus network simulator.

:class:`FaultyTorusNetwork` extends :class:`~repro.net.simulator.TorusNetwork`
with everything a :class:`~repro.net.faults.FaultPlan` demands:

* dead links and dead nodes are masked out of the neighbor table, so the
  base arbitration machinery can never pick them (they look exactly like
  mesh edges);
* routing switches to the plan's :class:`~repro.net.faults.FaultRoutingTable`
  — adaptive packets take any surviving link that strictly decreases BFS
  distance to the destination (JSQ among the dynamic VCs), and the escape
  virtual channel follows deadlock-free up*/down* next hops instead of
  dimension order (the bubble rule's rings no longer exist);
* degraded links stretch their service time, transient outages hold links
  busy for their window, and lossy links drop packets deterministically
  (the drop still occupies the wire for the full service time and returns
  the downstream credit when the tail would have passed);
* when any link is lossy, an end-to-end reliability layer activates:
  every network-bound packet gets a sequence number, the sender keeps the
  spec outstanding and retransmits on a timeout with exponential backoff,
  and receivers discard duplicate sequence numbers — so the collective
  completes with exactly-once delivery semantics.

The zero-fault path stays on the base class: :func:`build_network` only
instantiates this subclass for a non-empty plan, and the base class's hot
loop carries **no** fault branches (the overrides below are copies with the
fault logic woven in, not hooks called per event).

Like the base class, all state is struct-of-arrays: packets are integer
handles into the shared :class:`~repro.net.packet.PacketPool`, the
retransmission ledger keys sequence numbers to specs (never handles — a
dropped packet's handle is recycled the moment it dies on the wire), and
event times are 2**64-scaled ticks (see the base module docstring).
"""

from __future__ import annotations

import gc
import itertools
from dataclasses import replace
from heapq import heappop
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.check.config import CheckConfig
    from repro.obs.config import ObsConfig

from repro.model.machine import MachineParams
from repro.model.torus import TorusShape
from repro.net.config import NetworkConfig
from repro.net.errors import DeadlockError, SimulationError
from repro.net.faults import (
    FaultPlan,
    FaultRoutingTable,
    loss_draw,
    loss_salt,
)
from repro.net.packet import PacketSpec
from repro.net.program import NodeProgram
from repro.net.simulator import (
    _ADAPTIVE,
    _EV_ARRIVE,
    _EV_CPU_DONE,
    _EV_CPU_WAKE,
    _EV_FIFO_FREE,
    _EV_LINK_FREE,
    _EV_OUTAGE,
    _EV_RETX,
    _EV_TOKEN,
    TICK_SCALE,
    TorusNetwork,
)
from repro.net.trace import SimulationResult


class FaultyTorusNetwork(TorusNetwork):
    """A torus partition degraded by a :class:`FaultPlan`.

    Construction validates connectivity of the surviving nodes (raising
    :class:`~repro.net.errors.PartitionedNetworkError` otherwise) and
    precomputes all routing tables; the per-event cost of fault awareness
    is then a handful of list lookups.
    """

    __slots__ = (
        "faults", "routing", "_dist", "_nh_up", "_nh_down", "_order",
        "_dead_set", "_degrade", "_loss", "_has_loss", "_loss_salt",
        "_seqno", "_outstanding", "_delivered_seqs",
    )

    def __init__(
        self,
        shape: TorusShape,
        params: Optional[MachineParams] = None,
        config: Optional[NetworkConfig] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        super().__init__(shape, params, config)
        plan = faults if faults is not None else FaultPlan()
        self.faults = plan
        rt = FaultRoutingTable(self.topo, plan)
        self.routing = rt
        # Masked neighbors: the base arbitration/token machinery sees dead
        # links as absent (== mesh edges) and can never route over them.
        # The interned TOKEN events bake the upstream neighbor in, so they
        # must be rebuilt against the masked table.
        self._nbr = rt.nbr
        self._build_token_events()
        self._num_links = rt.num_links
        self._dist = rt.dist
        self._nh_up = rt.nh_up
        self._nh_down = rt.nh_down
        self._order = rt.order
        self._dead_set = plan.dead_nodes
        self._degrade = rt.degrade_table()
        self._loss = rt.loss_table()
        self._has_loss = plan.has_loss
        self._loss_salt = loss_salt(plan)
        # Reliability layer state (active only when links can drop).
        self._seqno = itertools.count()
        self._outstanding: dict[int, tuple[int, PacketSpec]] = {}
        self._delivered_seqs: set[int] = set()
        # Transient outages become pre-posted events: the start event
        # extends the link's busy horizon to the window end, the end event
        # re-arbitrates waiters.  No routing logic needed.
        for o in plan.outages:
            if o.direction >= self._ndirs or o.node >= self._p:
                raise SimulationError(
                    f"outage names nonexistent link ({o.node}, {o.direction})"
                )
            if self._nbr[o.node][o.direction] < 0:
                continue  # outage on a dead/absent link changes nothing
            li = o.node * self._ndirs + o.direction
            self._post_ev(
                o.start * TICK_SCALE, (_EV_OUTAGE, li, o.end * TICK_SCALE, 0)
            )
            self._post_ev(o.end * TICK_SCALE, self._link_evs[li])
            self.stats.outage_cycles += o.end - o.start

    # ------------------------------------------------------------------ #
    # fault-aware routing
    # ------------------------------------------------------------------ #

    def _vc_for_link(
        self, u: int, d: int, v: int, h: int, in_axis: int,
        dynamic_pass: bool,
    ) -> int:
        db = self._P_dst[h] * self._p
        base = (v * self._ndirs + (d ^ 1)) * self._nvcs
        tokens = self._tokens
        if dynamic_pass:
            if self._P_mode[h] != _ADAPTIVE:
                return -1
            # Adaptive progress = any surviving link that strictly reduces
            # BFS distance to the destination (minimal on the degraded
            # graph); JSQ across the dynamic VCs as on the pristine torus.
            dist = self._dist
            dv = dist[db + v]
            if dv < 0 or dv >= dist[db + u]:
                return -1
            best, best_free = -1, 0
            for vc in range(self._ndyn):
                f = tokens[base + vc]
                if f > best_free:
                    best, best_free = vc, f
            return best
        # Escape pass: up*/down* on the bubble VC.  A single free slot
        # suffices — the up*/down* channel dependency graph is acyclic, so
        # no bubble is needed for deadlock freedom.
        nh = self._nh_down if self._P_down[h] else self._nh_up
        if nh[db + u] != d:
            return -1
        if tokens[base + self._bubble] >= 1:
            return self._bubble
        return -1

    def _arbitrate_link(self, u: int, d: int) -> bool:
        """Generic single-pass port scan through ``_vc_for_link``.

        The base class inlines its pristine-torus routing checks into the
        scan for speed; the fault-aware network keeps this generic version
        so the BFS-distance / up*-down* logic above stays the single source
        of truth for routing decisions."""
        v = self._nbr[u][d]
        if v < 0:
            return False
        li = u * self._ndirs + d
        m = self._pmask[u]
        if not m or self._link_busy[li] > self._now:
            return False
        nports = self._nports
        nvp = self._nvp
        q_buf = self._q_buf
        q_hd = self._q_hd
        qsh = self._q_shift
        ubase = u * nports
        P_dst = self._P_dst
        vc_for_link = self._vc_for_link
        start = self._arb[li]
        mm = ((m >> start) | (m << (nports - start))) & ((1 << nports) - 1)
        b_port = -1
        b_h = -1
        b_vc = -1
        while mm:
            low = mm & -mm
            mm -= low
            port = start + low.bit_length() - 1
            if port >= nports:
                port -= nports
            h = q_buf[((ubase + port) << qsh) | q_hd[ubase + port]]
            in_axis = -1
            if port < nvp:
                if P_dst[h] == u:
                    continue  # waiting for reception space
                in_axis = port // self._nvcs >> 1
            use_vc = vc_for_link(u, d, v, h, in_axis, True)
            if use_vc >= 0:
                b_port, b_h, b_vc = port, h, use_vc
                break
            if b_port < 0:
                use_vc = vc_for_link(u, d, v, h, in_axis, False)
                if use_vc >= 0:
                    b_port, b_h, b_vc = port, h, use_vc
        if b_port < 0:
            return False
        port = b_port
        qi = ubase + port
        q_hd[qi] = (q_hd[qi] + 1) & self._q_mask
        n = self._q_n[qi] - 1
        self._q_n[qi] = n
        if not n:
            self._pmask[u] &= self._nbit[port]
        self._queued[u] -= 1
        self._arb[li] = port + 1 if port + 1 < nports else 0
        if port < nvp:
            self._immediate.append(self._tok_evs[u * nvp + port])
            self._launch(u, d, v, b_h, b_vc)
            self._advance_queue_head(u, port)
        else:
            f = port - nvp
            self._immediate.append(self._fifo_evs[u * self._nfifos + f])
            self._launch(u, d, v, b_h, b_vc)
            self._advance_fifo_head(u, f)
        return True

    def _try_send_head(self, u: int, h: int, in_axis: int) -> bool:
        link_busy = self._link_busy
        nbr_u = self._nbr[u]
        lbase = u * self._ndirs
        now = self._now
        db = self._P_dst[h] * self._p
        dist = self._dist
        du = dist[db + u]
        tokens = self._tokens
        if self._P_mode[h] == _ADAPTIVE:
            best_d, best_vc, best_free = -1, -1, 0
            for d in range(self._ndirs):
                v = nbr_u[d]
                if v < 0 or link_busy[lbase + d] > now:
                    continue
                dv = dist[db + v]
                if dv < 0 or dv >= du:
                    continue
                base = (v * self._ndirs + (d ^ 1)) * self._nvcs
                for vc in range(self._ndyn):
                    f = tokens[base + vc]
                    if f > best_free:
                        best_d, best_vc, best_free = d, vc, f
            if best_d >= 0:
                self._launch(u, best_d, nbr_u[best_d], h, best_vc)
                return True
        # Escape (also the only path for DETERMINISTIC packets).
        nh = self._nh_down if self._P_down[h] else self._nh_up
        d = nh[db + u]
        if d < 0:
            return False
        v = nbr_u[d]
        if v < 0 or link_busy[lbase + d] > now:
            return False
        base = (v * self._ndirs + (d ^ 1)) * self._nvcs
        if tokens[base + self._bubble] >= 1:
            self._launch(u, d, v, h, self._bubble)
            return True
        return False

    def _wants_link(self, u: int, d: int, h: int) -> bool:
        # Fault-aware routing truth for the instrumented stall accounting:
        # adaptive packets want any surviving direction that shrinks the
        # fault-distance; deterministic/escape packets want exactly the
        # up*/down* next hop.  Cold path (never called on plain runs).
        v = self._nbr[u][d]
        if v < 0:
            return False
        db = self._P_dst[h] * self._p
        dist = self._dist
        if self._P_mode[h] == _ADAPTIVE:
            dv = dist[db + v]
            du = dist[db + u]
            if 0 <= dv < du:
                return True
        nh = self._nh_down if self._P_down[h] else self._nh_up
        return nh[db + u] == d

    def _launch(self, u: int, d: int, v: int, h: int, vc: int) -> None:
        self._tokens[(v * self._ndirs + (d ^ 1)) * self._nvcs + vc] -= 1
        self._P_vc[h] = vc
        self._P_hops[h] += 1
        st = self.stats
        st.total_hops += 1
        li = u * self._ndirs + d
        service = self._svc_f[self._P_wire[h]] * self._degrade[li]
        done = self._now + service * TICK_SCALE
        self._link_busy[li] = done
        self._busy_cycles[li] += service
        self._link_packets[li] += 1
        self._post_ev(done, self._link_evs[li])
        # Track the up*/down* phase: once a packet descends on the escape
        # VC it may never climb again while it stays there; any adaptive
        # hop resets the phase (a fresh escape episode starts clean).
        if vc == self._bubble:
            if self._order[v] > self._order[u]:
                self._P_down[h] = True
        else:
            self._P_down[h] = False
        # A hop that is not minimal on the pristine torus is a reroute
        # forced by the fault plan.
        dst = self._P_dst[h]
        disp = self._disp(u, dst, d >> 1, self._P_half[h])
        if disp == 0 or (disp > 0) != ((d & 1) == 0):
            st.rerouted_hops += 1
        if self._has_loss:
            p_loss = self._loss[li]
            if p_loss > 0.0 and (
                loss_draw(self._loss_salt, self._P_pid[h], self._P_hops[h], li)
                < p_loss
            ):
                # Dropped on the wire: the transmission still occupies the
                # link, and the reserved downstream slot frees when the
                # tail would have passed.  No arrival is ever posted; the
                # sender's retransmission timer recovers the payload.
                st.lost_packets += 1
                self._post_ev(
                    done,
                    self._tok_evs[
                        (v * self._ndirs + (d ^ 1)) * self._nvcs + vc
                    ],
                )
                self._pool.free.append(h)
                return
        arrive = (done if dst == v else self._now) + self._hop_t
        self._post_ev(arrive, (_EV_ARRIVE, v, (d ^ 1) * self._nvcs + vc, h))

    # ------------------------------------------------------------------ #
    # reliability layer
    # ------------------------------------------------------------------ #

    def _cpu_complete(self, u: int) -> None:
        op = self._cpu_pending[u]
        self._cpu_pending[u] = None
        assert op is not None, "CPU completion with no pending op"
        if op[0] == "recv":
            h: int = op[1]
            self._recv_free[u] += 1
            self._finish_delivery(u, h)
            self._deliver_local_heads(u)
        else:  # inject
            spec: PacketSpec = op[1]
            fifo: int = op[2]
            h = self._pool.alloc(next(self._pid), u, spec, self._now)
            self.stats.injected_packets += 1
            self.stats.injected_wire_bytes += spec.wire_bytes
            if spec.dst == u:
                # Local (self) message: bypasses the network entirely.
                self._fifo_free[u * self._nfifos + fifo] += 1
                self._finish_delivery(u, h)
            else:
                if spec.dst in self._dead_set:
                    raise SimulationError(
                        f"node {u} injected a packet for dead node "
                        f"{spec.dst}; strategies must be built with the "
                        f"fault plan"
                    )
                if self._has_loss and spec.seq < 0:
                    # First transmission of a logical packet: assign its
                    # sequence number, remember the spec for retransmission
                    # and arm the timeout.  A retransmitted spec arrives
                    # here with seq >= 0 and is passed through untouched —
                    # its timer chain is driven by _on_retx.
                    seq = next(self._seqno)
                    self._P_seq[h] = seq
                    self._outstanding[seq] = (
                        u, replace(spec, seq=seq, new_message=False)
                    )
                    self._post_ev(
                        self._now
                        + self.faults.retx_timeout_cycles * TICK_SCALE,
                        (_EV_RETX, u, 1, seq),
                    )
                if self._q_append(u, self._nvp + fifo, h):
                    self._advance_fifo_head(u, fifo)
        self._cpu_start_next(u)

    def _finish_delivery(self, u: int, h: int) -> None:
        seq = self._P_seq[h]
        if seq >= 0:
            if seq in self._delivered_seqs:
                # The original was slow, not lost; the retransmitted twin
                # already arrived (or vice versa).  At-most-once delivery:
                # drop it before the program sees it.
                self.stats.duplicate_packets += 1
                self._pool.free.append(h)
                return
            self._delivered_seqs.add(seq)
            self._outstanding.pop(seq, None)
        super()._finish_delivery(u, h)

    def _on_retx(self, attempt: int, seq: int) -> None:
        ent = self._outstanding.get(seq)
        if ent is None:
            return  # delivered in the meantime; the timer chain ends
        if attempt > self.faults.max_retx:
            raise SimulationError(
                f"packet seq={seq} undelivered after "
                f"{self.faults.max_retx} retransmissions — the fault plan "
                f"or routing table is inconsistent"
            )
        src, spec = ent
        st = self.stats
        st.retransmitted_packets += 1
        fp = self._fwd_pending[src]
        fp.append(spec)
        if len(fp) > st.peak_forward_backlog:
            st.peak_forward_backlog = len(fp)
        self._cpu_maybe_start(src)
        backoff = self.faults.retx_backoff ** min(attempt, 10)
        self._post_ev(
            self._now
            + self.faults.retx_timeout_cycles * backoff * TICK_SCALE,
            (_EV_RETX, src, attempt + 1, seq),
        )

    # ------------------------------------------------------------------ #
    # main loop (copy of the base loop + fault event kinds)
    # ------------------------------------------------------------------ #

    def run(self, program: NodeProgram) -> SimulationResult:
        self._program = program
        dead = self._dead_set
        for u in range(self._p):
            if u in dead:
                # A dead node's CPU never runs.  A plan that asks it to
                # inject is a strategy bug — surface it immediately.
                if next(iter(program.injection_plan(u)), None) is not None:
                    raise SimulationError(
                        f"program injects from dead node {u}; strategies "
                        f"must be built with the fault plan"
                    )
                continue
            self._plan_iter[u] = iter(program.injection_plan(u))
            self._pace[u] = program.pace_cycles(u) * TICK_SCALE
            self._cpu_maybe_start(u)

        max_cycles = self.config.max_cycles
        max_cycles_t = max_cycles * TICK_SCALE
        max_events = self.config.max_events
        st = self.stats
        n_events = 0
        imm = self._immediate
        imm_pop = imm.popleft
        imm_extend = imm.extend
        theap = self._theap
        bucket_pop = self._buckets.pop
        link_busy = self._link_busy
        tokens = self._tokens
        fifo_free = self._fifo_free
        pmask = self._pmask
        now = self._now

        # Calendar drain, as in the base loop (see its docstring).
        gc_was = gc.isenabled()
        gc.disable()
        try:
            while True:
                if imm:
                    kind, a, b, c = imm_pop()
                elif theap:
                    self._now = now = heappop(theap)
                    imm_extend(bucket_pop(now))
                    kind, a, b, c = imm_pop()
                else:
                    break
                n_events += 1
                if kind == _EV_ARRIVE:
                    self._on_arrive(a, b, c)
                elif kind == _EV_TOKEN:
                    tokens[a] += 1
                    if b >= 0 and pmask[b]:
                        self._arbitrate_link(b, c)
                elif kind == _EV_LINK_FREE:
                    if pmask[a]:
                        self._arbitrate_link(a, b)
                elif kind == _EV_CPU_DONE:
                    self._cpu_complete(a)
                elif kind == _EV_FIFO_FREE:
                    fifo_free[a] += 1
                    self._cpu_maybe_start(b)
                elif kind == _EV_CPU_WAKE:
                    self._cpu_maybe_start(a)
                elif kind == _EV_RETX:
                    self._on_retx(b, c)
                else:  # _EV_OUTAGE: hold the link busy until the window ends
                    if b > link_busy[a]:
                        link_busy[a] = b
                if now > max_cycles_t:
                    raise self._limit_error(
                        f"simulation exceeded {max_cycles:.3g} cycles",
                        n_events,
                    )
                if n_events > max_events:
                    raise self._limit_error(
                        f"simulation exceeded {max_events} events", n_events
                    )
        finally:
            if gc_was:
                gc.enable()

        st.events_processed = n_events
        self._check_quiescent()
        expected = program.expected_final_deliveries()
        if st.final_deliveries != expected:
            raise DeadlockError(
                f"completed with {st.final_deliveries} final deliveries, "
                f"expected {expected}"
            )
        return self._result()


def build_network(
    shape: TorusShape,
    params: Optional[MachineParams] = None,
    config: Optional[NetworkConfig] = None,
    faults: Optional[FaultPlan] = None,
    obs: Optional["ObsConfig"] = None,
    check: Optional["CheckConfig"] = None,
) -> TorusNetwork:
    """Instantiate the right network for *faults*, *obs* and *check*.

    The zero-fault path (no plan, or an empty plan) returns the plain
    :class:`TorusNetwork` — identical code, identical results, no fault
    branches in the hot loop.  Likewise observability: only an
    :class:`~repro.obs.config.ObsConfig` with tracing or metrics enabled
    selects the instrumented subclasses, and only a
    :class:`~repro.check.config.CheckConfig` with at least one oracle on
    selects the checked subclasses; otherwise the plain classes run
    exactly as before.
    """
    no_faults = faults is None or faults.is_empty
    want_obs = obs is not None and obs.enabled
    if check is not None and check.enabled:
        from repro.check.oracle import (
            CheckedFaultyTorusNetwork,
            CheckedInstrumentedFaultyTorusNetwork,
            CheckedInstrumentedTorusNetwork,
            CheckedTorusNetwork,
        )

        if want_obs:
            if no_faults:
                return CheckedInstrumentedTorusNetwork(
                    shape, params, config, obs, check
                )
            return CheckedInstrumentedFaultyTorusNetwork(
                shape, params, config, faults, obs, check
            )
        if no_faults:
            return CheckedTorusNetwork(shape, params, config, check)
        return CheckedFaultyTorusNetwork(shape, params, config, faults, check)
    if want_obs:
        from repro.net.instrumented import (
            InstrumentedFaultyTorusNetwork,
            InstrumentedTorusNetwork,
        )

        if no_faults:
            return InstrumentedTorusNetwork(shape, params, config, obs)
        return InstrumentedFaultyTorusNetwork(
            shape, params, config, faults, obs
        )
    if no_faults:
        return TorusNetwork(shape, params, config)
    return FaultyTorusNetwork(shape, params, config, faults)
