"""Observability-instrumented variants of the torus network.

The zero-overhead-when-disabled contract (DESIGN.md section 10) is held
structurally, the same way the fault layer holds it: the plain
:class:`~repro.net.simulator.TorusNetwork` and
:class:`~repro.net.faultsim.FaultyTorusNetwork` contain **no** tracing
code, no registry lookups and no ``if enabled`` branches — an
un-instrumented run executes byte-for-byte the code it executed before
this module existed.  When an :class:`~repro.obs.config.ObsConfig` asks
for tracing or metrics, :func:`repro.net.faultsim.build_network` returns
one of the subclasses below instead.

Every override here calls ``super()`` *first* and then only reads state
(ring-buffer queue depths, stats deltas, the packet pool's columns), so
an instrumented run
makes exactly the decisions — and produces exactly the ``time_cycles``
and event counts — of an un-instrumented one.  ``tests/obs`` pins this
bit-identity.

What gets recorded (see :mod:`repro.obs.tracer` for the event schema):

* ``inject`` at CPU injection completion, ``link`` occupancy intervals
  per hop, ``queue`` depth samples when a packet waits behind others,
  ``deliver`` with latency and phase (the strategy's traffic-class tag:
  ``tps1``/``tps2``/``vmesh1``/... — the TPS phase-overlap view), and on
  fault runs ``drop``/``retx``/``reroute``;
* metrics: per-axis link-busy time series (exported as utilization
  fractions), final-delivery latency histogram, injection-FIFO depth,
  forward backlog and VC queue depth gauges, and counters for drops,
  retransmissions and reroutes;
* link stats (``ObsConfig.link_stats``): per-link wire bytes, per-VC
  packet counts, stall cycles (a free link with a direction-matched head
  packet that could not launch), per-link drops, per-node
  retransmissions, and per-phase busy cycles — the raw material for
  :mod:`repro.obs.linkstats` and :mod:`repro.obs.report`.
"""

from __future__ import annotations

import time
from dataclasses import asdict
from typing import Optional

from repro.model.machine import MachineParams
from repro.model.torus import TorusShape
from repro.net.config import NetworkConfig
from repro.net.faults import FaultPlan
from repro.net.faultsim import FaultyTorusNetwork
from repro.net.simulator import TICK_UNSCALE, TorusNetwork
from repro.net.trace import SimulationResult
from repro.obs.config import ObsConfig
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.strategies.data import kind_of_tag

_AXIS_NAMES = ("x", "y", "z")

#: Slots shared by both concrete instrumented classes.
_OBS_SLOTS = (
    "obs", "tracer", "metrics", "_axis_ts", "_lat_hist",
    # link-stats layer (ObsConfig.link_stats): per-link wire bytes,
    # per-(link, vc) packet counts, per-link stall cycles + open
    # want-since tick, per-link drops, per-node retransmissions, and
    # per-phase per-axis busy cycles.
    "_ls_on", "_ls_bytes", "_ls_vc_packets", "_ls_stall", "_ls_want",
    "_ls_drops", "_ls_retx", "_ls_phase_busy",
    # phase profiler (ObsConfig.profile) + its host-clock stamp.
    "_prof", "_prof_t0",
)


class _InstrumentedMixin:
    """Observation hooks layered over a network class via ``super()``."""

    __slots__ = ()

    # -------------------------------------------------------------- #
    # setup / teardown
    # -------------------------------------------------------------- #

    def _init_obs(self, obs: ObsConfig) -> None:
        self.obs = obs
        self.tracer = (
            Tracer(
                capacity=obs.trace_capacity,
                sample=obs.trace_sample,
                kinds=obs.trace_kinds,
            )
            if obs.trace
            else None
        )
        if obs.metrics:
            self.metrics = MetricsRegistry(
                default_bucket_cycles=obs.metrics_bucket_cycles,
                max_buckets=obs.metrics_max_buckets,
            )
            self._axis_ts = [
                self.metrics.timeseries(f"link_busy_cycles.{_AXIS_NAMES[a]}")
                for a in range(self._ndim)
            ]
            self._lat_hist = self.metrics.histogram("final_latency_cycles")
        else:
            self.metrics = None
            self._axis_ts = None
            self._lat_hist = None
        self._ls_on = obs.link_stats
        if obs.link_stats:
            p, ndirs = self._p, self._ndirs
            self._ls_bytes: list[int] = [0] * (p * ndirs)
            self._ls_vc_packets: list[int] = [0] * (p * ndirs * self._nvcs)
            self._ls_stall: list[float] = [0.0] * (p * ndirs)
            # Tick at which a direction-matched head packet was first seen
            # waiting on a free link; -1.0 = no stall interval open.
            self._ls_want: list[float] = [-1.0] * (p * ndirs)
            self._ls_drops: list[int] = [0] * (p * ndirs)
            self._ls_retx: list[int] = [0] * p
            # phase marker -> per-axis busy cycles.
            self._ls_phase_busy: dict[str, list[float]] = {}
        if obs.profile:
            from repro.obs.profile import PhaseProfiler

            self._prof = PhaseProfiler(self._ndim)
        else:
            self._prof = None
        self._prof_t0 = None

    def run(self, program):
        if self._prof is not None:
            self._prof_t0 = (time.perf_counter(), time.process_time())
        return super().run(program)

    # -------------------------------------------------------------- #
    # lifecycle hooks (super() first, then read-only observation)
    # -------------------------------------------------------------- #

    def _launch(self, u: int, d: int, v: int, h: int, vc: int) -> None:
        st = self.stats
        lost0 = st.lost_packets
        rerouted0 = st.rerouted_hops
        now = self._now
        pid = self._P_pid[h]
        super()._launch(u, d, v, h, vc)
        # Tick subtraction then unscaling reproduces the pre-SoA float
        # cycle arithmetic bit-for-bit (power-of-two scaling commutes
        # with IEEE rounding).
        now_f = now * TICK_UNSCALE
        li = u * self._ndirs + d
        dur = (self._link_busy[li] - now) * TICK_UNSCALE
        ts = self._axis_ts
        if ts is not None:
            ts[d >> 1].add(now_f, dur)
            if st.lost_packets > lost0:
                self.metrics.counter("lost_packets").inc()
            if st.rerouted_hops > rerouted0:
                self.metrics.counter("rerouted_hops").inc()
        tr = self.tracer
        if tr is not None and tr.want(pid):
            kinds = tr.kinds
            if "link" in kinds:
                tr.emit(now_f, "link", u, d, dur, pid)
            if "reroute" in kinds and st.rerouted_hops > rerouted0:
                tr.emit(now_f, "reroute", u, d, pid)
            if "drop" in kinds and st.lost_packets > lost0:
                tr.emit(now_f, "drop", u, d, pid)
        if self._ls_on:
            self._ls_bytes[li] += self._P_wire[h]
            # super() wrote the VC actually used into the pool column.
            self._ls_vc_packets[li * self._nvcs + self._P_vc[h]] += 1
            ws = self._ls_want[li]
            if ws >= 0.0:
                self._ls_stall[li] += (now - ws) * TICK_UNSCALE
                self._ls_want[li] = -1.0
            if st.lost_packets > lost0:
                self._ls_drops[li] += 1
            ph = kind_of_tag(self._P_tag[h]) or "untagged"
            rec = self._ls_phase_busy.get(ph)
            if rec is None:
                rec = self._ls_phase_busy[ph] = [0.0] * self._ndim
            rec[d >> 1] += dur
        if self._prof is not None:
            self._prof.on_launch(
                kind_of_tag(self._P_tag[h]) or "untagged",
                d >> 1,
                now_f,
                dur,
            )

    def _arbitrate_link(self, u: int, d: int) -> bool:
        launched = super()._arbitrate_link(u, d)
        if not launched and self._ls_on:
            # A launch closes any open stall interval inside ``_launch``
            # (which also covers launches via ``_try_send_head``); a
            # *failed* arbitration on an existing, idle link opens one
            # when some queued head packet wants exactly this direction.
            li = u * self._ndirs + d
            if self._nbr[u][d] >= 0 and self._link_busy[li] <= self._now:
                if self._ls_head_waiting(u, d):
                    if self._ls_want[li] < 0.0:
                        self._ls_want[li] = self._now
                elif self._ls_want[li] >= 0.0:
                    # The waiter left at some unknown earlier time —
                    # discard the interval (undercount, never overcount).
                    self._ls_want[li] = -1.0
        return launched

    def _ls_head_waiting(self, u: int, d: int) -> bool:
        """Whether any queued head packet at *u* wants direction *d*."""
        m = self._pmask[u]
        q_buf, q_hd, qsh = self._q_buf, self._q_hd, self._q_shift
        ubase = u * self._nports
        nvp = self._nvp
        while m:
            low = m & -m
            m -= low
            port = low.bit_length() - 1
            h = q_buf[((ubase + port) << qsh) | q_hd[ubase + port]]
            if port < nvp and self._P_dst[h] == u:
                continue  # waiting for reception space, not a link
            if self._wants_link(u, d, h):
                return True
        return False

    def _on_arrive(self, v: int, port: int, h: int) -> None:
        qi = v * self._nports + port
        before = self._q_n[qi]
        super()._on_arrive(v, port, h)
        depth = self._q_n[qi]
        if depth > before and depth >= 2:
            # The packet joined a non-empty VC buffer: it is waiting
            # behind others for the next link (queue-wait pressure).
            if self.metrics is not None:
                self.metrics.gauge("vc_queue_depth").set(depth)
            tr = self.tracer
            pid = self._P_pid[h]
            if tr is not None and "queue" in tr.kinds and tr.want(pid):
                tr.emit(
                    self._now * TICK_UNSCALE,
                    "queue",
                    v,
                    self._port_dir[port],
                    depth,
                    pid,
                )

    def _cpu_complete(self, u: int) -> None:
        st = self.stats
        injected0 = st.injected_packets
        super()._cpu_complete(u)
        if st.injected_packets == injected0:
            return
        # Exactly one packet was injected, and injections are the only
        # consumer of the pid counter, so its id is injected_packets - 1.
        pid = st.injected_packets - 1
        if self.metrics is not None:
            base = u * self._nfifos
            cap = self.config.injection_fifo_depth
            used = sum(
                cap - self._fifo_free[base + f] for f in range(self._nfifos)
            )
            self.metrics.gauge("inj_fifo_depth").set(used)
        tr = self.tracer
        if tr is not None and "inject" in tr.kinds and tr.want(pid):
            tr.emit(self._now * TICK_UNSCALE, "inject", u, pid)

    def _finish_delivery(self, u: int, h: int) -> None:
        st = self.stats
        delivered0 = st.delivered_packets
        # Snapshot the pool columns up front: the base class returns the
        # handle to the free list, and a duplicate discard (fault runs)
        # frees it without delivering.
        pid = self._P_pid[h]
        src = self._P_src[h]
        inject_t = self._P_inject[h]
        tag = self._P_tag[h]
        final = self._P_final[h] == u
        super()._finish_delivery(u, h)
        if st.delivered_packets == delivered0:
            return  # receiver-side duplicate discard (fault runs)
        if self.metrics is not None:
            if final:
                self._lat_hist.observe((self._now - inject_t) * TICK_UNSCALE)
            backlog = len(self._fwd_pending[u])
            if backlog:
                self.metrics.gauge("forward_backlog").set(backlog)
        tr = self.tracer
        if tr is not None and "deliver" in tr.kinds and tr.want(pid):
            tr.emit(
                self._now * TICK_UNSCALE,
                "deliver",
                u,
                pid,
                src,
                inject_t * TICK_UNSCALE,
                kind_of_tag(tag),
                final,
            )
        if self._prof is not None:
            self._prof.on_delivery(
                kind_of_tag(tag) or "untagged",
                self._now * TICK_UNSCALE,
                final,
            )

    def _on_retx(self, attempt: int, seq: int) -> None:
        ent = self._outstanding.get(seq)
        st = self.stats
        retx0 = st.retransmitted_packets
        super()._on_retx(attempt, seq)
        if st.retransmitted_packets == retx0:
            return
        src = ent[0] if ent is not None else -1
        if self._ls_on and src >= 0:
            self._ls_retx[src] += 1
        if self.metrics is not None:
            self.metrics.counter("retransmitted_packets").inc()
        tr = self.tracer
        if tr is not None and "retx" in tr.kinds:
            tr.emit(self._now * TICK_UNSCALE, "retx", src, seq, attempt)

    # -------------------------------------------------------------- #
    # result assembly
    # -------------------------------------------------------------- #

    def _result(self) -> SimulationResult:
        res = super()._result()
        payload: dict = {}
        prof_payload = None
        if self._prof is not None:
            st = self.stats
            wall = cpu = None
            if self._prof_t0 is not None:
                wall = time.perf_counter() - self._prof_t0[0]
                cpu = time.process_time() - self._prof_t0[1]
            prof_payload = self._prof.to_payload(
                st.last_final_delivery, st.events_processed, wall, cpu
            )
            # Fold the exact (cycle-domain) numbers into the metrics
            # registry too, *before* its snapshot below — one export
            # surface for dashboards, without reparsing the payload.
            if self.metrics is not None:
                for name, e in prof_payload["phases"].items():
                    self.metrics.counter(
                        f"profile.busy_cycles.{name}"
                    ).inc(e["busy_cycles"])
                    self.metrics.counter(
                        f"profile.launches.{name}"
                    ).inc(e["launches"])
        if self.metrics is not None:
            snap = self.metrics.to_dict()
            # Derive per-axis utilization-over-time from the raw busy
            # series: fraction of the axis's aggregate link capacity
            # each bucket consumed.
            for a in range(self._ndim):
                name = f"link_busy_cycles.{_AXIS_NAMES[a]}"
                raw = snap.get(name)
                if raw is None:
                    continue
                nlinks = self.shape.links_in_dim(a)
                bc = raw["bucket_cycles"]
                denom = bc * nlinks if nlinks else 0.0
                snap[f"link_utilization.{_AXIS_NAMES[a]}"] = {
                    "type": "utilization_timeseries",
                    "bucket_cycles": bc,
                    "links": nlinks,
                    "utilization": [
                        (b / denom) if denom else 0.0 for b in raw["buckets"]
                    ],
                }
            payload["metrics"] = snap
        if self.tracer is not None:
            payload["trace"] = self.tracer.to_payload()
        if self._ls_on:
            st = self.stats
            nbr = self._nbr
            live = [0] * self._ndim
            for u in range(self._p):
                for d in range(self._ndirs):
                    if nbr[u][d] >= 0:
                        live[d >> 1] += 1
            payload["link_stats"] = {
                "dims": list(self.shape.dims),
                "torus": [bool(t) for t in self.shape.torus],
                "ndirs": self._ndirs,
                "nvcs": self._nvcs,
                "beta": self._beta,
                # Full machine parameters: the model diff reconstructs
                # the exact packetization overhead from these.
                "machine": asdict(self.params),
                "time_cycles": st.last_final_delivery,
                #: Surviving directed links per axis (== links_in_dim on
                #: pristine shapes; smaller under dead wires/nodes).
                "links_per_axis": live,
                "busy_cycles": list(self._busy_cycles),
                "packets": list(self._link_packets),
                "wire_bytes": list(self._ls_bytes),
                "vc_packets": list(self._ls_vc_packets),
                "stall_cycles": list(self._ls_stall),
                "drops": list(self._ls_drops),
                "retx_by_node": list(self._ls_retx),
                "phase_busy": {
                    k: list(v)
                    for k, v in sorted(self._ls_phase_busy.items())
                },
                "injected_wire_bytes": st.injected_wire_bytes,
            }
        if prof_payload is not None:
            payload["profile"] = prof_payload
        if payload:
            res.extras["obs"] = payload
        return res


class InstrumentedTorusNetwork(_InstrumentedMixin, TorusNetwork):
    """Pristine torus network with tracing/metrics layered on."""

    __slots__ = _OBS_SLOTS

    def __init__(
        self,
        shape: TorusShape,
        params: Optional[MachineParams] = None,
        config: Optional[NetworkConfig] = None,
        obs: Optional[ObsConfig] = None,
    ) -> None:
        super().__init__(shape, params, config)
        self._init_obs(obs if obs is not None else ObsConfig())


class InstrumentedFaultyTorusNetwork(_InstrumentedMixin, FaultyTorusNetwork):
    """Fault-degraded torus network with tracing/metrics layered on."""

    __slots__ = _OBS_SLOTS

    def __init__(
        self,
        shape: TorusShape,
        params: Optional[MachineParams] = None,
        config: Optional[NetworkConfig] = None,
        faults: Optional[FaultPlan] = None,
        obs: Optional[ObsConfig] = None,
    ) -> None:
        super().__init__(shape, params, config, faults)
        self._init_obs(obs if obs is not None else ObsConfig())
