"""Node programs: what each node injects and how it reacts to deliveries.

A :class:`NodeProgram` is the contract between an all-to-all *strategy*
(:mod:`repro.strategies`) and the network simulator
(:mod:`repro.net.simulator`).  It supplies each node's (lazily generated)
injection plan, reacts to packet deliveries — possibly returning more
packets to inject, which is how indirect strategies forward — and declares
how many *final* deliveries the run must produce (used as a sanity check on
completion).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Protocol, Sequence, runtime_checkable

from repro.net.packet import Packet, PacketSpec


@runtime_checkable
class NodeProgram(Protocol):
    """Behavior of every node during one simulated collective."""

    def injection_plan(self, node: int) -> Iterator[PacketSpec]:
        """Ordered packets node *node* injects on its own behalf."""
        ...

    def on_delivery(
        self, node: int, packet: Packet, now: float
    ) -> Iterable[PacketSpec]:
        """Called when *packet* is drained by *node*'s CPU at time *now*.

        Return packets to forward (empty for final deliveries).  A delivery
        is *final* iff ``packet.final_dst == node``; forwarding programs
        must return the onward specs for non-final deliveries.
        """
        ...

    def expected_final_deliveries(self) -> int:
        """Total final deliveries across all nodes (sanity check)."""
        ...

    def pace_cycles(self, node: int) -> float:
        """Minimum spacing between consecutive *plan* injections at *node*
        (0 = unthrottled).  Used by the throttled-AR strategy."""
        ...


class BaseProgram:
    """Convenience base with no forwarding and no pacing."""

    def injection_plan(self, node: int) -> Iterator[PacketSpec]:
        raise NotImplementedError

    def on_delivery(
        self, node: int, packet: Packet, now: float
    ) -> Iterable[PacketSpec]:
        if packet.final_dst != node:
            raise RuntimeError(
                f"non-final packet delivered to node {node} under a "
                f"non-forwarding program (final_dst={packet.final_dst})"
            )
        return ()

    def expected_final_deliveries(self) -> int:
        raise NotImplementedError

    def pace_cycles(self, node: int) -> float:
        return 0.0


class ListProgram(BaseProgram):
    """A program from explicit per-node spec lists (tests, ad-hoc traffic).

    ``plans[node]`` is the ordered list of :class:`PacketSpec` that node
    injects.  Every spec must be a final delivery (no forwarding).
    """

    def __init__(self, plans: Sequence[Sequence[PacketSpec]]) -> None:
        self._plans = [list(p) for p in plans]
        self._total = sum(len(p) for p in self._plans)

    def injection_plan(self, node: int) -> Iterator[PacketSpec]:
        return iter(self._plans[node])

    def expected_final_deliveries(self) -> int:
        return self._total
