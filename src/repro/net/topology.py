"""Precomputed torus topology tables used by the simulator's hot path.

Directions are numbered ``2*axis + 0`` for the positive and ``2*axis + 1``
for the negative direction of each axis, giving 2, 4 or 6 directions for
1-D, 2-D or 3-D partitions.  A direction with no link (mesh edge, or a
dimension of extent 1) maps to neighbor ``-1``.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.model.torus import TorusShape
from repro.util.validation import require


def direction_of(axis: int, positive: bool) -> int:
    """Direction index for (*axis*, sign)."""
    return 2 * axis + (0 if positive else 1)


def direction_axis(direction: int) -> int:
    """Axis of a direction index."""
    return direction // 2


def direction_sign(direction: int) -> int:
    """+1 or -1 for a direction index."""
    return 1 if direction % 2 == 0 else -1


class Topology:
    """Neighbor/coordinate lookup tables for a :class:`TorusShape`."""

    def __init__(self, shape: TorusShape) -> None:
        self.shape = shape
        self.nnodes = shape.nnodes
        self.ndim = shape.ndim
        self.ndirs = 2 * shape.ndim
        self._build()

    def _build(self) -> None:
        shape = self.shape
        dims = shape.dims
        p = self.nnodes
        # coords[node, axis]
        coords = np.empty((p, self.ndim), dtype=np.int32)
        strides = np.empty(self.ndim, dtype=np.int64)
        stride = 1
        for a, d in enumerate(dims):
            strides[a] = stride
            stride *= d
        ranks = np.arange(p, dtype=np.int64)
        rem = ranks.copy()
        for a, d in enumerate(dims):
            coords[:, a] = rem % d
            rem //= d
        self.coords = coords
        self.strides = strides
        # neighbor[node, direction] -> node or -1
        nbr = np.full((p, self.ndirs), -1, dtype=np.int64)
        for a, d in enumerate(dims):
            if d == 1:
                continue
            wrap = shape.wrap_effective(a)
            c = coords[:, a]
            up = c + 1
            dn = c - 1
            if wrap:
                up_ok = np.ones(p, dtype=bool)
                dn_ok = np.ones(p, dtype=bool)
                up = up % d
                dn = dn % d
            else:
                up_ok = up < d
                dn_ok = dn >= 0
                up = np.clip(up, 0, d - 1)
                dn = np.clip(dn, 0, d - 1)
            up_rank = ranks + (up - c) * strides[a]
            dn_rank = ranks + (dn - c) * strides[a]
            nbr[up_ok, direction_of(a, True)] = up_rank[up_ok]
            nbr[dn_ok, direction_of(a, False)] = dn_rank[dn_ok]
        self.neighbor = nbr

    @cached_property
    def num_links(self) -> int:
        """Total directed links (matches ``TorusShape.total_links``)."""
        return int((self.neighbor >= 0).sum())

    def displacement(self, cur: int, dst: int, axis: int) -> int:
        """Shortest signed displacement from *cur* to *dst* along *axis*
        (wrap-aware on effective-torus dimensions, positive tie-break)."""
        n = self.shape.dims[axis]
        d = int(self.coords[dst, axis]) - int(self.coords[cur, axis])
        if self.shape.wrap_effective(axis):
            d %= n
            if d > n // 2:
                d -= n
            # d == n/2 stays positive (tie-break toward +)
        return d

    def profitable_direction(self, cur: int, dst: int, axis: int) -> int:
        """Direction reducing |displacement| on *axis*, or -1 if none."""
        d = self.displacement(cur, dst, axis)
        if d == 0:
            return -1
        return direction_of(axis, d > 0)

    def profitable_directions(self, cur: int, dst: int) -> list[int]:
        """All directions that make minimal progress toward *dst*."""
        out = []
        for axis in range(self.ndim):
            dd = self.profitable_direction(cur, dst, axis)
            if dd >= 0:
                out.append(dd)
        return out

    def dimension_order_direction(self, cur: int, dst: int) -> int:
        """The unique dimension-ordered (X then Y then Z) next direction,
        or -1 if *cur* == *dst* coordinate-wise."""
        for axis in range(self.ndim):
            dd = self.profitable_direction(cur, dst, axis)
            if dd >= 0:
                return dd
        return -1

    def min_hops(self, src: int, dst: int) -> int:
        """Minimal hop count between two ranks."""
        require(0 <= src < self.nnodes and 0 <= dst < self.nnodes, "rank range")
        return sum(
            abs(self.displacement(src, dst, a)) for a in range(self.ndim)
        )
