"""Network/router configuration derived from :class:`MachineParams`.

Separates the *cost* parameters (measured in the paper, in
:mod:`repro.model.machine`) from the *micro-architecture sizing* the
simulator needs (buffer depths, FIFO counts, reception queue length,
simulation safety limits), while defaulting everything to BG/L values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.machine import MachineParams
from repro.util.validation import check_positive_int, require


@dataclass(frozen=True)
class NetworkConfig:
    """Sizing and policy knobs of the simulated torus network."""

    #: Dynamic (adaptive) VCs per link.
    num_dynamic_vcs: int = 2
    #: One bubble/escape VC per link (BG/L); kept explicit for ablations.
    num_bubble_vcs: int = 1
    #: Input VC buffer depth, in packets.
    vc_depth: int = 4
    #: Injection FIFOs per node.
    num_injection_fifos: int = 4
    #: Injection FIFO depth, in packets.
    injection_fifo_depth: int = 8
    #: Reception FIFO depth, in packets (backpressures the network when
    #: full, modelling the slow-CPU effect of Section 2).
    reception_fifo_depth: int = 16
    #: Free slots a packet must see downstream to *enter* a bubble ring
    #: (continuing packets need 1).  The canonical bubble rule uses 2; a
    #: larger margin keeps more free slots ("bubbles") circulating, which
    #: restrains deterministic-routing injection from gridlocking a
    #: saturated ring.  Exposed for the DR ablations.
    bubble_entry_tokens: int = 2
    #: Hard cap on simulated cycles (safety).
    max_cycles: float = 5.0e9
    #: Hard cap on processed events (safety).
    max_events: int = 500_000_000

    def __post_init__(self) -> None:
        check_positive_int(self.num_dynamic_vcs, "num_dynamic_vcs")
        require(self.num_bubble_vcs == 1, "exactly one bubble VC is supported")
        check_positive_int(self.vc_depth, "vc_depth")
        check_positive_int(self.num_injection_fifos, "num_injection_fifos")
        check_positive_int(self.injection_fifo_depth, "injection_fifo_depth")
        check_positive_int(self.reception_fifo_depth, "reception_fifo_depth")
        require(self.bubble_entry_tokens >= 2, "bubble entry needs >= 2 tokens")
        require(self.max_cycles > 0, "max_cycles must be positive")
        check_positive_int(self.max_events, "max_events")

    @property
    def num_vcs(self) -> int:
        """Total VCs per link (dynamic + bubble).  The BG/L high-priority
        VC is not simulated: application all-to-all never uses it."""
        return self.num_dynamic_vcs + self.num_bubble_vcs

    @property
    def bubble_vc(self) -> int:
        """Index of the bubble/escape VC (the last one)."""
        return self.num_dynamic_vcs

    @classmethod
    def from_machine(cls, params: MachineParams, **overrides: object) -> "NetworkConfig":
        """Build a config from machine parameters, with keyword overrides."""
        base = dict(
            num_dynamic_vcs=params.num_dynamic_vcs,
            num_bubble_vcs=params.num_bubble_vcs,
            vc_depth=params.vc_depth_packets,
            num_injection_fifos=params.num_injection_fifos,
            injection_fifo_depth=params.injection_fifo_depth,
        )
        base.update(overrides)  # type: ignore[arg-type]
        return cls(**base)  # type: ignore[arg-type]
