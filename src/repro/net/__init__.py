"""Packet-level discrete-event simulator of the BG/L torus network.

Public surface: :class:`TorusNetwork` (the engine),
:class:`NetworkConfig` (router sizing), :class:`PacketSpec` /
:class:`Packet` / :class:`RoutingMode` (traffic), the
:class:`NodeProgram` protocol with :class:`ListProgram` helper, the
:class:`SimulationResult` summary, and the fault-injection layer
(:class:`FaultPlan`, :class:`FaultyTorusNetwork`, :func:`build_network`).
"""

from repro.net.config import NetworkConfig
from repro.net.errors import (
    DeadlockError,
    PartitionedNetworkError,
    SimulationError,
    SimulationLimitError,
)
from repro.net.faults import FaultPlan, FaultRoutingTable, LinkOutage
from repro.net.faultsim import FaultyTorusNetwork, build_network
from repro.net.packet import NO_VC, Packet, PacketSpec, RoutingMode
from repro.net.program import BaseProgram, ListProgram, NodeProgram
from repro.net.simulator import TorusNetwork
from repro.net.topology import (
    Topology,
    direction_axis,
    direction_of,
    direction_sign,
)
from repro.net.trace import SimStats, SimulationResult

__all__ = [
    "NetworkConfig",
    "DeadlockError",
    "PartitionedNetworkError",
    "SimulationError",
    "SimulationLimitError",
    "FaultPlan",
    "FaultRoutingTable",
    "LinkOutage",
    "FaultyTorusNetwork",
    "build_network",
    "NO_VC",
    "Packet",
    "PacketSpec",
    "RoutingMode",
    "BaseProgram",
    "ListProgram",
    "NodeProgram",
    "TorusNetwork",
    "Topology",
    "direction_axis",
    "direction_of",
    "direction_sign",
    "SimStats",
    "SimulationResult",
]
