"""Deterministic fault injection for the torus network.

Real torus machines lose hardware: a wire goes dark, a node is pulled for
service, a marginal link runs at reduced bandwidth or drops packets.  The
paper's strategies all assume a pristine torus; this module defines the
*fault model* under which the rest of the stack must keep the all-to-all
complete and correct:

* :class:`FaultPlan` — a declarative, seedable description of the faults in
  one run: permanently dead links, dead nodes, bandwidth-degraded links,
  transient link outages (time windows) and per-link packet-loss
  probabilities.  A plan is data, not behavior: the same plan can drive the
  timed simulator, the functional engine and the strategy planners.
* :class:`FaultRoutingTable` — the routing state derived from a plan and a
  :class:`~repro.net.topology.Topology`: masked neighbor tables (a faulty
  link looks exactly like a mesh edge, ``neighbor == -1``), BFS distance
  tables over the surviving graph for adaptive minimal-progress routing,
  and up*/down* escape next-hop tables that keep the escape virtual channel
  provably deadlock-free on the now-irregular topology.

Deadlock-freedom argument (why up*/down* and not dimension-order): the
bubble escape VC's safety on a pristine torus comes from the bubble rule on
dimension-order rings.  Dead links break the rings, so instead the escape
channel routes up*/down* [Autonet/Myrinet style]: nodes are ordered by BFS
discovery from a root; a link toward a lower-ordered node is *up*, toward a
higher-ordered node is *down*, and every escape path climbs zero or more up
links then descends zero or more down links — never up after down.  Up
moves strictly decrease the order index and down moves strictly increase
it, so the escape channel dependency graph is acyclic and one free
downstream slot suffices for progress.  Adaptive packets keep using the
dynamic VCs on any surviving link that reduces BFS distance and fall back
to the escape channel, which preserves the Duato-style safety of the
pristine simulator.

Everything is deterministic: plans are frozen, random generation is seeded,
and packet-loss draws hash the (packet id, hop, link) triple.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from repro.model.torus import TorusShape
from repro.net.errors import PartitionedNetworkError
from repro.net.topology import Topology
from repro.util.rng import derive_rng, derive_seed
from repro.util.validation import require

#: A directed link is named by (node, direction); direction indices follow
#: :mod:`repro.net.topology` (2*axis + 0 positive, 2*axis + 1 negative).
Link = tuple[int, int]


@dataclass(frozen=True)
class LinkOutage:
    """A transient outage: the link at (*node*, *direction*) cannot start a
    new transmission during ``[start, end)`` cycles.  A transmission already
    on the wire at *start* completes (the model's outage is a lull, not a
    mid-flight corruption; combine with ``loss`` for the latter)."""

    node: int
    direction: int
    start: float
    end: float

    def __post_init__(self) -> None:
        require(self.start >= 0.0, "outage start must be >= 0")
        require(self.end > self.start, "outage end must follow start")


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of every hardware fault in one run.

    Attributes
    ----------
    dead_links:
        Directed links that are permanently dead.  A dead wire kills both
        directions: masking treats ``(u, d)`` dead as also killing the
        reverse entry ``(v, d^1)``, so listing one direction suffices.
    dead_nodes:
        Ranks that are down: all their links are dead, they inject nothing
        and cannot be destinations or intermediates.
    degraded_links:
        Map of directed link -> service-time multiplier (> 1 stretches the
        link's beta; a value of 2.0 halves its bandwidth).  Applied to both
        directions of the wire.
    outages:
        Transient link outages (see :class:`LinkOutage`).
    loss_prob:
        Baseline per-hop packet-loss probability on every surviving link.
    link_loss:
        Per-link overrides of ``loss_prob`` (both directions of the wire).
    seed:
        Seed for every stochastic draw the plan induces (loss hashes).
    retx_timeout_cycles:
        Sender-side retransmission timeout for the first attempt.
    retx_backoff:
        Multiplier applied to the timeout after each retransmission
        (exponential backoff).
    max_retx:
        Retransmission attempts after which the run aborts (an undeliverable
        packet indicates a plan/routing bug, not bad luck: with p=1% loss,
        20 consecutive losses has probability 1e-40).
    """

    dead_links: frozenset[Link] = frozenset()
    dead_nodes: frozenset[int] = frozenset()
    degraded_links: Mapping[Link, float] = field(default_factory=dict)
    outages: tuple[LinkOutage, ...] = ()
    loss_prob: float = 0.0
    link_loss: Mapping[Link, float] = field(default_factory=dict)
    seed: int = 0
    retx_timeout_cycles: float = 50_000.0
    retx_backoff: float = 2.0
    max_retx: int = 20

    def __post_init__(self) -> None:
        object.__setattr__(self, "dead_links", frozenset(self.dead_links))
        object.__setattr__(self, "dead_nodes", frozenset(self.dead_nodes))
        object.__setattr__(self, "degraded_links", dict(self.degraded_links))
        object.__setattr__(self, "outages", tuple(self.outages))
        object.__setattr__(self, "link_loss", dict(self.link_loss))
        require(0.0 <= self.loss_prob < 1.0, "loss_prob must be in [0, 1)")
        for lk, p in self.link_loss.items():
            require(0.0 <= p < 1.0, f"link_loss[{lk}] must be in [0, 1)")
        for lk, f in self.degraded_links.items():
            require(f >= 1.0, f"degraded_links[{lk}] must be >= 1.0")
        require(self.retx_timeout_cycles > 0, "retx timeout must be positive")
        require(self.retx_backoff >= 1.0, "retx backoff must be >= 1.0")
        require(self.max_retx >= 1, "max_retx must be >= 1")

    # ------------------------------------------------------------------ #
    # predicates
    # ------------------------------------------------------------------ #

    @property
    def is_empty(self) -> bool:
        """True when the plan configures no fault at all — the zero-fault
        fast path (plain :class:`~repro.net.simulator.TorusNetwork`, no
        per-packet fault checks)."""
        return (
            not self.dead_links
            and not self.dead_nodes
            and not self.degraded_links
            and not self.outages
            and self.loss_prob == 0.0
            and not self.link_loss
        )

    @property
    def has_loss(self) -> bool:
        """True when any link can drop packets."""
        return self.loss_prob > 0.0 or any(
            p > 0.0 for p in self.link_loss.values()
        )

    def node_dead(self, u: int) -> bool:
        """Whether rank *u* is down."""
        return u in self.dead_nodes

    def describe(self) -> str:
        """One-line human-readable summary."""
        parts = []
        if self.dead_nodes:
            parts.append(f"{len(self.dead_nodes)} dead nodes")
        if self.dead_links:
            parts.append(f"{len(self.dead_links)} dead directed links")
        if self.degraded_links:
            parts.append(f"{len(self.degraded_links)} degraded links")
        if self.outages:
            parts.append(f"{len(self.outages)} outage windows")
        if self.has_loss:
            parts.append(f"loss p={self.loss_prob:g}")
        return "; ".join(parts) if parts else "no faults"

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def random(
        cls,
        shape: TorusShape,
        *,
        seed: int = 0,
        dead_link_fraction: float = 0.0,
        dead_node_fraction: float = 0.0,
        loss_prob: float = 0.0,
        degraded_fraction: float = 0.0,
        degrade_factor: float = 2.0,
        max_attempts: int = 64,
        **overrides: object,
    ) -> "FaultPlan":
        """Sample a connected fault plan for *shape*.

        Dead wires and dead nodes are drawn uniformly; the sample is
        rejected and redrawn (up to *max_attempts* times) until the
        surviving nodes remain connected, so a returned plan is always
        routable.  Raises :class:`PartitionedNetworkError` if no connected
        sample is found (fractions too aggressive for the shape).
        """
        require(0.0 <= dead_link_fraction < 1.0, "dead_link_fraction range")
        require(0.0 <= dead_node_fraction < 1.0, "dead_node_fraction range")
        require(0.0 <= degraded_fraction <= 1.0, "degraded_fraction range")
        topo = Topology(shape)
        wires = _physical_wires(topo)
        p = shape.nnodes
        n_dead_links = round(dead_link_fraction * len(wires))
        n_dead_nodes = round(dead_node_fraction * p)
        require(n_dead_nodes < p, "cannot kill every node")
        n_degraded = round(degraded_fraction * len(wires))
        for attempt in range(max_attempts):
            rng = derive_rng(seed, "faultplan", attempt)
            dead_nodes = frozenset(
                int(u)
                for u in rng.choice(p, size=n_dead_nodes, replace=False)
            )
            picks = rng.choice(
                len(wires),
                size=min(len(wires), n_dead_links + n_degraded),
                replace=False,
            )
            dead_wires = [wires[int(i)] for i in picks[:n_dead_links]]
            degraded = {
                wires[int(i)]: float(degrade_factor)
                for i in picks[n_dead_links:]
            }
            dead_links = frozenset(dead_wires)
            plan = cls(
                dead_links=dead_links,
                dead_nodes=dead_nodes,
                degraded_links=degraded,
                loss_prob=loss_prob,
                seed=seed,
                **overrides,  # type: ignore[arg-type]
            )
            if _connected(topo, plan):
                return plan
        raise PartitionedNetworkError(
            f"no connected fault plan found for {shape.label} after "
            f"{max_attempts} attempts (dead_link_fraction="
            f"{dead_link_fraction}, dead_node_fraction={dead_node_fraction})"
        )


def _physical_wires(topo: Topology) -> list[Link]:
    """Every physical wire of *topo*, once each, as its positive-direction
    (node, direction) representative."""
    wires: list[Link] = []
    nbr = topo.neighbor
    for u in range(topo.nnodes):
        for axis in range(topo.ndim):
            d = 2 * axis  # positive direction covers each wire exactly once
            if nbr[u, d] >= 0:
                wires.append((u, d))
    return wires


def masked_neighbors(topo: Topology, plan: FaultPlan) -> list[list[int]]:
    """Neighbor table of *topo* with the plan's faults masked out.

    A dead link (either direction listed) or a link touching a dead node
    becomes ``-1`` — indistinguishable from a mesh edge, which is exactly
    the invariant the simulator's hot path already enforces (``neighbor ==
    -1`` links never win arbitration).
    """
    base = topo.neighbor.tolist()
    dead = plan.dead_links
    dead_nodes = plan.dead_nodes
    if not dead and not dead_nodes:
        return base
    for u in range(topo.nnodes):
        row = base[u]
        u_dead = u in dead_nodes
        for d in range(topo.ndirs):
            v = row[d]
            if v < 0:
                continue
            if (
                u_dead
                or v in dead_nodes
                or (u, d) in dead
                or (v, d ^ 1) in dead
            ):
                row[d] = -1
    return base


def _connected(topo: Topology, plan: FaultPlan) -> bool:
    """Whether the surviving nodes form one connected component."""
    alive = [u for u in range(topo.nnodes) if u not in plan.dead_nodes]
    if not alive:
        return False
    nbr = masked_neighbors(topo, plan)
    seen = bytearray(topo.nnodes)
    seen[alive[0]] = 1
    frontier = [alive[0]]
    count = 1
    while frontier:
        nxt = []
        for u in frontier:
            for v in nbr[u]:
                if v >= 0 and not seen[v]:
                    seen[v] = 1
                    count += 1
                    nxt.append(v)
        frontier = nxt
    return count == len(alive)


class FaultRoutingTable:
    """Fault-aware routing state for one (topology, plan) pair.

    Built once per simulation (guarded setup — the zero-fault path never
    constructs one).  Exposes:

    * ``nbr`` — masked neighbor table (dead links/nodes are ``-1``);
    * ``alive`` — surviving ranks in ascending order;
    * ``order`` — BFS discovery index per node (up*/down* node ordering);
    * ``dist`` — flat ``[dst * P + u]`` BFS hop distance over survivors;
    * ``nh_up`` / ``nh_down`` — flat ``[dst * P + u]`` escape next-hop
      direction when the packet may still climb (up phase) / once it has
      descended (down phase);
    * ``num_links`` — surviving directed link count.

    Raises :class:`PartitionedNetworkError` when the plan disconnects the
    surviving nodes.
    """

    def __init__(self, topo: Topology, plan: FaultPlan) -> None:
        self.topo = topo
        self.plan = plan
        p = topo.nnodes
        ndirs = topo.ndirs
        self.nbr = masked_neighbors(topo, plan)
        self.alive = [u for u in range(p) if u not in plan.dead_nodes]
        require(self.alive, "fault plan kills every node")
        self.num_links = sum(
            1 for row in self.nbr for v in row if v >= 0
        )

        # --- connectivity + up*/down* node order (one BFS) ----------------
        order = [-1] * p
        root = self.alive[0]
        order[root] = 0
        frontier = [root]
        idx = 1
        while frontier:
            nxt = []
            for u in frontier:
                for v in self.nbr[u]:
                    if v >= 0 and order[v] < 0:
                        order[v] = idx
                        idx += 1
                        nxt.append(v)
            frontier = nxt
        unreachable = [u for u in self.alive if order[u] < 0]
        if unreachable:
            raise PartitionedNetworkError(
                f"fault plan disconnects {topo.shape.label}: "
                f"{len(unreachable)} of {len(self.alive)} surviving nodes "
                f"cannot reach rank {root}",
                unreachable,
            )
        self.order = order

        # --- per-destination tables ---------------------------------------
        self.dist = [-1] * (p * p)
        self.nh_up = [-1] * (p * p)
        self.nh_down = [-1] * (p * p)
        by_order = sorted(self.alive, key=lambda u: order[u])
        for dst in self.alive:
            self._build_for_dst(dst, p, ndirs, by_order)

    def _build_for_dst(
        self, dst: int, p: int, ndirs: int, by_order: list[int]
    ) -> None:
        nbr = self.nbr
        order = self.order
        base = dst * p
        dist = self.dist
        nh_down = self.nh_down
        nh_up = self.nh_up

        # BFS hop distances from dst (links are masked symmetrically, so
        # the reverse graph equals the forward graph).
        dist[base + dst] = 0
        frontier = [dst]
        while frontier:
            nxt = []
            for v in frontier:
                dv = dist[base + v] + 1
                for u in nbr[v]:
                    if u >= 0 and dist[base + u] < 0:
                        dist[base + u] = dv
                        nxt.append(u)
            frontier = nxt

        # Down-only reachability: BFS from dst over *reversed* down edges.
        # An edge u -> v (direction d from u) is down iff order[v] >
        # order[u]; we discover u from v through v's reverse link.
        down_ok = bytearray(p)
        down_ok[dst] = 1
        frontier = [dst]
        while frontier:
            nxt = []
            for v in frontier:
                ov = order[v]
                row = nbr[v]
                for d in range(ndirs):
                    u = row[d]
                    # v -> u via d, hence u -> v via d ^ 1.
                    if u >= 0 and not down_ok[u] and ov > order[u]:
                        down_ok[u] = 1
                        nh_down[base + u] = d ^ 1
                        nxt.append(u)
            frontier = nxt

        # Up-phase next hops: processing nodes by ascending order index,
        # u may descend immediately (if down-only reachable) or climb one
        # up edge to a node whose own up-phase hop is already known.
        up_ok = bytearray(p)
        up_ok[dst] = 1
        for u in by_order:
            if u == dst:
                continue
            if down_ok[u]:
                up_ok[u] = 1
                nh_up[base + u] = nh_down[base + u]
                continue
            ou = order[u]
            best_d = -1
            best_key: Optional[tuple[int, int]] = None
            row = nbr[u]
            for d in range(ndirs):
                v = row[d]
                if v >= 0 and order[v] < ou and up_ok[v]:
                    key = (dist[base + v], d)
                    if best_key is None or key < best_key:
                        best_d, best_key = d, key
            # The BFS spanning tree guarantees an up path to the root and
            # a down path from the root to every destination, so every
            # surviving node has an escape hop.
            assert best_d >= 0, (
                f"up*/down* table incomplete for node {u} -> {dst}"
            )
            up_ok[u] = 1
            nh_up[base + u] = best_d

    # ------------------------------------------------------------------ #
    # per-link attribute tables for the simulator
    # ------------------------------------------------------------------ #

    def degrade_table(self) -> list[float]:
        """Flat ``[u * ndirs + d]`` service-time multiplier per link (both
        directions of a degraded wire are stretched)."""
        p, ndirs = self.topo.nnodes, self.topo.ndirs
        table = [1.0] * (p * ndirs)
        for (u, d), factor in self.plan.degraded_links.items():
            v = int(self.topo.neighbor[u, d])
            table[u * ndirs + d] = max(table[u * ndirs + d], factor)
            if v >= 0:
                table[v * ndirs + (d ^ 1)] = max(
                    table[v * ndirs + (d ^ 1)], factor
                )
        return table

    def loss_table(self) -> list[float]:
        """Flat ``[u * ndirs + d]`` packet-loss probability per link."""
        p, ndirs = self.topo.nnodes, self.topo.ndirs
        table = [self.plan.loss_prob] * (p * ndirs)
        for (u, d), prob in self.plan.link_loss.items():
            v = int(self.topo.neighbor[u, d])
            table[u * ndirs + d] = prob
            if v >= 0:
                table[v * ndirs + (d ^ 1)] = prob
        return table


def loss_salt(plan: FaultPlan) -> int:
    """Deterministic 32-bit salt for the plan's loss draws."""
    return derive_seed(plan.seed, "packet-loss") & 0xFFFFFFFF


def loss_draw(salt: int, pid: int, hop: int, link: int) -> float:
    """Deterministic uniform [0, 1) draw for (packet, hop, link).

    A cheap integer hash (xorshift-multiply avalanche) — reproducible
    across runs and platforms, independent across hops so retransmissions
    re-roll their fate on every traversal.
    """
    h = (
        pid * 0x9E3779B1 + hop * 0x85EBCA6B + link * 0xC2B2AE35 + salt
    ) & 0xFFFFFFFF
    h ^= h >> 16
    h = (h * 0x045D9F3B) & 0xFFFFFFFF
    h ^= h >> 16
    return h / 4294967296.0
