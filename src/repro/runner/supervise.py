"""Sweep supervision: timeouts, retries, quarantine, chaos, checkpoints.

The parallel runner (:mod:`repro.runner.pool`) fans independent
simulation points over a process pool.  Without supervision, one hung
point, one OOM-killed worker or one Ctrl-C throws away the whole sweep.
This module wraps point execution in the machinery of a production job
scheduler:

* **Per-point wall-clock timeouts** — every attempt runs under a SIGALRM
  :func:`watchdog` inside the worker (explicit via
  ``--point-timeout`` / ``REPRO_POINT_TIMEOUT``, else derived from the
  point's shape and message size).  The parent additionally enforces a
  hard deadline (timeout + grace): a worker wedged beyond its own alarm
  is killed and its pool respawned.
* **Bounded retries with deterministic backoff** — transient failures
  (timeouts, worker deaths) are rescheduled with exponential backoff and
  *no jitter*: given the same failures, the schedule is reproducible.
  Simulation results themselves are seed-deterministic, so a retried
  point returns bit-identical bytes.
* **Worker-crash quarantine** — a ``BrokenProcessPool`` (worker SIGKILL,
  OOM, hard crash) is recovered by respawning the pool; every in-flight
  point is rescheduled, and a point present at ``quarantine_strikes``
  pool breaks is quarantined (recorded as a structured failure) instead
  of being allowed to kill the pool forever.
* **Graceful degradation** — :func:`repro.runner.pool.run_sweep` returns
  a :class:`SweepResult` carrying every completed run plus a structured
  ``failures`` list; :func:`~repro.runner.pool.run_points` keeps its
  historical contract (deterministic errors re-raise unchanged; resource
  failures raise :class:`SweepIncompleteError`, which still carries the
  partial :class:`SweepResult`).
* **Checkpoint/resume** — a :class:`SweepJournal` (append-only JSONL of
  canonical result payloads, flushed per point) records completions as
  they happen; ``--resume <journal>`` preloads them, so an interrupted
  sweep resumes where it died and the merged results are bit-identical
  to an uninterrupted run (same canonical codec as the cache).
* **Deterministic chaos** — ``REPRO_CHAOS=kill:0.05,hang:0.02,seed=N``
  makes workers die (``os._exit``) or stall before simulating, decided
  by a hash of ``(seed, point key, attempt)``: reproducible, and a
  retried attempt re-rolls the dice, so chaos converges.  This is how
  the whole layer is tested in CI.

Nothing here runs unless supervision is *active* (an explicit config, an
env knob, or graceful mode); a plain ``run_points`` call keeps its
zero-overhead fast paths.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import logging
import os
import signal
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Optional

from repro.runner.codec import SCHEMA_VERSION

_log = logging.getLogger("repro.runner.supervise")

#: Journal line-format version (independent of the payload schema).
JOURNAL_VERSION = 1


# --------------------------------------------------------------------- #
# errors
# --------------------------------------------------------------------- #


class PointTimeoutError(Exception):
    """An attempt exceeded its wall-clock limit (raised by the in-worker
    :func:`watchdog`, or synthesized by the parent after a hard kill)."""


class ChaosKilled(Exception):
    """Sequential-mode stand-in for a chaos worker kill: the in-process
    path cannot ``os._exit`` without taking the whole run down, so the
    'killed worker' surfaces as this retryable crash instead."""


class SweepIncompleteError(RuntimeError):
    """Points remain failed after every retry.  Carries the partial
    :class:`SweepResult` — completed runs are *not* lost."""

    def __init__(self, sweep: "SweepResult") -> None:
        self.sweep = sweep
        kinds: dict[str, int] = {}
        for f in sweep.failures:
            kinds[f.kind] = kinds.get(f.kind, 0) + 1
        detail = ", ".join(f"{n} {k}" for k, n in sorted(kinds.items()))
        first = sweep.failures[0] if sweep.failures else None
        super().__init__(
            f"{len(sweep.failures)} of {len(sweep.runs)} point(s) failed "
            f"({detail}); first: {first.label if first else '?'}: "
            f"{first.error if first else '?'}"
        )


# --------------------------------------------------------------------- #
# watchdog (shared with repro.check.fuzz)
# --------------------------------------------------------------------- #


def _can_alarm() -> bool:
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


@contextlib.contextmanager
def watchdog(seconds: Optional[float], what: str = "operation") -> Iterator[None]:
    """Raise :class:`PointTimeoutError` if the block outlives *seconds*.

    SIGALRM-based, so it interrupts pure-Python loops and sleeps alike.
    Nests correctly: the outer timer's *remaining* time is restored on
    exit.  Degrades to a no-op when *seconds* is falsy, off the main
    thread, or on platforms without SIGALRM — a watchdog must never be
    the thing that breaks a run.
    """
    if not seconds or seconds <= 0 or not _can_alarm():
        yield
        return

    def _fire(signum, frame):
        raise PointTimeoutError(
            f"{what} exceeded its {seconds:g}s wall-clock limit"
        )

    prev_handler = signal.signal(signal.SIGALRM, _fire)
    started = time.monotonic()
    prev_delay, _ = signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, prev_handler)
        if prev_delay:
            remaining = prev_delay - (time.monotonic() - started)
            # Re-arm the outer watchdog; if its deadline already passed,
            # fire it almost immediately rather than swallowing it.
            signal.setitimer(signal.ITIMER_REAL, max(remaining, 1e-4))


# --------------------------------------------------------------------- #
# chaos
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class ChaosPlan:
    """Deterministic fault injection for the supervision layer itself.

    Parsed from ``REPRO_CHAOS`` (e.g. ``kill:0.05,hang:0.02,seed=3``).
    Each *attempt* of each point hashes ``(seed, point key, attempt)``
    into a uniform draw: below ``kill_prob`` the worker dies hard
    (``os._exit``), below ``kill_prob + hang_prob`` it stalls for
    ``hang_s`` before simulating (long enough to trip any sane timeout).
    Retries re-roll deterministically, so a chaotic sweep converges to
    the same bits as a clean one.
    """

    kill_prob: float = 0.0
    hang_prob: float = 0.0
    seed: int = 0
    hang_s: float = 3600.0

    def __post_init__(self) -> None:
        for name in ("kill_prob", "hang_prob"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"chaos {name} must be in [0, 1], got {v}")
        if self.hang_s <= 0:
            raise ValueError("chaos hang_s must be positive")

    @property
    def enabled(self) -> bool:
        return self.kill_prob > 0.0 or self.hang_prob > 0.0

    @classmethod
    def parse(cls, spec: str) -> "ChaosPlan":
        """Parse ``kill:P,hang:P,seed=N[,hang_s:S]`` (``:`` and ``=``
        are interchangeable)."""
        kw: dict = {}
        for part in spec.strip().split(","):
            part = part.strip()
            if not part:
                continue
            for sep in (":", "="):
                if sep in part:
                    name, _, value = part.partition(sep)
                    break
            else:
                raise ValueError(
                    f"bad chaos field {part!r} in {spec!r} "
                    "(expected name:value)"
                )
            name = name.strip()
            try:
                if name == "kill":
                    kw["kill_prob"] = float(value)
                elif name == "hang":
                    kw["hang_prob"] = float(value)
                elif name == "seed":
                    kw["seed"] = int(value)
                elif name == "hang_s":
                    kw["hang_s"] = float(value)
                else:
                    raise ValueError(
                        f"unknown chaos field {name!r} in {spec!r} "
                        "(known: kill, hang, seed, hang_s)"
                    )
            except ValueError as exc:
                if "chaos" in str(exc) or "unknown" in str(exc):
                    raise
                raise ValueError(
                    f"bad chaos value {value!r} for {name!r} in {spec!r}"
                ) from None
        return cls(**kw)

    def decide(self, key: str, attempt: int) -> Optional[str]:
        """``"kill"``, ``"hang"`` or ``None`` for this (point, attempt)."""
        blob = f"{self.seed}:{key}:{attempt}".encode("ascii")
        digest = hashlib.sha256(blob).digest()
        u = int.from_bytes(digest[:8], "big") / 2**64
        if u < self.kill_prob:
            return "kill"
        if u < self.kill_prob + self.hang_prob:
            return "hang"
        return None


# --------------------------------------------------------------------- #
# configuration
# --------------------------------------------------------------------- #


#: Derived-timeout calibration: seconds of floor, plus seconds per unit
#: of the point's :meth:`~repro.runner.point.SimPoint.cost_hint` (total
#: bytes exchanged).  Deliberately generous — a timeout exists to catch
#: *hangs*, not slow-but-progressing simulations.
TIMEOUT_FLOOR_S = 60.0
TIMEOUT_PER_COST_S = 1.0 / 200_000.0


def derive_timeout(point) -> float:
    """Default per-point wall-clock limit from shape/message size."""
    return TIMEOUT_FLOOR_S + TIMEOUT_PER_COST_S * point.cost_hint


@dataclass
class SuperviseConfig:
    """Knobs of the supervision layer (see the module docstring).

    ``point_timeout_s=None`` means "derive from the point" when timeouts
    are needed (chaos active, or supervision explicitly activated) and
    "no timeout" on the plain fast path.  ``max_attempts`` bounds every
    retry cause together; ``quarantine_strikes`` separately bounds how
    many pool breaks a single point may be present for.  Backoff is
    exponential and jitter-free: attempt *k* waits
    ``backoff_s * backoff_factor**(k - 2)`` seconds, a deterministic,
    reproducible schedule.
    """

    point_timeout_s: Optional[float] = None
    max_attempts: int = 5
    backoff_s: float = 0.25
    backoff_factor: float = 2.0
    quarantine_strikes: int = 3
    grace_s: float = 10.0
    journal: Optional[Path] = None
    resume: Optional[Path] = None
    chaos: Optional[ChaosPlan] = None
    #: Seconds between worker heartbeats (``REPRO_HEARTBEAT``; 0 turns
    #: them off).  Deliberately *not* part of :attr:`is_active` — a
    #: heartbeat cadence alone shouldn't push a sweep off the fast path.
    heartbeat_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.quarantine_strikes < 1:
            raise ValueError("quarantine_strikes must be >= 1")
        if self.backoff_s < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff must be >= 0 with factor >= 1")
        if self.point_timeout_s is not None and self.point_timeout_s <= 0:
            raise ValueError("point_timeout_s must be positive")
        if self.heartbeat_s < 0:
            raise ValueError("heartbeat_s must be >= 0")
        if self.journal is not None:
            self.journal = Path(self.journal)
        if self.resume is not None:
            self.resume = Path(self.resume)

    @property
    def is_active(self) -> bool:
        """Whether any supervision feature is actually requested (the
        runner keeps its plain fast paths when not)."""
        return (
            self.point_timeout_s is not None
            or self.journal is not None
            or self.resume is not None
            or (self.chaos is not None and self.chaos.enabled)
        )

    def timeout_for(self, point) -> Optional[float]:
        """The wall-clock limit applied to one attempt of *point*."""
        if self.point_timeout_s is not None:
            return self.point_timeout_s
        if self.is_active:
            return derive_timeout(point)
        return None

    def backoff_for(self, attempt: int) -> float:
        """Deterministic delay before retry *attempt* (attempt >= 2)."""
        return self.backoff_s * self.backoff_factor ** max(attempt - 2, 0)

    @classmethod
    def from_env(cls, **overrides) -> "SuperviseConfig":
        """Defaults + ``REPRO_POINT_TIMEOUT`` / ``REPRO_CHAOS`` env knobs,
        with explicit *overrides* winning."""
        kw: dict = {}
        env_t = os.environ.get("REPRO_POINT_TIMEOUT", "").strip()
        if env_t:
            try:
                kw["point_timeout_s"] = float(env_t)
            except ValueError:
                raise ValueError(
                    f"REPRO_POINT_TIMEOUT must be seconds, got {env_t!r}"
                ) from None
        env_c = os.environ.get("REPRO_CHAOS", "").strip()
        if env_c:
            kw["chaos"] = ChaosPlan.parse(env_c)
        env_h = os.environ.get("REPRO_HEARTBEAT", "").strip()
        if env_h:
            try:
                kw["heartbeat_s"] = float(env_h)
            except ValueError:
                raise ValueError(
                    f"REPRO_HEARTBEAT must be seconds, got {env_h!r}"
                ) from None
        kw.update(overrides)
        return cls(**kw)


#: Active config (None = resolve from env per sweep).
_active: Optional[SuperviseConfig] = None


def active_supervision() -> Optional[SuperviseConfig]:
    """The process-wide config, or None when none was activated."""
    return _active


@contextlib.contextmanager
def supervising(cfg: SuperviseConfig) -> Iterator[SuperviseConfig]:
    """Activate *cfg* for the dynamic extent of the block (mirrors
    :func:`repro.obs.context.observe`); the CLI flags work through this."""
    global _active
    prev = _active
    _active = cfg
    try:
        yield cfg
    finally:
        _active = prev


def resolve_supervision(
    explicit: Optional[SuperviseConfig] = None,
) -> SuperviseConfig:
    """Explicit argument > :func:`supervising` context > env defaults."""
    if explicit is not None:
        return explicit
    if _active is not None:
        return _active
    return SuperviseConfig.from_env()


# --------------------------------------------------------------------- #
# sweep results
# --------------------------------------------------------------------- #


@dataclass
class PointFailure:
    """One point that could not be completed, and why."""

    index: int
    key: str
    label: str
    #: ``"timeout"`` | ``"crash"`` | ``"quarantined"`` | ``"error"``
    kind: str
    attempts: int
    error: str
    #: The original exception for ``"error"`` failures (deterministic
    #: simulation errors re-raise unchanged in strict mode).  Not part
    #: of :meth:`to_dict` — exceptions aren't JSON.
    exception: Optional[BaseException] = None

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "key": self.key,
            "label": self.label,
            "kind": self.kind,
            "attempts": self.attempts,
            "error": self.error,
        }


@dataclass
class SweepResult:
    """Everything a supervised sweep produced: completed runs in input
    order (``None`` where a point failed) plus structured failures."""

    runs: list
    failures: list = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not self.failures

    @property
    def completed(self) -> int:
        return sum(1 for r in self.runs if r is not None)

    def require(self) -> list:
        """The full run list, or raise.

        A single deterministic simulation error re-raises *unchanged*
        (the historical ``run_points`` contract — callers like the
        differential harness catch ``SimulationError`` by type); anything
        else raises :class:`SweepIncompleteError` carrying this result.
        """
        if self.complete:
            return self.runs
        for f in self.failures:
            if f.kind == "error" and f.exception is not None:
                raise f.exception
        raise SweepIncompleteError(self)


# --------------------------------------------------------------------- #
# journal
# --------------------------------------------------------------------- #


class SweepJournal:
    """Append-only JSONL checkpoint of completed sweep points.

    Line 1 is a header pinning the journal and payload schema versions;
    every other line is ``{"kind": "point", "key": ..., "payload": ...}``
    with the *canonical* payload — the same bytes the cache and the IPC
    path carry — so a resumed point is bit-identical to a fresh one by
    construction.  Records are flushed per line: anything short of the
    host dying leaves a loadable prefix (a torn final line from a
    SIGKILL is detected and skipped on load).

    Besides point checkpoints the journal accepts auxiliary telemetry
    records via :meth:`note` (worker heartbeats, see
    :mod:`repro.obs.progress`); :meth:`load` ignores them — they are
    diagnostics for a human reading the journal of a dead sweep, not
    resume state.  Writes are serialized by a lock: heartbeats arrive
    from a sampler thread while completions land on the main thread.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._fh = None
        self._keys: set[str] = set()
        self._lock = threading.Lock()

    # -- writing ---------------------------------------------------- #

    def open_append(self) -> "SweepJournal":
        """Open for appending, writing the header on a fresh file and
        absorbing already-journaled keys from an existing one."""
        torn_tail = False
        if self.path.exists() and self.path.stat().st_size > 0:
            self._keys = set(self.load(self.path))
            with open(self.path, "rb") as fh:
                fh.seek(-1, os.SEEK_END)
                torn_tail = fh.read(1) != b"\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        if torn_tail:
            # A SIGKILL mid-write left a partial final line; terminate it
            # so new records don't splice into the torn JSON (load()
            # already skips the malformed line).
            self._fh.write("\n")
        if not self._keys and self._fh.tell() == 0:
            self._fh.write(
                json.dumps(
                    {
                        "kind": "header",
                        "journal_version": JOURNAL_VERSION,
                        "schema": SCHEMA_VERSION,
                    },
                    separators=(",", ":"),
                )
                + "\n"
            )
            self._fh.flush()
        return self

    def record(self, key: str, payload: dict) -> bool:
        """Append one completed point (idempotent per key); returns
        whether a line was written."""
        with self._lock:
            if self._fh is None or key in self._keys:
                return False
            self._fh.write(
                json.dumps(
                    {"kind": "point", "key": key, "payload": payload},
                    separators=(",", ":"),
                )
                + "\n"
            )
            self._fh.flush()
            self._keys.add(key)
            return True

    def note(self, record: dict) -> bool:
        """Append one auxiliary record (e.g. ``kind="heartbeat"``).

        Best-effort diagnostics: non-JSON-encodable records are dropped
        with a warning rather than killing the sweep.
        """
        with self._lock:
            if self._fh is None:
                return False
            try:
                line = json.dumps(record, separators=(",", ":"))
            except (TypeError, ValueError):
                _log.warning(
                    "journal %s: dropping non-JSON note %r", self.path, record
                )
                return False
            self._fh.write(line + "\n")
            self._fh.flush()
            return True

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                try:
                    self._fh.flush()
                    self._fh.close()
                finally:
                    self._fh = None

    def __enter__(self) -> "SweepJournal":
        return self.open_append()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reading ---------------------------------------------------- #

    @staticmethod
    def load(path) -> dict:
        """``{key: payload}`` for every well-formed point line.

        A torn trailing line (killed mid-write) is skipped with a
        warning; a header from a different payload schema refuses to
        load — silently resuming across a schema bump would splice
        incompatible payloads into one sweep.
        """
        path = Path(path)
        entries: dict[str, dict] = {}
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except ValueError:
                    _log.warning(
                        "journal %s: skipping malformed line %d "
                        "(torn write from an interrupted run?)",
                        path,
                        lineno,
                    )
                    continue
                kind = rec.get("kind")
                if kind == "header":
                    schema = rec.get("schema")
                    if schema != SCHEMA_VERSION:
                        raise ValueError(
                            f"journal {path} has payload schema {schema}, "
                            f"this build writes {SCHEMA_VERSION}; "
                            "re-run the sweep instead of resuming"
                        )
                elif kind == "point":
                    key, payload = rec.get("key"), rec.get("payload")
                    if isinstance(key, str) and isinstance(payload, dict):
                        entries[key] = payload
                    else:
                        _log.warning(
                            "journal %s: skipping bad point line %d",
                            path,
                            lineno,
                        )
                elif kind == "heartbeat":
                    # Telemetry breadcrumbs, not resume state.
                    continue
                else:
                    _log.warning(
                        "journal %s: skipping unknown record kind %r "
                        "on line %d",
                        path,
                        kind,
                        lineno,
                    )
        return entries


# --------------------------------------------------------------------- #
# worker heartbeats
# --------------------------------------------------------------------- #

#: Per-worker heartbeat plumbing, set once by the pool initializer
#: (:func:`_hb_init`).  Pool workers inherit the queue through the
#: fork/spawn machinery; the sequential path passes an emit callable to
#: :func:`_worker_entry` directly instead.
_HB: dict = {"emit": None, "interval": 0.0}


def _hb_init(queue, interval: float) -> None:
    """``ProcessPoolExecutor`` initializer: arm heartbeats in a worker."""
    _HB["emit"] = queue.put_nowait
    _HB["interval"] = interval


def _heartbeat_record(key: str, label: str, attempt: int, t0: float) -> dict:
    rec = {
        "key": key,
        "label": label,
        "attempt": attempt,
        "elapsed_s": round(time.monotonic() - t0, 3),
        "pid": os.getpid(),
        "sim_cycles": None,
        "delivered": None,
    }
    try:
        from repro.net.simulator import live_progress

        live = live_progress()
        if live is not None:
            rec["sim_cycles"], rec["delivered"] = live
    except Exception:  # pragma: no cover - telemetry must never break a run
        pass
    return rec


@contextlib.contextmanager
def _heartbeats(
    key: str,
    label: str,
    attempt: int,
    emit: Optional[Callable],
    interval: float,
) -> Iterator[None]:
    """Emit heartbeat records while the wrapped attempt runs.

    One record goes out immediately (so even sub-second points leave a
    breadcrumb), then one per *interval* from a daemon sampler thread.
    The thread only ever *reads* simulator state
    (:func:`repro.net.simulator.live_progress`), so the simulation
    itself is unperturbed; emit failures (parent gone, queue full) are
    swallowed — telemetry must never take down the point it watches.
    """
    if emit is None or interval <= 0:
        yield
        return
    t0 = time.monotonic()
    stop = threading.Event()

    def _send() -> None:
        try:
            emit(_heartbeat_record(key, label, attempt, t0))
        except Exception:
            pass

    def _pulse() -> None:
        while not stop.wait(interval):
            _send()

    _send()
    thread = threading.Thread(
        target=_pulse, name=f"heartbeat:{label}", daemon=True
    )
    thread.start()
    try:
        yield
    finally:
        stop.set()
        thread.join(timeout=1.0)


# --------------------------------------------------------------------- #
# worker body
# --------------------------------------------------------------------- #


def _worker_entry(
    point,
    key: str,
    attempt: int,
    timeout_s: Optional[float],
    chaos: Optional[ChaosPlan],
    obs,
    check,
    in_pool: bool,
    hb_emit: Optional[Callable] = None,
    hb_interval: float = 0.0,
) -> dict:
    """One supervised attempt: chaos, watchdog, simulate, encode.

    Runs in a pool worker (``in_pool=True``) or inline in the parent for
    sequential sweeps.  The watchdog arms *before* chaos so an injected
    hang is caught exactly like a real one.  Heartbeats come from the
    pool initializer's queue (pooled) or the explicit ``hb_emit``
    callable (sequential) and cover chaos hangs too — a stalled worker
    is visible from its flatlining ``sim_cycles``.
    """
    from repro.runner.pool import _simulate_encoded, point_label

    if in_pool and hb_emit is None:
        hb_emit = _HB["emit"]
        hb_interval = _HB["interval"]
    label = point_label(point)
    with watchdog(timeout_s, f"point {label} (attempt {attempt})"):
        with _heartbeats(key, label, attempt, hb_emit, hb_interval):
            if chaos is not None and chaos.enabled:
                fate = chaos.decide(key, attempt)
                if fate == "kill":
                    if in_pool:
                        # A hard worker death: the parent sees
                        # BrokenProcessPool, exactly like an OOM kill.
                        os._exit(42)
                    raise ChaosKilled(
                        f"chaos killed point {label} (attempt {attempt})"
                    )
                if fate == "hang":
                    time.sleep(chaos.hang_s)
            return _simulate_encoded(point, obs, check)


# --------------------------------------------------------------------- #
# the supervised executor
# --------------------------------------------------------------------- #


@dataclass
class _Task:
    """Book-keeping for one point moving through the scheduler."""

    index: int
    point: object
    key: str
    label: str
    timeout_s: Optional[float]
    attempt: int = 1
    timeouts: int = 0
    crashes: int = 0
    not_before: float = 0.0
    deadline: float = float("inf")
    hard_killed: bool = False


class _Supervisor:
    """Executes a batch of tasks under one :class:`SuperviseConfig`.

    Shared state machine for the pooled and sequential paths: attempts
    either complete (``on_complete`` fires, for journal/cache/counters),
    time out, crash, or error; transient causes reschedule with backoff
    until ``max_attempts`` (or ``quarantine_strikes`` pool breaks), then
    become :class:`PointFailure` records.
    """

    def __init__(
        self,
        cfg: SuperviseConfig,
        obs,
        check,
        on_complete: Optional[Callable] = None,
        on_event: Optional[Callable] = None,
        strict_errors: bool = True,
        heartbeat: Optional[Callable] = None,
    ) -> None:
        self.cfg = cfg
        self.obs = obs
        self.check = check
        self.on_complete = on_complete
        self.on_event = on_event or (lambda kind, task: None)
        self.strict_errors = strict_errors
        self.heartbeat = heartbeat
        self.payloads: dict[int, dict] = {}
        self.failures: list[PointFailure] = []
        self._hb_queue = None

    # -- heartbeat plumbing ----------------------------------------- #

    def _hb_consume(self, rec: dict) -> None:
        """Hand one heartbeat to the consumer; never let it kill the
        sweep (the consumer renders UI and journals diagnostics)."""
        if self.heartbeat is None:
            return
        try:
            self.heartbeat(rec)
        except Exception:
            _log.debug("heartbeat consumer failed", exc_info=True)

    def _drain_heartbeats(self) -> None:
        q = self._hb_queue
        if q is None:
            return
        while True:
            try:
                rec = q.get_nowait()
            except Exception:
                # queue.Empty normally; OSError/ValueError mid-teardown.
                break
            self._hb_consume(rec)

    # -- shared outcome handlers ------------------------------------ #

    def _complete(self, task: _Task, payload: dict) -> None:
        self.payloads[task.index] = payload
        if self.on_complete is not None:
            self.on_complete(task, payload)

    def _fail(self, task: _Task, kind: str, message: str,
              exception: Optional[BaseException] = None) -> None:
        failure = PointFailure(
            index=task.index,
            key=task.key,
            label=task.label,
            kind=kind,
            attempts=task.attempt,
            error=message,
            exception=exception,
        )
        self.failures.append(failure)
        self.on_event("failed", task)
        _log.error("point %s failed (%s): %s", task.label, kind, message)

    def _retry_or_fail(
        self, task: _Task, kind: str, message: str, now: float
    ) -> Optional[_Task]:
        """Reschedule *task* after a transient failure, or fail it.

        Returns the task when it should be requeued (with its backoff
        gate set), else records the failure and returns None.
        """
        if kind == "timeout":
            task.timeouts += 1
            self.on_event("timeout", task)
        elif kind == "crash":
            task.crashes += 1
            self.on_event("crash", task)
            if task.crashes >= self.cfg.quarantine_strikes:
                self._fail(
                    task,
                    "quarantined",
                    f"present at {task.crashes} pool break(s) "
                    f"(strikes limit {self.cfg.quarantine_strikes}): "
                    f"{message}",
                )
                self.on_event("quarantined", task)
                return None
        if task.attempt >= self.cfg.max_attempts:
            self._fail(
                task,
                kind,
                f"retries exhausted after {task.attempt} attempt(s): "
                f"{message}",
            )
            return None
        task.attempt += 1
        task.not_before = now + self.cfg.backoff_for(task.attempt)
        task.deadline = float("inf")
        task.hard_killed = False
        self.on_event("retry", task)
        _log.warning(
            "%s; retry %d/%d in %.2fs",
            message,
            task.attempt - 1,
            self.cfg.max_attempts - 1,
            task.not_before - now,
        )
        return task

    def _handle_error(self, task: _Task, exc: BaseException) -> None:
        """Deterministic failure (simulation/validation error): never
        retried — the same inputs would fail the same way."""
        self._fail(
            task,
            "error",
            f"{type(exc).__name__}: {exc}",
            exception=exc,
        )
        if self.strict_errors:
            raise exc

    # -- sequential path -------------------------------------------- #

    def run_sequential(self, tasks: list) -> None:
        hb_emit = (
            self._hb_consume
            if self.heartbeat is not None and self.cfg.heartbeat_s > 0
            else None
        )
        queue = deque(tasks)
        while queue:
            task = queue.popleft()
            delay = task.not_before - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            self.on_event("start", task)
            try:
                payload = _worker_entry(
                    task.point,
                    task.key,
                    task.attempt,
                    task.timeout_s,
                    self.cfg.chaos,
                    self.obs,
                    self.check,
                    in_pool=False,
                    hb_emit=hb_emit,
                    hb_interval=self.cfg.heartbeat_s,
                )
            except PointTimeoutError as exc:
                again = self._retry_or_fail(
                    task, "timeout", str(exc), time.monotonic()
                )
                if again is not None:
                    queue.append(again)
            except ChaosKilled as exc:
                again = self._retry_or_fail(
                    task, "crash", str(exc), time.monotonic()
                )
                if again is not None:
                    queue.append(again)
            except Exception as exc:
                self._handle_error(task, exc)
            else:
                self._complete(task, payload)

    # -- pooled path ------------------------------------------------ #

    def _spawn_pool(self, max_workers: int) -> ProcessPoolExecutor:
        """A worker pool, with heartbeats armed when a consumer wants
        them (the queue rides into workers via the pool initializer)."""
        if self._hb_queue is not None:
            return ProcessPoolExecutor(
                max_workers=max_workers,
                initializer=_hb_init,
                initargs=(self._hb_queue, self.cfg.heartbeat_s),
            )
        return ProcessPoolExecutor(max_workers=max_workers)

    def run_pooled(self, tasks: list, jobs: int) -> None:
        max_workers = min(jobs, len(tasks))
        if self.heartbeat is not None and self.cfg.heartbeat_s > 0:
            import multiprocessing as mp

            self._hb_queue = mp.Queue()
        pool = self._spawn_pool(max_workers)
        ready: deque = deque(tasks)
        waiting: list = []
        in_flight: dict = {}
        try:
            while ready or waiting or in_flight:
                now = time.monotonic()
                if waiting:
                    still = []
                    for task in waiting:
                        if task.not_before <= now:
                            ready.append(task)
                        else:
                            still.append(task)
                    waiting = still
                while ready and len(in_flight) < max_workers:
                    task = ready.popleft()
                    try:
                        future = pool.submit(
                            _worker_entry,
                            task.point,
                            task.key,
                            task.attempt,
                            task.timeout_s,
                            self.cfg.chaos,
                            self.obs,
                            self.check,
                            True,
                        )
                    except BrokenProcessPool:
                        # A worker died between our last wait and this
                        # submit: the pool is already broken.  Put the
                        # task back untouched (it never ran) and recover.
                        ready.appendleft(task)
                        pool = self._recover_pool_break(
                            pool, in_flight, waiting, max_workers
                        )
                        continue
                    if task.timeout_s is not None:
                        task.deadline = (
                            now + task.timeout_s + self.cfg.grace_s
                        )
                    else:
                        task.deadline = float("inf")
                    in_flight[future] = task
                    self.on_event("start", task)
                if not in_flight:
                    if waiting:
                        pause = min(t.not_before for t in waiting) - now
                        if pause > 0:
                            time.sleep(min(pause, 1.0))
                    continue
                horizon = min(t.deadline for t in in_flight.values())
                for t in waiting:
                    horizon = min(horizon, t.not_before)
                wait_s = min(max(horizon - now, 0.02), 1.0)
                done, _ = wait(
                    set(in_flight),
                    timeout=wait_s,
                    return_when=FIRST_COMPLETED,
                )
                self._drain_heartbeats()
                now = time.monotonic()
                if not done:
                    overdue = [
                        t for t in in_flight.values() if t.deadline <= now
                    ]
                    if overdue:
                        # The in-worker alarm should have fired long ago:
                        # the worker is wedged beyond Python's reach.
                        # Kill the pool; the break handler sorts out who
                        # was a timeout and who was a bystander.
                        for t in overdue:
                            t.hard_killed = True
                            _log.warning(
                                "point %s overran its hard deadline; "
                                "killing the worker pool",
                                t.label,
                            )
                        _kill_pool_workers(pool)
                    continue
                broke = False
                for future in done:
                    task = in_flight.pop(future)
                    try:
                        payload = future.result()
                    except PointTimeoutError as exc:
                        again = self._retry_or_fail(
                            task, "timeout", str(exc), now
                        )
                        if again is not None:
                            waiting.append(again)
                    except BrokenProcessPool:
                        # Put it back: the break handler below treats
                        # every in-flight task uniformly.
                        in_flight[future] = task
                        broke = True
                    except Exception as exc:
                        self._handle_error(task, exc)
                    else:
                        self._complete(task, payload)
                if broke:
                    pool = self._recover_pool_break(
                        pool, in_flight, waiting, max_workers
                    )
        except BaseException:
            _kill_pool_workers(pool)
            pool.shutdown(wait=False, cancel_futures=True)
            self._close_hb_queue()
            raise
        pool.shutdown(wait=True, cancel_futures=True)
        self._drain_heartbeats()
        self._close_hb_queue()

    def _close_hb_queue(self) -> None:
        q, self._hb_queue = self._hb_queue, None
        if q is not None:
            try:
                q.close()
                q.join_thread()
            except (OSError, ValueError):  # pragma: no cover
                pass

    def _recover_pool_break(
        self, pool, in_flight: dict, waiting: list, max_workers: int
    ):
        """A worker died: drain every in-flight future, attribute the
        damage, respawn the pool."""
        self.on_event("pool_break", None)
        _log.warning(
            "worker pool broke with %d point(s) in flight; respawning",
            len(in_flight),
        )
        self._drain_heartbeats()
        now = time.monotonic()
        # A pool break takes down *every* in-flight future, culprit and
        # bystander alike.  For real crashes (OOM, segfault) the parent
        # cannot tell who was at fault, so everyone gets a strike — but
        # chaos kills are decided by a hash the parent can replay: when
        # the chaos plan fingers a culprit among the in-flight attempts,
        # the others are provable bystanders and are rescheduled without
        # a strike (same attempt number, so the deterministic re-roll is
        # unchanged).  Without this, one slow point sharing a small pool
        # with chaos-killed neighbours soaks up bystander strikes until
        # it is quarantined for crimes it never committed.
        bystanders: set = set()
        chaos = self.cfg.chaos
        if chaos is not None and chaos.enabled:
            culprits = {
                id(task)
                for task in in_flight.values()
                if chaos.decide(task.key, task.attempt) == "kill"
            }
            if culprits:
                bystanders = {
                    id(task)
                    for task in in_flight.values()
                    if id(task) not in culprits
                }
        for future, task in list(in_flight.items()):
            payload = None
            exc: Optional[BaseException] = None
            if future.done() and not future.cancelled():
                exc = future.exception()
                if exc is None:
                    payload = future.result()
            else:
                future.cancel()
            if payload is not None:
                # Completed before the pool collapsed — keep it.
                self._complete(task, payload)
                continue
            if task.hard_killed or isinstance(exc, PointTimeoutError):
                again = self._retry_or_fail(
                    task,
                    "timeout",
                    "hard-killed after overrunning its deadline",
                    now,
                )
            elif exc is not None and not isinstance(exc, BrokenProcessPool):
                self._handle_error(task, exc)
                again = None
            elif id(task) in bystanders:
                # Not at fault: requeue immediately, no strike, no
                # backoff, same attempt number.
                task.deadline = float("inf")
                task.hard_killed = False
                again = task
            else:
                again = self._retry_or_fail(
                    task, "crash", "worker died (pool broke)", now
                )
            if again is not None:
                waiting.append(again)
        in_flight.clear()
        pool.shutdown(wait=False, cancel_futures=True)
        return self._spawn_pool(max_workers)


def _kill_pool_workers(pool) -> None:
    """Hard-kill a pool's worker processes (wedged or abandoned)."""
    procs = getattr(pool, "_processes", None) or {}
    for proc in list(procs.values()):
        try:
            proc.kill()
        except (OSError, AttributeError, ValueError):  # pragma: no cover
            pass


def execute_supervised(
    items: list,
    jobs: int,
    cfg: SuperviseConfig,
    obs,
    check,
    on_complete: Optional[Callable] = None,
    on_event: Optional[Callable] = None,
    strict_errors: bool = True,
    heartbeat: Optional[Callable] = None,
) -> tuple[dict, list]:
    """Run ``(index, point, key, label)`` items under supervision.

    Returns ``(payloads_by_index, failures)``.  ``on_complete(task,
    payload)`` fires as each point lands (journal/cache/counters hook);
    ``on_event(kind, task)`` fires on start/retry/timeout/crash/
    pool_break/quarantined/failed transitions (counters + progress
    hook); ``heartbeat(record)`` receives worker heartbeat dicts on the
    parent's thread (pooled) or the sampler thread (sequential) when
    ``cfg.heartbeat_s > 0``.  With ``strict_errors`` deterministic
    simulation errors re-raise immediately (the historical contract);
    otherwise they become structured failures like everything else.
    """
    sup = _Supervisor(
        cfg,
        obs,
        check,
        on_complete=on_complete,
        on_event=on_event,
        strict_errors=strict_errors,
        heartbeat=heartbeat,
    )
    tasks = [
        _Task(
            index=index,
            point=point,
            key=key,
            label=label,
            timeout_s=cfg.timeout_for(point),
        )
        for index, point, key, label in items
    ]
    if jobs > 1 and len(tasks) > 1:
        sup.run_pooled(tasks, jobs)
    else:
        sup.run_sequential(tasks)
    return sup.payloads, sup.failures


__all__ = [
    "ChaosKilled",
    "ChaosPlan",
    "JOURNAL_VERSION",
    "PointFailure",
    "PointTimeoutError",
    "SuperviseConfig",
    "SweepIncompleteError",
    "SweepJournal",
    "SweepResult",
    "active_supervision",
    "derive_timeout",
    "execute_supervised",
    "resolve_supervision",
    "supervising",
    "watchdog",
]
