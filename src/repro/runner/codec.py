"""Canonical JSON encoding of simulation inputs and outputs.

Two jobs live here:

* **Key material** — :func:`point_fingerprint` turns a :class:`SimPoint`
  into a canonical, sorted, JSON-safe structure covering *everything* that
  can change a simulation's outcome (shape, strategy class + options,
  message size, seed, machine parameters, network config, fault plan, and
  a schema version).  Its SHA-256 is the cache key.
* **Result transport** — :func:`encode_run` / :func:`decode_run` round-trip
  an :class:`~repro.api.AllToAllRun` through plain JSON types.  The same
  payload serves worker → parent IPC and the on-disk cache, and *every*
  result the runner returns goes through one encode/decode cycle — so a
  cache hit, a pool worker result and an in-process run are byte-identical
  (``json`` float round-trips are exact: ``float(repr(x)) == x``).

Bump :data:`SCHEMA_VERSION` whenever simulator semantics change in a way
that should invalidate previously cached results.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, fields
from typing import Any

import numpy as np

from repro.api import AllToAllRun
from repro.model.machine import MachineParams
from repro.model.torus import TorusShape
from repro.net.config import NetworkConfig
from repro.net.faults import FaultPlan
from repro.net.trace import SimulationResult

from repro.runner.point import SimPoint

#: Version of both the fingerprint layout and the result payload.  Bumping
#: it orphans every previously cached result (they are keyed by it).
#: v2: SimulationResult grew the per-link ``link_packets`` counter.
SCHEMA_VERSION = 2


# --------------------------------------------------------------------- #
# fingerprinting (cache keys)
# --------------------------------------------------------------------- #


def _strategy_fingerprint(strategy: Any) -> dict:
    cls = type(strategy)
    return {
        "class": f"{cls.__module__}.{cls.__qualname__}",
        "options": {k: v for k, v in sorted(vars(strategy).items())},
    }


def _faults_fingerprint(faults: FaultPlan | None) -> dict | None:
    if faults is None:
        return None
    return {
        "dead_links": sorted(list(link) for link in faults.dead_links),
        "dead_nodes": sorted(faults.dead_nodes),
        "degraded_links": sorted(
            [list(link), mult] for link, mult in faults.degraded_links.items()
        ),
        "outages": [
            [o.node, o.direction, o.start, o.end] for o in faults.outages
        ],
        "loss_prob": faults.loss_prob,
        "link_loss": sorted(
            [list(link), p] for link, p in faults.link_loss.items()
        ),
        "seed": faults.seed,
        "retx_timeout_cycles": faults.retx_timeout_cycles,
        "retx_backoff": faults.retx_backoff,
        "max_retx": faults.max_retx,
    }


def point_fingerprint(point: SimPoint) -> dict:
    """Canonical JSON-safe structure identifying *point*'s outcome."""
    params = point.params or MachineParams.bluegene_l()
    config = point.config
    return {
        "schema": SCHEMA_VERSION,
        "shape": {
            "dims": list(point.shape.dims),
            "torus": list(point.shape.torus),
        },
        "strategy": _strategy_fingerprint(point.strategy),
        "msg_bytes": point.msg_bytes,
        "seed": point.seed,
        "params": asdict(params),
        "config": None if config is None else asdict(config),
        "faults": _faults_fingerprint(point.faults),
    }


def point_key(point: SimPoint) -> str:
    """Stable content hash of *point* (the cache key)."""
    blob = json.dumps(
        point_fingerprint(point), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------- #
# result payloads
# --------------------------------------------------------------------- #


def canonical_extras(value: Any, path: str = "extras") -> Any:
    """Return *value* as canonical JSON-native types, or fail loudly.

    ``SimulationResult.extras`` is an open dict that strategies and the
    observability layer populate; before it crosses the cache/IPC
    boundary every value must become a plain JSON type so fresh, pooled
    and cached results stay bit-identical.  Numpy scalars become native
    ``int``/``float``/``bool``, arrays and tuples become lists, and dict
    keys must be strings.  Anything else raises ``TypeError`` naming the
    offending path instead of letting ``json.dumps`` produce an opaque
    error (or, worse, ``allow_nan`` artifacts) deep inside a worker.
    """
    if value is None:
        return value
    # Exact native types only: an IntEnum (e.g. RoutingMode) or np.str_
    # would satisfy an isinstance check yet make the fresh payload differ
    # from its decoded-from-JSON twin in type, breaking the bit-identity
    # contract.  Coerce subclasses down to the base type.
    if isinstance(value, bool):
        return value if type(value) is bool else bool(value)
    if isinstance(value, int):
        return value if type(value) is int else int(value)
    if isinstance(value, str):
        return value if type(value) is str else str(value)
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise ValueError(f"{path}: non-finite float {value!r}")
        # np.float64 subclasses float; coerce so the payload is native.
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return canonical_extras(float(value), path)
    if isinstance(value, np.ndarray):
        return canonical_extras(value.tolist(), path)
    if isinstance(value, (list, tuple)):
        return [
            canonical_extras(v, f"{path}[{i}]") for i, v in enumerate(value)
        ]
    if isinstance(value, dict):
        out = {}
        for k, v in value.items():
            if not isinstance(k, str):
                raise TypeError(
                    f"{path}: non-string key {k!r} ({type(k).__name__})"
                )
            out[k] = canonical_extras(v, f"{path}.{k}")
        return out
    raise TypeError(
        f"{path}: {type(value).__name__} is not JSON-encodable"
    )


def encode_run(run: AllToAllRun) -> dict:
    """Encode *run* as a plain-JSON-types dict (the cache/IPC payload)."""
    r = run.result
    result = {
        f.name: getattr(r, f.name)
        for f in fields(SimulationResult)
        if f.name not in ("link_busy_cycles", "link_packets")
    }
    result["link_busy_cycles"] = r.link_busy_cycles.tolist()
    result["link_packets"] = (
        None if r.link_packets is None else r.link_packets.tolist()
    )
    result["extras"] = canonical_extras(r.extras)
    return {
        "schema": SCHEMA_VERSION,
        "strategy": run.strategy,
        "shape": {
            "dims": list(run.shape.dims),
            "torus": list(run.shape.torus),
        },
        "msg_bytes": run.msg_bytes,
        "params": asdict(run.params),
        "predicted_cycles": run.predicted_cycles,
        "result": result,
    }


def decode_run(payload: dict) -> AllToAllRun:
    """Rebuild the :class:`AllToAllRun` encoded by :func:`encode_run`."""
    result = dict(payload["result"])
    result["link_busy_cycles"] = np.asarray(
        result["link_busy_cycles"], dtype=np.float64
    )
    if result.get("link_packets") is not None:
        result["link_packets"] = np.asarray(
            result["link_packets"], dtype=np.int64
        )
    return AllToAllRun(
        strategy=payload["strategy"],
        shape=TorusShape(
            payload["shape"]["dims"], payload["shape"]["torus"]
        ),
        msg_bytes=payload["msg_bytes"],
        params=MachineParams(**payload["params"]),
        result=SimulationResult(**result),
        predicted_cycles=payload["predicted_cycles"],
    )


def roundtrip_run(run: AllToAllRun) -> AllToAllRun:
    """One encode/decode cycle through JSON text.

    Applied to every freshly simulated result so fresh and cached runs are
    bit-identical (numpy array dtype, int/float identity, dict contents).
    """
    return decode_run(json.loads(json.dumps(encode_run(run))))
