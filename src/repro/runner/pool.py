"""Parallel, cached, supervised execution of independent simulation points.

:func:`run_points` is the one entry point every experiment driver uses.
Guarantees:

* **Deterministic order** — results come back in input order, always.
* **Bit-identical parallelism** — each point is an independent simulation
  with its own seed; ``jobs=4`` returns exactly what ``jobs=1`` returns.
* **Bit-identical caching** — every result (fresh, pooled, cached,
  journaled or retried) goes through one canonical JSON encode/decode
  cycle, so where a result came from is unobservable downstream.
* **Resilience** — pooled execution runs under the supervision layer
  (:mod:`repro.runner.supervise`): per-point wall-clock timeouts,
  bounded deterministic retries, ``BrokenProcessPool`` recovery with
  per-point quarantine, and an append-only checkpoint journal for
  ``--resume``.  :func:`run_sweep` returns a
  :class:`~repro.runner.supervise.SweepResult` carrying completed runs
  plus structured failures; :func:`run_points` keeps the historical
  list-returning contract (deterministic simulation errors re-raise
  unchanged, resource failures raise
  :class:`~repro.runner.supervise.SweepIncompleteError` — which still
  carries the partial results).

Job-count resolution: explicit ``jobs`` argument, else the ``REPRO_JOBS``
environment variable, else 1 (sequential, in-process).  ``jobs=0`` or a
negative value means "all cores".

Observability: when an :class:`~repro.obs.config.ObsConfig` is passed (or
one is active via :func:`repro.obs.context.observe`, which is how the CLI
flags work), every point runs on the instrumented network and its
trace/metrics payload — already JSON-native from the canonical codec — is
deposited into the active collector in input order.  Observed runs bypass
the cache *and the journal* entirely, in both directions: an instrumented
result never pollutes them (its extras would break replayed-vs-fresh
identity for normal runs) and never gets served from them (a stored entry
has no trace).  The same holds for checked runs (a stored result was
produced without the oracles watching).

The module-level :data:`counters` record how many points were actually
simulated vs. served from cache or journal (plus retries, timeouts, pool
breaks, quarantines, corrupt entries, simulated cycles/events and the
executed point keys for provenance) — tests assert on them, and the CLI
reports them.
"""

from __future__ import annotations

import logging
import os
from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Iterable, Optional, Sequence

from repro.api import AllToAllRun, simulate_alltoall
from repro.check.config import CheckConfig
from repro.check.context import active_check
from repro.obs.config import ObsConfig
from repro.obs.context import active_config, collect
from repro.runner.cache import cache_get, cache_put, pop_corrupt_count
from repro.runner.codec import decode_run, encode_run, point_key
from repro.runner.point import SimPoint
from repro.runner.supervise import (
    SuperviseConfig,
    SweepJournal,
    SweepResult,
    execute_supervised,
    resolve_supervision,
)

_log = logging.getLogger("repro.runner.pool")


@dataclass
class RunnerCounters:
    """Observability: what :func:`run_points` actually did."""

    simulated: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stores: int = 0
    cache_corrupt: int = 0
    #: Supervision layer: reschedules, attempt timeouts, worker-pool
    #: breaks, quarantined points, journal reads/writes.
    retries: int = 0
    timeouts: int = 0
    pool_breaks: int = 0
    quarantined: int = 0
    journal_hits: int = 0
    journal_records: int = 0
    #: Worker heartbeat records consumed by the parent (telemetry).
    heartbeats: int = 0
    #: Simulated-time and event totals over freshly executed points.
    sim_cycles: float = 0.0
    sim_events: int = 0
    #: Cache keys of every point executed (hit or fresh), in order —
    #: the provenance config fingerprint hashes these.
    point_keys: list = field(default_factory=list)
    #: Structured failure dicts
    #: (:meth:`~repro.runner.supervise.PointFailure.to_dict`) from every
    #: supervised sweep, in completion order — the experiment registry
    #: threads these onto :class:`ExperimentResult.failures`.
    failures: list = field(default_factory=list)

    def reset(self) -> None:
        self.simulated = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_stores = 0
        self.cache_corrupt = 0
        self.retries = 0
        self.timeouts = 0
        self.pool_breaks = 0
        self.quarantined = 0
        self.journal_hits = 0
        self.journal_records = 0
        self.heartbeats = 0
        self.sim_cycles = 0.0
        self.sim_events = 0
        self.point_keys = []
        self.failures = []

    def snapshot(self) -> dict:
        """Plain-dict copy (for deltas around an experiment run)."""
        return {
            "simulated": self.simulated,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_stores": self.cache_stores,
            "cache_corrupt": self.cache_corrupt,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_breaks": self.pool_breaks,
            "quarantined": self.quarantined,
            "journal_hits": self.journal_hits,
            "journal_records": self.journal_records,
            "heartbeats": self.heartbeats,
            "sim_cycles": self.sim_cycles,
            "sim_events": self.sim_events,
            "point_keys": list(self.point_keys),
            "failures": list(self.failures),
        }


#: Process-wide counters (reset with ``counters.reset()``).
counters = RunnerCounters()


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Final worker count: argument > ``REPRO_JOBS`` env > 1."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_JOBS must be an integer, got {env!r}"
                ) from None
        else:
            jobs = 1
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


def point_label(point: SimPoint) -> str:
    """Human-readable identity of a point (trace/log annotations)."""
    dims = "x".join(str(d) for d in point.shape.dims)
    name = getattr(point.strategy, "name", type(point.strategy).__name__)
    label = f"{name}@{dims}/{point.msg_bytes}B/seed{point.seed}"
    if point.faults is not None and not point.faults.is_empty:
        label += "/faulty"
    return label


def _simulate_encoded(
    point: SimPoint,
    obs: Optional[ObsConfig] = None,
    check: Optional[CheckConfig] = None,
) -> dict:
    """Worker body: run one point and return the canonical payload.

    Returning the *encoded* form does double duty — it is what crosses the
    process boundary and what lands in the cache and the journal, so all
    paths are the same bytes by construction.  With *obs* enabled the
    payload also carries ``result.extras["obs"]`` (trace + metrics), which
    the parent harvests into the active collector.  With *check* enabled
    the point runs on the oracle-checked network (same decisions, same
    payload).
    """
    run = simulate_alltoall(
        point.strategy,
        point.shape,
        point.msg_bytes,
        params=point.params,
        config=point.config,
        seed=point.seed,
        faults=point.faults,
        obs=obs,
        check=check,
    )
    return encode_run(run)


def run_point(point: SimPoint) -> AllToAllRun:
    """Run (or fetch) a single point through the cache."""
    return run_points([point])[0]


def _count_event(kind: str, task) -> None:
    """Fold supervision transitions into the process-wide counters."""
    if kind == "retry":
        counters.retries += 1
    elif kind == "timeout":
        counters.timeouts += 1
    elif kind == "pool_break":
        counters.pool_breaks += 1
    elif kind == "quarantined":
        counters.quarantined += 1


def run_sweep(
    points: Sequence[SimPoint],
    jobs: Optional[int] = None,
    obs: Optional[ObsConfig] = None,
    check: Optional[CheckConfig] = None,
    supervise: Optional[SuperviseConfig] = None,
    graceful: bool = True,
) -> SweepResult:
    """Execute *points* under supervision and report everything.

    Returns a :class:`~repro.runner.supervise.SweepResult`: one
    :class:`AllToAllRun` per point in input order (``None`` where a point
    ultimately failed) plus a structured ``failures`` list.  With
    ``graceful=True`` (the default here) nothing short of the process
    dying raises — a deterministic simulation error becomes a failure
    record like a crash or a timeout does.  ``graceful=False`` restores
    the historical fail-fast contract for :func:`run_points`.

    *supervise* defaults to the config activated via
    :func:`~repro.runner.supervise.supervising` (how the CLI flags work),
    else one resolved from ``REPRO_POINT_TIMEOUT`` / ``REPRO_CHAOS``.
    *obs* and *check* default to their own process-wide contexts; an
    enabled config bypasses the cache **and** the journal in both
    directions (see module docstring).
    """
    points = list(points)
    if obs is None:
        obs = active_config()
    observed = obs is not None and obs.enabled
    if check is None:
        check = active_check()
    checked = check is not None and check.enabled
    bypass = observed or checked
    cfg = resolve_supervision(supervise)

    keys = [point_key(p) for p in points]
    labels = [point_label(p) for p in points]
    counters.point_keys.extend(keys)
    payloads: list[Optional[dict]] = [None] * len(points)

    journal_hits = 0
    if cfg.resume is not None and not bypass:
        resumed = SweepJournal.load(cfg.resume)
        for i, k in enumerate(keys):
            got = resumed.get(k)
            if got is not None:
                payloads[i] = got
                journal_hits += 1
        counters.journal_hits += journal_hits

    if bypass:
        misses = list(range(len(points)))
    else:
        for i, k in enumerate(keys):
            if payloads[i] is None:
                payloads[i] = cache_get(k)
        misses = [i for i, p in enumerate(payloads) if p is None]
        counters.cache_hits += len(points) - len(misses) - journal_hits
        counters.cache_misses += len(misses)
        counters.cache_corrupt += pop_corrupt_count()

    jobs = resolve_jobs(jobs)
    _log.info(
        "sweep: %d point(s), %d to simulate, jobs=%d%s%s",
        len(points),
        len(misses),
        jobs,
        " [observed/checked, cache+journal bypassed]" if bypass else "",
        " [supervised]" if (cfg.is_active or graceful) else "",
    )

    # Live telemetry (status line / progress log lines + heartbeats).
    # Imported lazily: pool workers import this module but never run a
    # sweep themselves.
    from repro.obs.progress import resolve_progress

    progress = resolve_progress(len(points))
    if progress is not None:
        progress.begin(
            total=len(points), cached=len(points) - len(misses), jobs=jobs
        )

    journal: Optional[SweepJournal] = None
    failures = []
    try:
        if cfg.journal is not None and not bypass:
            journal = SweepJournal(cfg.journal).open_append()
            # Make the journal self-contained: completions served from
            # the cache or a previous journal checkpoint this run are
            # (idempotently) recorded too.
            for i, payload in enumerate(payloads):
                if payload is not None and journal.record(keys[i], payload):
                    counters.journal_records += 1

        if misses:
            todo = [
                (i, points[i], keys[i], labels[i]) for i in misses
            ]

            def _on_complete(task, payload) -> None:
                counters.simulated += 1
                result = payload["result"]
                counters.sim_cycles += result["time_cycles"]
                counters.sim_events += result["events_processed"]
                _log.debug(
                    "simulated %s: %.0f cycles, %d events",
                    task.label,
                    result["time_cycles"],
                    result["events_processed"],
                )
                if not bypass:
                    if cache_put(task.key, payload):
                        counters.cache_stores += 1
                    if journal is not None and journal.record(
                        task.key, payload
                    ):
                        counters.journal_records += 1
                if progress is not None:
                    progress.complete(task)

            def _on_event(kind: str, task) -> None:
                _count_event(kind, task)
                if progress is not None:
                    progress.event(kind, task)

            def _on_heartbeat(rec: dict) -> None:
                counters.heartbeats += 1
                if progress is not None:
                    progress.heartbeat(rec)
                if journal is not None:
                    journal.note(dict(rec, kind="heartbeat"))

            heartbeat = (
                _on_heartbeat
                if (progress is not None or journal is not None)
                else None
            )

            if jobs > 1 and len(todo) > 1:
                fresh, failures = execute_supervised(
                    todo,
                    jobs,
                    cfg,
                    obs,
                    check,
                    on_complete=_on_complete,
                    on_event=_on_event,
                    strict_errors=not graceful,
                    heartbeat=heartbeat,
                )
            elif cfg.is_active or graceful:
                fresh, failures = execute_supervised(
                    todo,
                    1,
                    cfg,
                    obs,
                    check,
                    on_complete=_on_complete,
                    on_event=_on_event,
                    strict_errors=not graceful,
                    heartbeat=heartbeat,
                )
            else:
                # Plain sequential fast path: no supervision requested,
                # zero overhead, exceptions propagate untouched.
                fresh = {}
                for i, point, key, label in todo:
                    shim = SimpleNamespace(key=key, label=label, attempt=1)
                    if progress is not None:
                        progress.event("start", shim)
                    payload = _simulate_encoded(point, obs, check)
                    counters.simulated += 1
                    result = payload["result"]
                    counters.sim_cycles += result["time_cycles"]
                    counters.sim_events += result["events_processed"]
                    if not bypass:
                        if cache_put(key, payload):
                            counters.cache_stores += 1
                    fresh[i] = payload
                    if progress is not None:
                        progress.complete(shim)
                failures = []
            for i, payload in fresh.items():
                payloads[i] = payload
    finally:
        if progress is not None:
            progress.finish()
        if journal is not None:
            journal.close()

    counters.failures.extend(f.to_dict() for f in failures)
    if observed:
        # Harvest per-point observability payloads in input order, so a
        # jobs=4 sweep collects exactly what a jobs=1 sweep does.
        for point, payload in zip(points, payloads):
            if payload is None:
                continue
            obs_payload = payload["result"]["extras"].get("obs")
            if obs_payload is not None:
                collect(point_label(point), obs_payload)
        _collect_supervision_metrics(obs, failures)
    runs = [decode_run(p) if p is not None else None for p in payloads]
    return SweepResult(runs=runs, failures=failures)


def _collect_supervision_metrics(obs: ObsConfig, failures: list) -> None:
    """Contribute the sweep supervisor's counters to an active metrics
    collection — but only when something actually happened, so healthy
    sweeps keep their golden traces byte-identical."""
    if not obs.metrics:
        return
    eventful = (
        counters.retries
        or counters.timeouts
        or counters.pool_breaks
        or counters.quarantined
        or counters.journal_hits
        or counters.journal_records
        or failures
    )
    if not eventful:
        return
    from repro.obs.metrics import MetricsRegistry

    reg = MetricsRegistry()
    reg.counter("runner.retries").inc(counters.retries)
    reg.counter("runner.timeouts").inc(counters.timeouts)
    reg.counter("runner.pool_breaks").inc(counters.pool_breaks)
    reg.counter("runner.quarantined").inc(counters.quarantined)
    reg.counter("runner.journal_hits").inc(counters.journal_hits)
    reg.counter("runner.journal_records").inc(counters.journal_records)
    reg.counter("runner.failed_points").inc(len(failures))
    collect("sweep:supervisor", {"metrics": reg.to_dict()})


def run_points(
    points: Sequence[SimPoint],
    jobs: Optional[int] = None,
    obs: Optional[ObsConfig] = None,
    check: Optional[CheckConfig] = None,
    supervise: Optional[SuperviseConfig] = None,
) -> list[AllToAllRun]:
    """Execute *points*, in parallel when ``jobs > 1``, through the cache.

    Returns one :class:`AllToAllRun` per point, in input order.  Runs
    under the supervision layer (see :func:`run_sweep`) in fail-fast
    mode: deterministic simulation errors re-raise unchanged; points
    still missing after timeouts/retries/quarantine raise
    :class:`~repro.runner.supervise.SweepIncompleteError`, which carries
    the partial :class:`~repro.runner.supervise.SweepResult` (completed
    runs + structured failures) so a caller can still salvage the sweep.
    """
    return run_sweep(
        points,
        jobs=jobs,
        obs=obs,
        check=check,
        supervise=supervise,
        graceful=False,
    ).require()


def run_grid(
    strategies: Iterable,
    shape,
    msg_sizes: Iterable[int],
    params=None,
    config=None,
    seed: int = 0,
    faults=None,
    jobs: Optional[int] = None,
    obs: Optional[ObsConfig] = None,
    check: Optional[CheckConfig] = None,
) -> list[AllToAllRun]:
    """Convenience: the (strategy × message size) product on one shape,
    row-major in the order given."""
    pts = [
        SimPoint(s, shape, m, params, config, seed, faults)
        for s in strategies
        for m in msg_sizes
    ]
    return run_points(pts, jobs=jobs, obs=obs, check=check)
