"""Parallel, cached execution of independent simulation points.

:func:`run_points` is the one entry point every experiment driver uses.
Guarantees:

* **Deterministic order** — results come back in input order, always.
* **Bit-identical parallelism** — each point is an independent simulation
  with its own seed; ``jobs=4`` returns exactly what ``jobs=1`` returns.
* **Bit-identical caching** — every result (fresh, pooled or cached) goes
  through one canonical JSON encode/decode cycle, so where a result came
  from is unobservable downstream.

Job-count resolution: explicit ``jobs`` argument, else the ``REPRO_JOBS``
environment variable, else 1 (sequential, in-process).  ``jobs=0`` or a
negative value means "all cores".

Observability: when an :class:`~repro.obs.config.ObsConfig` is passed (or
one is active via :func:`repro.obs.context.observe`, which is how the CLI
flags work), every point runs on the instrumented network and its
trace/metrics payload — already JSON-native from the canonical codec — is
deposited into the active collector in input order.  Observed runs bypass
the cache entirely, in both directions: an instrumented result never
pollutes the cache (its extras would break cached-vs-fresh identity for
normal runs) and never gets served from it (a cached entry has no trace).

The module-level :data:`counters` record how many points were actually
simulated vs. served from cache (plus misses, stores, corrupt entries,
simulated cycles/events and the executed point keys for provenance) —
tests assert on them, and the CLI reports them.
"""

from __future__ import annotations

import logging
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from itertools import repeat
from typing import Iterable, Optional, Sequence

from repro.api import AllToAllRun, simulate_alltoall
from repro.check.config import CheckConfig
from repro.check.context import active_check
from repro.obs.config import ObsConfig
from repro.obs.context import active_config, collect
from repro.runner.cache import cache_get, cache_put, pop_corrupt_count
from repro.runner.codec import decode_run, encode_run, point_key
from repro.runner.point import SimPoint

_log = logging.getLogger("repro.runner.pool")


@dataclass
class RunnerCounters:
    """Observability: what :func:`run_points` actually did."""

    simulated: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stores: int = 0
    cache_corrupt: int = 0
    #: Simulated-time and event totals over freshly executed points.
    sim_cycles: float = 0.0
    sim_events: int = 0
    #: Cache keys of every point executed (hit or fresh), in order —
    #: the provenance config fingerprint hashes these.
    point_keys: list = field(default_factory=list)

    def reset(self) -> None:
        self.simulated = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_stores = 0
        self.cache_corrupt = 0
        self.sim_cycles = 0.0
        self.sim_events = 0
        self.point_keys = []

    def snapshot(self) -> dict:
        """Plain-dict copy (for deltas around an experiment run)."""
        return {
            "simulated": self.simulated,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_stores": self.cache_stores,
            "cache_corrupt": self.cache_corrupt,
            "sim_cycles": self.sim_cycles,
            "sim_events": self.sim_events,
            "point_keys": list(self.point_keys),
        }


#: Process-wide counters (reset with ``counters.reset()``).
counters = RunnerCounters()


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Final worker count: argument > ``REPRO_JOBS`` env > 1."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_JOBS must be an integer, got {env!r}"
                ) from None
        else:
            jobs = 1
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


def point_label(point: SimPoint) -> str:
    """Human-readable identity of a point (trace/log annotations)."""
    dims = "x".join(str(d) for d in point.shape.dims)
    name = getattr(point.strategy, "name", type(point.strategy).__name__)
    label = f"{name}@{dims}/{point.msg_bytes}B/seed{point.seed}"
    if point.faults is not None and not point.faults.is_empty:
        label += "/faulty"
    return label


def _simulate_encoded(
    point: SimPoint,
    obs: Optional[ObsConfig] = None,
    check: Optional[CheckConfig] = None,
) -> dict:
    """Worker body: run one point and return the canonical payload.

    Returning the *encoded* form does double duty — it is what crosses the
    process boundary and what lands in the cache, so both paths are the
    same bytes by construction.  With *obs* enabled the payload also
    carries ``result.extras["obs"]`` (trace + metrics), which the parent
    harvests into the active collector.  With *check* enabled the point
    runs on the oracle-checked network (same decisions, same payload).
    """
    run = simulate_alltoall(
        point.strategy,
        point.shape,
        point.msg_bytes,
        params=point.params,
        config=point.config,
        seed=point.seed,
        faults=point.faults,
        obs=obs,
        check=check,
    )
    return encode_run(run)


def run_point(point: SimPoint) -> AllToAllRun:
    """Run (or fetch) a single point through the cache."""
    return run_points([point])[0]


def run_points(
    points: Sequence[SimPoint],
    jobs: Optional[int] = None,
    obs: Optional[ObsConfig] = None,
    check: Optional[CheckConfig] = None,
) -> list[AllToAllRun]:
    """Execute *points*, in parallel when ``jobs > 1``, through the cache.

    Returns one :class:`AllToAllRun` per point, in input order.  *obs*
    defaults to the process-wide config activated by
    :func:`repro.obs.context.observe`; an enabled config runs every point
    instrumented and bypasses the cache (see module docstring).  *check*
    likewise defaults to the config activated by
    :func:`repro.check.context.checking`; an enabled config runs every
    point on the oracle-checked network and also bypasses the cache in
    both directions — a cached result was produced without the oracles
    watching, so replaying it would silently skip verification.
    """
    points = list(points)
    if obs is None:
        obs = active_config()
    observed = obs is not None and obs.enabled
    if check is None:
        check = active_check()
    checked = check is not None and check.enabled
    bypass = observed or checked

    keys = [point_key(p) for p in points]
    counters.point_keys.extend(keys)
    if bypass:
        payloads: list[Optional[dict]] = [None] * len(points)
        misses = list(range(len(points)))
    else:
        payloads = [cache_get(k) for k in keys]
        misses = [i for i, p in enumerate(payloads) if p is None]
        counters.cache_hits += len(points) - len(misses)
        counters.cache_misses += len(misses)
        counters.cache_corrupt += pop_corrupt_count()

    jobs = resolve_jobs(jobs)
    _log.info(
        "sweep: %d point(s), %d to simulate, jobs=%d%s",
        len(points),
        len(misses),
        jobs,
        " [observed/checked, cache bypassed]" if bypass else "",
    )
    if misses:
        todo = [points[i] for i in misses]
        if jobs > 1 and len(todo) > 1:
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(todo))
            ) as pool:
                fresh = list(
                    pool.map(
                        _simulate_encoded, todo, repeat(obs), repeat(check)
                    )
                )
        else:
            fresh = [_simulate_encoded(p, obs, check) for p in todo]
        counters.simulated += len(todo)
        for i, payload in zip(misses, fresh):
            result = payload["result"]
            counters.sim_cycles += result["time_cycles"]
            counters.sim_events += result["events_processed"]
            _log.debug(
                "simulated %s: %.0f cycles, %d events",
                point_label(points[i]),
                result["time_cycles"],
                result["events_processed"],
            )
            if not bypass:
                if cache_put(keys[i], payload):
                    counters.cache_stores += 1
            payloads[i] = payload
    if observed:
        # Harvest per-point observability payloads in input order, so a
        # jobs=4 sweep collects exactly what a jobs=1 sweep does.
        for point, payload in zip(points, payloads):
            obs_payload = payload["result"]["extras"].get("obs")
            if obs_payload is not None:
                collect(point_label(point), obs_payload)
    return [decode_run(p) for p in payloads]


def run_grid(
    strategies: Iterable,
    shape,
    msg_sizes: Iterable[int],
    params=None,
    config=None,
    seed: int = 0,
    faults=None,
    jobs: Optional[int] = None,
    obs: Optional[ObsConfig] = None,
    check: Optional[CheckConfig] = None,
) -> list[AllToAllRun]:
    """Convenience: the (strategy × message size) product on one shape,
    row-major in the order given."""
    pts = [
        SimPoint(s, shape, m, params, config, seed, faults)
        for s in strategies
        for m in msg_sizes
    ]
    return run_points(pts, jobs=jobs, obs=obs, check=check)
