"""Parallel, cached execution of independent simulation points.

:func:`run_points` is the one entry point every experiment driver uses.
Guarantees:

* **Deterministic order** — results come back in input order, always.
* **Bit-identical parallelism** — each point is an independent simulation
  with its own seed; ``jobs=4`` returns exactly what ``jobs=1`` returns.
* **Bit-identical caching** — every result (fresh, pooled or cached) goes
  through one canonical JSON encode/decode cycle, so where a result came
  from is unobservable downstream.

Job-count resolution: explicit ``jobs`` argument, else the ``REPRO_JOBS``
environment variable, else 1 (sequential, in-process).  ``jobs=0`` or a
negative value means "all cores".

The module-level :data:`counters` record how many points were actually
simulated vs. served from cache — tests assert on them, and the CLI
reports them.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.api import AllToAllRun, simulate_alltoall
from repro.runner.cache import cache_get, cache_put
from repro.runner.codec import decode_run, encode_run, point_key
from repro.runner.point import SimPoint


@dataclass
class RunnerCounters:
    """Observability: what :func:`run_points` actually did."""

    simulated: int = 0
    cache_hits: int = 0

    def reset(self) -> None:
        self.simulated = 0
        self.cache_hits = 0


#: Process-wide counters (reset with ``counters.reset()``).
counters = RunnerCounters()


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Final worker count: argument > ``REPRO_JOBS`` env > 1."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_JOBS must be an integer, got {env!r}"
                ) from None
        else:
            jobs = 1
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


def _simulate_encoded(point: SimPoint) -> dict:
    """Worker body: run one point and return the canonical payload.

    Returning the *encoded* form does double duty — it is what crosses the
    process boundary and what lands in the cache, so both paths are the
    same bytes by construction.
    """
    run = simulate_alltoall(
        point.strategy,
        point.shape,
        point.msg_bytes,
        params=point.params,
        config=point.config,
        seed=point.seed,
        faults=point.faults,
    )
    return encode_run(run)


def run_point(point: SimPoint) -> AllToAllRun:
    """Run (or fetch) a single point through the cache."""
    return run_points([point])[0]


def run_points(
    points: Sequence[SimPoint], jobs: Optional[int] = None
) -> list[AllToAllRun]:
    """Execute *points*, in parallel when ``jobs > 1``, through the cache.

    Returns one :class:`AllToAllRun` per point, in input order.
    """
    points = list(points)
    keys = [point_key(p) for p in points]
    payloads: list[Optional[dict]] = [cache_get(k) for k in keys]
    misses = [i for i, p in enumerate(payloads) if p is None]
    counters.cache_hits += len(points) - len(misses)

    jobs = resolve_jobs(jobs)
    if misses:
        todo = [points[i] for i in misses]
        if jobs > 1 and len(todo) > 1:
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(todo))
            ) as pool:
                fresh = list(pool.map(_simulate_encoded, todo))
        else:
            fresh = [_simulate_encoded(p) for p in todo]
        counters.simulated += len(todo)
        for i, payload in zip(misses, fresh):
            cache_put(keys[i], payload)
            payloads[i] = payload
    return [decode_run(p) for p in payloads]


def run_grid(
    strategies: Iterable,
    shape,
    msg_sizes: Iterable[int],
    params=None,
    config=None,
    seed: int = 0,
    faults=None,
    jobs: Optional[int] = None,
) -> list[AllToAllRun]:
    """Convenience: the (strategy × message size) product on one shape,
    row-major in the order given."""
    pts = [
        SimPoint(s, shape, m, params, config, seed, faults)
        for s in strategies
        for m in msg_sizes
    ]
    return run_points(pts, jobs=jobs)
