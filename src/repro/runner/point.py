"""One independent simulation point of a sweep.

Every table and figure in the paper is a collection of *independent*
(shape, strategy, message size, seed) simulations.  :class:`SimPoint`
captures one of them as plain data so the runner can hash it (result
cache), pickle it (worker processes) and execute it anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.model.machine import MachineParams
from repro.model.torus import TorusShape
from repro.net.config import NetworkConfig
from repro.net.faults import FaultPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.strategies.base import AllToAllStrategy


@dataclass(frozen=True)
class SimPoint:
    """One ``simulate_alltoall`` invocation, as data.

    The strategy is carried as the configured *instance* (strategies are
    plain picklable objects whose ``vars()`` are their options); everything
    else mirrors the :func:`repro.api.simulate_alltoall` signature.
    """

    strategy: "AllToAllStrategy"
    shape: TorusShape
    msg_bytes: int
    params: Optional[MachineParams] = None
    config: Optional[NetworkConfig] = None
    seed: int = 0
    faults: Optional[FaultPlan] = None

    @property
    def cost_hint(self) -> float:
        """Relative wall-clock cost estimate: total bytes exchanged.

        An all-to-all moves ``nnodes * (nnodes - 1) * msg_bytes`` payload
        bytes, which is what the event count (and hence simulation wall
        time) tracks to first order.  The supervision layer derives
        default per-point timeouts from this; it feeds nothing that
        affects results or cache keys.
        """
        n = self.shape.nnodes
        return float(n * n * max(self.msg_bytes, 1))
