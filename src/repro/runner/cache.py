"""Content-addressed on-disk cache of simulation results.

Layout: ``<root>/<v{SCHEMA_VERSION}>/<key[:2]>/<key>.json`` where ``key``
is :func:`repro.runner.codec.point_key` — a SHA-256 over everything that
determines the outcome.  The simulator is fully deterministic per
(inputs, seed), so a hit can stand in for a run verbatim; schema bumps
change every key, which orphans (never corrupts) old entries.

Resolution of the root directory:

* ``REPRO_CACHE_DIR`` if set;
* otherwise ``$XDG_CACHE_HOME/repro`` or ``~/.cache/repro``.

``REPRO_CACHE=0`` (or ``off``/``false``/``no``) disables the cache
entirely — nothing is read or written.  Writes are atomic (temp file +
``os.replace``) so concurrent sweep processes can share one cache; a
corrupt or truncated entry is treated as a miss and rewritten.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Optional

from repro.runner.codec import SCHEMA_VERSION

_DISABLE_VALUES = {"0", "off", "false", "no"}

_log = logging.getLogger("repro.runner.cache")

#: Corrupt entries seen since the last :func:`pop_corrupt_count` call.
_corrupt_count = 0


def pop_corrupt_count() -> int:
    """Return and reset the number of corrupt entries seen recently.

    The runner drains this after each cache scan to fold the count into
    its :class:`~repro.runner.pool.RunnerCounters`.
    """
    global _corrupt_count
    n = _corrupt_count
    _corrupt_count = 0
    return n


def cache_enabled() -> bool:
    """Whether the on-disk cache is active (``REPRO_CACHE`` gate)."""
    return os.environ.get("REPRO_CACHE", "1").lower() not in _DISABLE_VALUES


def cache_root() -> Path:
    """Resolve the cache directory (without creating it)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


def _entry_path(key: str) -> Path:
    return cache_root() / f"v{SCHEMA_VERSION}" / key[:2] / f"{key}.json"


def cache_get(key: str) -> Optional[dict]:
    """Load the payload cached under *key*, or ``None`` on a miss.

    A *corrupt* entry (the file exists but is not valid JSON, e.g. a
    truncated write from a killed process) also counts as a miss — the
    result is recomputed and the entry rewritten — but unlike a plain
    miss it logs a warning naming the offending file, is counted
    separately (so silent cache rot is visible in ``--cache-stats``),
    and the file is *quarantined*: renamed to ``<key>.corrupt`` so the
    same rotten bytes are never re-parsed on every subsequent run and
    the evidence survives for inspection.  A second corrupt file under
    the same key overwrites the first quarantine (the newest evidence
    wins).
    """
    global _corrupt_count
    if not cache_enabled():
        return None
    path = _entry_path(key)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except ValueError as exc:
        _corrupt_count += 1
        quarantine = path.with_name(f"{key}.corrupt")
        try:
            os.replace(path, quarantine)
            where = f"quarantined to {quarantine}"
        except OSError as rename_exc:  # pragma: no cover - exotic fs
            where = f"could not quarantine: {rename_exc}"
        _log.warning(
            "corrupt cache entry %s (%s); treating as a miss, %s",
            path,
            exc,
            where,
        )
        return None
    except OSError:
        return None


def cache_put(key: str, payload: dict) -> bool:
    """Atomically store *payload* under *key* (no-op when disabled).

    Returns True when the entry actually landed on disk, so the runner
    can count stores honestly (a read-only or full cache directory must
    never fail a sweep, but it shouldn't be reported as a store either).
    """
    if not cache_enabled():
        return False
    path = _entry_path(key)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        return False
    return True
