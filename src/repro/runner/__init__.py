"""Parallel sweep runner with a persistent result cache.

Every experiment in the repo is a sweep of independent simulation points;
this package runs them — optionally fanned out over a process pool
(``--jobs N`` / ``REPRO_JOBS``) and always through a content-addressed
on-disk result cache (``REPRO_CACHE_DIR``, disable with ``REPRO_CACHE=0``)
— while guaranteeing results identical to a sequential uncached run.
See DESIGN.md section 9.
"""

from repro.runner.cache import cache_enabled, cache_root
from repro.runner.codec import (
    SCHEMA_VERSION,
    canonical_extras,
    decode_run,
    encode_run,
    point_fingerprint,
    point_key,
)
from repro.runner.point import SimPoint
from repro.runner.pool import (
    RunnerCounters,
    counters,
    point_label,
    resolve_jobs,
    run_grid,
    run_point,
    run_points,
    run_sweep,
)
from repro.runner.supervise import (
    ChaosPlan,
    PointFailure,
    PointTimeoutError,
    SuperviseConfig,
    SweepIncompleteError,
    SweepJournal,
    SweepResult,
    active_supervision,
    derive_timeout,
    resolve_supervision,
    supervising,
    watchdog,
)

__all__ = [
    "SCHEMA_VERSION",
    "ChaosPlan",
    "PointFailure",
    "PointTimeoutError",
    "RunnerCounters",
    "SimPoint",
    "SuperviseConfig",
    "SweepIncompleteError",
    "SweepJournal",
    "SweepResult",
    "active_supervision",
    "cache_enabled",
    "cache_root",
    "canonical_extras",
    "counters",
    "decode_run",
    "derive_timeout",
    "encode_run",
    "point_fingerprint",
    "point_key",
    "point_label",
    "resolve_jobs",
    "resolve_supervision",
    "run_grid",
    "run_point",
    "run_points",
    "run_sweep",
    "supervising",
    "watchdog",
]
