"""High-level entry points: simulate or predict one all-to-all.

These wrap strategy + simulator + metric computation into a single call and
are what the examples, experiments and most tests use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.model.alltoall import peak_time_cycles, percent_of_peak
from repro.model.machine import MachineParams
from repro.model.torus import TorusShape
from repro.net.config import NetworkConfig
from repro.net.faults import FaultPlan
from repro.net.faultsim import build_network
from repro.net.trace import SimulationResult
from repro.util.units import cycles_to_ms, cycles_to_us

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.check.config import CheckConfig
    from repro.obs.config import ObsConfig
    from repro.strategies.base import AllToAllStrategy


@dataclass(frozen=True)
class AllToAllRun:
    """Outcome of one simulated all-to-all."""

    strategy: str
    shape: TorusShape
    msg_bytes: int
    params: MachineParams
    result: SimulationResult
    predicted_cycles: float

    @property
    def time_cycles(self) -> float:
        """Measured completion time (last final delivery), cycles."""
        return self.result.time_cycles

    @property
    def time_us(self) -> float:
        """Measured completion time, microseconds."""
        return cycles_to_us(self.time_cycles)

    @property
    def time_ms(self) -> float:
        """Measured completion time, milliseconds."""
        return cycles_to_ms(self.time_cycles)

    @property
    def peak_cycles(self) -> float:
        """Eq. 2 peak time for this shape and message size."""
        return peak_time_cycles(self.shape, self.msg_bytes, self.params)

    @property
    def percent_of_peak(self) -> float:
        """Percent of the Eq. 2 peak achieved (the tables' metric)."""
        return percent_of_peak(
            self.shape, self.msg_bytes, self.time_cycles, self.params
        )

    @property
    def per_node_bytes_per_cycle(self) -> float:
        """Per-node payload bandwidth sourced during the run."""
        return self.shape.nnodes * self.msg_bytes / self.time_cycles

    @property
    def per_node_mb_per_s(self) -> float:
        """Per-node payload bandwidth in MB/s (Figure 3's unit)."""
        from repro.util.units import CLOCK_HZ

        return self.per_node_bytes_per_cycle * CLOCK_HZ / 1e6


def simulate_alltoall(
    strategy: "AllToAllStrategy",
    shape: TorusShape,
    msg_bytes: int,
    params: Optional[MachineParams] = None,
    config: Optional[NetworkConfig] = None,
    seed: int = 0,
    faults: Optional[FaultPlan] = None,
    obs: Optional["ObsConfig"] = None,
    check: Optional["CheckConfig"] = None,
) -> AllToAllRun:
    """Simulate one all-to-all of *msg_bytes* per rank pair under
    *strategy* on *shape* and return the measured run.

    ``faults`` injects hardware faults: the strategy plans around dead
    nodes and the network routes around dead links, retransmits over lossy
    wires, and honors degraded links and outages.  ``None`` (or an empty
    plan) takes the pristine fast path.

    ``obs`` opts into observability: an enabled
    :class:`~repro.obs.config.ObsConfig` runs the instrumented network
    and attaches the trace/metrics payload as ``result.extras["obs"]``
    without changing any measured quantity.

    ``check`` opts into runtime verification: an enabled
    :class:`~repro.check.config.CheckConfig` runs the oracle-checked
    network, which makes identical decisions but raises
    :class:`~repro.check.oracle.InvariantError` the moment an invariant
    (conservation, exactly-once, credits, progress, phases) breaks."""
    params = params or MachineParams.bluegene_l()
    program = strategy.build_program(
        shape, msg_bytes, params, seed, faults=faults
    )
    net = build_network(shape, params, config, faults, obs, check)
    if strategy.fifo_groups > 1:
        net.set_fifo_groups(strategy.fifo_groups)
    result = net.run(program)
    return AllToAllRun(
        strategy=strategy.name,
        shape=shape,
        msg_bytes=msg_bytes,
        params=params,
        result=result,
        predicted_cycles=strategy.predict_cycles(shape, msg_bytes, params),
    )


def predict_alltoall(
    strategy: "AllToAllStrategy",
    shape: TorusShape,
    msg_bytes: int,
    params: Optional[MachineParams] = None,
) -> float:
    """Analytic prediction (cycles) without running the simulator."""
    params = params or MachineParams.bluegene_l()
    return strategy.predict_cycles(shape, msg_bytes, params)
