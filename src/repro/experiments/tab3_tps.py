"""Table 3 — Two Phase Schedule percent of peak, long messages.

Paper: TPS reaches 96.1-99.8 % of peak on every partition from 1,024 to
20,480 nodes; only the 512-node midplane is lower (77.2 %) because the
CPU cannot drive injection and software forwarding at full rate there.
Qualitative checks: (a) TPS beats AR on every asymmetric partition,
(b) the 512-node symmetric midplane is TPS's *worst* case, (c) the chosen
linear dimension matches the paper's column.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import (
    ExperimentResult,
    LARGE_MESSAGE_BYTES,
    default_params,
    resolve_scale,
    shape_for_scale,
)
from repro.experiments.paperdata import AXIS_NAMES, TABLE3_TPS
from repro.model.torus import TorusShape
from repro.runner import SimPoint, run_points
from repro.strategies import ARDirect, TwoPhaseSchedule
from repro.strategies.tps import choose_linear_axis

EXP_ID = "tab3_tps"
TITLE = "Table 3: TPS % of peak (long messages) + phase-1 dimension"

_TINY_SUBSET = ["8x8x8", "16x8x8", "8x8x16"]


def run(
    scale: Optional[str] = None, seed: int = 0, jobs: Optional[int] = None
) -> ExperimentResult:
    scale = resolve_scale(scale)
    params = default_params()
    m = LARGE_MESSAGE_BYTES[scale]
    result = ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        columns=[
            "partition",
            "simulated",
            "tier",
            "TPS % of peak",
            "AR % of peak",
            "paper TPS %",
            "phase1 dim",
            "paper dim",
        ],
    )
    partitions = _TINY_SUBSET if scale == "tiny" else list(TABLE3_TPS)
    # The linear-dimension *rule* is evaluated on the paper's shape
    # (scaling preserves ratios, hence the choice), and the scaled run
    # forces the same axis.
    entries = []
    for lbl in partitions:
        paper_shape = TorusShape.parse(lbl)
        shape, tier = shape_for_scale(paper_shape, scale)
        entries.append((lbl, shape, tier, choose_linear_axis(paper_shape)))
    runs = run_points(
        [
            SimPoint(strat, shape, m, params, seed=seed)
            for _, shape, _, axis in entries
            for strat in (TwoPhaseSchedule(linear_axis=axis), ARDirect())
        ],
        jobs=jobs,
    )
    for i, (lbl, shape, tier, axis) in enumerate(entries):
        run_tps, run_ar = runs[2 * i], runs[2 * i + 1]
        paper_pct, paper_dim = TABLE3_TPS[lbl]
        result.rows.append(
            {
                "partition": lbl,
                "simulated": shape.label,
                "tier": tier,
                "TPS % of peak": run_tps.percent_of_peak,
                "AR % of peak": run_ar.percent_of_peak,
                "paper TPS %": paper_pct,
                "phase1 dim": AXIS_NAMES[axis],
                "paper dim": paper_dim,
            }
        )
    result.notes.append(
        "fully-symmetric shapes leave the linear dimension arbitrary; the "
        "rule pins Z where the paper's Table 3 lists X for 16x16x16."
    )
    return result
