"""Table 1 — AR percent of peak on symmetric partitions, large messages.

Paper: the direct AR strategy reaches 97.7-99.7 % of the Eq. 2 peak on
symmetric lines, planes and cubes, because randomization plus adaptive
routing keep every link equally loaded.  The qualitative check is that
every symmetric partition lands well above the asymmetric ones of
Table 2 and that no partition stands out.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import (
    ExperimentResult,
    LARGE_MESSAGE_BYTES,
    default_params,
    resolve_scale,
    shape_for_scale,
)
from repro.experiments.paperdata import TABLE1_AR_SYMMETRIC
from repro.model.torus import TorusShape
from repro.runner import SimPoint, run_points
from repro.strategies import ARDirect

EXP_ID = "tab1_symmetric"
TITLE = "Table 1: AR % of peak on symmetric partitions (large messages)"


def run(
    scale: Optional[str] = None, seed: int = 0, jobs: Optional[int] = None
) -> ExperimentResult:
    scale = resolve_scale(scale)
    params = default_params()
    m = LARGE_MESSAGE_BYTES[scale]
    result = ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        columns=["partition", "simulated", "tier", "AR % of peak", "paper %"],
    )
    partitions = list(TABLE1_AR_SYMMETRIC)
    if scale == "tiny":
        partitions = ["8", "8x8", "8x8x8"]
    shapes = [
        (lbl, *shape_for_scale(TorusShape.parse(lbl), scale))
        for lbl in partitions
    ]
    runs = run_points(
        [
            SimPoint(ARDirect(), shape, m, params, seed=seed)
            for _, shape, _ in shapes
        ],
        jobs=jobs,
    )
    for (lbl, shape, tier), run_ in zip(shapes, runs):
        result.rows.append(
            {
                "partition": lbl,
                "simulated": shape.label,
                "tier": tier,
                "AR % of peak": run_.percent_of_peak,
                "paper %": TABLE1_AR_SYMMETRIC[lbl],
            }
        )
    result.notes.append(
        f"large-message size m={m} B; simulator symmetric baseline runs "
        "below the paper's 99% absolute (packet-granularity credits, see "
        "DESIGN.md 5) - the check is uniformity across symmetric shapes."
    )
    return result
