"""Shared infrastructure for the per-table/figure experiment drivers.

Every driver is a function ``run(scale="small", seed=0) -> ExperimentResult``.
The *scale* controls fidelity (see DESIGN.md section 5):

* ``"tiny"``  — CI-sized: partitions <= ~128 nodes, shortest sweeps.
* ``"small"`` — default benchmark size: partitions <= ~512 nodes; the
  paper's larger partitions run shape-scaled (Tier B).
* ``"full"``  — partitions up to ~2048 nodes simulated directly; beyond
  that still Tier B + the analytic model (Tier C).

Tiers are reported per row: ``A`` full-scale DES, ``B`` shape-scaled DES,
``C`` analytic model only.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.report import render_table
from repro.model.machine import MachineParams
from repro.model.torus import TorusShape
from repro.util.validation import require

SCALES = ("tiny", "small", "full")

#: Largest partition each scale simulates directly (Tier A).
MAX_DES_NODES = {"tiny": 128, "small": 1024, "full": 2304}

#: "Large message" size used for the steady-state tables at each scale.
LARGE_MESSAGE_BYTES = {"tiny": 464, "small": 464, "full": 976}


def resolve_scale(scale: Optional[str]) -> str:
    """Resolve a scale name, honoring the REPRO_SCALE env override."""
    s = scale or os.environ.get("REPRO_SCALE", "small")
    require(s in SCALES, f"scale must be one of {SCALES}, got {s!r}")
    return s


def scale_shape(shape: TorusShape, max_nodes: int) -> tuple[TorusShape, int]:
    """Shape-preserving reduction: halve every dimension until the node
    count fits *max_nodes* (dimensions floor at 2).  Returns the reduced
    shape and the divisor applied.

    When every dimension has bottomed out at 2 and the node count still
    exceeds *max_nodes*, the reduction cannot go further; a warning is
    emitted instead of silently returning an over-budget shape."""
    divisor = 1
    dims = list(shape.dims)
    while True:
        p = 1
        for d in dims:
            p *= d
        if p <= max_nodes:
            break
        if all(d <= 2 for d in dims):
            warnings.warn(
                f"scale_shape: {shape.label} bottomed out at "
                f"{'x'.join(str(d) for d in dims)} ({p} nodes), which still "
                f"exceeds max_nodes={max_nodes}",
                stacklevel=2,
            )
            break
        dims = [max(2, d // 2) for d in dims]
        divisor *= 2
    return TorusShape(tuple(dims), shape.torus), divisor


def shape_for_scale(
    paper_shape: TorusShape, scale: str
) -> tuple[TorusShape, str]:
    """The shape actually simulated at *scale* and its tier label."""
    limit = MAX_DES_NODES[scale]
    if paper_shape.nnodes <= limit:
        return paper_shape, "A"
    reduced, _ = scale_shape(paper_shape, limit)
    return reduced, "B"


@dataclass
class ExperimentResult:
    """Structured output of one experiment driver."""

    exp_id: str
    title: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: Run provenance (:func:`repro.obs.provenance.provenance_record`),
    #: attached by :func:`repro.experiments.registry.run_experiment`.
    #: ``None`` when a driver is called directly.
    provenance: Optional[dict] = None
    #: Structured failure records
    #: (:meth:`repro.runner.supervise.PointFailure.to_dict`) for points
    #: this experiment could not complete — empty for a full result.
    #: Attached by :func:`repro.experiments.registry.run_experiment`.
    failures: list = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """Whether every simulation point behind this result completed."""
        return not self.failures

    def render(self) -> str:
        """ASCII rendering (what the benchmarks and the CLI print)."""
        return render_table(
            f"[{self.exp_id}] {self.title}", self.columns, self.rows, self.notes
        )

    def column(self, name: str) -> list:
        """All values of one column, in row order."""
        return [r.get(name) for r in self.rows]

    def row_by(self, key_col: str, key: object) -> dict:
        """First row whose *key_col* equals *key*."""
        for r in self.rows:
            if r.get(key_col) == key:
                return r
        available = [r.get(key_col) for r in self.rows]
        raise KeyError(
            f"no row with {key_col}={key!r}; available values: {available!r}"
        )


def default_params() -> MachineParams:
    """The paper's machine parameters."""
    return MachineParams.bluegene_l()
