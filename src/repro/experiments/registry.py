"""Registry mapping experiment ids to their drivers.

Each driver is ``run(scale=None, seed=0, jobs=None) -> ExperimentResult``;
the benchmark harness, the CLI and EXPERIMENTS.md all key off these ids.
``jobs`` fans the driver's independent simulation points over a process
pool (see :mod:`repro.runner`); results are identical for any job count.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.experiments import (
    ablations,
    resilience,
    scaling,
    fig1_ar_midplane,
    fig2_ar_4096,
    fig3_throughput,
    fig4_direct,
    fig5_vmesh_pred,
    fig6_compare_512,
    fig7_compare_4096,
    tab1_symmetric,
    tab2_asymmetric,
    tab3_tps,
    tab4_latency,
)
from repro.experiments.common import ExperimentResult

Driver = Callable[..., ExperimentResult]

#: Paper table/figure reproductions, in paper order.
EXPERIMENTS: dict[str, Driver] = {
    "fig1_ar_midplane": fig1_ar_midplane.run,
    "fig2_ar_4096": fig2_ar_4096.run,
    "tab1_symmetric": tab1_symmetric.run,
    "fig3_throughput": fig3_throughput.run,
    "tab2_asymmetric": tab2_asymmetric.run,
    "fig4_direct": fig4_direct.run,
    "tab3_tps": tab3_tps.run,
    "tab4_latency": tab4_latency.run,
    "fig5_vmesh_pred": fig5_vmesh_pred.run,
    "fig6_compare_512": fig6_compare_512.run,
    "fig7_compare_4096": fig7_compare_4096.run,
}

#: Design-choice ablations and extensions (not paper artifacts).
ABLATIONS: dict[str, Driver] = {
    "scaling_study": scaling.run,
    "resilience_sweep": resilience.run,
    "ablate_tps_axis": ablations.tps_linear_axis,
    "ablate_tps_pipelining": ablations.tps_pipelining,
    "ablate_dr_axis": ablations.dr_longest_axis,
    "ablate_vmesh_factors": ablations.vmesh_factorization,
    "ablate_credit_overhead": ablations.credit_overhead,
}

ALL: dict[str, Driver] = {**EXPERIMENTS, **ABLATIONS}


def get_driver(exp_id: str) -> Driver:
    """Look up a driver by id."""
    try:
        return ALL[exp_id]
    except KeyError:
        known = ", ".join(sorted(ALL))
        raise KeyError(f"unknown experiment {exp_id!r}; known: {known}") from None


def run_experiment(
    exp_id: str,
    scale: Optional[str] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Run one experiment by id."""
    return get_driver(exp_id)(scale=scale, seed=seed, jobs=jobs)
