"""Registry mapping experiment ids to their drivers.

Each driver is ``run(scale=None, seed=0, jobs=None) -> ExperimentResult``;
the benchmark harness, the CLI and EXPERIMENTS.md all key off these ids.
``jobs`` fans the driver's independent simulation points over a process
pool (see :mod:`repro.runner`); results are identical for any job count.
"""

from __future__ import annotations

import logging
import time
from typing import Callable, Optional

from repro.experiments import (
    ablations,
    resilience,
    scaling,
    fig1_ar_midplane,
    fig2_ar_4096,
    fig3_throughput,
    fig4_direct,
    fig5_vmesh_pred,
    fig6_compare_512,
    fig7_compare_4096,
    tab1_symmetric,
    tab2_asymmetric,
    tab3_tps,
    tab4_latency,
)
from repro.experiments.common import ExperimentResult

Driver = Callable[..., ExperimentResult]

#: Paper table/figure reproductions, in paper order.
EXPERIMENTS: dict[str, Driver] = {
    "fig1_ar_midplane": fig1_ar_midplane.run,
    "fig2_ar_4096": fig2_ar_4096.run,
    "tab1_symmetric": tab1_symmetric.run,
    "fig3_throughput": fig3_throughput.run,
    "tab2_asymmetric": tab2_asymmetric.run,
    "fig4_direct": fig4_direct.run,
    "tab3_tps": tab3_tps.run,
    "tab4_latency": tab4_latency.run,
    "fig5_vmesh_pred": fig5_vmesh_pred.run,
    "fig6_compare_512": fig6_compare_512.run,
    "fig7_compare_4096": fig7_compare_4096.run,
}

#: Design-choice ablations and extensions (not paper artifacts).
ABLATIONS: dict[str, Driver] = {
    "scaling_study": scaling.run,
    "resilience_sweep": resilience.run,
    "ablate_tps_axis": ablations.tps_linear_axis,
    "ablate_tps_pipelining": ablations.tps_pipelining,
    "ablate_dr_axis": ablations.dr_longest_axis,
    "ablate_vmesh_factors": ablations.vmesh_factorization,
    "ablate_credit_overhead": ablations.credit_overhead,
}

ALL: dict[str, Driver] = {**EXPERIMENTS, **ABLATIONS}


def get_driver(exp_id: str) -> Driver:
    """Look up a driver by id."""
    try:
        return ALL[exp_id]
    except KeyError:
        known = ", ".join(sorted(ALL))
        raise KeyError(f"unknown experiment {exp_id!r}; known: {known}") from None


def run_experiment(
    exp_id: str,
    scale: Optional[str] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
    report_dir: Optional[str] = None,
    history: Optional[str] = None,
) -> ExperimentResult:
    """Run one experiment by id, attaching a provenance record.

    The record (see :mod:`repro.obs.provenance`) covers exactly the
    simulation points this call executed: runner counters are snapshotted
    before and after the driver, and the delta — point keys, points
    simulated vs. cached, simulated cycles/events, supervision activity
    (retries, timeouts, quarantines) — plus wall time, seed and git state
    goes into ``result.provenance``.  Point failures recorded by the
    supervision layer during this call land on ``result.failures`` (and
    an ``INCOMPLETE`` note on the rendered table), so a gracefully
    degraded sweep can never masquerade as a complete reproduction.

    With *report_dir*, the experiment runs with link-stats collection
    active and an HTML report + JSON sidecar covering its points lands
    in that directory (see :mod:`repro.obs.report`; the CLI's
    ``--report`` instead builds one comparative report across every
    experiment of the invocation).

    With *history* (a directory or ``.jsonl`` path), the finished
    result is appended to the cross-run history store
    (:mod:`repro.obs.history`): the deterministic payload — columns,
    a digest of the rows, per-column metric means — is digested for
    regression diffing, and non-deterministic context (wall time, git,
    cache split) rides alongside as metadata.  Identical results from
    any job count append identical payload digests.
    """
    import contextlib

    from repro.experiments.common import resolve_scale
    from repro.obs.provenance import provenance_record
    from repro.runner.codec import SCHEMA_VERSION
    from repro.runner.pool import counters

    log = logging.getLogger("repro.experiments")
    driver = get_driver(exp_id)
    if report_dir is not None:
        from repro.obs.config import ObsConfig
        from repro.obs.context import observe

        obs_ctx = observe(ObsConfig(metrics=True, link_stats=True))
    else:
        obs_ctx = contextlib.nullcontext([])
    before = counters.snapshot()
    log.info("running %s (scale=%s, seed=%d)", exp_id, scale, seed)
    t0 = time.perf_counter()
    with obs_ctx as report_entries:
        result = driver(scale=scale, seed=seed, jobs=jobs)
    wall = time.perf_counter() - t0
    after = counters.snapshot()
    new_keys = after["point_keys"][len(before["point_keys"]):]
    simulated = after["simulated"] - before["simulated"]
    new_failures = after["failures"][len(before["failures"]):]
    result.failures = new_failures
    result.provenance = provenance_record(
        schema_version=SCHEMA_VERSION,
        seed=seed,
        scale=resolve_scale(scale),
        point_keys=new_keys,
        wall_s=wall,
        simulated_cycles=after["sim_cycles"] - before["sim_cycles"],
        simulated_events=after["sim_events"] - before["sim_events"],
        points_simulated=simulated,
        points_cached=len(new_keys) - simulated,
        retries=after["retries"] - before["retries"],
        timeouts=after["timeouts"] - before["timeouts"],
        quarantined=after["quarantined"] - before["quarantined"],
        points_failed=len(new_failures),
    )
    if new_failures:
        kinds: dict[str, int] = {}
        for f in new_failures:
            kinds[f.get("kind", "error")] = kinds.get(f.get("kind", "error"), 0) + 1
        summary = ", ".join(f"{n} {k}" for k, n in sorted(kinds.items()))
        result.notes.append(
            f"INCOMPLETE: {len(new_failures)} point(s) failed ({summary}); "
            "rows derived from missing points are absent or partial"
        )
        log.warning(
            "%s incomplete: %d point(s) failed (%s)",
            exp_id,
            len(new_failures),
            summary,
        )
    log.info(
        "%s done in %.2fs: %d point(s), %d simulated, %d from cache",
        exp_id,
        wall,
        len(new_keys),
        simulated,
        len(new_keys) - simulated,
    )
    if history is not None:
        from repro.obs.history import RunHistory

        store = RunHistory(history)
        record = store.append_experiment(result)
        log.info(
            "history: %s appended run %s (payload digest %s)",
            store.path,
            record["id"],
            record["payload_digest"][:12],
        )
    if report_dir is not None:
        from repro.obs.report import write_report

        html_path, json_path = write_report(
            report_dir,
            report_entries,
            [result],
            title=f"[{exp_id}] {result.title}",
            history=history,
        )
        log.info("report: %s + %s", html_path, json_path)
    return result
