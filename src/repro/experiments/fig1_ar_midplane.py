"""Figure 1 — AR throughput vs message size on the 8x8x8 midplane, with
the Eq. 3 prediction and the zero-startup peak.

Paper: measured AR tracks the Eq. 3 model closely and approaches peak
rapidly — over 90 % by one full packet of payload.  Qualitative checks:
monotone rise, model tracks measurement, large-m value near the
steady-state plateau.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.sweep import message_size_sweep
from repro.experiments.common import (
    ExperimentResult,
    default_params,
    resolve_scale,
)
from repro.model.alltoall import peak_time_cycles, simple_direct_time_cycles
from repro.model.torus import TorusShape
from repro.strategies import ARDirect
from repro.util.units import cycles_to_us

EXP_ID = "fig1_ar_midplane"
TITLE = "Figure 1: AR measured vs Eq.3 prediction vs peak on 8x8x8"

_SIZES = {
    "tiny": [8, 64, 208, 464],
    "small": [8, 64, 208, 464, 976],
    "full": [8, 64, 208, 464, 976, 2000, 4048],
}
_SHAPES = {"tiny": "4x4x4", "small": "8x8x8", "full": "8x8x8"}


def run(
    scale: Optional[str] = None, seed: int = 0, jobs: Optional[int] = None
) -> ExperimentResult:
    scale = resolve_scale(scale)
    params = default_params()
    shape = TorusShape.parse(_SHAPES[scale])
    sizes = _SIZES[scale]
    result = ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        columns=[
            "m bytes",
            "measured us",
            "Eq.3 us",
            "peak us",
            "% of peak",
            "per-node MB/s",
        ],
    )
    points = message_size_sweep(
        ARDirect(), shape, sizes, params, seed=seed, jobs=jobs
    )
    for pt in points:
        m = pt.m_bytes
        result.rows.append(
            {
                "m bytes": m,
                "measured us": pt.time_us,
                "Eq.3 us": cycles_to_us(
                    simple_direct_time_cycles(shape, m, params)
                ),
                "peak us": cycles_to_us(peak_time_cycles(shape, m, params)),
                "% of peak": pt.percent_of_peak,
                "per-node MB/s": pt.per_node_mb_per_s,
            }
        )
    result.notes.append(f"partition simulated: {shape.label} ({scale})")
    return result
