"""Experiment drivers regenerating every table and figure of the paper.

See :mod:`repro.experiments.registry` for the id -> driver map and
EXPERIMENTS.md for the paper-vs-measured record.
"""
