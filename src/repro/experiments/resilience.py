"""Resilience sweep — delivered bandwidth vs injected fault rate.

Not a paper artifact: the paper assumes a pristine torus.  This extension
measures how gracefully the fault-tolerant stack degrades as hardware
faults accumulate: for each fault level, a connected random
:class:`~repro.net.faults.FaultPlan` (dead links + packet loss) is
injected, the all-to-all runs to completion through the reliability layer,
and the delivered per-node bandwidth is compared against the zero-fault
baseline.  Related work (Oltchik & Schwartz on partitioned-network
contention) predicts super-linear bandwidth loss as removed capacity
concentrates contention on the surviving links; the retransmission
overhead adds on top of that.

The sweep also writes a machine-readable degradation curve to
``benchmarks/benchmark_results/resilience_sweep.json``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from repro.experiments.common import (
    ExperimentResult,
    default_params,
    resolve_scale,
)
from repro.model.torus import TorusShape
from repro.net.faults import FaultPlan
from repro.runner import SimPoint, run_points
from repro.strategies.selector import select_strategy

EXP_ID = "resilience_sweep"
TITLE = "Resilience: delivered bandwidth vs fault rate (extension)"

#: (dead-link fraction, per-hop loss probability) levels swept, mildest
#: first; the zero-fault row is the baseline the curve normalizes to.
FAULT_LEVELS = [
    (0.00, 0.00),
    (0.02, 0.01),
    (0.05, 0.01),
    (0.10, 0.01),
]

#: Simulated shape and message size per scale.
SWEEP_SETUP = {
    "tiny": ("4x4x4", 64),
    "small": ("4x4x4", 464),
    "full": ("8x8x8", 464),
}


def _results_dir() -> Path:
    """``benchmarks/benchmark_results`` in the repo checkout (falls back to
    the working directory when the package is installed elsewhere)."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        cand = parent / "benchmarks"
        if cand.is_dir():
            return cand / "benchmark_results"
    return Path.cwd() / "benchmark_results"


def run(
    scale: Optional[str] = None, seed: int = 0, jobs: Optional[int] = None
) -> ExperimentResult:
    scale = resolve_scale(scale)
    params = default_params()
    shape_label, m = SWEEP_SETUP[scale]
    shape = TorusShape.parse(shape_label)
    result = ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        columns=[
            "dead links %",
            "loss %",
            "links alive",
            "strategy",
            "time (cycles)",
            "MB/s per node",
            "% of baseline",
            "lost",
            "retx",
            "rerouted hops",
        ],
    )
    # Every fault level's plan and strategy are computable upfront, so the
    # whole sweep fans out as independent points.
    levels = []
    for dead_frac, loss_p in FAULT_LEVELS:
        if dead_frac == 0.0 and loss_p == 0.0:
            plan = None
            links_alive = shape.total_links
        else:
            plan = FaultPlan.random(
                shape,
                seed=seed + 1,
                dead_link_fraction=dead_frac,
                loss_prob=loss_p,
                # Recover losses on the scale of this workload's latency,
                # not the default (production-sized) timeout: duplicates
                # from the occasional premature retransmission are deduped,
                # while a timeout far above the completion time would make
                # the curve measure timer tails instead of bandwidth.
                retx_timeout_cycles=10_000.0,
                retx_backoff=1.5,
            )
            links_alive = shape.total_links - 2 * len(plan.dead_links)
        strategy = select_strategy(shape, m, params, faults=plan)
        levels.append((dead_frac, loss_p, plan, links_alive, strategy))
    runs = run_points(
        [
            SimPoint(strategy, shape, m, params, seed=seed, faults=plan)
            for _, _, plan, _, strategy in levels
        ],
        jobs=jobs,
    )
    curve = []
    baseline_bw = None
    for (dead_frac, loss_p, plan, links_alive, strategy), run_ in zip(
        levels, runs
    ):
        bw = run_.per_node_mb_per_s
        if baseline_bw is None:
            baseline_bw = bw
        pct = 100.0 * bw / baseline_bw
        result.rows.append(
            {
                "dead links %": 100.0 * dead_frac,
                "loss %": 100.0 * loss_p,
                "links alive": links_alive,
                "strategy": strategy.name,
                "time (cycles)": run_.time_cycles,
                "MB/s per node": bw,
                "% of baseline": pct,
                "lost": run_.result.lost_packets,
                "retx": run_.result.retransmitted_packets,
                "rerouted hops": run_.result.rerouted_hops,
            }
        )
        curve.append(
            {
                "dead_link_fraction": dead_frac,
                "loss_prob": loss_p,
                "links_alive": links_alive,
                "strategy": strategy.name,
                "time_cycles": run_.time_cycles,
                "mb_per_s_per_node": bw,
                "percent_of_baseline": pct,
                "lost_packets": run_.result.lost_packets,
                "retransmitted_packets": run_.result.retransmitted_packets,
                "duplicate_packets": run_.result.duplicate_packets,
                "rerouted_hops": run_.result.rerouted_hops,
            }
        )
    result.notes.append(
        f"shape {shape.label}, m={m} B, seed={seed}; each fault level is a "
        "connected random plan (dead wires kill both directions); all runs "
        "complete with exactly-once delivery via retransmission + dedup."
    )
    out_dir = _results_dir()
    try:
        out_dir.mkdir(parents=True, exist_ok=True)
        out_path = out_dir / f"{EXP_ID}.json"
        out_path.write_text(
            json.dumps(
                {
                    "exp_id": EXP_ID,
                    "shape": shape.label,
                    "msg_bytes": m,
                    "scale": scale,
                    "seed": seed,
                    "curve": curve,
                },
                indent=2,
            )
            + "\n"
        )
        result.notes.append(f"degradation curve written to {out_path}")
    except OSError as exc:  # pragma: no cover - read-only install
        result.notes.append(f"could not write degradation curve: {exc}")
    return result
