"""Figure 6 — AR vs the 32x16 virtual mesh on 512 nodes, short messages.

Paper: for very short messages VMesh is ~2x faster than AR; for large
messages its doubled network traffic makes it ~2x slower; the crossover
lands between 32 and 64 bytes.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentResult, default_params, resolve_scale
from repro.model.alltoall import balanced_vmesh_factors
from repro.model.torus import TorusShape
from repro.runner import SimPoint, run_points
from repro.strategies import ARDirect, VirtualMesh2D

EXP_ID = "fig6_compare_512"
TITLE = "Figure 6: AR vs VMesh, short messages, 512-node midplane"

_SIZES = {
    "tiny": [8, 32, 64, 128],
    "small": [1, 8, 16, 32, 64, 128, 256],
    "full": [1, 8, 16, 32, 64, 128, 256, 512],
}
_SHAPES = {"tiny": "4x4x4", "small": "8x8x8", "full": "8x8x8"}


def run(
    scale: Optional[str] = None, seed: int = 0, jobs: Optional[int] = None
) -> ExperimentResult:
    scale = resolve_scale(scale)
    params = default_params()
    shape = TorusShape.parse(_SHAPES[scale])
    pvx, pvy = balanced_vmesh_factors(shape.nnodes)
    vmesh = VirtualMesh2D(pvx=pvx, pvy=pvy)
    result = ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        columns=["m bytes", "AR us", "VMesh us", "VMesh speedup"],
    )
    sizes = _SIZES[scale]
    runs = run_points(
        [
            SimPoint(strat, shape, m, params, seed=seed)
            for m in sizes
            for strat in (ARDirect(), vmesh)
        ],
        jobs=jobs,
    )
    for i, m in enumerate(sizes):
        ar, vm = runs[2 * i], runs[2 * i + 1]
        result.rows.append(
            {
                "m bytes": m,
                "AR us": ar.time_us,
                "VMesh us": vm.time_us,
                "VMesh speedup": ar.time_cycles / vm.time_cycles,
            }
        )
    result.notes.append(
        f"virtual mesh {pvx}x{pvy} on {shape.label}; paper: ~2x speedup at "
        "8 B, crossover between 32 and 64 B."
    )
    return result
