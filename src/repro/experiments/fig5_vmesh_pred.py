"""Figure 5 — the Eq. 4 prediction for the 32x16 virtual mesh on a
512-node midplane, across short message sizes.

Pure model (Tier C at every scale): the figure in the paper plots the
predicted all-to-all time with alpha = 1.7 us, beta = 6.48 ns/B and
gamma = 1.6 ns/B, which is exactly ``vmesh_time_cycles``.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentResult, default_params, resolve_scale
from repro.model.alltoall import (
    peak_time_cycles,
    simple_direct_time_cycles,
    vmesh_time_cycles,
)
from repro.model.torus import TorusShape
from repro.util.units import cycles_to_us

EXP_ID = "fig5_vmesh_pred"
TITLE = "Figure 5: Eq.4 VMesh prediction, 32x16 mesh on 8x8x8"

_SIZES = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512]


def run(
    scale: Optional[str] = None, seed: int = 0, jobs: Optional[int] = None
) -> ExperimentResult:
    resolve_scale(scale)  # validates; the model is scale-independent
    del jobs  # pure model, nothing to parallelize
    params = default_params()
    shape = TorusShape.parse("8x8x8")
    result = ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        columns=["m bytes", "VMesh pred us", "Eq.3 direct us", "peak us"],
    )
    for m in _SIZES:
        result.rows.append(
            {
                "m bytes": m,
                "VMesh pred us": cycles_to_us(
                    vmesh_time_cycles(shape, m, params, 32, 16)
                ),
                "Eq.3 direct us": cycles_to_us(
                    simple_direct_time_cycles(shape, m, params)
                ),
                "peak us": cycles_to_us(peak_time_cycles(shape, m, params)),
            }
        )
    result.notes.append(
        "prediction uses alpha=1.7us, beta=6.48ns/B, gamma=1.6ns/B "
        "(the paper's Figure 5 parameters)."
    )
    return result
