"""Table 2 — AR percent of peak on asymmetric partitions, large messages.

Paper: adaptive routing loses 10-30 points of peak on asymmetric tori and
meshes because slack capacity on the short dimensions lets packets pile
into VC buffers whose heads wait for the saturated long-dimension links
(Section 3.2).  Qualitative checks: every asymmetric partition runs below
the symmetric baseline, and the strongly asymmetric 3-D shapes (x4 aspect)
lose more than the mildly asymmetric (x2) ones.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import (
    ExperimentResult,
    LARGE_MESSAGE_BYTES,
    default_params,
    resolve_scale,
    shape_for_scale,
)
from repro.experiments.paperdata import TABLE2_AR_ASYMMETRIC
from repro.model.contention import ar_efficiency_estimate
from repro.model.torus import TorusShape
from repro.runner import SimPoint, run_points
from repro.strategies import ARDirect

EXP_ID = "tab2_asymmetric"
TITLE = "Table 2: AR % of peak on asymmetric partitions (large messages)"

_TINY_SUBSET = ["8x2M", "8x16", "8x8x2M", "8x8x16"]


def run(
    scale: Optional[str] = None, seed: int = 0, jobs: Optional[int] = None
) -> ExperimentResult:
    scale = resolve_scale(scale)
    params = default_params()
    m = LARGE_MESSAGE_BYTES[scale]
    result = ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        columns=[
            "partition",
            "simulated",
            "tier",
            "AR % of peak",
            "paper %",
            "model est %",
        ],
    )
    partitions = _TINY_SUBSET if scale == "tiny" else list(TABLE2_AR_ASYMMETRIC)
    shapes = [
        (lbl, *shape_for_scale(TorusShape.parse(lbl), scale))
        for lbl in partitions
    ]
    runs = run_points(
        [
            SimPoint(ARDirect(), shape, m, params, seed=seed)
            for _, shape, _ in shapes
        ],
        jobs=jobs,
    )
    for (lbl, shape, tier), run_ in zip(shapes, runs):
        paper_shape = TorusShape.parse(lbl)
        result.rows.append(
            {
                "partition": lbl,
                "simulated": shape.label,
                "tier": tier,
                "AR % of peak": run_.percent_of_peak,
                "paper %": TABLE2_AR_ASYMMETRIC[lbl],
                "model est %": 100.0 * ar_efficiency_estimate(paper_shape),
            }
        )
    result.notes.append(
        "'model est' is the explicitly-empirical Table-2 calibration of "
        "repro.model.contention (Tier C); Tier B rows simulate the same "
        "aspect ratio at reduced scale."
    )
    return result
