"""Command-line entry point: ``bgl-alltoall`` / ``repro-experiments``.

Run paper experiments and ablations from the shell::

    bgl-alltoall list
    bgl-alltoall run tab3_tps --scale small
    bgl-alltoall run all --scale tiny --jobs 4
    bgl-alltoall run fig1_ar_midplane --scale tiny \\
        --trace trace.json --metrics metrics.json

``--jobs N`` fans independent simulation points over N worker processes
(default: the ``REPRO_JOBS`` env var, else 1); the rendered tables are
byte-identical for any job count.  Results are cached on disk under
``REPRO_CACHE_DIR`` (default ``~/.cache/repro``); ``--no-cache`` or
``REPRO_CACHE=0`` disables the cache.

Observability (DESIGN.md section 10): ``--trace PATH`` records packet
lifecycle events for every simulated point — a ``.json`` path gets a
Chrome trace-event file you can drop into https://ui.perfetto.dev, any
other extension gets JSONL.  ``--metrics PATH`` writes the per-point
metrics (per-axis link-utilization time series, latency histograms,
queue/FIFO gauges) plus a cross-point aggregate as JSON.  ``--report
DIR`` writes a self-contained HTML run report + JSON sidecar (per-axis
percent-of-peak utilization with heatmaps, phase bandwidth, congestion
hot-spots, analytic-model diff, provenance) covering every point of the
invocation — see DESIGN.md section 14.  Observed runs bypass the result
cache so they always simulate.  ``--cache-stats`` prints runner cache
counters; ``-v``/``-q`` control log verbosity.

Verification (DESIGN.md section 11): ``--check`` reruns every simulation
on the invariant-checked network — packet conservation, exactly-once
delivery, credit non-negativity, stuck-queue audits and per-strategy
phase invariants raise immediately on violation.  Checked runs bypass
the result cache in both directions (a cached result was never checked).

Resilience (DESIGN.md section 12): ``--journal PATH`` checkpoints every
completed point to an append-only JSONL file; after a crash or Ctrl-C,
``--resume PATH`` preloads the journal and only the missing points
simulate — the merged results are bit-identical to an uninterrupted run.
``--point-timeout S`` (or ``REPRO_POINT_TIMEOUT``) bounds each point's
wall clock; ``--retries N`` bounds reschedules of timed-out/crashed
points.  ``REPRO_CHAOS=kill:0.1,hang:0.05,seed=0`` injects deterministic
worker deaths and stalls to exercise the supervision layer.

Telemetry & history (DESIGN.md section 15): a live sweep status line
(TTY) or periodic progress log lines (elsewhere) render by default —
``--no-progress`` or ``REPRO_PROGRESS=0`` disables, ``--quiet`` implies
off.  ``--profile PATH`` runs the phase-level time profiler and writes
per-point + aggregate phase attributions as JSON (with ``--trace *.json``
the phase spans also land in the Chrome trace).  ``--history DIR``
appends every finished experiment to a cross-run history store
(``DIR/history.jsonl``); ``--compare REF`` then diffs the newest record
against REF (an index, id prefix, ``prev`` or ``last``) and prints a
regression/improvement/neutral verdict.  ``python -m repro.obs.history``
inspects and diffs the store standalone.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import time

from repro.experiments.registry import ALL, EXPERIMENTS, run_experiment


def _write_obs_outputs(
    collected, trace_path, metrics_path, profile_path=None
) -> None:
    """Write trace/metrics/profile files from the per-point payloads."""
    from repro.obs.metrics import aggregate_metrics
    from repro.obs.tracer import write_chrome_trace, write_jsonl

    if trace_path:
        traces = [c for c in collected if "trace" in c]
        if trace_path.endswith(".json"):
            # Phase-profile span tracks ride in the same Perfetto view
            # as the packet tracks when both layers are on.
            extra = []
            if profile_path:
                from repro.obs.profile import profile_chrome_events

                for i, c in enumerate(collected):
                    if "profile" in c:
                        extra.extend(
                            profile_chrome_events(
                                c["profile"],
                                pid=10_000_000 + i,
                                label=c["point"],
                            )
                        )
            write_chrome_trace(
                [c["trace"] for c in traces],
                trace_path,
                labels=[c["point"] for c in traces],
                extra_records=extra or None,
            )
        else:
            with open(trace_path, "w", encoding="utf-8") as fh:
                for c in traces:
                    write_jsonl(c["trace"], fh, point=c["point"])
        print(f"trace: {len(traces)} point(s) -> {trace_path}")
    if profile_path:
        from repro.obs.profile import merge_profiles

        per_point = [c for c in collected if "profile" in c]
        doc = {
            "points": [
                {"point": c["point"], "profile": c["profile"]}
                for c in per_point
            ],
            "aggregate": merge_profiles([c["profile"] for c in per_point]),
        }
        with open(profile_path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        print(f"profile: {len(per_point)} point(s) -> {profile_path}")
    if metrics_path:
        per_point = [c for c in collected if "metrics" in c]
        doc = {
            "points": [
                {"point": c["point"], "metrics": c["metrics"]}
                for c in per_point
            ],
            "aggregate": aggregate_metrics(
                [c["metrics"] for c in per_point]
            ),
        }
        with open(metrics_path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        print(f"metrics: {len(per_point)} point(s) -> {metrics_path}")


def _print_cache_stats() -> None:
    from repro.runner.pool import counters

    print(
        "cache: "
        f"{counters.cache_hits} hit(s), "
        f"{counters.cache_misses} miss(es), "
        f"{counters.cache_stores} store(s), "
        f"{counters.cache_corrupt} corrupt; "
        f"{counters.simulated} point(s) simulated"
    )
    if (
        counters.retries
        or counters.timeouts
        or counters.pool_breaks
        or counters.quarantined
        or counters.journal_hits
        or counters.journal_records
    ):
        print(
            "supervision: "
            f"{counters.retries} retr{'y' if counters.retries == 1 else 'ies'}, "
            f"{counters.timeouts} timeout(s), "
            f"{counters.pool_breaks} pool break(s), "
            f"{counters.quarantined} quarantined; "
            f"journal {counters.journal_hits} hit(s), "
            f"{counters.journal_records} record(s); "
            f"{counters.heartbeats} heartbeat(s)"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bgl-alltoall",
        description="Reproduce the BG/L all-to-all paper's tables/figures.",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="increase log verbosity (-v info, -vv debug)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="errors only",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)
    sub.add_parser("list", help="list experiment ids")
    runp = sub.add_parser("run", help="run one experiment (or 'all')")
    runp.add_argument("exp_id", help="experiment id, or 'all'")
    runp.add_argument("--scale", default=None, choices=["tiny", "small", "full"])
    runp.add_argument("--seed", type=int, default=0)
    runp.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for independent simulation points "
        "(default: REPRO_JOBS env var, else 1; 0 = all cores)",
    )
    runp.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache for this invocation",
    )
    runp.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record packet lifecycle events; .json = Chrome trace "
        "(Perfetto-loadable), anything else = JSONL",
    )
    runp.add_argument(
        "--trace-sample",
        type=int,
        default=1,
        metavar="N",
        help="trace every Nth packet (deterministic, by packet id)",
    )
    runp.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write per-point + aggregate metrics JSON "
        "(per-axis utilization time series, latency histograms, gauges)",
    )
    runp.add_argument(
        "--report",
        metavar="DIR",
        default=None,
        help="write a self-contained HTML run report + JSON sidecar to "
        "DIR (per-axis percent-of-peak utilization heatmaps, phase "
        "bandwidth, congestion hot-spots, analytic-model diff; one "
        "comparative report across every experiment of this "
        "invocation); implies link-stats collection",
    )
    runp.add_argument(
        "--check",
        action="store_true",
        help="run every simulation on the invariant-checked network "
        "(repro.check oracles; bypasses the result cache)",
    )
    runp.add_argument(
        "--point-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock limit per simulation point (default: "
        "REPRO_POINT_TIMEOUT env var, else derived from shape/message "
        "size when supervision is active)",
    )
    runp.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="max reschedules of a timed-out or crashed point "
        "(default 4); deterministic exponential backoff, no jitter",
    )
    runp.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help="checkpoint completed points to this append-only JSONL "
        "journal (flushed per point; survives crashes and Ctrl-C)",
    )
    runp.add_argument(
        "--resume",
        metavar="PATH",
        default=None,
        help="resume from a journal written by --journal: journaled "
        "points are reused bit-identically, only missing points "
        "simulate; the journal keeps being appended to",
    )
    runp.add_argument(
        "--profile",
        metavar="PATH",
        default=None,
        help="run the phase-level time profiler and write per-point + "
        "aggregate phase attributions (busy cycles per phase/axis, "
        "spans, wall/CPU estimates) as JSON; with --trace *.json the "
        "phase spans also land in the Chrome trace",
    )
    runp.add_argument(
        "--history",
        metavar="DIR",
        default=None,
        help="append each finished experiment to the cross-run history "
        "store at DIR/history.jsonl (inspect/diff with "
        "python -m repro.obs.history)",
    )
    runp.add_argument(
        "--compare",
        metavar="REF",
        default=None,
        help="after the run, diff the newest history record against REF "
        "(index, id prefix, 'prev' or 'last') and print the "
        "regression/improvement/neutral verdict; requires --history",
    )
    runp.add_argument(
        "--progress",
        dest="progress",
        action="store_true",
        default=None,
        help="force the live sweep progress renderer on "
        "(default: on unless --quiet or REPRO_PROGRESS=0)",
    )
    runp.add_argument(
        "--no-progress",
        dest="progress",
        action="store_false",
        help="disable the live sweep progress renderer",
    )
    runp.add_argument(
        "--cache-stats",
        action="store_true",
        help="print cache hit/miss/store/corrupt counters after the run",
    )
    runp.add_argument(
        "--provenance",
        action="store_true",
        help="print each experiment's provenance record",
    )
    args = parser.parse_args(argv)

    from repro.obs.logconf import setup_logging

    setup_logging(-1 if args.quiet else args.verbose)

    if args.cmd == "list":
        for eid in ALL:
            kind = "paper" if eid in EXPERIMENTS else "ablation"
            print(f"{eid:24s} [{kind}]")
        return 0

    if args.no_cache:
        os.environ["REPRO_CACHE"] = "0"
    if args.compare is not None and args.history is None:
        parser.error("--compare requires --history")
    if args.progress is not None:
        os.environ["REPRO_PROGRESS"] = "1" if args.progress else "0"

    ids = list(ALL) if args.exp_id == "all" else [args.exp_id]

    # Counters are process-global; reset so --cache-stats reflects this
    # invocation only (matters when main() is called in-process, as the
    # tests do — a shell invocation is always a fresh process anyway).
    from repro.runner.pool import counters

    counters.reset()

    obs_on = bool(args.trace or args.metrics or args.report or args.profile)
    if obs_on:
        from repro.obs.config import ObsConfig
        from repro.obs.context import observe

        cfg = ObsConfig(
            trace=bool(args.trace),
            trace_sample=args.trace_sample,
            # The report needs the utilization timeseries + link stats.
            metrics=bool(args.metrics or args.report),
            link_stats=bool(args.report),
            profile=bool(args.profile),
        )
        ctx = observe(cfg)
    else:
        import contextlib

        ctx = contextlib.nullcontext([])

    if args.check:
        from repro.check.config import CheckConfig
        from repro.check.context import checking

        chk_ctx = checking(CheckConfig())
    else:
        import contextlib

        chk_ctx = contextlib.nullcontext()

    from repro.runner.supervise import SuperviseConfig, supervising

    sup_overrides: dict = {}
    if args.point_timeout is not None:
        sup_overrides["point_timeout_s"] = args.point_timeout
    if args.retries is not None:
        sup_overrides["max_attempts"] = args.retries + 1
    journal_path = args.journal or args.resume
    if journal_path is not None:
        sup_overrides["journal"] = journal_path
    if args.resume is not None:
        sup_overrides["resume"] = args.resume
    sup_cfg = SuperviseConfig.from_env(**sup_overrides)

    if journal_path is not None:
        # A terminated run must still leave a resumable journal: the
        # journal is flushed per completed point, so converting SIGTERM
        # into KeyboardInterrupt unwinds through run_sweep's cleanup
        # (closing the journal) instead of dying mid-state.
        def _sigterm(signum, frame):  # pragma: no cover - signal path
            raise KeyboardInterrupt

        signal.signal(signal.SIGTERM, _sigterm)

    try:
        with ctx as collected, chk_ctx, supervising(sup_cfg):
            results = []
            for eid in ids:
                t0 = time.time()
                result = run_experiment(
                    eid,
                    scale=args.scale,
                    seed=args.seed,
                    jobs=args.jobs,
                    history=args.history,
                )
                results.append(result)
                print(result.render())
                print(f"  ({time.time() - t0:.1f}s)\n")
                if args.provenance and result.provenance is not None:
                    print(
                        json.dumps(result.provenance, indent=2, sort_keys=True)
                    )
                    print()
            if obs_on:
                _write_obs_outputs(
                    collected, args.trace, args.metrics, args.profile
                )
            if args.report:
                from repro.obs.report import write_report

                title = (
                    f"Run report: {', '.join(ids)} "
                    f"(scale={args.scale or 'default'}, seed={args.seed})"
                )
                html_path, json_path = write_report(
                    args.report,
                    collected,
                    results,
                    title=title,
                    history=args.history,
                )
                print(f"report: {html_path} + {json_path}")
            if args.compare is not None:
                from repro.obs.history import (
                    RunHistory,
                    diff_records,
                    format_diff,
                )

                store = RunHistory(args.history)
                recs = store.records()
                try:
                    old = store.resolve(args.compare, recs)
                    new = store.resolve("last", recs)
                except LookupError as exc:
                    print(f"compare: {exc}", file=sys.stderr)
                else:
                    print(format_diff(diff_records(old, new)))
    except KeyboardInterrupt:
        if journal_path is not None:
            print(
                f"\ninterrupted — completed points are checkpointed; "
                f"resume with: --resume {journal_path}",
                file=sys.stderr,
            )
        else:
            print("\ninterrupted", file=sys.stderr)
        return 130
    if args.cache_stats:
        _print_cache_stats()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
