"""Command-line entry point: ``bgl-alltoall`` / ``repro-experiments``.

Run paper experiments and ablations from the shell::

    bgl-alltoall list
    bgl-alltoall run tab3_tps --scale small
    bgl-alltoall run all --scale tiny --jobs 4

``--jobs N`` fans independent simulation points over N worker processes
(default: the ``REPRO_JOBS`` env var, else 1); the rendered tables are
byte-identical for any job count.  Results are cached on disk under
``REPRO_CACHE_DIR`` (default ``~/.cache/repro``); ``--no-cache`` or
``REPRO_CACHE=0`` disables the cache.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.experiments.registry import ALL, EXPERIMENTS, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bgl-alltoall",
        description="Reproduce the BG/L all-to-all paper's tables/figures.",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)
    sub.add_parser("list", help="list experiment ids")
    runp = sub.add_parser("run", help="run one experiment (or 'all')")
    runp.add_argument("exp_id", help="experiment id, or 'all'")
    runp.add_argument("--scale", default=None, choices=["tiny", "small", "full"])
    runp.add_argument("--seed", type=int, default=0)
    runp.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for independent simulation points "
        "(default: REPRO_JOBS env var, else 1; 0 = all cores)",
    )
    runp.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache for this invocation",
    )
    args = parser.parse_args(argv)

    if args.cmd == "list":
        for eid in ALL:
            kind = "paper" if eid in EXPERIMENTS else "ablation"
            print(f"{eid:24s} [{kind}]")
        return 0

    if args.no_cache:
        os.environ["REPRO_CACHE"] = "0"

    ids = list(ALL) if args.exp_id == "all" else [args.exp_id]
    for eid in ids:
        t0 = time.time()
        result = run_experiment(
            eid, scale=args.scale, seed=args.seed, jobs=args.jobs
        )
        print(result.render())
        print(f"  ({time.time() - t0:.1f}s)\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
