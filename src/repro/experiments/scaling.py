"""Scaling study (extension): efficiency vs machine size at fixed shape.

Not a paper artifact, but the natural follow-up the paper's Section 2
model invites: as the partition grows, the average hop count grows, the
per-node CPU demand *falls* relative to the network ("the processing
demand is proportional to one over the average number of hops"), and the
asymmetric-congestion loss *grows* with the longest dimension.  This
driver sweeps a shape family at increasing size and reports AR and TPS
efficiency plus the CPU/network balance predicted by the model.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import (
    ExperimentResult,
    LARGE_MESSAGE_BYTES,
    default_params,
    resolve_scale,
)
from repro.model.torus import TorusShape
from repro.runner import SimPoint, run_points
from repro.strategies import ARDirect, TwoPhaseSchedule

EXP_ID = "scaling_study"
TITLE = "Extension: AR/TPS efficiency vs machine size (fixed aspect 1:1:2)"

_FAMILY = {
    "tiny": ["2x2x4", "4x4x8"],
    "small": ["2x2x4", "4x4x8", "8x8x16"],
    "full": ["2x2x4", "4x4x8", "8x8x16", "16x16x8"],
}

#: Per-shape message-size override.  The 2048-node showcase point flips
#: the family aspect (2:2:1, longest dimensions first) and runs with the
#: small-scale large message — two full 256 B packets per message — so
#: its ~270M-event simulation stays well inside the default event budget
#: (a 976 B message would quadruple the packet count and flirt with the
#: 500M cap).
_MSG_OVERRIDE = {"16x16x8": 464}


def cpu_network_balance(shape: TorusShape, msg_bytes: int) -> float:
    """Model ratio of per-node CPU demand to network time for AR: below
    1.0 the network is the binding resource (Section 2's argument)."""
    params = default_params()
    sizes = params.packetize_message(msg_bytes)
    cpu = 2.0 * sum(params.cpu_packet_handling_cycles(w) for w in sizes)
    net = shape.contention_factor * msg_bytes * params.beta_cycles_per_byte
    return cpu / net if net > 0 else float("inf")


def run(
    scale: Optional[str] = None, seed: int = 0, jobs: Optional[int] = None
) -> ExperimentResult:
    scale = resolve_scale(scale)
    params = default_params()
    m = LARGE_MESSAGE_BYTES[scale]
    result = ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        columns=[
            "partition",
            "nodes",
            "AR % of peak",
            "TPS % of peak",
            "cpu/net balance",
        ],
    )
    shapes = [(lbl, TorusShape.parse(lbl)) for lbl in _FAMILY[scale]]
    runs = run_points(
        [
            SimPoint(strat, shape, _MSG_OVERRIDE.get(lbl, m), params, seed=seed)
            for lbl, shape in shapes
            for strat in (ARDirect(), TwoPhaseSchedule())
        ],
        jobs=jobs,
    )
    for i, (lbl, shape) in enumerate(shapes):
        ar, tps = runs[2 * i], runs[2 * i + 1]
        m_shape = _MSG_OVERRIDE.get(lbl, m)
        result.rows.append(
            {
                "partition": lbl,
                "nodes": shape.nnodes,
                "AR % of peak": ar.percent_of_peak,
                "TPS % of peak": tps.percent_of_peak,
                "cpu/net balance": cpu_network_balance(shape, m_shape),
            }
        )
    result.notes.append(
        "cpu/net < 1 means the network binds (bigger machines relieve the "
        "CPU: Section 2); TPS overtakes AR as the asymmetric dimension "
        "lengthens."
    )
    for lbl, _ in shapes:
        if lbl in _MSG_OVERRIDE:
            result.notes.append(
                f"{lbl} (2048 nodes) runs at m={_MSG_OVERRIDE[lbl]} B to "
                "stay inside the default event budget; percent-of-peak is "
                "size-normalized so rows remain comparable."
            )
    return result
