"""Figure 2 — AR throughput vs message size on 16x16x16 (4,096 nodes).

A 4,096-node packet simulation is beyond Tier A at every scale, so this
experiment combines Tier B (the same symmetric shape at 8x8x8) with the
Tier C Eq. 3 prediction evaluated at the full 16x16x16 scale — exactly the
role the model plays in the paper's own Figure 2.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.sweep import message_size_sweep
from repro.experiments.common import (
    ExperimentResult,
    default_params,
    resolve_scale,
    shape_for_scale,
)
from repro.model.alltoall import peak_time_cycles, simple_direct_time_cycles
from repro.model.torus import TorusShape
from repro.strategies import ARDirect
from repro.util.units import cycles_to_us

EXP_ID = "fig2_ar_4096"
TITLE = "Figure 2: AR measured (scaled) vs Eq.3 prediction on 16x16x16"

_SIZES = {
    "tiny": [8, 208, 464],
    "small": [8, 64, 208, 464, 976],
    "full": [8, 64, 208, 464, 976, 2000],
}


def run(
    scale: Optional[str] = None, seed: int = 0, jobs: Optional[int] = None
) -> ExperimentResult:
    scale = resolve_scale(scale)
    params = default_params()
    paper_shape = TorusShape.parse("16x16x16")
    sim_shape, tier = shape_for_scale(paper_shape, scale)
    sizes = _SIZES[scale]
    result = ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        columns=[
            "m bytes",
            f"measured({sim_shape.label}) % of peak",
            "Eq.3(16x16x16) us",
            "peak(16x16x16) us",
            "Eq.3 % of peak",
        ],
    )
    points = message_size_sweep(
        ARDirect(), sim_shape, sizes, params, seed=seed, jobs=jobs
    )
    for pt in points:
        m = pt.m_bytes
        pred = simple_direct_time_cycles(paper_shape, m, params)
        peak = peak_time_cycles(paper_shape, m, params)
        result.rows.append(
            {
                "m bytes": m,
                f"measured({sim_shape.label}) % of peak": pt.percent_of_peak,
                "Eq.3(16x16x16) us": cycles_to_us(pred),
                "peak(16x16x16) us": cycles_to_us(peak),
                "Eq.3 % of peak": 100.0 * peak / pred,
            }
        )
    result.notes.append(f"tier {tier} measurement on {sim_shape.label}")
    return result
