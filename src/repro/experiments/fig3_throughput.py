"""Figure 3 — AR per-node throughput across partitions: one-packet
messages vs large messages vs the peak bisection bandwidth per node.

Paper: one-packet all-to-all already achieves close to the achievable
large-message throughput, and both track the per-node bisection bound
1/(C*beta), which drops as partitions grow more elongated.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import (
    ExperimentResult,
    LARGE_MESSAGE_BYTES,
    default_params,
    resolve_scale,
    shape_for_scale,
)
from repro.model.torus import TorusShape
from repro.runner import SimPoint, run_points
from repro.strategies import ARDirect
from repro.util.units import CLOCK_HZ

EXP_ID = "fig3_throughput"
TITLE = "Figure 3: AR per-node throughput vs peak bisection bandwidth/node"

_PARTITIONS = {
    "tiny": ["8", "8x8", "8x8x8", "8x8x16"],
    "small": ["8", "16", "8x8", "16x16", "8x8x8", "8x8x16", "8x16x16"],
    "full": [
        "8", "16", "8x8", "16x16", "8x8x8", "8x8x16",
        "8x16x16", "8x32x16", "16x16x16",
    ],
}
#: One-packet payload: a full 256 B packet holds 208 B beside the header.
ONE_PACKET_BYTES = 208


def run(
    scale: Optional[str] = None, seed: int = 0, jobs: Optional[int] = None
) -> ExperimentResult:
    scale = resolve_scale(scale)
    params = default_params()
    m_large = LARGE_MESSAGE_BYTES[scale]
    result = ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        columns=[
            "partition",
            "simulated",
            "tier",
            "1-packet MB/s/node",
            "large-m MB/s/node",
            "peak MB/s/node",
        ],
    )
    shapes = [
        (lbl, *shape_for_scale(TorusShape.parse(lbl), scale))
        for lbl in _PARTITIONS[scale]
    ]
    runs = run_points(
        [
            SimPoint(ARDirect(), shape, m, params, seed=seed)
            for _, shape, _ in shapes
            for m in (ONE_PACKET_BYTES, m_large)
        ],
        jobs=jobs,
    )
    for i, (lbl, shape, tier) in enumerate(shapes):
        one, big = runs[2 * i], runs[2 * i + 1]
        peak = (
            shape.per_node_peak_bandwidth(params.beta_cycles_per_byte)
            * CLOCK_HZ
            / 1e6
        )
        result.rows.append(
            {
                "partition": lbl,
                "simulated": shape.label,
                "tier": tier,
                "1-packet MB/s/node": one.per_node_mb_per_s,
                "large-m MB/s/node": big.per_node_mb_per_s,
                "peak MB/s/node": peak,
            }
        )
    result.notes.append(
        "peak = 1/(C*beta) per node (Eq. 2); the Figure-3 claim is that "
        "the one-packet series sits close to the large-message series."
    )
    return result
