"""Table 4 — one-byte all-to-all latency, TPS vs AR.

Paper: for small partitions the indirect TPS is *slower* (forwarding adds
latency); from 4,096 nodes up on asymmetric partitions TPS becomes faster
than AR because even 64 B packets suffer network contention.  Qualitative
check: the TPS/AR ordering flips between the small symmetric partitions
and the large asymmetric ones.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import (
    ExperimentResult,
    default_params,
    resolve_scale,
    shape_for_scale,
)
from repro.experiments.paperdata import TABLE4_LATENCY_MS
from repro.model.torus import TorusShape
from repro.runner import SimPoint, run_points
from repro.strategies import ARDirect, TwoPhaseSchedule

EXP_ID = "tab4_latency"
TITLE = "Table 4: 1-byte all-to-all latency (ms), TPS vs AR"

_TINY_SUBSET = ["8x8x8", "8x8x16"]


def run(
    scale: Optional[str] = None, seed: int = 0, jobs: Optional[int] = None
) -> ExperimentResult:
    scale = resolve_scale(scale)
    params = default_params()
    result = ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        columns=[
            "partition",
            "simulated",
            "tier",
            "TPS ms",
            "AR ms",
            "paper TPS ms",
            "paper AR ms",
        ],
    )
    partitions = _TINY_SUBSET if scale == "tiny" else list(TABLE4_LATENCY_MS)
    shapes = [
        (lbl, *shape_for_scale(TorusShape.parse(lbl), scale))
        for lbl in partitions
    ]
    runs = run_points(
        [
            SimPoint(strat, shape, 1, params, seed=seed)
            for _, shape, _ in shapes
            for strat in (TwoPhaseSchedule(), ARDirect())
        ],
        jobs=jobs,
    )
    for i, (lbl, shape, tier) in enumerate(shapes):
        run_tps, run_ar = runs[2 * i], runs[2 * i + 1]
        paper_tps, paper_ar = TABLE4_LATENCY_MS[lbl]
        result.rows.append(
            {
                "partition": lbl,
                "simulated": shape.label,
                "tier": tier,
                "TPS ms": run_tps.time_ms,
                "AR ms": run_ar.time_ms,
                "paper TPS ms": paper_tps,
                "paper AR ms": paper_ar,
            }
        )
    result.notes.append(
        "1 B messages ride single 64 B packets (48 B software header); "
        "Tier B rows are shape-scaled, so absolute ms are smaller than the "
        "paper's - the TPS-vs-AR ordering is the reproduction target."
    )
    return result
