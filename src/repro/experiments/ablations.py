"""Ablations of the design choices the paper calls out.

* TPS linear-dimension choice (Section 4.1's selection rule vs forcing
  each axis) — the rule's pick should be (near-)best.
* TPS with vs without reserved injection-FIFO groups — removing the
  reservation serializes phase-2 packets behind phase-1 packets.
* DR sensitivity to which axis is longest (Section 3.2: X-longest wins).
* VMesh row/column factorization (balanced ~square is best).
* Credit-based flow control: credit-period sweep vs bandwidth overhead
  (Section 5 predicts ~1 % at one 32 B credit per ten 256 B packets).
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import (
    ExperimentResult,
    LARGE_MESSAGE_BYTES,
    default_params,
    resolve_scale,
    shape_for_scale,
)
from repro.experiments.paperdata import AXIS_NAMES
from repro.model.torus import TorusShape
from repro.runner import SimPoint, run_points
from repro.strategies import DRDirect, TwoPhaseSchedule, VirtualMesh2D
from repro.strategies.flowcontrol import CreditedTPS


def tps_linear_axis(
    scale: Optional[str] = None, seed: int = 0, jobs: Optional[int] = None
) -> ExperimentResult:
    """Force each axis as TPS's linear dimension on the 8x32x16 shape."""
    scale = resolve_scale(scale)
    params = default_params()
    shape, tier = shape_for_scale(TorusShape.parse("8x32x16"), scale)
    m = LARGE_MESSAGE_BYTES[scale]
    result = ExperimentResult(
        exp_id="ablate_tps_axis",
        title=f"Ablation: TPS phase-1 dimension on {shape.label} (tier {tier})",
        columns=["linear dim", "TPS % of peak", "rule's choice"],
    )
    from repro.strategies.tps import choose_linear_axis

    chosen = choose_linear_axis(shape)
    runs = run_points(
        [
            SimPoint(TwoPhaseSchedule(linear_axis=axis), shape, m, params, seed=seed)
            for axis in range(shape.ndim)
        ],
        jobs=jobs,
    )
    for axis, run in enumerate(runs):
        result.rows.append(
            {
                "linear dim": AXIS_NAMES[axis],
                "TPS % of peak": run.percent_of_peak,
                "rule's choice": "<--" if axis == chosen else "",
            }
        )
    return result


def tps_pipelining(
    scale: Optional[str] = None, seed: int = 0, jobs: Optional[int] = None
) -> ExperimentResult:
    """Reserved-FIFO pipelining on vs off."""
    scale = resolve_scale(scale)
    params = default_params()
    shape, tier = shape_for_scale(TorusShape.parse("8x8x16"), scale)
    m = LARGE_MESSAGE_BYTES[scale]
    result = ExperimentResult(
        exp_id="ablate_tps_pipelining",
        title=f"Ablation: TPS reserved-FIFO pipelining on {shape.label}",
        columns=["variant", "TPS % of peak"],
    )
    variants = [("reserved FIFOs (paper)", True), ("shared FIFOs", False)]
    runs = run_points(
        [
            SimPoint(TwoPhaseSchedule(pipelined=p), shape, m, params, seed=seed)
            for _, p in variants
        ],
        jobs=jobs,
    )
    for (name, _), run in zip(variants, runs):
        result.rows.append({"variant": name, "TPS % of peak": run.percent_of_peak})
    return result


def dr_longest_axis(
    scale: Optional[str] = None, seed: int = 0, jobs: Optional[int] = None
) -> ExperimentResult:
    """DR on the three rotations of 2n x n x n (Section 3.2)."""
    scale = resolve_scale(scale)
    params = default_params()
    m = LARGE_MESSAGE_BYTES[scale]
    result = ExperimentResult(
        exp_id="ablate_dr_axis",
        title="Ablation: DR vs which dimension is longest (2n x n x n)",
        columns=["partition", "simulated", "DR % of peak"],
    )
    labels = ("16x8x8", "8x16x8", "8x8x16")
    shapes = [shape_for_scale(TorusShape.parse(lbl), scale)[0] for lbl in labels]
    runs = run_points(
        [SimPoint(DRDirect(), shape, m, params, seed=seed) for shape in shapes],
        jobs=jobs,
    )
    for lbl, shape, run in zip(labels, shapes, runs):
        result.rows.append(
            {
                "partition": lbl,
                "simulated": shape.label,
                "DR % of peak": run.percent_of_peak,
            }
        )
    return result


def vmesh_factorization(
    scale: Optional[str] = None, seed: int = 0, jobs: Optional[int] = None
) -> ExperimentResult:
    """Square vs skewed virtual-mesh factorizations (Section 4.2 says keep
    rows and columns about the same)."""
    scale = resolve_scale(scale)
    params = default_params()
    shape = TorusShape.parse("4x4x4" if scale == "tiny" else "8x8x8")
    p = shape.nnodes
    factorizations = []
    pv = 1
    while pv * pv <= p:
        if p % pv == 0:
            factorizations.append((p // pv, pv))
        pv *= 2
    m = 8
    result = ExperimentResult(
        exp_id="ablate_vmesh_factors",
        title=f"Ablation: VMesh factorization on {shape.label}, m={m} B",
        columns=["pvx x pvy", "time us", "alpha messages"],
    )
    runs = run_points(
        [
            SimPoint(VirtualMesh2D(pvx=pvx, pvy=pvy), shape, m, params, seed=seed)
            for pvx, pvy in factorizations
        ],
        jobs=jobs,
    )
    for (pvx, pvy), run in zip(factorizations, runs):
        result.rows.append(
            {
                "pvx x pvy": f"{pvx}x{pvy}",
                "time us": run.time_us,
                "alpha messages": pvx + pvy,
            }
        )
    return result


def credit_overhead(
    scale: Optional[str] = None, seed: int = 0, jobs: Optional[int] = None
) -> ExperimentResult:
    """Credit-period sweep: measured slowdown vs plain TPS, and the
    paper's predicted ~1 % bandwidth overhead at 10 packets/credit."""
    scale = resolve_scale(scale)
    params = default_params()
    shape, tier = shape_for_scale(TorusShape.parse("8x8x16"), scale)
    m = LARGE_MESSAGE_BYTES[scale]
    result = ExperimentResult(
        exp_id="ablate_credit_overhead",
        title=f"Ablation: credit flow control overhead on {shape.label}",
        columns=[
            "packets/credit",
            "window",
            "time vs plain TPS %",
            "predicted bw overhead %",
            "peak fwd backlog",
        ],
    )
    sweep = [(2, 8), (5, 16), (10, 32)]
    strats = [
        CreditedTPS(window=window, packets_per_credit=k) for k, window in sweep
    ]
    # Point 0 is the plain-TPS baseline the sweep normalizes to.
    runs = run_points(
        [SimPoint(TwoPhaseSchedule(), shape, m, params, seed=seed)]
        + [SimPoint(s, shape, m, params, seed=seed) for s in strats],
        jobs=jobs,
    )
    base = runs[0]
    result.rows.append(
        {
            "packets/credit": "none",
            "window": "inf",
            "time vs plain TPS %": 100.0,
            "predicted bw overhead %": 0.0,
            "peak fwd backlog": base.result.peak_forward_backlog,
        }
    )
    for (k, window), strat, run in zip(sweep, strats, runs[1:]):
        result.rows.append(
            {
                "packets/credit": k,
                "window": window,
                "time vs plain TPS %": 100.0 * run.time_cycles / base.time_cycles,
                "predicted bw overhead %": 100.0
                * strat.credit_bandwidth_overhead(params),
                "peak fwd backlog": run.result.peak_forward_backlog,
            }
        )
    result.notes.append(
        "Section 5: one 32 B credit per ten 256 B packets ~ 1% overhead."
    )
    return result
