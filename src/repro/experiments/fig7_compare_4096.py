"""Figure 7 — AR vs TPS vs VMesh on the asymmetric 8x32x16 partition,
short messages.

Paper: at 8 B, VMesh is ~2x faster than TPS and ~3x faster than AR; the
TPS/VMesh crossover sits near 64 B; AR trails both on this asymmetric
torus even at 80 B because of network contention.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import (
    ExperimentResult,
    default_params,
    resolve_scale,
    shape_for_scale,
)
from repro.model.alltoall import balanced_vmesh_factors
from repro.model.torus import TorusShape
from repro.runner import SimPoint, run_points
from repro.strategies import ARDirect, TwoPhaseSchedule, VirtualMesh2D

EXP_ID = "fig7_compare_4096"
TITLE = "Figure 7: AR vs TPS vs VMesh, short messages, 8x32x16"

_SIZES = {
    "tiny": [8, 64],
    "small": [1, 8, 16, 32, 64, 128, 256],
    "full": [1, 8, 16, 32, 64, 128, 256, 512],
}


def run(
    scale: Optional[str] = None, seed: int = 0, jobs: Optional[int] = None
) -> ExperimentResult:
    scale = resolve_scale(scale)
    params = default_params()
    paper_shape = TorusShape.parse("8x32x16")
    shape, tier = shape_for_scale(paper_shape, scale)
    pvx, pvy = balanced_vmesh_factors(shape.nnodes)
    strategies = [
        ("AR", ARDirect()),
        ("TPS", TwoPhaseSchedule()),
        ("VMesh", VirtualMesh2D(pvx=pvx, pvy=pvy)),
    ]
    result = ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        columns=[
            "m bytes", "AR us", "TPS us", "VMesh us",
            "VMesh/AR speedup", "VMesh/TPS speedup",
        ],
    )
    sizes = _SIZES[scale]
    runs = run_points(
        [
            SimPoint(strat, shape, m, params, seed=seed)
            for m in sizes
            for _, strat in strategies
        ],
        jobs=jobs,
    )
    for i, m in enumerate(sizes):
        times = {
            name: runs[i * len(strategies) + j].time_us
            for j, (name, _) in enumerate(strategies)
        }
        result.rows.append(
            {
                "m bytes": m,
                "AR us": times["AR"],
                "TPS us": times["TPS"],
                "VMesh us": times["VMesh"],
                "VMesh/AR speedup": times["AR"] / times["VMesh"],
                "VMesh/TPS speedup": times["TPS"] / times["VMesh"],
            }
        )
    result.notes.append(
        f"tier {tier}: simulated on {shape.label}, virtual mesh {pvx}x{pvy}; "
        "paper at 8 B: VMesh ~2x TPS, ~3x AR."
    )
    return result
