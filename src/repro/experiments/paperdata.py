"""The paper's published numbers, used as reference columns and for the
qualitative-shape checks in benchmarks and integration tests.

Source: Kumar & Heidelberger, Tables 1-4 and the Section 4.2 text
(the IBM Research Report / ICPP 2008 versions carry identical values).
"""

from __future__ import annotations

#: Table 1 — AR percent of peak, large messages, symmetric partitions.
TABLE1_AR_SYMMETRIC = {
    "8": 98.2,
    "16": 97.7,
    "8x8": 98.7,
    "16x16": 99.7,
    "8x8x8": 99.0,
    "16x16x16": 99.0,
}

#: Table 2 — AR percent of peak, large messages, asymmetric partitions
#: ("M" marks a mesh dimension).
TABLE2_AR_ASYMMETRIC = {
    "8x2M": 91.8,
    "8x4M": 89.0,
    "8x16": 85.7,
    "8x32": 84.0,
    "8x8x2M": 90.1,
    "8x8x4M": 87.7,
    "8x8x16": 81.0,
    "8x16x16": 87.0,
    "8x32x16": 73.3,
    "16x32x16": 71.0,
    "32x32x16": 73.6,
}

#: Table 3 — TPS percent of peak and the chosen phase-1 (linear)
#: dimension, long messages.
TABLE3_TPS = {
    "8x8x8": (77.2, "Z"),
    "16x8x8": (99.0, "X"),
    "8x16x8": (98.9, "Y"),
    "8x8x16": (97.9, "Z"),
    "16x16x8": (97.5, "Z"),
    "16x8x16": (97.4, "Y"),
    "8x16x16": (97.2, "X"),
    "8x32x16": (99.5, "Y"),
    "16x16x16": (96.1, "X"),
    "16x32x16": (99.8, "Y"),
    "32x16x16": (99.8, "X"),
    "32x32x16": (96.8, "Z"),
    "40x32x16": (99.5, "X"),
}

#: Table 4 — one-byte all-to-all latency in milliseconds (TPS vs AR).
TABLE4_LATENCY_MS = {
    "8x8x8": (0.81, 0.52),
    "8x8x16": (1.64, 1.25),
    "16x16x16": (7.5, 4.7),
    "8x32x16": (8.1, 12.4),
    "32x32x16": (35.9, 65.2),
}

#: Figure 4 — direct strategies the paper singles out in the text.
FIG4_TEXT_POINTS = {
    # (partition, strategy) -> percent of peak quoted in Section 3.2.
    ("8x32x16", "DR"): 86.0,
    ("8x32x16", "AR"): 77.0,
    ("8x16x16", "DR"): 67.0,
    ("8x16x16", "AR"): 86.0,
}

#: Section 4.2 — AR/VMesh crossover lands between these message sizes.
VMESH_CROSSOVER_RANGE_BYTES = (32, 64)

#: Section 4.2 — VMesh speedup over AR for 8 B messages on 512 nodes.
VMESH_512_SPEEDUP_8B = 2.0

#: Section 4.2 — on 4096 nodes at 8 B: VMesh ~2x TPS, ~3x AR.
VMESH_4096_SPEEDUPS_8B = {"TPS": 2.0, "AR": 3.0}

#: Section 5 — headline: 40x32x16 improved from ~72 % (AR) to >99 % (TPS).
HEADLINE_40x32x16 = {"AR": 72.0, "TPS": 99.5}

AXIS_NAMES = "XYZ"
