"""Figure 4 — the direct strategies compared: AR vs DR vs throttled AR.

Paper (Section 3.2): deterministic routing beats AR exactly when the
longest dimension is X (every DR packet enters the network on an X link),
is *worse* than AR when the long dimension is Y or Z, and loses on
symmetric tori to head-of-line blocking; throttling AR to the bisection
rate buys only ~2-3 %.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import (
    ExperimentResult,
    LARGE_MESSAGE_BYTES,
    default_params,
    resolve_scale,
    shape_for_scale,
)
from repro.model.torus import TorusShape
from repro.runner import SimPoint, run_points
from repro.strategies import ARDirect, DRDirect, ThrottledAR

EXP_ID = "fig4_direct"
TITLE = "Figure 4: direct strategies, % of peak (AR / DR / throttled AR)"

_PARTITIONS = {
    "tiny": ["8x8x8", "16x8x8", "8x8x16"],
    "small": ["8x8x8", "16x8x8", "8x16x8", "8x8x16", "8x16x16", "8x32x16"],
    "full": [
        "8x8x8", "16x8x8", "8x16x8", "8x8x16",
        "8x16x16", "8x32x16", "16x16x16",
    ],
}


def run(
    scale: Optional[str] = None, seed: int = 0, jobs: Optional[int] = None
) -> ExperimentResult:
    scale = resolve_scale(scale)
    params = default_params()
    m = LARGE_MESSAGE_BYTES[scale]
    result = ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        columns=["partition", "simulated", "tier", "AR %", "DR %", "AR-throttle %"],
    )
    cols = ["AR %", "DR %", "AR-throttle %"]
    strategies = [ARDirect, DRDirect, ThrottledAR]
    shapes = [
        (lbl, *shape_for_scale(TorusShape.parse(lbl), scale))
        for lbl in _PARTITIONS[scale]
    ]
    runs = run_points(
        [
            SimPoint(cls(), shape, m, params, seed=seed)
            for _, shape, _ in shapes
            for cls in strategies
        ],
        jobs=jobs,
    )
    for i, (lbl, shape, tier) in enumerate(shapes):
        row = {"partition": lbl, "simulated": shape.label, "tier": tier}
        for j, col in enumerate(cols):
            row[col] = runs[i * len(cols) + j].percent_of_peak
        result.rows.append(row)
    result.notes.append(
        "Section 3.2 shape checks: DR(16x8x8) > DR(8x16x8), DR(8x8x16); "
        "DR < AR on the symmetric 8x8x8; throttling changes AR by only a "
        "few percent."
    )
    return result
