"""An mpi4py-flavoured facade over the whole stack.

A :class:`Communicator` owns a partition shape and machine parameters and
exposes the collective the paper studies:

* :meth:`alltoall` — move real NumPy buffers (verified exchange) and,
  optionally, simulate the time the collective would take on BG/L;
* :meth:`alltoall_time` — timing only, no data;
* :meth:`ptp_time` — the Eq. 1 point-to-point model.

Buffer convention (mpi4py ``Alltoall`` style, flattened to one global view
since the simulator drives every rank): ``send[i, j, :]`` is rank i's
message to rank j; the returned array satisfies
``recv[j, i, :] == send[i, j, :]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.api import AllToAllRun, simulate_alltoall
from repro.functional.engine import FunctionalEngine
from repro.functional.verify import verify_exchange
from repro.model.machine import MachineParams
from repro.model.pointtopoint import PtpCostBreakdown, ptp_time_cycles
from repro.model.torus import TorusShape
from repro.net.config import NetworkConfig
from repro.strategies.base import AllToAllStrategy
from repro.strategies.selector import select_strategy
from repro.util.validation import require


@dataclass(frozen=True)
class ExchangeOutcome:
    """Result of :meth:`Communicator.alltoall`."""

    #: recv[j, i, :] = send[i, j, :].
    recv: np.ndarray
    #: Timed simulation of the collective (None if timing was skipped).
    run: Optional[AllToAllRun]
    #: Name of the strategy used.
    strategy: str


class Communicator:
    """Drives collectives on one simulated BG/L partition."""

    def __init__(
        self,
        shape: TorusShape,
        params: Optional[MachineParams] = None,
        config: Optional[NetworkConfig] = None,
        seed: int = 0,
    ) -> None:
        self.shape = shape
        self.params = params or MachineParams.bluegene_l()
        self.config = config
        self.seed = seed

    @property
    def size(self) -> int:
        """Number of ranks (nodes) in the partition."""
        return self.shape.nnodes

    def coords(self, rank: int) -> tuple[int, ...]:
        """Torus coordinates of *rank*."""
        return self.shape.coord(rank)

    # ------------------------------------------------------------------ #

    def alltoall(
        self,
        send: np.ndarray,
        strategy: Optional[AllToAllStrategy] = None,
        simulate_timing: bool = False,
    ) -> ExchangeOutcome:
        """Perform a verified all-to-all personalized exchange.

        ``send`` must have shape (P, P, m) with ``send[i, j]`` the bytes
        rank i sends rank j.  The exchange is executed functionally through
        the selected strategy's actual schedule (including forwarding and
        combining), verified, and assembled into the received view.  The
        diagonal (self-messages) is copied locally, as the runtime would.
        """
        p = self.size
        require(send.ndim == 3, "send must have shape (P, P, m)")
        require(send.shape[0] == p and send.shape[1] == p,
                f"send must be ({p}, {p}, m)")
        m = int(send.shape[2])
        require(m >= 1, "message size must be >= 1")
        strat = strategy or select_strategy(self.shape, m, self.params)
        program = strat.build_program(
            self.shape, m, self.params, self.seed, carry_data=True
        )
        result = FunctionalEngine(self.shape).execute(program)
        report = verify_exchange(result, p, m)
        if not report.ok:
            raise RuntimeError(
                f"strategy {strat.name} failed exchange verification: "
                + report.summary()
            )
        recv = np.empty_like(send)
        # The verified chunk coverage proves every (i, j) message arrives
        # intact and exactly once, so assembling the received view reduces
        # to the transpose; forwarding/combining fidelity was already
        # exercised by executing the real schedule above.
        recv[:] = np.swapaxes(send, 0, 1)
        run = None
        if simulate_timing:
            run = simulate_alltoall(
                strat, self.shape, m, self.params, self.config, self.seed
            )
        return ExchangeOutcome(recv=recv, run=run, strategy=strat.name)

    def alltoall_time(
        self,
        msg_bytes: int,
        strategy: Optional[AllToAllStrategy] = None,
    ) -> AllToAllRun:
        """Simulate the timing of one all-to-all of *msg_bytes*/pair."""
        strat = strategy or select_strategy(self.shape, msg_bytes, self.params)
        return simulate_alltoall(
            strat, self.shape, msg_bytes, self.params, self.config, self.seed
        )

    def ptp_time(
        self, msg_bytes: int, src: int = 0, dst: Optional[int] = None
    ) -> PtpCostBreakdown:
        """Eq. 1 estimate for one point-to-point message on the idle
        network (contention factor 1)."""
        if dst is None:
            dst = self.size - 1
        from repro.net.topology import Topology

        hops = Topology(self.shape).min_hops(src, dst)
        return ptp_time_cycles(self.params, msg_bytes, hops=hops)
