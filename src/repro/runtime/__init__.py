"""Runtime facade: the mpi4py-flavoured :class:`Communicator`."""

from repro.runtime.communicator import Communicator, ExchangeOutcome

__all__ = ["Communicator", "ExchangeOutcome"]
