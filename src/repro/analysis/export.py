"""CSV export of experiment results (for external plotting).

Every :class:`~repro.experiments.common.ExperimentResult` can be written
as a CSV whose columns match the rendered table; figures in the paper are
then one ``plot(x, y)`` away in any tool.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import TYPE_CHECKING, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.common import ExperimentResult


def to_csv_text(result: "ExperimentResult") -> str:
    """Render a result's rows as CSV text (header = columns)."""
    buf = io.StringIO()
    writer = csv.DictWriter(
        buf, fieldnames=result.columns, extrasaction="ignore"
    )
    writer.writeheader()
    for row in result.rows:
        writer.writerow({c: row.get(c, "") for c in result.columns})
    return buf.getvalue()


def write_csv(result: "ExperimentResult", path: Union[str, Path]) -> Path:
    """Write a result to *path* (parent directories created)."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(to_csv_text(result))
    return p


def export_all(results, directory: Union[str, Path]) -> list[Path]:
    """Write every result in *results* to ``<directory>/<exp_id>.csv``."""
    out = []
    for r in results:
        out.append(write_csv(r, Path(directory) / f"{r.exp_id}.csv"))
    return out
