"""Analysis helpers: efficiency metrics, sweeps and table rendering."""

from repro.analysis.efficiency import (
    normalized_efficiency,
    percent_of_peak_run,
    speedup,
)
from repro.analysis.export import export_all, to_csv_text, write_csv
from repro.analysis.report import render_series, render_table
from repro.analysis.sweep import SweepPoint, geometric_sizes, message_size_sweep

__all__ = [
    "normalized_efficiency",
    "percent_of_peak_run",
    "speedup",
    "export_all",
    "to_csv_text",
    "write_csv",
    "render_series",
    "render_table",
    "SweepPoint",
    "geometric_sizes",
    "message_size_sweep",
]
