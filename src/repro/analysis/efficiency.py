"""Efficiency metrics shared by experiments.

Thin wrappers combining simulator output with the Eq. 2 peak; the heavy
lifting lives in :mod:`repro.model.alltoall`.
"""

from __future__ import annotations

from typing import Optional

from repro.api import AllToAllRun
from repro.model.alltoall import peak_time_cycles
from repro.model.machine import MachineParams
from repro.model.torus import TorusShape


def percent_of_peak_run(run: AllToAllRun) -> float:
    """Percent of Eq. 2 peak for a finished run (tables' metric)."""
    return run.percent_of_peak


def normalized_efficiency(
    run: AllToAllRun, baseline: AllToAllRun
) -> float:
    """Run's percent-of-peak relative to a symmetric-torus *baseline* run.

    Our packet-granularity router sustains ~80-85 % of the theoretical
    peak on symmetric tori where the real BG/L reaches ~99 % (see
    DESIGN.md section 5); normalizing by the measured symmetric baseline
    makes shape-vs-shape comparisons line up with the paper's tables.
    """
    if baseline.percent_of_peak <= 0:
        return 0.0
    return 100.0 * run.percent_of_peak / baseline.percent_of_peak


def speedup(a: AllToAllRun, b: AllToAllRun) -> float:
    """How much faster run *b* is than run *a* (same shape and m)."""
    return a.time_cycles / b.time_cycles
