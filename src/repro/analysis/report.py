"""Plain-text rendering of experiment tables and figure series.

The experiment drivers return structured rows; these helpers format them
the way the benchmark harness and the CLI print them — fixed-width ASCII
tables that mirror the paper's tables, plus simple aligned series for the
figures.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def render_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Mapping[str, object]],
    notes: Sequence[str] = (),
) -> str:
    """Render rows (dicts keyed by column name) as an ASCII table."""
    def fmt(v: object) -> str:
        if v is None:
            return "-"
        if isinstance(v, float):
            return f"{v:.1f}" if abs(v) >= 0.1 else f"{v:.3g}"
        return str(v)

    cells = [[fmt(r.get(c)) for c in columns] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells)) if cells else len(c)
        for i, c in enumerate(columns)
    ]
    sep = "+".join("-" * (w + 2) for w in widths)
    out = [title, sep]
    out.append(" | ".join(c.ljust(w) for c, w in zip(columns, widths)))
    out.append(sep)
    for row in cells:
        out.append(" | ".join(v.rjust(w) for v, w in zip(row, widths)))
    out.append(sep)
    for n in notes:
        out.append(f"  note: {n}")
    return "\n".join(out)


def render_series(
    title: str,
    x_label: str,
    xs: Sequence[object],
    series: Mapping[str, Sequence[float]],
) -> str:
    """Render one or more aligned y-series against a shared x axis."""
    columns = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(xs):
        row: dict[str, object] = {x_label: x}
        for name, ys in series.items():
            row[name] = ys[i] if i < len(ys) else None
        rows.append(row)
    return render_table(title, columns, rows)
