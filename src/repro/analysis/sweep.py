"""Parameter sweeps: message-size series for the paper's figures."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.api import AllToAllRun
from repro.model.machine import MachineParams
from repro.model.torus import TorusShape
from repro.net.config import NetworkConfig
from repro.runner import SimPoint, run_points
from repro.strategies.base import AllToAllStrategy


@dataclass(frozen=True)
class SweepPoint:
    """One (message size, strategy) measurement."""

    m_bytes: int
    run: AllToAllRun

    @property
    def time_us(self) -> float:
        return self.run.time_us

    @property
    def percent_of_peak(self) -> float:
        return self.run.percent_of_peak

    @property
    def per_node_mb_per_s(self) -> float:
        return self.run.per_node_mb_per_s


def message_size_sweep(
    strategy: AllToAllStrategy,
    shape: TorusShape,
    sizes: Sequence[int],
    params: Optional[MachineParams] = None,
    config: Optional[NetworkConfig] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> list[SweepPoint]:
    """Simulate the all-to-all at every message size in *sizes* (through
    the parallel runner and its result cache)."""
    runs = run_points(
        [SimPoint(strategy, shape, m, params, config, seed) for m in sizes],
        jobs=jobs,
    )
    return [SweepPoint(m, run) for m, run in zip(sizes, runs)]


def geometric_sizes(lo: int, hi: int, per_decade: int = 4) -> list[int]:
    """Roughly geometric message sizes from *lo* to *hi* inclusive."""
    sizes = []
    m = float(lo)
    ratio = 10 ** (1.0 / per_decade)
    while m < hi:
        sizes.append(int(round(m)))
        m *= ratio
    sizes.append(hi)
    # Deduplicate while preserving order.
    out, seen = [], set()
    for s in sizes:
        if s not in seen:
            out.append(s)
            seen.add(s)
    return out
