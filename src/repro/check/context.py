"""Process-wide verification context.

Mirrors :mod:`repro.obs.context`: the experiment drivers funnel every
simulation through :func:`repro.runner.run_points`, whose signatures don't
carry a verification argument.  The CLI (``run --check``) or a test
instead *activates* a :class:`~repro.check.config.CheckConfig` here;
``run_points`` consults it when its own ``check`` argument is ``None``.
Checked runs bypass the result cache in both directions — a cached result
was produced without the oracles watching, so replaying it would silently
skip verification.

Use as a context manager::

    with checking(CheckConfig()):
        run_experiment("fig1_ar_midplane", scale="tiny")
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

from repro.check.config import CheckConfig

#: Active config (None = verification off).
_active: Optional[CheckConfig] = None


def active_check() -> Optional[CheckConfig]:
    """The process-wide config, or None when verification is off."""
    return _active


@contextlib.contextmanager
def checking(cfg: CheckConfig) -> Iterator[CheckConfig]:
    """Activate *cfg* for the dynamic extent of the block.

    Nesting is not supported (the inner context wins, restoring the outer
    one on exit).
    """
    global _active
    prev = _active
    _active = cfg
    try:
        yield cfg
    finally:
        _active = prev
