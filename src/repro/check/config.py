"""Verification configuration: which invariant oracles a run enforces.

Mirrors :class:`repro.obs.config.ObsConfig`: one frozen :class:`CheckConfig`
travels from the CLI (``--check``) or the fuzz driver through
:func:`repro.runner.run_points` into :func:`repro.api.simulate_alltoall`
and finally :func:`repro.net.faultsim.build_network`, which instantiates a
checked network only when :attr:`CheckConfig.enabled` is true.  The default
(``None`` everywhere) runs the plain simulator — verification disabled is
not a cheap path, it is *the same* path as before this subsystem existed.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CheckConfig:
    """Per-run invariant-oracle switches (all on by default).

    Attributes
    ----------
    conservation:
        End-of-run accounting: every credit token, injection-FIFO slot and
        reception slot returned; injected packets fully accounted for as
        delivered + duplicate-discarded + lost-on-wire; link-busy time
        equal to the sum of observed transmissions.
    exactly_once:
        Independent receiver-side ledger of delivered sequence numbers: a
        sequenced packet consumed twice (a broken dedup) raises at the
        moment of the second consumption.
    credits:
        Per-launch credit non-negativity and hop-count bound (a packet
        whose hop count exceeds the routability bound is looping).
    progress:
        Periodic no-stuck-queue audit: the per-node queued-packet counter
        must match the actual queue contents (a non-empty queue with a
        zero counter is never arbitrated again — a silent stall), and
        every credit/slot count must stay within its capacity.
    phases:
        Per-strategy phase invariants at delivery: TPS phase-1 packets
        land on the destination's linear line (and, fault-free, travel
        only along the linear axis); TPS phase-2 packets stay inside the
        hyperplane; VMesh phase-1 stays in the sender's row and phase-2
        in the sender's column; direct packets are never forwarded.
    audit_interval:
        Deliveries between two progress audits (the audit is O(state), so
        running it on every event would change the run's complexity).
    """

    conservation: bool = True
    exactly_once: bool = True
    credits: bool = True
    progress: bool = True
    phases: bool = True
    audit_interval: int = 512

    def __post_init__(self) -> None:
        if self.audit_interval < 1:
            raise ValueError("audit_interval must be >= 1")

    @property
    def enabled(self) -> bool:
        """Whether this config selects a checked network at all."""
        return (
            self.conservation
            or self.exactly_once
            or self.credits
            or self.progress
            or self.phases
        )
