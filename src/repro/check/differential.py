"""Differential cross-checks: simulator vs analytic model vs functional.

Three independent implementations of the same all-to-all exist in this
repository.  :func:`differential_point` runs one
:class:`~repro.runner.point.SimPoint` through all three and reports every
divergence with the full configuration:

* **simulator leg** — the point runs through :func:`repro.runner.run_points`
  on the oracle-checked network (so every invariant in
  :mod:`repro.check.oracle` is enforced along the way); an
  :class:`~repro.net.errors.SimulationError` — including
  :class:`~repro.check.oracle.InvariantError` — becomes a reported failure
  rather than an exception, so fuzzing can shrink it.
* **model leg** — the measured completion time must sit inside a
  per-strategy tolerance band around the strategy's own
  ``predict_cycles``.  The bands are wide by design: DESIGN.md §5 places
  the simulator at fidelity tier 2 and §7 documents deviations up to ~3x
  against both the closed-form model and the paper's hardware numbers at
  extreme points (short messages, where per-packet overheads dominate,
  and deep saturation).  The band's job is to catch *gross* disagreement —
  an off-by-``nnodes`` accounting bug, a misrouted phase — not to assert
  calibration; §11 records the measured ratio ranges the defaults were
  derived from.  Fault plans invalidate the analytic model's assumptions
  (it knows nothing of reroutes or retransmission), so the model leg is
  skipped for faulty points.
* **functional leg** — the same strategy/shape/message/seed/faults runs
  through :func:`repro.functional.verify.run_and_verify`, which checks the
  exact payload permutation (every ordered pair covered exactly once).
  On loss-free points the simulator's delivered-packet count must also
  agree exactly with the functional engine's — same program, same specs,
  every materialized packet consumed exactly once in both.  Lossy points
  draw different loss/retransmission outcomes in the two engines, so
  only the postcondition (not the count) is compared there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional, Tuple

from repro.check.config import CheckConfig
from repro.net.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner.point import SimPoint


@dataclass(frozen=True)
class ToleranceBands:
    """Acceptable measured/predicted cycle ratios, per strategy.

    ``default`` applies to any strategy without an entry in
    ``per_strategy``.  A band ``(lo, hi)`` accepts runs with
    ``lo <= measured / predicted <= hi``.
    """

    default: Tuple[float, float] = (0.25, 4.0)
    per_strategy: Mapping[str, Tuple[float, float]] = field(
        default_factory=dict
    )

    def band_for(self, strategy_name: str) -> Tuple[float, float]:
        """The band applying to *strategy_name*."""
        return self.per_strategy.get(strategy_name, self.default)


def default_bands() -> ToleranceBands:
    """Bands derived from sweeping measured/predicted over the fuzz domain
    (shapes to 64 nodes, 8 B – 16 KiB messages; see DESIGN.md §11).

    A fault-free sweep over every strategy x {8 B, 256 B, 4 KiB} x eight
    shapes (tori, meshes, rings, extent-1 and odd axes, up to 64 nodes)
    measured ratios from 0.53 (TPS on tiny shapes, where the halving trick
    has no traffic to win on) to 1.50 (DR on a 16-ring at 4 KiB, deep
    saturation), median 1.05.  The defaults leave >2.5x margin beyond both
    observed extremes so a band trip means a new *gross* divergence —
    an off-by-``nnodes`` bug, a dropped phase — not calibration noise.
    """
    return ToleranceBands(
        default=(0.2, 6.0),
        per_strategy={},
    )


@dataclass
class DifferentialReport:
    """Outcome of cross-checking one point across the three engines."""

    label: str
    failures: list = field(default_factory=list)
    measured_cycles: float = 0.0
    predicted_cycles: float = 0.0
    model_checked: bool = False
    functional_ok: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def ratio(self) -> float:
        """measured / predicted (0 when the model leg was skipped —
        a faulty point's prediction is meaningless, don't report it)."""
        if not self.model_checked or self.predicted_cycles <= 0:
            return 0.0
        return self.measured_cycles / self.predicted_cycles

    def summary(self) -> str:
        """One-line verdict."""
        if self.ok:
            extra = (
                f", ratio {self.ratio:.2f}" if self.model_checked else ""
            )
            return f"{self.label}: OK{extra}"
        return f"{self.label}: FAILED — " + "; ".join(self.failures)


def model_leg(
    run, bands: Optional[ToleranceBands] = None
) -> list:
    """Check one measured run against its analytic prediction.

    Returns a (possibly empty) list of failure strings."""
    bands = bands or default_bands()
    predicted = run.predicted_cycles
    if predicted <= 0:
        return [
            f"model: nonpositive prediction {predicted!r} "
            f"for strategy {run.strategy}"
        ]
    lo, hi = bands.band_for(run.strategy)
    ratio = run.result.time_cycles / predicted
    if not lo <= ratio <= hi:
        return [
            f"model: measured/predicted ratio {ratio:.3f} outside "
            f"[{lo}, {hi}] (measured {run.result.time_cycles:.0f}, "
            f"predicted {predicted:.0f}, strategy {run.strategy})"
        ]
    return []


def functional_leg(point: "SimPoint", sim_run=None) -> list:
    """Run the point's exchange through the functional engine and verify
    the payload permutation; on loss-free points also cross-check the
    simulator's packet accounting when *sim_run* is given.

    Returns a (possibly empty) list of failure strings."""
    from repro.functional.verify import run_and_verify

    try:
        func, report = run_and_verify(
            point.strategy,
            point.shape,
            point.msg_bytes,
            params=point.params,
            seed=point.seed,
            faults=point.faults,
        )
    except Exception as exc:  # loud engine errors become failures
        return [f"functional: {type(exc).__name__}: {exc}"]
    failures = []
    if not report.ok:
        failures.append(f"functional: {report.summary()}")
    lossy = point.faults is not None and point.faults.has_loss
    if sim_run is not None and not lossy:
        st = sim_run.result
        # Delivered counts agree exactly across the two engines on
        # loss-free points (every materialized packet is consumed once in
        # both).  Forwarded counts deliberately do NOT: VMesh/credited-TPS
        # phase 2 is a re-injection to the simulator but an
        # ``on_delivery`` forward to the functional engine.
        if st.delivered_packets != func.packets_delivered:
            failures.append(
                "functional: simulator delivered "
                f"{st.delivered_packets} packets but the functional "
                f"engine delivered {func.packets_delivered}"
            )
    return failures


def differential_points(
    points,
    bands: Optional[ToleranceBands] = None,
    check: Optional[CheckConfig] = None,
    jobs: Optional[int] = 1,
) -> list:
    """Cross-check a batch of points; returns one
    :class:`DifferentialReport` per point, in input order.

    The simulator legs go through :func:`repro.runner.run_points` as one
    batch (oracle-checked, cache bypassed), so ``jobs > 1`` runs them on
    the process pool.  If the batch raises — an invariant trip anywhere
    aborts a pooled map without naming the culprit — every point is
    re-run in isolation to attribute the failure.  Never raises for a
    divergence: every failed leg lands in ``report.failures`` so callers
    (the fuzz driver) can shrink and report."""
    # Lazy: repro.runner imports this package for the check context.
    from repro.runner.pool import point_label, run_points

    points = list(points)
    check = check if check is not None else CheckConfig()
    reports = [DifferentialReport(label=point_label(p)) for p in points]
    runs: list = [None] * len(points)
    try:
        runs = list(run_points(points, jobs=jobs, check=check))
    except SimulationError:
        for i, point in enumerate(points):
            try:
                runs[i] = run_points([point], jobs=1, check=check)[0]
            except SimulationError as exc:
                reports[i].failures.append(
                    f"simulator: {type(exc).__name__}: {exc}"
                )
    for point, run, report in zip(points, runs, reports):
        if run is not None:
            report.measured_cycles = run.result.time_cycles
            report.predicted_cycles = run.predicted_cycles
            faulty = point.faults is not None and not point.faults.is_empty
            if not faulty:
                report.model_checked = True
                report.failures.extend(model_leg(run, bands))
        func_failures = functional_leg(point, sim_run=run)
        report.functional_ok = not func_failures
        report.failures.extend(func_failures)
    return reports


def differential_point(
    point: "SimPoint",
    bands: Optional[ToleranceBands] = None,
    check: Optional[CheckConfig] = None,
    jobs: Optional[int] = 1,
) -> DifferentialReport:
    """Cross-check one point: oracle-checked simulation, model band,
    functional permutation.  See :func:`differential_points`."""
    return differential_points([point], bands, check, jobs)[0]
