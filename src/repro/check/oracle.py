"""Runtime invariant oracles layered over the torus network.

The zero-overhead-when-disabled contract is held structurally, exactly as
the fault layer (:mod:`repro.net.faultsim`) and the observability layer
(:mod:`repro.net.instrumented`) hold it: the plain network classes contain
**no** checking code and no ``if enabled`` branches.  When a
:class:`~repro.check.config.CheckConfig` asks for verification,
:func:`repro.net.faultsim.build_network` returns one of the subclasses
below instead.

Every override calls ``super()`` *first* and then only **reads** state, so
a checked run makes exactly the decisions — and produces exactly the
``time_cycles`` and event counts — of an unchecked one; the only possible
behavioral difference is an :class:`InvariantError` raised at the moment a
violation is observed.  ``tests/check`` pins this bit-identity.

The oracles (see :class:`~repro.check.config.CheckConfig` for the
switches):

* **credits** — per launch: the just-decremented downstream credit count
  must be non-negative, and the packet's hop count must stay below the
  routability bound (minimal paths never exceed the shape's diameter;
  fault reroutes and escape detours get slack, but unbounded growth means
  a routing loop).
* **exactly_once** — an independent ledger of consumed sequence numbers:
  if the reliability layer's dedup is broken and a retransmitted twin is
  consumed a second time, the oracle raises at that delivery.
* **phases** — per-strategy geometry at delivery, sniffed from the node
  program (``linear_axis`` for TPS-family programs, ``map`` for VMesh):
  TPS phase-1 packets must land on the final destination's linear line
  (fault-free: having moved *only* along the linear axis), TPS phase-2
  packets must be final and must never have crossed linear lines, VMesh
  phase-1/phase-2 packets must stay inside the sender's virtual-mesh row/
  column, and direct packets must never be consumed away from their final
  destination.
* **progress** — every ``audit_interval`` deliveries (and at the end), the
  per-node queued-packet counters must match the actual queue contents
  (a non-empty queue behind a zero counter is never arbitrated again — a
  silent stall), and every token/slot count must lie within capacity.
* **conservation** — at result assembly: all credits and FIFO/reception
  slots returned, queues empty, ``injected == delivered + duplicates +
  lost``, ``final + forwarded == delivered``, and total link-busy time
  equal to the service time of the observed launches.
"""

from __future__ import annotations

from typing import Optional

from repro.model.machine import MachineParams
from repro.model.torus import TorusShape
from repro.net.config import NetworkConfig
from repro.net.errors import SimulationError
from repro.net.faults import FaultPlan
from repro.net.faultsim import FaultyTorusNetwork
from repro.net.instrumented import (
    _OBS_SLOTS,
    InstrumentedFaultyTorusNetwork,
    InstrumentedTorusNetwork,
)
from repro.net.packet import PacketSpec
from repro.net.simulator import TICK_UNSCALE, TorusNetwork
from repro.net.trace import SimulationResult
from repro.check.config import CheckConfig
from repro.obs.config import ObsConfig
from repro.strategies.data import (
    PHASE_DIRECT,
    PHASE_TPS1,
    PHASE_TPS2,
    PHASE_VMESH1,
    PHASE_VMESH2,
    kind_of_tag,
)


class InvariantError(SimulationError):
    """A runtime invariant oracle observed a violation.

    ``oracle`` names the failed oracle and ``context`` carries the state
    that witnessed it (cycle, node, packet) — enough to understand the
    failure without re-running."""

    def __init__(self, oracle: str, message: str, **context: object) -> None:
        self.oracle = oracle
        self.context = context
        detail = ", ".join(f"{k}={v!r}" for k, v in sorted(context.items()))
        super().__init__(
            f"invariant violated [{oracle}]: {message}"
            + (f" ({detail})" if detail else "")
        )


#: Slots shared by the concrete checked classes.
_CHK_SLOTS = (
    "check",
    "_chk_seen_seqs",
    "_chk_busy_total",
    "_chk_deliveries",
    "_chk_max_hops",
    "_chk_bound",
    "_chk_axis",
    "_chk_strict_tps",
    "_chk_vmap",
)


class _CheckedMixin:
    """Invariant oracles layered over a network class via ``super()``."""

    __slots__ = ()

    # -------------------------------------------------------------- #
    # setup
    # -------------------------------------------------------------- #

    def _init_check(self, check: CheckConfig) -> None:
        self.check = check
        #: Sequence numbers already consumed (independent of the network's
        #: own dedup set — that is the mechanism under test).
        self._chk_seen_seqs: set[int] = set()
        self._chk_busy_total = 0.0
        self._chk_deliveries = 0
        # Routability bound: a minimal path never exceeds the diameter
        # (sum of per-axis half-extents); up*/down* escape detours and
        # fault reroutes are bounded by the surviving graph's size, so
        # 4 * (sum of extents) + 16 is generous slack for any legal path
        # while still catching unbounded ping-pong.
        self._chk_max_hops = 4 * sum(self.shape.dims) + 16
        self._chk_bound = False
        self._chk_axis: Optional[int] = None
        self._chk_strict_tps = False
        self._chk_vmap = None

    def _chk_bind_program(self) -> None:
        """Sniff the node program (once, at first delivery) for the
        strategy geometry the phase oracles need."""
        self._chk_bound = True
        prog = self._program
        axis = getattr(prog, "linear_axis", None)
        if isinstance(axis, int) and 0 <= axis < self._ndim:
            self._chk_axis = axis
            # Fault-free TPS picks the intermediate on the source's own
            # line; with dead nodes the re-pick may sit anywhere on the
            # destination's line, so only the line-membership half of the
            # invariant survives.
            self._chk_strict_tps = not getattr(prog, "dead_nodes", frozenset())
        vmap = getattr(prog, "map", None)
        if vmap is not None and hasattr(vmap, "row_col"):
            self._chk_vmap = vmap

    # -------------------------------------------------------------- #
    # lifecycle hooks (super() first, then read-only verification)
    # -------------------------------------------------------------- #

    def _launch(self, u: int, d: int, v: int, h: int, vc: int) -> None:
        now = self._now
        busy_before = self._link_busy[u * self._ndirs + d]
        pid = self._P_pid[h]
        super()._launch(u, d, v, h, vc)
        # Tick deltas unscale to exactly the float cycle deltas the
        # pre-SoA oracle accumulated (power-of-two scaling is exact).
        self._chk_busy_total += (
            self._link_busy[u * self._ndirs + d] - now
        ) * TICK_UNSCALE
        if not self.check.credits:
            return
        tok = self._tokens[(v * self._ndirs + (d ^ 1)) * self._nvcs + vc]
        if tok < 0:
            raise InvariantError(
                "credits",
                "downstream credit went negative at launch",
                cycle=now * TICK_UNSCALE, node=u, direction=d, vc=vc,
                tokens=tok, pid=pid,
            )
        if busy_before > now:
            raise InvariantError(
                "credits",
                "launch on a busy link",
                cycle=now * TICK_UNSCALE, node=u, direction=d,
                busy_until=busy_before * TICK_UNSCALE, pid=pid,
            )
        hops = self._P_hops[h]
        if hops > self._chk_max_hops:
            raise InvariantError(
                "credits",
                f"packet exceeded the {self._chk_max_hops}-hop "
                f"routability bound (routing loop?)",
                cycle=now * TICK_UNSCALE, pid=pid, src=self._P_src[h],
                dst=self._P_dst[h], hops=hops,
            )

    def _begin_injection(
        self, u: int, spec: PacketSpec, fifo: int, src: int
    ) -> None:
        super()._begin_injection(u, spec, fifo, src)
        if self.check.credits:
            free = self._fifo_free[u * self._nfifos + fifo]
            if free < 0:
                raise InvariantError(
                    "credits",
                    "injection FIFO slot count went negative",
                    cycle=self._now * TICK_UNSCALE, node=u, fifo=fifo,
                    free=free,
                )

    def _on_arrive(self, v: int, port: int, h: int) -> None:
        super()._on_arrive(v, port, h)
        if not self.check.credits:
            return
        if self._recv_free[v] < 0:
            raise InvariantError(
                "credits",
                "reception slot count went negative",
                cycle=self._now * TICK_UNSCALE, node=v,
                free=self._recv_free[v],
            )
        depth = self._q_n[v * self._nports + port]
        if depth > self._vc_depth:
            raise InvariantError(
                "credits",
                f"VC buffer overfilled beyond its {self._vc_depth}-packet "
                f"depth (credit protocol broken)",
                cycle=self._now * TICK_UNSCALE, node=v,
                in_dir=self._port_dir[port], vc=self._port_vc[port],
                depth=depth,
            )

    def _finish_delivery(self, u: int, h: int) -> None:
        st = self.stats
        delivered0 = st.delivered_packets
        # Snapshot the pool columns up front: the base class returns the
        # handle to the free list once the delivery is consumed.
        seq = self._P_seq[h]
        pid = self._P_pid[h]
        src = self._P_src[h]
        final_dst = self._P_final[h]
        kind = kind_of_tag(self._P_tag[h])
        super()._finish_delivery(u, h)
        if st.delivered_packets == delivered0:
            return  # receiver-side duplicate discard (fault runs)
        chk = self.check
        if chk.exactly_once and seq >= 0:
            if seq in self._chk_seen_seqs:
                raise InvariantError(
                    "exactly_once",
                    "sequenced packet consumed twice (dedup broken)",
                    cycle=self._now * TICK_UNSCALE, node=u, seq=seq,
                    pid=pid, src=src,
                )
            self._chk_seen_seqs.add(seq)
        if chk.phases:
            if not self._chk_bound:
                self._chk_bind_program()
            self._chk_phase(u, kind, src, final_dst, pid)
        if chk.progress:
            self._chk_deliveries += 1
            if self._chk_deliveries % chk.audit_interval == 0:
                self._chk_audit()

    # -------------------------------------------------------------- #
    # oracles
    # -------------------------------------------------------------- #

    def _chk_phase(
        self, u: int, kind: Optional[str], src: int, final_dst: int, pid: int
    ) -> None:
        """Per-strategy phase/geometry invariants at consumption."""
        if kind is None:
            return
        now_f = self._now * TICK_UNSCALE
        if kind == PHASE_DIRECT:
            if u != final_dst:
                raise InvariantError(
                    "phases",
                    "direct packet consumed away from its destination",
                    cycle=now_f, node=u, final_dst=final_dst, pid=pid,
                )
            return
        axis = self._chk_axis
        if kind == PHASE_TPS1 and axis is not None:
            coord = self._coord[axis]
            if coord[u] != coord[final_dst]:
                raise InvariantError(
                    "phases",
                    "TPS phase-1 packet landed off the destination's "
                    "linear line",
                    cycle=now_f, node=u, src=src,
                    final_dst=final_dst, axis=axis, pid=pid,
                )
            if self._chk_strict_tps:
                for a in range(self._ndim):
                    if a == axis:
                        continue
                    if self._coord[a][u] != self._coord[a][src]:
                        raise InvariantError(
                            "phases",
                            "TPS phase-1 packet left its source's plane "
                            "before the linear phase completed",
                            cycle=now_f, node=u, src=src,
                            axis=a, pid=pid,
                        )
        elif kind == PHASE_TPS2 and axis is not None:
            if u != final_dst:
                raise InvariantError(
                    "phases",
                    "TPS phase-2 packet consumed away from its "
                    "destination",
                    cycle=now_f, node=u, final_dst=final_dst, pid=pid,
                )
            coord = self._coord[axis]
            if coord[src] != coord[u]:
                raise InvariantError(
                    "phases",
                    "TPS phase-2 packet crossed linear lines (planar "
                    "phase must be linear-free)",
                    cycle=now_f, node=u, src=src, axis=axis, pid=pid,
                )
        elif kind == PHASE_VMESH1 and self._chk_vmap is not None:
            row_u, _ = self._chk_vmap.row_col(u)
            row_s, _ = self._chk_vmap.row_col(src)
            if row_u != row_s or u != final_dst:
                raise InvariantError(
                    "phases",
                    "VMesh phase-1 packet left its sender's row",
                    cycle=now_f, node=u, src=src, pid=pid,
                )
        elif kind == PHASE_VMESH2 and self._chk_vmap is not None:
            _, col_u = self._chk_vmap.row_col(u)
            _, col_s = self._chk_vmap.row_col(src)
            if col_u != col_s or u != final_dst:
                raise InvariantError(
                    "phases",
                    "VMesh phase-2 packet left its sender's column",
                    cycle=now_f, node=u, src=src, pid=pid,
                )

    def _chk_audit(self) -> None:
        """No-stuck-queue / bounded-resource audit over the whole state."""
        now_f = self._now * TICK_UNSCALE
        vc_depth = self._vc_depth
        for i, t in enumerate(self._tokens):
            if t < 0 or t > vc_depth:
                raise InvariantError(
                    "progress",
                    f"credit count out of [0, {vc_depth}]",
                    cycle=now_f, index=i, tokens=t,
                )
        cap = self.config.injection_fifo_depth
        for i, f in enumerate(self._fifo_free):
            if f < 0 or f > cap:
                raise InvariantError(
                    "progress",
                    f"injection FIFO free count out of [0, {cap}]",
                    cycle=now_f, index=i, free=f,
                )
        rcap = self.config.reception_fifo_depth
        for u, r in enumerate(self._recv_free):
            if r < 0 or r > rcap:
                raise InvariantError(
                    "progress",
                    f"reception free count out of [0, {rcap}]",
                    cycle=now_f, node=u, free=r,
                )
        nports = self._nports
        q_n = self._q_n
        for u in range(self._p):
            base = u * nports
            actual = sum(q_n[base : base + nports])
            if self._queued[u] != actual:
                raise InvariantError(
                    "progress",
                    "queued-packet counter diverged from queue contents "
                    "(stuck queue: arbitration will skip this node)",
                    cycle=now_f, node=u, counter=self._queued[u],
                    actual=actual,
                )

    def _chk_conservation(self) -> None:
        """End-of-run accounting: nothing leaked, everything returned."""
        now_f = self._now * TICK_UNSCALE
        vc_depth = self._vc_depth
        leaked = sum(1 for t in self._tokens if t != vc_depth)
        if leaked:
            raise InvariantError(
                "conservation",
                f"{leaked} VC credit(s) not returned to depth {vc_depth}",
                cycle=now_f,
            )
        cap = self.config.injection_fifo_depth
        if any(f != cap for f in self._fifo_free):
            raise InvariantError(
                "conservation",
                "injection FIFO slots not all returned",
                cycle=now_f,
            )
        rcap = self.config.reception_fifo_depth
        if any(r != rcap for r in self._recv_free):
            raise InvariantError(
                "conservation",
                "reception slots not all returned",
                cycle=now_f,
            )
        st = self.stats
        accounted = st.delivered_packets + st.duplicate_packets + st.lost_packets
        if st.injected_packets != accounted:
            raise InvariantError(
                "conservation",
                "packet conservation broken: injected != delivered + "
                "duplicates + lost",
                injected=st.injected_packets,
                delivered=st.delivered_packets,
                duplicates=st.duplicate_packets,
                lost=st.lost_packets,
            )
        if st.final_deliveries + st.forwarded_packets != st.delivered_packets:
            raise InvariantError(
                "conservation",
                "delivery split broken: final + forwarded != delivered",
                final=st.final_deliveries,
                forwarded=st.forwarded_packets,
                delivered=st.delivered_packets,
            )
        total_busy = sum(self._busy_cycles)
        if abs(total_busy - self._chk_busy_total) > 1e-6 * max(
            1.0, total_busy
        ):
            raise InvariantError(
                "conservation",
                "link-busy accounting diverged from observed launches",
                busy_cycles=total_busy,
                observed=self._chk_busy_total,
            )

    # -------------------------------------------------------------- #
    # result assembly
    # -------------------------------------------------------------- #

    def _result(self) -> SimulationResult:
        chk = self.check
        if chk.progress:
            self._chk_audit()
        if chk.conservation:
            self._chk_conservation()
        return super()._result()


class CheckedTorusNetwork(_CheckedMixin, TorusNetwork):
    """Pristine torus network with invariant oracles layered on."""

    __slots__ = _CHK_SLOTS

    def __init__(
        self,
        shape: TorusShape,
        params: Optional[MachineParams] = None,
        config: Optional[NetworkConfig] = None,
        check: Optional[CheckConfig] = None,
    ) -> None:
        super().__init__(shape, params, config)
        self._init_check(check if check is not None else CheckConfig())


class CheckedFaultyTorusNetwork(_CheckedMixin, FaultyTorusNetwork):
    """Fault-degraded torus network with invariant oracles layered on."""

    __slots__ = _CHK_SLOTS

    def __init__(
        self,
        shape: TorusShape,
        params: Optional[MachineParams] = None,
        config: Optional[NetworkConfig] = None,
        faults: Optional[FaultPlan] = None,
        check: Optional[CheckConfig] = None,
    ) -> None:
        super().__init__(shape, params, config, faults)
        self._init_check(check if check is not None else CheckConfig())


class CheckedInstrumentedTorusNetwork(_CheckedMixin, InstrumentedTorusNetwork):
    """Oracles stacked over the observability-instrumented network."""

    __slots__ = _CHK_SLOTS

    def __init__(
        self,
        shape: TorusShape,
        params: Optional[MachineParams] = None,
        config: Optional[NetworkConfig] = None,
        obs: Optional[ObsConfig] = None,
        check: Optional[CheckConfig] = None,
    ) -> None:
        super().__init__(shape, params, config, obs)
        self._init_check(check if check is not None else CheckConfig())


class CheckedInstrumentedFaultyTorusNetwork(
    _CheckedMixin, InstrumentedFaultyTorusNetwork
):
    """Oracles stacked over the instrumented fault-degraded network."""

    __slots__ = _CHK_SLOTS

    def __init__(
        self,
        shape: TorusShape,
        params: Optional[MachineParams] = None,
        config: Optional[NetworkConfig] = None,
        faults: Optional[FaultPlan] = None,
        obs: Optional[ObsConfig] = None,
        check: Optional[CheckConfig] = None,
    ) -> None:
        super().__init__(shape, params, config, faults, obs)
        self._init_check(check if check is not None else CheckConfig())
