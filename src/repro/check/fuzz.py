"""Seeded, time-boxed differential fuzzing of the whole stack.

Samples random configurations — shapes (including degenerate, asymmetric
and extent-1 axes, torus and mesh), strategies, message sizes, seeds and
fault plans — and pushes each through :func:`repro.check.differential
.differential_points`: oracle-checked simulation, model tolerance band,
functional payload-permutation check.  Any divergence is **shrunk** to a
minimal still-failing configuration and printed as a one-line reproducer::

    REPRODUCER: python -m repro.check.fuzz --case 'AR@4x4/m8/s0/fp0.05,t2000'

Run it time-boxed (CI runs a fixed seed for 60 s)::

    python -m repro.check.fuzz --budget 60s --seed 7

Every case is a short spec string — ``STRAT@SHAPE/mBYTES/sSEED[/fFAULTS]``
with strategy codes AR, DR, THR, MPI, TPS[.axN], CTPS[.axN], VM; shapes in
:meth:`~repro.model.torus.TorusShape.parse` grammar; and fault fields
``n`` (dead-node fraction), ``l`` (dead-link fraction), ``p`` (loss
probability), ``d`` (degraded fraction), ``s`` (fault seed), ``t``
(retransmission timeout, cycles).  ``--case`` replays one spec exactly;
``--self-test`` sabotages the receiver-side dedup in-process and proves
the exactly-once oracle catches it and the shrinker still produces a
one-liner (CI runs this before the clean sweep).
"""

from __future__ import annotations

import argparse
import contextlib
import random
import sys
import time
from dataclasses import dataclass, field, replace
from typing import Iterator, Optional

from repro.check.config import CheckConfig
from repro.check.differential import (
    DifferentialReport,
    ToleranceBands,
    differential_points,
)
from repro.model.torus import TorusShape
from repro.runner.supervise import PointTimeoutError, watchdog
from repro.net.errors import PartitionedNetworkError
from repro.net.faults import FaultPlan
from repro.strategies import (
    ARDirect,
    CreditedTPS,
    DRDirect,
    MPIDirect,
    ThrottledAR,
    TwoPhaseSchedule,
    VirtualMesh2D,
)

#: Fault-spec fields, in canonical spec order.
_FAULT_KEYS = ("n", "l", "p", "d", "s", "t")
_FAULT_DEFAULTS = {"n": 0.0, "l": 0.0, "p": 0.0, "d": 0.0, "s": 0, "t": 50000.0}


@dataclass(frozen=True)
class FuzzCase:
    """One fuzzed configuration, round-trippable through its spec string."""

    strat: str  # AR | DR | THR | MPI | TPS[.axN] | CTPS[.axN] | VM
    shape: str  # TorusShape.parse grammar, e.g. "2x4x4" or "8x8M"
    msg_bytes: int
    seed: int = 0
    #: Fault fields (subset of _FAULT_KEYS); empty dict = fault-free.
    faults: dict = field(default_factory=dict, hash=False, compare=False)
    _fault_items: tuple = field(default=(), init=False)

    def __post_init__(self) -> None:
        # Frozen-dataclass hashability: mirror the dict as a sorted tuple.
        clean = {
            k: v
            for k, v in self.faults.items()
            if v != _FAULT_DEFAULTS[k] or k in ("s", "t")
        }
        if not any(
            clean.get(k, 0) for k in ("n", "l", "p", "d")
        ):
            clean = {}
        object.__setattr__(self, "faults", clean)
        object.__setattr__(
            self, "_fault_items", tuple(sorted(clean.items()))
        )

    def __hash__(self) -> int:
        return hash(
            (self.strat, self.shape, self.msg_bytes, self.seed,
             self._fault_items)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FuzzCase):
            return NotImplemented
        return (
            self.strat, self.shape, self.msg_bytes, self.seed,
            self._fault_items,
        ) == (
            other.strat, other.shape, other.msg_bytes, other.seed,
            other._fault_items,
        )

    # ---------------------------------------------------------- #
    # spec grammar
    # ---------------------------------------------------------- #

    def spec(self) -> str:
        """The one-line reproducer form of this case."""
        parts = [
            f"{self.strat}@{self.shape}",
            f"m{self.msg_bytes}",
            f"s{self.seed}",
        ]
        if self.faults:
            fields = []
            for key in _FAULT_KEYS:
                if key in self.faults:
                    val = self.faults[key]
                    fields.append(f"{key}{val:g}")
            parts.append("f" + ",".join(fields))
        return "/".join(parts)

    @classmethod
    def parse(cls, spec: str) -> "FuzzCase":
        """Inverse of :meth:`spec`; raises ValueError on a malformed
        string."""
        head, *rest = spec.strip().split("/")
        if "@" not in head:
            raise ValueError(f"bad case spec {spec!r}: missing STRAT@SHAPE")
        strat, shape = head.split("@", 1)
        msg_bytes = seed = None
        faults: dict = {}
        for part in rest:
            if not part:
                raise ValueError(f"bad case spec {spec!r}: empty segment")
            tag, body = part[0], part[1:]
            if tag == "m":
                msg_bytes = int(body)
            elif tag == "s":
                seed = int(body)
            elif tag == "f":
                for item in body.split(","):
                    key, value = item[0], item[1:]
                    if key not in _FAULT_KEYS:
                        raise ValueError(
                            f"bad fault field {item!r} in {spec!r}"
                        )
                    faults[key] = (
                        int(value) if key == "s" else float(value)
                    )
            else:
                raise ValueError(f"bad segment {part!r} in {spec!r}")
        if msg_bytes is None or seed is None:
            raise ValueError(f"bad case spec {spec!r}: need /m and /s")
        return cls(strat, shape, msg_bytes, seed, faults)

    # ---------------------------------------------------------- #
    # materialization
    # ---------------------------------------------------------- #

    def strategy(self):
        code, _, ax = self.strat.partition(".ax")
        axis = int(ax) if ax else None
        if code == "AR":
            return ARDirect()
        if code == "DR":
            return DRDirect()
        if code == "THR":
            return ThrottledAR()
        if code == "MPI":
            return MPIDirect()
        if code == "TPS":
            return TwoPhaseSchedule(linear_axis=axis)
        if code == "CTPS":
            return CreditedTPS(linear_axis=axis)
        if code == "VM":
            return VirtualMesh2D()
        raise ValueError(f"unknown strategy code {self.strat!r}")

    def torus_shape(self) -> TorusShape:
        return TorusShape.parse(self.shape)

    def fault_plan(self) -> Optional[FaultPlan]:
        if not self.faults:
            return None
        f = dict(_FAULT_DEFAULTS, **self.faults)
        return FaultPlan.random(
            self.torus_shape(),
            seed=int(f["s"]),
            dead_node_fraction=f["n"],
            dead_link_fraction=f["l"],
            loss_prob=f["p"],
            degraded_fraction=f["d"],
            retx_timeout_cycles=f["t"],
        )

    def to_point(self):
        from repro.runner.point import SimPoint

        return SimPoint(
            self.strategy(),
            self.torus_shape(),
            self.msg_bytes,
            None,
            None,
            self.seed,
            self.fault_plan(),
        )


class InvalidCase(Exception):
    """The case cannot be materialized (e.g. the fault fractions
    partition this shape) — not a finding, just an unlucky draw."""


def run_cases(
    cases: list,
    bands: Optional[ToleranceBands] = None,
    check: Optional[CheckConfig] = None,
    jobs: int = 1,
) -> list:
    """Differentially check *cases*; one report per case, in order.

    Materialization errors (ValueError / PartitionedNetworkError from an
    unluckily-drawn config) surface as :class:`InvalidCase`."""
    points = []
    for case in cases:
        try:
            points.append(case.to_point())
        except (ValueError, PartitionedNetworkError) as exc:
            raise InvalidCase(f"{case.spec()}: {exc}") from exc
    return differential_points(points, bands=bands, check=check, jobs=jobs)


def _run_one(
    case: FuzzCase,
    bands: Optional[ToleranceBands] = None,
    check: Optional[CheckConfig] = None,
) -> Optional[DifferentialReport]:
    """One case's report, or None when the case is invalid."""
    try:
        return run_cases([case], bands=bands, check=check)[0]
    except InvalidCase:
        return None


# ------------------------------------------------------------------ #
# sampling
# ------------------------------------------------------------------ #

_EXTENTS = (1, 2, 3, 4, 5, 8)
_MSG_SIZES = (8, 17, 64, 100, 256, 512, 1024, 2048, 4096)
_MAX_NODES = 64


def sample_case(rng: random.Random) -> FuzzCase:
    """Draw one configuration: shape (1–3 dims, extent-1 and mesh axes
    allowed, ≤ 64 nodes), a strategy that supports it, message size,
    seed, and — with probability ~0.4 — a connected fault plan."""
    while True:
        ndim = rng.choice((1, 2, 3))
        dims = []
        for _ in range(ndim):
            dims.append(rng.choice(_EXTENTS))
        nnodes = 1
        for d in dims:
            nnodes *= d
        if nnodes < 2 or nnodes > _MAX_NODES:
            continue
        shape_s = "x".join(
            str(d) + ("M" if rng.random() < 0.25 else "")
            for d in dims
        )
        shape = TorusShape.parse(shape_s)

        codes = ["AR", "DR", "THR", "MPI", "VM"]
        if ndim >= 2:
            codes += ["TPS", "CTPS"]
        strat = rng.choice(codes)
        if strat in ("TPS", "CTPS") and rng.random() < 0.5:
            # Force the linear axis sometimes (only onto a non-degenerate
            # axis; the paper rule would never pick an extent-1 line).
            wide = [a for a, d in enumerate(dims) if d >= 2]
            if wide:
                strat += f".ax{rng.choice(wide)}"

        msg = rng.choice(_MSG_SIZES)
        seed = rng.randrange(1000)

        faults: dict = {}
        if rng.random() < 0.4:
            faults = {
                "s": rng.randrange(100),
                "t": rng.choice((2000.0, 50000.0)),
            }
            if rng.random() < 0.4 and strat != "VM" and nnodes >= 8:
                faults["n"] = 0.1
            if rng.random() < 0.5:
                faults["l"] = rng.choice((0.05, 0.1))
            if rng.random() < 0.5:
                faults["p"] = rng.choice((0.02, 0.05))
            if rng.random() < 0.3:
                faults["d"] = 0.25

        case = FuzzCase(strat, shape_s, msg, seed, faults)
        try:
            strategy = case.strategy()
            if not strategy.supports(shape):
                continue
            case.fault_plan()  # connectivity rejection happens here
        except (ValueError, PartitionedNetworkError):
            continue
        return case


# ------------------------------------------------------------------ #
# shrinking
# ------------------------------------------------------------------ #

def _shrink_candidates(case: FuzzCase) -> Iterator[FuzzCase]:
    """Strictly-simpler variants of *case*, most aggressive first."""
    if case.faults:
        yield replace(case, faults={})
        for key in ("n", "l", "p", "d"):
            if case.faults.get(key):
                f = dict(case.faults)
                f.pop(key)
                yield replace(case, faults=f)
        if case.faults.get("s"):
            yield replace(case, faults=dict(case.faults, s=0))
    if case.msg_bytes > 8:
        yield replace(case, msg_bytes=max(8, case.msg_bytes // 2))
    dims = case.shape.replace("M", " M").split("x")
    parsed = [
        (int(d.split()[0]), d.endswith("M")) for d in [s.strip() for s in dims]
    ]
    for i, (extent, mesh) in enumerate(parsed):
        if extent >= 2:
            smaller = list(parsed)
            smaller[i] = (extent // 2, mesh)
            nnodes = 1
            for e, _ in smaller:
                nnodes *= e
            if nnodes >= 2:  # a 1-node "exchange" is vacuous, not smaller
                shape_s = "x".join(
                    f"{e}{'M' if m else ''}" for e, m in smaller
                )
                yield replace(case, shape=shape_s)
    if case.seed != 0:
        yield replace(case, seed=0)


def shrink(
    case: FuzzCase,
    bands: Optional[ToleranceBands] = None,
    check: Optional[CheckConfig] = None,
    max_evals: int = 48,
    case_timeout: Optional[float] = None,
) -> tuple[FuzzCase, int]:
    """Greedily reduce *case* to a minimal still-failing config.

    Returns ``(smallest failing case, evaluations spent)``.  Candidates
    that become valid-and-passing (or invalid) are skipped; the first
    still-failing candidate restarts the walk from there.  With
    *case_timeout* set, a candidate that hangs past it is skipped like
    a passing one — the shrinker keeps the last *reproducibly* failing
    case rather than stalling the whole budget."""
    evals = 0
    while evals < max_evals:
        for candidate in _shrink_candidates(case):
            if candidate == case:
                continue
            evals += 1
            try:
                with watchdog(case_timeout, f"shrink {candidate.spec()}"):
                    report = _run_one(candidate, bands=bands, check=check)
            except PointTimeoutError:
                report = None
            if report is not None and not report.ok:
                case = candidate
                break
            if evals >= max_evals:
                return case, evals
        else:
            break  # no candidate still fails: minimal
    return case, evals


# ------------------------------------------------------------------ #
# self-test sabotage
# ------------------------------------------------------------------ #

@contextlib.contextmanager
def broken_dedup() -> Iterator[None]:
    """Sabotage the receiver-side dedup for the dynamic extent of the
    block: duplicate sequence numbers reach the program twice, which the
    ``exactly_once`` oracle must catch.  In-process only (the self-test
    runs its points sequentially, never on the pool)."""
    from repro.net.faultsim import FaultyTorusNetwork
    from repro.net.simulator import TorusNetwork

    def sabotaged(self, u, h):
        seq = self._P_seq[h]
        if seq >= 0:
            # The bug under injection: record the seq but never check it.
            self._delivered_seqs.add(seq)
            self._outstanding.pop(seq, None)
        TorusNetwork._finish_delivery(self, u, h)

    original = FaultyTorusNetwork._finish_delivery
    FaultyTorusNetwork._finish_delivery = sabotaged
    try:
        yield
    finally:
        FaultyTorusNetwork._finish_delivery = original


#: A case whose loss rate + tight retransmission timeout reliably races
#: retransmitted twins against slow originals (thousands of duplicates).
_SELF_TEST_CASE = "AR@4x4x2/m256/s1/fp0.05,s3,t2000"


def self_test(verbose: bool = False) -> int:
    """Prove the harness catches an injected invariant violation.

    Sabotages dedup, checks the oracle trips on a duplicate-heavy case,
    then shrinks it to a one-line reproducer.  Returns a process exit
    code (0 = the oracle caught the bug)."""
    case = FuzzCase.parse(_SELF_TEST_CASE)
    with broken_dedup():
        report = _run_one(case)
        if report is None or report.ok:
            print("SELF-TEST FAILED: sabotaged dedup was not detected")
            return 1
        if not any("exactly_once" in f for f in report.failures):
            print(
                "SELF-TEST FAILED: sabotage detected but not by the "
                f"exactly-once oracle: {report.failures}"
            )
            return 1
        if verbose:
            print(f"sabotage detected: {report.failures[0][:120]}")
        small, evals = shrink(case)
        small_report = _run_one(small)
    if small_report is None or small_report.ok:
        print("SELF-TEST FAILED: shrunk case does not reproduce")
        return 1
    print(
        f"self-test OK: injected dedup bug caught by the exactly_once "
        f"oracle and shrunk in {evals} evals"
    )
    print(f"REPRODUCER: python -m repro.check.fuzz --case '{small.spec()}'")
    return 0


# ------------------------------------------------------------------ #
# driver
# ------------------------------------------------------------------ #

def parse_budget(text: str) -> float:
    """'60s', '2m' or plain seconds -> seconds."""
    text = text.strip().lower()
    mult = 1.0
    if text.endswith("s"):
        text = text[:-1]
    elif text.endswith("m"):
        text, mult = text[:-1], 60.0
    try:
        value = float(text) * mult
    except ValueError:
        raise ValueError(f"bad budget {text!r}") from None
    if value <= 0:
        raise ValueError("budget must be positive")
    return value


def fuzz(
    budget_s: float,
    seed: int,
    max_cases: Optional[int] = None,
    jobs: int = 1,
    verbose: bool = False,
    case_timeout: Optional[float] = 30.0,
) -> int:
    """Time-boxed random sweep; returns a process exit code.

    *case_timeout* bounds the wall clock each sampled case may consume
    (scaled by batch size when ``jobs > 1`` batches cases together), so
    one pathological draw — e.g. heavy loss against a tight
    retransmission timeout — cannot eat the whole budget.  A case
    skipped on the watchdog is reported with its replay spec and does
    not fail the run; skips are counted in the final summary."""
    rng = random.Random(seed)
    bands = None  # default_bands(), resolved inside the legs
    check = CheckConfig()
    deadline = time.monotonic() + budget_s
    cases_run = 0
    skipped = 0
    batch_size = max(1, jobs)
    while time.monotonic() < deadline:
        if max_cases is not None and cases_run >= max_cases:
            break
        batch = [sample_case(rng) for _ in range(batch_size)]
        if max_cases is not None:
            batch = batch[: max_cases - cases_run]
        batch_timeout = case_timeout * len(batch) if case_timeout else None
        try:
            with watchdog(batch_timeout, "fuzz batch"):
                reports = run_cases(
                    batch, bands=bands, check=check, jobs=jobs
                )
        except InvalidCase as exc:
            if verbose:
                print(f"skip invalid: {exc}")
            continue
        except PointTimeoutError:
            cases_run += len(batch)
            skipped += len(batch)
            print(
                f"TIMEOUT: batch of {len(batch)} case(s) exceeded the "
                f"{batch_timeout:g}s watchdog; skipped"
            )
            for case in batch:
                print(
                    "  REPLAY: python -m repro.check.fuzz "
                    f"--case '{case.spec()}'"
                )
            continue
        for case, report in zip(batch, reports):
            cases_run += 1
            if verbose:
                print(report.summary())
            if report.ok:
                continue
            print(f"FAILURE after {cases_run} case(s): {case.spec()}")
            for failure in report.failures:
                print(f"  - {failure}")
            small, evals = shrink(
                case, bands=bands, check=check, case_timeout=case_timeout
            )
            print(f"shrunk in {evals} evals: {small.spec()}")
            print(
                "REPRODUCER: python -m repro.check.fuzz "
                f"--case '{small.spec()}'"
            )
            return 1
    elapsed = budget_s - max(0.0, deadline - time.monotonic())
    note = f", {skipped} skipped on the watchdog" if skipped else ""
    print(
        f"fuzz clean: {cases_run} case(s) in {elapsed:.1f}s "
        f"(seed {seed}, all three engines agree{note})"
    )
    return 0


def replay(spec: str, verbose: bool = False) -> int:
    """Re-run one case spec exactly; returns a process exit code."""
    case = FuzzCase.parse(spec)
    report = _run_one(case)
    if report is None:
        print(f"invalid case (cannot materialize): {spec}")
        return 2
    print(report.summary())
    return 0 if report.ok else 1


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check.fuzz",
        description="Differential fuzzing: simulator vs model vs "
        "functional engine, with invariant oracles on.",
    )
    parser.add_argument(
        "--budget", default="60s",
        help="wall-clock budget, e.g. 60s or 2m (default 60s)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="sampler seed (default 0)"
    )
    parser.add_argument(
        "--max-cases", type=int, default=None,
        help="stop after this many cases even if budget remains",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="simulator legs per pooled batch (default 1, in-process)",
    )
    parser.add_argument(
        "--case-timeout", type=float, default=30.0, metavar="SECONDS",
        help="wall-clock watchdog per sampled case (default 30; "
        "0 disables) — a hung case is skipped and reported with its "
        "replay spec instead of eating the budget",
    )
    parser.add_argument(
        "--case", default=None, metavar="SPEC",
        help="replay one case spec instead of sampling",
    )
    parser.add_argument(
        "--self-test", action="store_true",
        help="inject a dedup bug and prove the oracle + shrinker catch it",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="print every case verdict",
    )
    args = parser.parse_args(argv)
    if args.self_test:
        return self_test(verbose=args.verbose)
    if args.case is not None:
        return replay(args.case, verbose=args.verbose)
    return fuzz(
        parse_budget(args.budget),
        args.seed,
        max_cases=args.max_cases,
        jobs=args.jobs,
        verbose=args.verbose,
        case_timeout=args.case_timeout or None,
    )


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
