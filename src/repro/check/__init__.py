"""Differential verification: invariant oracles, cross-checks, fuzzing.

Three independent implementations of the same all-to-all semantics live in
this repository — the packet simulator (:mod:`repro.net`), the analytic
model family (:mod:`repro.model` via each strategy's ``predict_cycles``)
and the functional data engine (:mod:`repro.functional`).  This package
checks them against each other:

* :mod:`repro.check.oracle` — runtime **invariant oracles** layered over
  the simulator via subclassing (the same zero-cost-when-off pattern as
  :mod:`repro.net.instrumented`): packet conservation, exactly-once
  delivery under faults, credit non-negativity, queue/counter consistency
  (the no-stuck-queue audit) and per-strategy phase invariants (TPS
  linear-before-plane, VMesh mesh membership).
* :mod:`repro.check.differential` — one :class:`~repro.runner.SimPoint`
  run through simulator, analytic model (within tolerance bands, see
  DESIGN.md section 11) and functional engine, any divergence reported
  with the full configuration.
* :mod:`repro.check.fuzz` — a seeded, time-boxed fuzz driver
  (``python -m repro.check.fuzz --budget 60s --seed N``) that samples
  shapes, strategies, message sizes and fault plans, and shrinks any
  failing case to a one-line reproducer.
"""

from repro.check.config import CheckConfig
from repro.check.context import active_check, checking
from repro.check.differential import (
    DifferentialReport,
    ToleranceBands,
    default_bands,
    differential_point,
    differential_points,
    functional_leg,
    model_leg,
)
from repro.check.oracle import (
    CheckedFaultyTorusNetwork,
    CheckedTorusNetwork,
    InvariantError,
)

__all__ = [
    "CheckConfig",
    "CheckedFaultyTorusNetwork",
    "CheckedTorusNetwork",
    "DifferentialReport",
    "InvariantError",
    "ToleranceBands",
    "active_check",
    "checking",
    "default_bands",
    "differential_point",
    "differential_points",
    "functional_leg",
    "model_leg",
]
