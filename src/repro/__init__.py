"""repro — reproduction of Kumar & Heidelberger, *Optimization of All-to-All
Communication on the Blue Gene/L Supercomputer* (ICPP 2008).

The package provides:

* :mod:`repro.model` — the paper's analytic cost models (Eq. 1-4) and
  exact link-load / contention analysis;
* :mod:`repro.net` — a packet-level discrete-event simulator of the BG/L
  torus router (dynamic + bubble VCs, adaptive JSQ and deterministic
  routing, token flow control, injection-FIFO groups, a 4-link CPU);
* :mod:`repro.strategies` — the paper's all-to-all algorithms: direct
  (MPI-style, AR, DR, throttled AR) and indirect (Two-Phase Schedule,
  2-D Virtual Mesh), plus the auto-selector and credit flow control;
* :mod:`repro.functional` — an untimed engine that runs the same schedules
  over real NumPy buffers to verify data correctness;
* :mod:`repro.runtime` — an mpi4py-flavoured ``Communicator`` facade;
* :mod:`repro.experiments` — drivers regenerating every table and figure
  of the paper's evaluation.

Quickstart::

    from repro import TorusShape, simulate_alltoall
    from repro.strategies import TwoPhaseSchedule

    shape = TorusShape.parse("8x8x16")
    run = simulate_alltoall(TwoPhaseSchedule(), shape, msg_bytes=1024)
    print(run.percent_of_peak)
"""

from repro.model import MachineParams, TorusShape
from repro.api import AllToAllRun, predict_alltoall, simulate_alltoall

__version__ = "1.0.0"

__all__ = [
    "MachineParams",
    "TorusShape",
    "AllToAllRun",
    "simulate_alltoall",
    "predict_alltoall",
    "__version__",
]
