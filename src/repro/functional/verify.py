"""All-to-all personalized-exchange correctness verification.

Checks the exchange postcondition over a :class:`FunctionalResult`: every
ordered pair (src, dst), src != dst, delivered *exactly* the byte range
[0, m) of src's message for dst — full coverage, no overlap, no stray or
misdelivered chunks.  This is the invariant the property-based tests drive
across strategies, shapes, message sizes and seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.functional.engine import FunctionalEngine, FunctionalResult
from repro.model.machine import MachineParams
from repro.model.torus import TorusShape
from repro.net.faults import FaultPlan


@dataclass
class VerificationReport:
    """Outcome of verifying one functional execution."""

    ok: bool
    missing_pairs: list[tuple[int, int]] = field(default_factory=list)
    bad_coverage: list[tuple[int, int, str]] = field(default_factory=list)
    unexpected_pairs: list[tuple[int, int]] = field(default_factory=list)

    def summary(self) -> str:
        """One-line human-readable verdict."""
        if self.ok:
            return "all-to-all exchange verified: every pair covered exactly once"
        return (
            f"FAILED: {len(self.missing_pairs)} missing pairs, "
            f"{len(self.bad_coverage)} mis-covered pairs, "
            f"{len(self.unexpected_pairs)} unexpected pairs"
        )


def verify_exchange(
    result: FunctionalResult,
    nnodes: int,
    msg_bytes: int,
    dead_nodes: frozenset[int] | set[int] = frozenset(),
) -> VerificationReport:
    """Verify the all-to-all postcondition on *result*.

    ``dead_nodes`` restricts the exchange to the surviving ranks: pairs
    touching a dead rank are not required, and any data delivered for such
    a pair is flagged as unexpected."""
    report = VerificationReport(ok=True)
    seen = set(result.received.keys())
    for (src, dst), chunks in result.received.items():
        if (
            src == dst
            or not (0 <= src < nnodes)
            or not (0 <= dst < nnodes)
            or src in dead_nodes
            or dst in dead_nodes
        ):
            report.unexpected_pairs.append((src, dst))
            continue
        intervals = sorted((c.offset, c.offset + c.nbytes) for c in chunks)
        pos = 0
        problem = None
        for lo, hi in intervals:
            if lo < pos:
                problem = f"overlap at byte {lo}"
                break
            if lo > pos:
                problem = f"gap at byte {pos}"
                break
            pos = hi
        if problem is None and pos != msg_bytes:
            problem = f"covered {pos} of {msg_bytes} bytes"
        if problem is not None:
            report.bad_coverage.append((src, dst, problem))
    for src in range(nnodes):
        if src in dead_nodes:
            continue
        for dst in range(nnodes):
            if dst in dead_nodes:
                continue
            if src != dst and (src, dst) not in seen:
                report.missing_pairs.append((src, dst))
    report.ok = not (
        report.missing_pairs or report.bad_coverage or report.unexpected_pairs
    )
    return report


def run_and_verify(
    strategy,
    shape: TorusShape,
    msg_bytes: int,
    params: MachineParams | None = None,
    seed: int = 0,
    faults: "FaultPlan | None" = None,
) -> tuple[FunctionalResult, VerificationReport]:
    """Build a data-carrying program for *strategy*, execute it functionally
    and verify the exchange.  The one-call correctness check used by tests
    and examples.

    With ``faults``, the program is built fault-aware, the engine emulates
    packet loss + retransmission + dedup, and the postcondition is checked
    over the surviving ranks only."""
    params = params or MachineParams.bluegene_l()
    program = strategy.build_program(
        shape, msg_bytes, params, seed, carry_data=True, faults=faults
    )
    result = FunctionalEngine(shape, faults=faults).execute(program)
    dead = faults.dead_nodes if faults is not None else frozenset()
    report = verify_exchange(result, shape.nnodes, msg_bytes, dead_nodes=dead)
    return result, report
