"""Untimed functional executor: runs a node program over real data.

The timed simulator answers "how long does this schedule take"; this engine
answers "does this schedule move every byte to the right place".  It
executes the same :class:`~repro.net.program.NodeProgram` objects —
injection plans plus delivery/forwarding hooks — but delivers instantly,
collecting the :class:`~repro.strategies.data.DataChunk` descriptors each
packet carries.  :mod:`repro.functional.verify` then checks the all-to-all
postcondition: for every ordered pair (src, dst), dst received exactly the
bytes [0, m) of src's message, exactly once.

Programs must be built with ``carry_data=True``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.model.torus import TorusShape
from repro.net.packet import Packet, PacketSpec
from repro.strategies.data import DataChunk, chunks_of
from repro.util.validation import require


@dataclass
class FunctionalResult:
    """Outcome of one functional execution."""

    #: chunks consumed at their destination, per (src, dst) pair.
    received: dict[tuple[int, int], list[DataChunk]]
    packets_delivered: int = 0
    packets_forwarded: int = 0
    max_forward_depth: int = 0
    #: peak per-node intermediate buffering, in chunk-bytes (the space cost
    #: Section 4 warns about: indirect strategies double buffering).
    peak_intermediate_bytes: int = 0


class FunctionalEngine:
    """Executes a node program's data movement without timing."""

    def __init__(self, shape: TorusShape) -> None:
        self.shape = shape

    def execute(self, program) -> FunctionalResult:
        """Run *program* to quiescence and collect delivered chunks."""
        p = self.shape.nnodes
        received: dict[tuple[int, int], list[DataChunk]] = {}
        result = FunctionalResult(received=received)
        pending: deque[tuple[int, Packet, int]] = deque()
        pid = 0
        intermediate_bytes = [0] * p

        def materialize(src: int, spec: PacketSpec, depth: int) -> None:
            nonlocal pid
            pkt = Packet.from_spec(pid, src, spec, 0.0)
            pid += 1
            pending.append((spec.dst, pkt, depth))

        for node in range(p):
            for spec in program.injection_plan(node):
                materialize(node, spec, 0)

        while pending:
            node, pkt, depth = pending.popleft()
            result.packets_delivered += 1
            if depth > result.max_forward_depth:
                result.max_forward_depth = depth
            consumed_here = 0
            for chunk in chunks_of(pkt):
                if chunk.dst == node:
                    received.setdefault((chunk.src, chunk.dst), []).append(chunk)
                    consumed_here += chunk.nbytes
            forwards = program.on_delivery(node, pkt, 0.0)
            carried = sum(c.nbytes for c in chunks_of(pkt))
            if pkt.final_dst != node or carried > consumed_here:
                # Intermediate buffering: everything not consumed here.
                intermediate_bytes[node] += carried - consumed_here
                if intermediate_bytes[node] > result.peak_intermediate_bytes:
                    result.peak_intermediate_bytes = intermediate_bytes[node]
            for spec in forwards:
                result.packets_forwarded += 1
                materialize(node, spec, depth + 1)
        return result
