"""Untimed functional executor: runs a node program over real data.

The timed simulator answers "how long does this schedule take"; this engine
answers "does this schedule move every byte to the right place".  It
executes the same :class:`~repro.net.program.NodeProgram` objects —
injection plans plus delivery/forwarding hooks — but delivers instantly,
collecting the :class:`~repro.strategies.data.DataChunk` descriptors each
packet carries.  :mod:`repro.functional.verify` then checks the all-to-all
postcondition: for every ordered pair (src, dst), dst received exactly the
bytes [0, m) of src's message, exactly once.

A :class:`~repro.net.faults.FaultPlan` with packet loss can be attached:
the engine then emulates the lossy wire plus the simulator's reliability
layer — each packet is delivered only after a geometric number of
(re)transmissions, with a deterministic chance that a slow original *and*
its retransmission both arrive, exercising receiver-side dedup.  The data
postcondition must hold regardless, which is exactly what end-to-end
reliability promises.  Dead nodes must already be excluded by the program
(fault-aware strategies guarantee this); the engine raises if a packet
originates at or targets a dead rank.

Programs must be built with ``carry_data=True``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.model.torus import TorusShape
from repro.net.faults import FaultPlan
from repro.net.packet import Packet, PacketSpec
from repro.strategies.data import DataChunk, chunks_of
from repro.util.rng import derive_rng
from repro.util.validation import require


@dataclass
class FunctionalResult:
    """Outcome of one functional execution."""

    #: chunks consumed at their destination, per (src, dst) pair.
    received: dict[tuple[int, int], list[DataChunk]]
    packets_delivered: int = 0
    packets_forwarded: int = 0
    max_forward_depth: int = 0
    #: peak per-node intermediate buffering, in chunk-bytes (the space cost
    #: Section 4 warns about: indirect strategies double buffering).
    peak_intermediate_bytes: int = 0
    #: loss emulation: transmissions dropped / extra sends / dups discarded.
    packets_lost: int = 0
    packets_retransmitted: int = 0
    duplicates_discarded: int = 0


class FunctionalEngine:
    """Executes a node program's data movement without timing.

    ``faults`` enables the loss/reliability emulation described in the
    module docstring; ``None`` or a loss-free plan executes exactly as
    before.
    """

    def __init__(
        self, shape: TorusShape, faults: Optional[FaultPlan] = None
    ) -> None:
        self.shape = shape
        self.faults = faults

    def execute(self, program) -> FunctionalResult:
        """Run *program* to quiescence and collect delivered chunks."""
        p = self.shape.nnodes
        received: dict[tuple[int, int], list[DataChunk]] = {}
        result = FunctionalResult(received=received)
        pending: deque[tuple[int, Packet, int]] = deque()
        pid = 0
        intermediate_bytes = [0] * p

        faults = self.faults
        lossy = faults is not None and faults.has_loss
        dead = faults.dead_nodes if faults is not None else frozenset()
        rng = derive_rng(faults.seed, "functional-loss") if lossy else None
        loss_p = faults.loss_prob if faults is not None else 0.0
        delivered_pids: set[int] = set()

        def materialize(src: int, spec: PacketSpec, depth: int) -> None:
            nonlocal pid
            require(
                src not in dead and spec.dst not in dead,
                f"packet {src} -> {spec.dst} touches a dead node; the "
                f"program was not built with the fault plan",
            )
            pkt = Packet.from_spec(pid, src, spec, 0.0)
            pid += 1
            pending.append((spec.dst, pkt, depth))
            if lossy and loss_p > 0.0:
                # Emulate the lossy wire + sender retransmission: each
                # transmission is lost with probability loss_p and simply
                # re-sent (geometric), and occasionally a retransmission
                # races an original that was only slow — both arrive and
                # the receiver must dedup.
                while rng.random() < loss_p:
                    result.packets_lost += 1
                    result.packets_retransmitted += 1
                if rng.random() < loss_p:
                    result.packets_retransmitted += 1
                    pending.append((spec.dst, pkt, depth))

        for node in range(p):
            for spec in program.injection_plan(node):
                materialize(node, spec, 0)

        while pending:
            node, pkt, depth = pending.popleft()
            if lossy:
                if pkt.pid in delivered_pids:
                    # Receiver-side dedup: the logical packet was already
                    # consumed; its duplicate twin is dropped silently.
                    result.duplicates_discarded += 1
                    continue
                delivered_pids.add(pkt.pid)
            result.packets_delivered += 1
            if depth > result.max_forward_depth:
                result.max_forward_depth = depth
            consumed_here = 0
            for chunk in chunks_of(pkt):
                if chunk.dst == node:
                    received.setdefault((chunk.src, chunk.dst), []).append(chunk)
                    consumed_here += chunk.nbytes
            forwards = program.on_delivery(node, pkt, 0.0)
            carried = sum(c.nbytes for c in chunks_of(pkt))
            if pkt.final_dst != node or carried > consumed_here:
                # Intermediate buffering: everything not consumed here.
                intermediate_bytes[node] += carried - consumed_here
                if intermediate_bytes[node] > result.peak_intermediate_bytes:
                    result.peak_intermediate_bytes = intermediate_bytes[node]
            for spec in forwards:
                result.packets_forwarded += 1
                materialize(node, spec, depth + 1)
        return result
