"""Untimed data-movement execution and exchange verification."""

from repro.functional.engine import FunctionalEngine, FunctionalResult
from repro.functional.verify import (
    VerificationReport,
    run_and_verify,
    verify_exchange,
)

__all__ = [
    "FunctionalEngine",
    "FunctionalResult",
    "VerificationReport",
    "run_and_verify",
    "verify_exchange",
]
