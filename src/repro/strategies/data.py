"""Payload descriptors carried by packets for data-correctness execution.

The timed simulator treats packet tags as opaque.  The functional engine
(:mod:`repro.functional`) instead interprets tags that carry
:class:`DataChunk` descriptors to verify that every strategy moves every
byte of the all-to-all exactly once to exactly the right rank.

A chunk describes ``nbytes`` of rank *src*'s message to rank *dst*,
starting at byte *offset* of that message.  Combined messages (VMesh) carry
several chunks per packet; direct and TPS packets carry one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.net.packet import Packet


@dataclass(frozen=True)
class DataChunk:
    """A contiguous piece of one (src, dst) all-to-all message."""

    src: int
    dst: int
    offset: int
    nbytes: int

    def __post_init__(self) -> None:
        if self.offset < 0 or self.nbytes <= 0:
            raise ValueError("chunk must have offset >= 0 and nbytes > 0")


@dataclass(frozen=True)
class ChunkTag:
    """Packet tag carrying data chunks plus a strategy-specific marker.

    ``kind`` identifies the traffic class (``"direct"``, ``"tps1"``,
    ``"vmesh1"``, ...) so forwarding hooks can dispatch without inspecting
    chunk contents.
    """

    kind: str
    chunks: tuple[DataChunk, ...] = ()
    #: Optional strategy payload (e.g. the VMesh sender's row position).
    meta: object = None


def chunks_of(packet: Packet) -> tuple[DataChunk, ...]:
    """Extract the chunks of a packet, or () when it carries none (timed
    runs that skip data materialization)."""
    tag = packet.tag
    if isinstance(tag, ChunkTag):
        return tag.chunks
    return ()


def tag_kind(packet: Packet) -> Optional[str]:
    """The traffic-class marker of a packet's tag, if any."""
    tag = packet.tag
    if isinstance(tag, ChunkTag):
        return tag.kind
    return tag if isinstance(tag, str) else None


def total_chunk_bytes(chunks: Iterable[DataChunk]) -> int:
    """Sum of chunk sizes."""
    return sum(c.nbytes for c in chunks)
