"""Payload descriptors carried by packets for data-correctness execution.

The timed simulator treats packet tags as opaque.  The functional engine
(:mod:`repro.functional`) instead interprets tags that carry
:class:`DataChunk` descriptors to verify that every strategy moves every
byte of the all-to-all exactly once to exactly the right rank.

A chunk describes ``nbytes`` of rank *src*'s message to rank *dst*,
starting at byte *offset* of that message.  Combined messages (VMesh) carry
several chunks per packet; direct and TPS packets carry one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.net.packet import Packet


@dataclass(frozen=True)
class DataChunk:
    """A contiguous piece of one (src, dst) all-to-all message."""

    src: int
    dst: int
    offset: int
    nbytes: int

    def __post_init__(self) -> None:
        if self.offset < 0 or self.nbytes <= 0:
            raise ValueError("chunk must have offset >= 0 and nbytes > 0")


@dataclass(frozen=True)
class ChunkTag:
    """Packet tag carrying data chunks plus a strategy-specific marker.

    ``kind`` identifies the traffic class (``"direct"``, ``"tps1"``,
    ``"vmesh1"``, ...) so forwarding hooks can dispatch without inspecting
    chunk contents.
    """

    kind: str
    chunks: tuple[DataChunk, ...] = ()
    #: Optional strategy payload (e.g. the VMesh sender's row position).
    meta: object = None


def chunks_of(packet: Packet) -> tuple[DataChunk, ...]:
    """Extract the chunks of a packet, or () when it carries none (timed
    runs that skip data materialization)."""
    tag = packet.tag
    if isinstance(tag, ChunkTag):
        return tag.chunks
    return ()


def kind_of_tag(tag: object) -> Optional[str]:
    """The traffic-class marker of a raw packet tag, if any.

    Works on the bare tag value so struct-of-arrays consumers (the
    instrumented/checked networks read the pool's ``tag`` column, not a
    :class:`Packet`) share one dispatch rule with :func:`tag_kind`."""
    if isinstance(tag, ChunkTag):
        return tag.kind
    return tag if isinstance(tag, str) else None


def tag_kind(packet: Packet) -> Optional[str]:
    """The traffic-class marker of a packet's tag, if any."""
    return kind_of_tag(packet.tag)


# --------------------------------------------------------------------- #
# phase markers
# --------------------------------------------------------------------- #
#
# Each strategy stamps its packets with one of these traffic-class
# markers.  They double as *phase markers* for observability: the tracer
# carries the marker on every deliver event, so a Perfetto view of a TPS
# run shows phase-1 spreading overlapped with phase-2 delivery (the
# paper's Section 4 pipelining) without any extra instrumentation.
# Strategy modules import the constants rather than repeating literals —
# the strings themselves are load-bearing (forwarding hooks dispatch on
# them) and must not drift.

PHASE_DIRECT = "direct"
PHASE_TPS1 = "tps1"
PHASE_TPS2 = "tps2"
PHASE_VMESH1 = "vmesh1"
PHASE_VMESH2 = "vmesh2"
PHASE_CREDIT = "credit"
PHASE_M2M = "m2m"

#: Marker -> human-readable phase description (trace/metrics legends).
PHASE_NAMES = {
    PHASE_DIRECT: "direct single-phase send",
    PHASE_TPS1: "TPS phase 1: spread along the linear dimension",
    PHASE_TPS2: "TPS phase 2: deliver within the hyperplane",
    PHASE_VMESH1: "virtual mesh phase 1: combine along rows",
    PHASE_VMESH2: "virtual mesh phase 2: distribute along columns",
    PHASE_CREDIT: "memory-credit control traffic",
    PHASE_M2M: "many-to-many subcommunicator traffic",
}


def phase_name(kind: Optional[str]) -> str:
    """Human-readable description of a traffic-class marker."""
    if kind is None:
        return "untagged"
    return PHASE_NAMES.get(kind, kind)


def total_chunk_bytes(chunks: Iterable[DataChunk]) -> int:
    """Sum of chunk sizes."""
    return sum(c.nbytes for c in chunks)
