"""The paper's all-to-all strategies.

Direct (Section 3): :class:`ARDirect`, :class:`DRDirect`,
:class:`MPIDirect`, :class:`ThrottledAR`.
Indirect (Section 4): :class:`TwoPhaseSchedule`, :class:`VirtualMesh2D`.
Plus the auto-selector (:func:`select_strategy`).
"""

from repro.strategies.base import AllToAllStrategy
from repro.strategies.data import (
    PHASE_NAMES,
    ChunkTag,
    DataChunk,
    chunks_of,
    phase_name,
    tag_kind,
)
from repro.strategies.direct import (
    ARDirect,
    DirectProgram,
    DRDirect,
    MPIDirect,
    ThrottledAR,
)
from repro.strategies.flowcontrol import CreditedTPS, CreditedTPSProgram
from repro.strategies.manytomany import (
    ManyToManyDirect,
    ManyToManyPattern,
    ManyToManyTPS,
    random_access_pattern,
)
from repro.strategies.tps import TPSProgram, TwoPhaseSchedule, choose_linear_axis
from repro.strategies.vmesh import VirtualMesh2D, VMeshMapping, VMeshProgram
from repro.strategies.selector import select_strategy

__all__ = [
    "AllToAllStrategy",
    "ChunkTag",
    "DataChunk",
    "PHASE_NAMES",
    "chunks_of",
    "phase_name",
    "tag_kind",
    "ARDirect",
    "DirectProgram",
    "DRDirect",
    "MPIDirect",
    "ThrottledAR",
    "CreditedTPS",
    "CreditedTPSProgram",
    "ManyToManyDirect",
    "ManyToManyPattern",
    "ManyToManyTPS",
    "random_access_pattern",
    "TPSProgram",
    "TwoPhaseSchedule",
    "choose_linear_axis",
    "VirtualMesh2D",
    "VMeshMapping",
    "VMeshProgram",
    "select_strategy",
]
