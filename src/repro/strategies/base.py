"""Strategy interface: every all-to-all algorithm builds a node program.

A strategy is a *planner*: given a partition shape and message size it
produces (a) a :class:`repro.net.NodeProgram` executable by both the timed
simulator and the functional data engine, and (b) an analytic prediction of
its cost (the paper's Eq. 3/4 family).  Strategies are stateless and
reusable across shapes.
"""

from __future__ import annotations

import abc
from typing import Iterator, Optional

import numpy as np

from repro.model.machine import MachineParams
from repro.model.torus import TorusShape
from repro.net.faults import FaultPlan
from repro.net.packet import PacketSpec
from repro.net.program import BaseProgram
from repro.strategies.data import ChunkTag, DataChunk
from repro.util.rng import derive_rng
from repro.util.validation import require


class AllToAllStrategy(abc.ABC):
    """Base class of the paper's all-to-all algorithms."""

    #: Short identifier used in tables and benchmark output.
    name: str = "abstract"
    #: Injection-FIFO reservation groups the program uses (TPS: 2).
    fifo_groups: int = 1

    @abc.abstractmethod
    def build_program(
        self,
        shape: TorusShape,
        msg_bytes: int,
        params: Optional[MachineParams] = None,
        seed: int = 0,
        carry_data: bool = False,
        faults: Optional[FaultPlan] = None,
    ) -> BaseProgram:
        """Build the node program for one all-to-all of *msg_bytes* per
        (ordered) rank pair on *shape*.

        ``carry_data=True`` attaches :class:`DataChunk` descriptors for the
        functional engine (costs memory; timed runs leave it off).
        ``faults`` lets the planner route around dead nodes: dead ranks
        inject nothing, are dropped from every destination list and are
        never chosen as intermediates.  Strategies that cannot degrade
        (their traffic pattern needs every rank) raise ``ValueError`` when
        the plan kills nodes.
        """

    @abc.abstractmethod
    def predict_cycles(
        self,
        shape: TorusShape,
        msg_bytes: int,
        params: Optional[MachineParams] = None,
    ) -> float:
        """Analytic completion-time prediction, cycles."""

    def supports(self, shape: TorusShape) -> bool:
        """Whether the strategy applies to *shape* (e.g. TPS needs >= 2
        dimensions)."""
        return True

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<{type(self).__name__} {self.name!r}>"


class DirectProgramBase(BaseProgram):
    """Shared machinery of direct (and phase-1-like) injection plans:
    a randomized destination permutation per node, packetized messages,
    round-robin over destinations with a configurable number of packets
    per destination per round (the production-MPI tuning parameter of
    Section 3)."""

    def __init__(
        self,
        shape: TorusShape,
        msg_bytes: int,
        params: MachineParams,
        seed: int,
        carry_data: bool,
        packets_per_round: int = 2,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        require(msg_bytes >= 1, "msg_bytes must be >= 1")
        require(packets_per_round >= 1, "packets_per_round must be >= 1")
        self.shape = shape
        self.msg_bytes = msg_bytes
        self.params = params
        self.seed = seed
        self.carry_data = carry_data
        self.packets_per_round = packets_per_round
        self.faults = faults
        #: Dead ranks the plan must avoid (empty on pristine runs).
        self.dead_nodes: frozenset[int] = (
            faults.dead_nodes if faults is not None else frozenset()
        )
        #: Wire sizes of one message's packets (header in the first).
        self.packet_sizes = params.packetize_message(msg_bytes)
        #: Payload bytes carried by each packet of a message.
        self.payload_split = self._payload_split()

    def _payload_split(self) -> list[int]:
        """How the m payload bytes distribute over the message's packets.

        The first packet carries the 48 B header and whatever payload fits
        beside it; subsequent packets carry up to 240 B payload each (the
        wire size also covers link-protocol bytes, hence payload <= wire).
        """
        p = self.params
        remaining = self.msg_bytes
        split: list[int] = []
        first_room = max(0, p.packet_max_bytes - p.header_bytes)
        take = min(remaining, first_room)
        split.append(take)
        remaining -= take
        while remaining > 0:
            take = min(remaining, p.packet_max_bytes)
            split.append(take)
            remaining -= take
        # packetize_message() computed sizes from the same arithmetic, so
        # the two decompositions must agree in length.
        assert len(split) == len(self.packet_sizes), (split, self.packet_sizes)
        return split

    def destination_order(self, node: int) -> np.ndarray:
        """Random permutation of the other P-1 ranks, derived from the
        experiment seed and the node id (independent across nodes).  Dead
        ranks are dropped before shuffling, so a faulty run re-randomizes
        over the survivors (and a zero-fault run is bit-identical to the
        pristine permutation)."""
        p = self.shape.nnodes
        rng = derive_rng(self.seed, "destorder", node)
        dests = np.arange(p, dtype=np.int64)
        dests = np.delete(dests, node)
        if self.dead_nodes:
            keep = [i for i, d in enumerate(dests) if d not in self.dead_nodes]
            dests = dests[keep]
        rng.shuffle(dests)
        return dests

    def alive_count(self) -> int:
        """Number of surviving (participating) ranks."""
        return self.shape.nnodes - len(self.dead_nodes)

    def message_packets(
        self, src: int, dst: int, kind: str, spec_dst: int,
        fifo_group: int = 0,
    ) -> list[PacketSpec]:
        """Packet specs of one (src -> dst) message, network-addressed to
        *spec_dst* (== dst for direct sends, an intermediate for TPS)."""
        specs: list[PacketSpec] = []
        offset = 0
        for i, wire in enumerate(self.packet_sizes):
            payload = self.payload_split[i]
            if self.carry_data and payload > 0:
                tag: object = ChunkTag(
                    kind, (DataChunk(src, dst, offset, payload),)
                )
            else:
                tag = kind
            specs.append(
                PacketSpec(
                    dst=spec_dst,
                    wire_bytes=wire,
                    fifo_group=fifo_group,
                    new_message=(i == 0),
                    tag=tag,
                    final_dst=dst,
                    payload_bytes=payload,
                )
            )
            offset += payload
        return specs

    def round_robin_specs(
        self, node: int, per_dest_specs: dict[int, list[PacketSpec]]
    ) -> Iterator[PacketSpec]:
        """Interleave the per-destination packet lists: *packets_per_round*
        packets to each destination (in this node's random order) per
        sweep, repeating until all packets are gone."""
        order = [d for d in self.destination_order(node) if d in per_dest_specs]
        cursors = {d: 0 for d in order}
        remaining = sum(len(v) for v in per_dest_specs.values())
        k = self.packets_per_round
        while remaining > 0:
            progressed = False
            for d in order:
                c = cursors[d]
                specs = per_dest_specs[d]
                take = min(k, len(specs) - c)
                for i in range(take):
                    yield specs[c + i]
                if take:
                    cursors[d] = c + take
                    remaining -= take
                    progressed = True
            assert progressed, "round-robin failed to progress"
