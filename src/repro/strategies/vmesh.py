"""The 2-D Virtual Mesh message-combining strategy (Section 4.2).

A virtual ``pvx x pvy`` mesh (``pvx`` columns per row, ``pvy`` rows) is
mapped onto the physical partition.  The exchange runs in two
*non-overlapping* phases of combined messages:

* **Phase 1 (rows)**: node (r, c) sends, to each row peer (r, c'), one
  message combining the chunks destined to every node of column c' —
  ``pvx - 1`` messages of ``pvy * (m + proto)`` bytes.
* **Phase 2 (columns)**: once a node has received *all* its row messages,
  it sorts the chunks by destination row and sends, to each column peer
  (r', c), one message of ``pvx * (m + proto)`` bytes.

Combining pays each byte twice on the network plus a gamma memcpy, but
replaces P per-destination startups with ``pvx + pvy`` — a large win below
the ``m = h - 2*proto ~ 32 B`` crossover (Figures 5-7).

The default virtual-mesh mapping linearizes physical coordinates in a
configurable axis order and splits the linear rank as (column = low bits,
row = high bits).  With the identity order this reproduces the paper's
512-node layout (rows = half XY planes); with order (X, Z, Y) on 8x32x16
it reproduces the 4096-node layout (rows = XZ planes, columns = Y lines).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from repro.model.alltoall import balanced_vmesh_factors, vmesh_time_cycles
from repro.model.machine import MachineParams
from repro.model.torus import TorusShape
from repro.net.faults import FaultPlan
from repro.net.packet import Packet, PacketSpec, RoutingMode
from repro.net.program import BaseProgram
from repro.strategies.base import AllToAllStrategy
from repro.strategies.data import (
    PHASE_VMESH1,
    PHASE_VMESH2,
    ChunkTag,
    DataChunk,
    chunks_of,
)
from repro.util.rng import derive_rng
from repro.util.validation import require


class VMeshMapping:
    """Bijection between physical ranks and virtual-mesh (row, col)."""

    def __init__(
        self,
        shape: TorusShape,
        pvx: int,
        pvy: int,
        axis_order: Optional[Sequence[int]] = None,
    ) -> None:
        require(pvx * pvy == shape.nnodes, "virtual mesh must tile partition")
        self.shape = shape
        self.pvx = pvx
        self.pvy = pvy
        order = tuple(axis_order) if axis_order is not None else tuple(
            range(shape.ndim)
        )
        require(
            sorted(order) == list(range(shape.ndim)),
            "axis_order must be a permutation of the axes",
        )
        self.axis_order = order
        # vrank/node tables both ways.
        p = shape.nnodes
        self._vrank = [0] * p
        self._node = [0] * p
        for node in range(p):
            coord = shape.coord(node)
            v = 0
            strd = 1
            for a in order:
                v += coord[a] * strd
                strd *= shape.dims[a]
            self._vrank[node] = v
            self._node[v] = node

    def row_col(self, node: int) -> tuple[int, int]:
        """(row, column) of a physical rank."""
        v = self._vrank[node]
        return v // self.pvx, v % self.pvx

    def node_at(self, row: int, col: int) -> int:
        """Physical rank at virtual (row, column)."""
        return self._node[row * self.pvx + col]


class VMeshProgram(BaseProgram):
    """Node program implementing the two-phase virtual-mesh exchange."""

    def __init__(
        self,
        shape: TorusShape,
        msg_bytes: int,
        params: MachineParams,
        seed: int,
        carry_data: bool,
        mapping: VMeshMapping,
    ) -> None:
        require(msg_bytes >= 1, "msg_bytes must be >= 1")
        self.shape = shape
        self.msg_bytes = msg_bytes
        self.params = params
        self.seed = seed
        self.carry_data = carry_data
        self.map = mapping
        pvx, pvy = mapping.pvx, mapping.pvy
        chunk = msg_bytes + params.proto_bytes
        #: Wire packets of one phase-1 (row) message: pvy combined chunks.
        self.row_packets = params.packetize_message(pvy * chunk)
        #: Wire packets of one phase-2 (column) message: pvx chunks.
        self.col_packets = params.packetize_message(pvx * chunk)
        #: Phase-1 packets each node must receive before phase 2 starts.
        self.phase1_expected = (pvx - 1) * len(self.row_packets)
        self._alpha = params.alpha_message_cycles
        self._gamma = params.gamma_cycles_per_byte
        # Per-node phase-1 reception counters and buffered chunks.
        self._p1_count = [0] * shape.nnodes
        self._p1_chunks: list[list[DataChunk]] = [
            [] for _ in range(shape.nnodes)
        ]
        self._p2_sent = [False] * shape.nnodes

    # -------------------------------------------------------------- #

    def _message_specs(
        self,
        dst: int,
        packets: list[int],
        kind: str,
        final_is_dst: bool,
        chunks: tuple[DataChunk, ...],
        payload_total: int,
    ) -> list[PacketSpec]:
        """Specs of one combined message; chunks ride the first packet.

        The gamma memcpy for gathering/sorting the combined payload is
        charged per packet, pro-rated by wire size."""
        specs = []
        wire_total = sum(packets)
        for i, wire in enumerate(packets):
            tag: object = (
                ChunkTag(kind, chunks) if (self.carry_data and i == 0) else kind
            )
            specs.append(
                PacketSpec(
                    dst=dst,
                    wire_bytes=wire,
                    mode=RoutingMode.ADAPTIVE,
                    new_message=(i == 0),
                    tag=tag,
                    final_dst=dst,
                    payload_bytes=(payload_total * wire) // wire_total,
                    extra_cpu_cycles=self._gamma * wire,
                    alpha_cycles=self._alpha if i == 0 else -1.0,
                )
            )
        return specs

    def _row_message(self, node: int, col: int) -> list[PacketSpec]:
        """Phase-1 message from *node* to its row peer in column *col*:
        chunks for every row of that column."""
        r, c = self.map.row_col(node)
        dst = self.map.node_at(r, col)
        chunks: tuple[DataChunk, ...] = ()
        if self.carry_data:
            chunks = tuple(
                DataChunk(node, self.map.node_at(rr, col), 0, self.msg_bytes)
                for rr in range(self.map.pvy)
                if self.map.node_at(rr, col) != node
            )
        return self._message_specs(
            dst,
            self.row_packets,
            PHASE_VMESH1,
            final_is_dst=True,
            chunks=chunks,
            payload_total=self.map.pvy * self.msg_bytes,
        )

    def _col_message(
        self, node: int, row: int, chunks: tuple[DataChunk, ...]
    ) -> list[PacketSpec]:
        """Phase-2 message from *node* to its column peer in *row*."""
        r, c = self.map.row_col(node)
        dst = self.map.node_at(row, c)
        return self._message_specs(
            dst,
            self.col_packets,
            PHASE_VMESH2,
            final_is_dst=True,
            chunks=chunks,
            payload_total=self.map.pvx * self.msg_bytes,
        )

    def _emit_phase2(self, node: int) -> list[PacketSpec]:
        """All phase-2 messages of *node* (called once phase 1 is in)."""
        assert not self._p2_sent[node], "phase 2 emitted twice"
        self._p2_sent[node] = True
        r, c = self.map.row_col(node)
        rng = derive_rng(self.seed, "vmesh2", node)
        rows = [rr for rr in range(self.map.pvy) if rr != r]
        rng.shuffle(rows)
        specs: list[PacketSpec] = []
        if self.carry_data:
            # Sort buffered + own chunks by destination row.
            by_row: dict[int, list[DataChunk]] = {rr: [] for rr in rows}
            for ch in self._p1_chunks[node]:
                rr, cc = self.map.row_col(ch.dst)
                if ch.dst == node:
                    continue
                assert cc == c, "phase-1 chunk routed to wrong column"
                by_row[rr].append(ch)
            for rr in rows:
                dst_self = self.map.node_at(rr, c)
                by_row[rr].append(DataChunk(node, dst_self, 0, self.msg_bytes))
                specs.extend(
                    self._col_message(node, rr, tuple(by_row[rr]))
                )
        else:
            for rr in rows:
                specs.extend(self._col_message(node, rr, ()))
        return specs

    # -------------------------------------------------------------- #
    # NodeProgram interface
    # -------------------------------------------------------------- #

    def injection_plan(self, node: int) -> Iterator[PacketSpec]:
        r, c = self.map.row_col(node)
        rng = derive_rng(self.seed, "vmesh1", node)
        cols = [cc for cc in range(self.map.pvx) if cc != c]
        rng.shuffle(cols)
        for col in cols:
            yield from self._row_message(node, col)
        # Degenerate single-column mesh: no phase-1 traffic arrives, so
        # phase 2 must be driven from the plan.
        if self.phase1_expected == 0 and not self._p2_sent[node]:
            yield from self._emit_phase2(node)

    def on_delivery(
        self, node: int, packet: Packet, now: float
    ) -> Iterable[PacketSpec]:
        kind = packet.tag.kind if isinstance(packet.tag, ChunkTag) else packet.tag
        if kind == PHASE_VMESH2:
            return ()
        # Phase-1 row message packet.
        self._p1_chunks[node].extend(
            ch for ch in chunks_of(packet) if ch.dst != node
        )
        self._p1_count[node] += 1
        if self._p1_count[node] == self.phase1_expected:
            return self._emit_phase2(node)
        return ()

    def expected_final_deliveries(self) -> int:
        p = self.shape.nnodes
        return p * (
            (self.map.pvx - 1) * len(self.row_packets)
            + (self.map.pvy - 1) * len(self.col_packets)
        )

    #: Chunks each node consumes locally from phase-1 row messages
    #: (used by the functional engine's coverage verification).
    def consumed_locally(self, node: int) -> list[DataChunk]:
        return [c for c in self._p1_chunks[node] if c.dst == node]


class VirtualMesh2D(AllToAllStrategy):
    """The paper's short-message virtual-mesh combining strategy."""

    name = "VMesh"
    fifo_groups = 1

    def __init__(
        self,
        pvx: Optional[int] = None,
        pvy: Optional[int] = None,
        axis_order: Optional[Sequence[int]] = None,
    ) -> None:
        require(
            (pvx is None) == (pvy is None),
            "specify both pvx and pvy or neither",
        )
        self.pvx = pvx
        self.pvy = pvy
        self.axis_order = axis_order

    def factors(self, shape: TorusShape) -> tuple[int, int]:
        """The (pvx, pvy) actually used on *shape*."""
        if self.pvx is not None and self.pvy is not None:
            return self.pvx, self.pvy
        return balanced_vmesh_factors(shape.nnodes)

    def mapping(self, shape: TorusShape) -> VMeshMapping:
        """The virtual-mesh layout used on *shape*."""
        pvx, pvy = self.factors(shape)
        return VMeshMapping(shape, pvx, pvy, self.axis_order)

    def build_program(
        self,
        shape: TorusShape,
        msg_bytes: int,
        params: Optional[MachineParams] = None,
        seed: int = 0,
        carry_data: bool = False,
        faults: Optional[FaultPlan] = None,
    ) -> VMeshProgram:
        # Combining needs the full row/column bijection: every rank is an
        # intermediate for its whole row, so a dead node cannot be routed
        # around at the schedule level.  Dead links, loss, degradation and
        # outages are fine — the network layer absorbs those.
        if faults is not None and faults.dead_nodes:
            raise ValueError(
                "VirtualMesh2D cannot degrade around dead nodes (the "
                "virtual-mesh bijection needs every rank); use a direct "
                "strategy or TPS for plans with dead nodes"
            )
        params = params or MachineParams.bluegene_l()
        return VMeshProgram(
            shape, msg_bytes, params, seed, carry_data, self.mapping(shape)
        )

    def predict_cycles(
        self,
        shape: TorusShape,
        msg_bytes: int,
        params: Optional[MachineParams] = None,
    ) -> float:
        params = params or MachineParams.bluegene_l()
        pvx, pvy = self.factors(shape)
        return vmesh_time_cycles(shape, msg_bytes, params, pvx, pvy)
