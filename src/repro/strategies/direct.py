"""Direct all-to-all strategies (Section 3).

Every rank sends each message straight to its destination; the variants
differ in routing mode and injection policy:

* :class:`ARDirect` — the paper's low-overhead *AR* scheme: randomized
  destination order, adaptive (dynamic-VC) routing.  >=97 % of peak on
  symmetric tori, 70-86 % on asymmetric ones (Tables 1-2).
* :class:`MPIDirect` — the production MPI all-to-all: same randomized
  packet scheme but with the heavier message-layer startup (~1170 cycles
  vs 450), costing ~2 % of peak on a midplane.
* :class:`DRDirect` — *DR*: random order but deterministic dimension-order
  routing on the bubble VC.  Wins when X is the longest dimension, loses
  to AR otherwise (Figure 4).
* :class:`ThrottledAR` — AR with injection paced to the bisection rate
  (Eq. 2); the paper found it helps only 2-3 %.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.model.alltoall import peak_time_cycles, simple_direct_time_cycles
from repro.model.machine import MachineParams
from repro.model.torus import TorusShape
from repro.net.faults import FaultPlan
from repro.net.packet import PacketSpec, RoutingMode
from repro.strategies.base import AllToAllStrategy, DirectProgramBase
from repro.strategies.data import PHASE_DIRECT, ChunkTag, DataChunk
from repro.util.validation import require


class DirectProgram(DirectProgramBase):
    """Node program for all direct variants.

    Packets are generated lazily (one spec object at a time) so that
    million-packet schedules never materialize in memory.
    """

    def __init__(
        self,
        shape: TorusShape,
        msg_bytes: int,
        params: MachineParams,
        seed: int,
        carry_data: bool,
        mode: RoutingMode,
        packets_per_round: int = 2,
        pace: float = 0.0,
        alpha_override: float = -1.0,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        super().__init__(
            shape, msg_bytes, params, seed, carry_data, packets_per_round,
            faults=faults,
        )
        self.mode = mode
        self._pace = pace
        self._alpha_override = alpha_override
        self._payload_offsets = np.concatenate(
            ([0], np.cumsum(self.payload_split[:-1]))
        ).astype(np.int64)

    def _make_spec(self, src: int, dst: int, pkt_idx: int) -> PacketSpec:
        payload = self.payload_split[pkt_idx]
        if self.carry_data and payload > 0:
            tag: object = ChunkTag(
                PHASE_DIRECT,
                (DataChunk(src, dst, int(self._payload_offsets[pkt_idx]), payload),),
            )
        else:
            tag = PHASE_DIRECT
        return PacketSpec(
            dst=dst,
            wire_bytes=self.packet_sizes[pkt_idx],
            mode=self.mode,
            new_message=(pkt_idx == 0),
            tag=tag,
            final_dst=dst,
            payload_bytes=payload,
            alpha_cycles=self._alpha_override,
        )

    def injection_plan(self, node: int) -> Iterator[PacketSpec]:
        if node in self.dead_nodes:
            return
        order = self.destination_order(node)
        npk = len(self.packet_sizes)
        k = self.packets_per_round
        cursors = np.zeros(len(order), dtype=np.int64)
        remaining = len(order) * npk
        while remaining > 0:
            for di in range(len(order)):
                c = int(cursors[di])
                take = min(k, npk - c)
                if take <= 0:
                    continue
                dst = int(order[di])
                for i in range(take):
                    yield self._make_spec(node, dst, c + i)
                cursors[di] = c + take
                remaining -= take

    def expected_final_deliveries(self) -> int:
        a = self.alive_count()
        return a * (a - 1) * len(self.packet_sizes)

    def pace_cycles(self, node: int) -> float:
        return self._pace


class _DirectStrategy(AllToAllStrategy):
    """Common plumbing of the four direct variants."""

    mode = RoutingMode.ADAPTIVE
    packets_per_round = 2

    def build_program(
        self,
        shape: TorusShape,
        msg_bytes: int,
        params: Optional[MachineParams] = None,
        seed: int = 0,
        carry_data: bool = False,
        faults: Optional[FaultPlan] = None,
    ) -> DirectProgram:
        params = params or MachineParams.bluegene_l()
        return DirectProgram(
            shape,
            msg_bytes,
            params,
            seed,
            carry_data,
            self.mode,
            packets_per_round=self.packets_per_round,
            pace=self._pace(shape, msg_bytes, params),
            faults=faults,
        )

    def _pace(
        self, shape: TorusShape, msg_bytes: int, params: MachineParams
    ) -> float:
        return 0.0

    def predict_cycles(
        self,
        shape: TorusShape,
        msg_bytes: int,
        params: Optional[MachineParams] = None,
    ) -> float:
        params = params or MachineParams.bluegene_l()
        return simple_direct_time_cycles(shape, msg_bytes, params)


class ARDirect(_DirectStrategy):
    """Adaptive-routing randomized direct all-to-all (the paper's *AR*)."""

    name = "AR"
    mode = RoutingMode.ADAPTIVE


class DRDirect(_DirectStrategy):
    """Deterministic dimension-order direct all-to-all (the paper's *DR*).

    Packets ride the bubble VC only, in X-then-Y-then-Z order; the paper
    expects this to beat AR exactly when the longest (bottleneck) dimension
    is X, because every deterministic packet enters the network on an X
    link (Section 3.2).
    """

    name = "DR"
    mode = RoutingMode.DETERMINISTIC


class MPIDirect(_DirectStrategy):
    """Production-MPI-flavoured direct all-to-all: identical traffic to AR
    but paying the message-layer startup per destination."""

    name = "MPI"
    mode = RoutingMode.ADAPTIVE

    def build_program(
        self,
        shape: TorusShape,
        msg_bytes: int,
        params: Optional[MachineParams] = None,
        seed: int = 0,
        carry_data: bool = False,
        faults: Optional[FaultPlan] = None,
    ) -> DirectProgram:
        params = params or MachineParams.bluegene_l()
        return DirectProgram(
            shape,
            msg_bytes,
            params,
            seed,
            carry_data,
            self.mode,
            packets_per_round=self.packets_per_round,
            alpha_override=params.alpha_message_cycles,
            faults=faults,
        )

    def predict_cycles(
        self,
        shape: TorusShape,
        msg_bytes: int,
        params: Optional[MachineParams] = None,
    ) -> float:
        params = params or MachineParams.bluegene_l()
        heavy = params.with_updates(
            alpha_packet_cycles=params.alpha_message_cycles
        )
        return simple_direct_time_cycles(shape, msg_bytes, heavy)


class ThrottledAR(_DirectStrategy):
    """AR with injection paced at the bisection-driven rate of Eq. 2.

    Each node may source at most ``1/(C*beta)`` bytes/cycle without
    overloading the bottleneck bisection, so consecutive packet injections
    are spaced ``wire_bytes * C * beta`` cycles apart.
    """

    name = "AR-throttle"
    mode = RoutingMode.ADAPTIVE

    def __init__(self, slack: float = 1.0) -> None:
        require(slack > 0, "slack must be positive")
        #: Multiplier on the pace (>1 injects slower than bisection rate).
        self.slack = slack

    def _pace(
        self, shape: TorusShape, msg_bytes: int, params: MachineParams
    ) -> float:
        c = shape.contention_factor
        sizes = params.packetize_message(msg_bytes)
        mean_wire = sum(sizes) / len(sizes)
        return self.slack * c * mean_wire * params.beta_cycles_per_byte
