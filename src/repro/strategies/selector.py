"""Strategy auto-selection (the paper's Section 5 recipe).

"All-to-all performance in excess of 95% of peak can be achieved by using
our best algorithm: a direct algorithm on a symmetric torus or the Two
Phase algorithm on an asymmetric torus" — plus the virtual-mesh combining
scheme below the short-message crossover.
"""

from __future__ import annotations

from typing import Optional

from repro.model.alltoall import ar_vmesh_crossover_bytes
from repro.model.machine import MachineParams
from repro.model.torus import TorusShape
from repro.net.faults import FaultPlan
from repro.strategies.base import AllToAllStrategy
from repro.strategies.direct import ARDirect
from repro.strategies.tps import TwoPhaseSchedule
from repro.strategies.vmesh import VirtualMesh2D


def select_strategy(
    shape: TorusShape,
    msg_bytes: int,
    params: Optional[MachineParams] = None,
    faults: Optional[FaultPlan] = None,
) -> AllToAllStrategy:
    """Pick the paper's best algorithm for (shape, message size).

    * below the ``h - 2*proto`` crossover (~32 B, in practice up to 64 B):
      :class:`VirtualMesh2D` message combining;
    * symmetric torus: the :class:`ARDirect` direct scheme;
    * asymmetric torus (or any mesh dimension): :class:`TwoPhaseSchedule`,
      provided the partition has >= 2 dimensions.

    With a non-empty fault plan the choice falls back to :class:`ARDirect`,
    the most fault-tolerant scheme: no forwarding dependencies (VMesh needs
    every rank as a combiner; TPS concentrates rerouted load on surviving
    intermediates) and fully adaptive routing around dead links.
    """
    params = params or MachineParams.bluegene_l()
    if faults is not None and not faults.is_empty:
        return ARDirect()
    crossover = ar_vmesh_crossover_bytes(params)
    # The measured change-over lands between 32 and 64 B (Section 4.2)
    # because large packets use the network more efficiently; use the
    # model's crossover as the conservative switch point.
    if msg_bytes <= crossover and shape.nnodes >= 16:
        return VirtualMesh2D()
    if shape.is_symmetric or shape.ndim < 2:
        return ARDirect()
    return TwoPhaseSchedule()
