"""Credit-based flow control for bounded intermediate memory (Section 5).

The paper's production-readiness note: TPS buffers other nodes' data at
intermediates, and for very large messages that memory must be bounded.
"This can be solved ... by a credit-based flow control algorithm in which
the intermediate nodes send back short 'credit' packets to the sources
after forwarding along some number of (large) packets.  Notice, for
example, if one 32 byte credit packet is sent for every ten 256 byte
all-to-all packets, the bandwidth overhead is only about 1%."

:class:`CreditedTPS` implements exactly that on top of the Two Phase
Schedule: each source may have at most ``window`` un-credited phase-1
packets outstanding per intermediate; the intermediate returns one 32 B
credit packet per ``packets_per_credit`` packets it forwards, and each
credit releases the next deferred packets at the source.  The benchmark
``benchmarks/test_ablations.py`` sweeps the credit period to reproduce the
~1 % overhead claim, and the program reports the peak number of
un-forwarded packets buffered at any intermediate so tests can pin the
memory bound.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Iterable, Iterator, Optional

from repro.model.machine import MachineParams
from repro.model.torus import TorusShape
from repro.net.faults import FaultPlan
from repro.net.packet import Packet, PacketSpec, RoutingMode
from repro.strategies.data import PHASE_CREDIT, ChunkTag
from repro.strategies.tps import PHASE1_GROUP, PHASE2_GROUP, TPSProgram, TwoPhaseSchedule
from repro.util.validation import check_positive_int, require

#: Wire size of a credit packet (paper: one 32 B packet; the runtime's
#: minimum packet is 64 B, which it also supports for credits on real
#: hardware via packet coalescing — we use the paper's 32 B figure).
CREDIT_WIRE_BYTES = 32


class CreditedTPSProgram(TPSProgram):
    """TPS with per-(source, intermediate) windowed phase-1 injection.

    The injection plan emits at most ``window`` packets per intermediate
    up front and defers the rest; credits delivered back to the source
    release deferred packets through the forwarding queue.
    """

    def __init__(
        self,
        *args,
        window: int = 20,
        packets_per_credit: int = 10,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        check_positive_int(window, "window")
        check_positive_int(packets_per_credit, "packets_per_credit")
        require(
            packets_per_credit <= window,
            "packets_per_credit must not exceed the window or the source "
            "stalls forever",
        )
        self.window = window
        self.packets_per_credit = packets_per_credit
        # source -> intermediate -> deferred specs.
        self._deferred: list[dict[int, deque[PacketSpec]]] = [
            defaultdict(deque) for _ in range(self.shape.nnodes)
        ]
        # Credits that arrived while nothing was deferred yet (the plan is
        # consumed lazily, so an early credit must pre-authorize later
        # sends instead of evaporating).
        self._credit_balance: list[dict[int, int]] = [
            defaultdict(int) for _ in range(self.shape.nnodes)
        ]
        # intermediate -> source -> packets forwarded since last credit.
        self._fwd_count: list[dict[int, int]] = [
            defaultdict(int) for _ in range(self.shape.nnodes)
        ]
        #: Credit packets sent (for overhead accounting).
        self.credits_sent = 0

    # -------------------------------------------------------------- #

    def injection_plan(self, node: int) -> Iterator[PacketSpec]:
        sent_to: dict[int, int] = defaultdict(int)
        for spec in super().injection_plan(node):
            if spec.fifo_group == PHASE2_GROUP or spec.dst == spec.final_dst:
                # Phase-2-direct packets don't buffer at an intermediate.
                yield spec
                continue
            mid = spec.dst
            if sent_to[mid] < self.window:
                sent_to[mid] += 1
                yield spec
            elif self._credit_balance[node][mid] > 0:
                # A credit already arrived for this intermediate: spend it
                # instead of deferring.
                self._credit_balance[node][mid] -= 1
                yield spec
            else:
                self._deferred[node][mid].append(spec)

    def on_delivery(
        self, node: int, packet: Packet, now: float
    ) -> Iterable[PacketSpec]:
        tag = packet.tag
        kind = tag.kind if isinstance(tag, ChunkTag) else tag
        if kind == PHASE_CREDIT:
            # A credit from intermediate `packet.src`: release the next
            # deferred packets toward it; any unused allowance banks as
            # balance for packets the (lazy) plan has not deferred yet.
            out = []
            dq = self._deferred[node].get(packet.src)
            take = 0
            if dq:
                take = min(self.packets_per_credit, len(dq))
                for _ in range(take):
                    out.append(dq.popleft())
            if take < self.packets_per_credit:
                self._credit_balance[node][packet.src] += (
                    self.packets_per_credit - take
                )
            return out
        if packet.final_dst == node:
            return ()
        # Intermediate forwarding (phase 1 -> phase 2), plus credit logic.
        out = list(super().on_delivery(node, packet, now))
        cnt = self._fwd_count[node]
        cnt[packet.src] += 1
        if cnt[packet.src] >= self.packets_per_credit:
            cnt[packet.src] = 0
            self.credits_sent += 1
            out.append(
                PacketSpec(
                    dst=packet.src,
                    wire_bytes=CREDIT_WIRE_BYTES,
                    mode=RoutingMode.ADAPTIVE,
                    fifo_group=PHASE2_GROUP,
                    new_message=False,
                    tag=PHASE_CREDIT,
                    final_dst=packet.src,
                    payload_bytes=0,
                )
            )
        return out

    def expected_final_deliveries(self) -> int:
        # Data deliveries plus every credit packet (credits are final at
        # the source).  Credits are emitted deterministically: one per
        # packets_per_credit phase-1 packets forwarded per (mid, src).
        base = super().expected_final_deliveries()
        npk = len(self.packet_sizes)
        total_credits = 0
        p = self.shape.nnodes
        for src in range(p):
            if src in self.dead_nodes:
                continue
            per_mid: dict[int, int] = defaultdict(int)
            for dst in range(p):
                if dst == src or dst in self.dead_nodes:
                    continue
                mid = self.intermediate_for(src, dst)
                if mid != src and mid != dst:
                    per_mid[mid] += npk
            for n in per_mid.values():
                total_credits += n // self.packets_per_credit
        return base + total_credits


class CreditedTPS(TwoPhaseSchedule):
    """Two Phase Schedule with credit-based intermediate flow control."""

    name = "TPS-credit"
    fifo_groups = 2

    def __init__(
        self,
        window: int = 20,
        packets_per_credit: int = 10,
        linear_axis: Optional[int] = None,
    ) -> None:
        super().__init__(linear_axis=linear_axis)
        check_positive_int(window, "window")
        check_positive_int(packets_per_credit, "packets_per_credit")
        require(
            packets_per_credit <= window,
            "packets_per_credit must not exceed the window or the source "
            "stalls forever",
        )
        self.window = window
        self.packets_per_credit = packets_per_credit

    def build_program(
        self,
        shape: TorusShape,
        msg_bytes: int,
        params: Optional[MachineParams] = None,
        seed: int = 0,
        carry_data: bool = False,
        faults: Optional[FaultPlan] = None,
    ) -> CreditedTPSProgram:
        params = params or MachineParams.bluegene_l()
        return CreditedTPSProgram(
            shape,
            msg_bytes,
            params,
            seed,
            carry_data,
            linear_axis=self.linear_axis,
            packets_per_round=self.packets_per_round,
            pipelined=self.pipelined,
            window=self.window,
            packets_per_credit=self.packets_per_credit,
            faults=faults,
        )

    def credit_bandwidth_overhead(self, params: Optional[MachineParams] = None) -> float:
        """Predicted fractional bandwidth overhead of the credit traffic:
        one credit packet per ``packets_per_credit`` full data packets."""
        params = params or MachineParams.bluegene_l()
        return CREDIT_WIRE_BYTES / (
            self.packets_per_credit * params.packet_max_bytes
        )
