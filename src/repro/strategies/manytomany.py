"""Many-to-many (irregular personalized) communication — the paper's
stated follow-on target ("we hope the performance analysis and the
optimization techniques ... can also be applied for more complex
many-to-many communication patterns"), with the HPCC RandomAccess-style
update pattern it cites [5] as the motivating instance.

Two traffic models are provided:

* :class:`ManyToManyPattern` — an explicit, possibly sparse and
  non-uniform traffic matrix ``bytes[src][dst]``, e.g. the neighbor
  exchange of an irregular mesh partitioner.
* :func:`random_access_pattern` — GUPS-like traffic: each node issues
  many small updates to uniformly random ranks.

Both can run *direct* (each message straight to its destination, AR
style) or through the same indirect machinery the paper built for
all-to-all: TPS-style linear-dimension forwarding
(:class:`ManyToManyTPS`), which inherits the asymmetric-torus benefits,
and is how the RandomAccess optimization of [5] aggregates by dimension.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional

import numpy as np

from repro.model.machine import MachineParams
from repro.model.torus import TorusShape
from repro.net.faults import FaultPlan
from repro.net.packet import Packet, PacketSpec, RoutingMode
from repro.net.program import BaseProgram
from repro.strategies.base import AllToAllStrategy
from repro.strategies.data import PHASE_M2M
from repro.strategies.tps import PHASE1_GROUP, PHASE2_GROUP, choose_linear_axis
from repro.util.rng import derive_rng
from repro.util.validation import require


def _reject_dead_nodes(faults: Optional[FaultPlan], name: str) -> None:
    """Many-to-many patterns name explicit ranks, so a dead endpoint makes
    the pattern unsatisfiable rather than degradable."""
    if faults is not None and faults.dead_nodes:
        raise ValueError(
            f"{name} cannot degrade around dead nodes (the traffic matrix "
            f"names explicit ranks); filter the pattern instead"
        )


class ManyToManyPattern:
    """A traffic matrix: ``bytes_for(src, dst)`` bytes per ordered pair.

    Construct from a dense matrix, a sparse dict, or a generator
    function.  Self-traffic is ignored.
    """

    def __init__(
        self,
        nnodes: int,
        matrix: Optional[np.ndarray] = None,
        sparse: Optional[Mapping[tuple[int, int], int]] = None,
    ) -> None:
        require(
            (matrix is None) != (sparse is None),
            "provide exactly one of matrix/sparse",
        )
        self.nnodes = nnodes
        if matrix is not None:
            m = np.asarray(matrix)
            require(m.shape == (nnodes, nnodes), "matrix must be (P, P)")
            require((m >= 0).all(), "traffic must be non-negative")
            self._matrix = m.astype(np.int64)
        else:
            self._matrix = np.zeros((nnodes, nnodes), dtype=np.int64)
            assert sparse is not None
            for (s, d), b in sparse.items():
                require(0 <= s < nnodes and 0 <= d < nnodes, "rank range")
                self._matrix[s, d] = int(b)

    def bytes_for(self, src: int, dst: int) -> int:
        """Traffic bytes from *src* to *dst*."""
        return int(self._matrix[src, dst])

    def destinations(self, src: int) -> np.ndarray:
        """Ranks *src* sends to (nonzero, self excluded)."""
        row = self._matrix[src].copy()
        row[src] = 0
        return np.nonzero(row)[0]

    @property
    def total_bytes(self) -> int:
        """Total off-diagonal traffic."""
        m = self._matrix
        return int(m.sum() - np.trace(m))

    def max_incast(self) -> int:
        """Heaviest per-destination inbound byte load (hot-spot metric)."""
        m = self._matrix.copy()
        np.fill_diagonal(m, 0)
        return int(m.sum(axis=0).max(initial=0))


def random_access_pattern(
    shape: TorusShape,
    updates_per_node: int,
    update_bytes: int = 8,
    seed: int = 0,
) -> ManyToManyPattern:
    """GUPS-style traffic: *updates_per_node* updates of *update_bytes*
    each, to uniformly random other ranks (HPCC RandomAccess, [5])."""
    p = shape.nnodes
    rng = derive_rng(seed, "gups")
    matrix = np.zeros((p, p), dtype=np.int64)
    for src in range(p):
        dsts = rng.integers(0, p - 1, updates_per_node)
        dsts = dsts + (dsts >= src)  # skip self
        counts = np.bincount(dsts, minlength=p)
        matrix[src] += counts * update_bytes
    np.fill_diagonal(matrix, 0)
    return ManyToManyPattern(p, matrix=matrix)


class _M2MDirectProgram(BaseProgram):
    """Direct sends of a traffic matrix, randomized destination order."""

    def __init__(
        self,
        shape: TorusShape,
        pattern: ManyToManyPattern,
        params: MachineParams,
        seed: int,
        mode: RoutingMode = RoutingMode.ADAPTIVE,
    ) -> None:
        self.shape = shape
        self.pattern = pattern
        self.params = params
        self.seed = seed
        self.mode = mode
        self._expected = 0
        for src in range(shape.nnodes):
            for dst in pattern.destinations(src):
                self._expected += len(
                    params.packetize_message(pattern.bytes_for(src, int(dst)))
                )

    def injection_plan(self, node: int) -> Iterator[PacketSpec]:
        dests = self.pattern.destinations(node)
        rng = derive_rng(self.seed, "m2m", node)
        rng.shuffle(dests)
        for dst in dests:
            dst = int(dst)
            for i, wire in enumerate(
                self.params.packetize_message(self.pattern.bytes_for(node, dst))
            ):
                yield PacketSpec(
                    dst=dst,
                    wire_bytes=wire,
                    mode=self.mode,
                    new_message=(i == 0),
                    tag=PHASE_M2M,
                    final_dst=dst,
                )

    def expected_final_deliveries(self) -> int:
        return self._expected


class _M2MTPSProgram(_M2MDirectProgram):
    """TPS-style forwarding of a traffic matrix: phase 1 along the linear
    dimension to the matching intermediate, phase 2 across the plane."""

    def __init__(self, *args, linear_axis: Optional[int] = None, **kw) -> None:
        super().__init__(*args, **kw)
        self.linear_axis = (
            choose_linear_axis(self.shape) if linear_axis is None else linear_axis
        )
        self._stride = 1
        for a in range(self.linear_axis):
            self._stride *= self.shape.dims[a]

    def _intermediate(self, src: int, dst: int) -> int:
        n = self.shape.dims[self.linear_axis]
        src_c = (src // self._stride) % n
        dst_c = (dst // self._stride) % n
        return src + (dst_c - src_c) * self._stride

    def injection_plan(self, node: int) -> Iterator[PacketSpec]:
        dests = self.pattern.destinations(node)
        rng = derive_rng(self.seed, "m2mtps", node)
        rng.shuffle(dests)
        for dst in dests:
            dst = int(dst)
            mid = self._intermediate(node, dst)
            direct = mid == node
            for i, wire in enumerate(
                self.params.packetize_message(self.pattern.bytes_for(node, dst))
            ):
                yield PacketSpec(
                    dst=dst if direct else mid,
                    wire_bytes=wire,
                    mode=RoutingMode.ADAPTIVE,
                    fifo_group=PHASE2_GROUP if direct else PHASE1_GROUP,
                    new_message=(i == 0),
                    tag="m2m-tps1" if not direct else "m2m-tps2",
                    final_dst=dst,
                )

    def on_delivery(
        self, node: int, packet: Packet, now: float
    ) -> Iterable[PacketSpec]:
        if packet.final_dst == node:
            return ()
        return (
            PacketSpec(
                dst=packet.final_dst,
                wire_bytes=packet.wire_bytes,
                mode=RoutingMode.ADAPTIVE,
                fifo_group=PHASE2_GROUP,
                tag="m2m-tps2",
                final_dst=packet.final_dst,
            ),
        )


class ManyToManyDirect(AllToAllStrategy):
    """Direct (AR-style) execution of a many-to-many pattern.

    ``msg_bytes`` in the strategy API is ignored — the pattern carries
    per-pair sizes.
    """

    name = "M2M-direct"

    def __init__(self, pattern: ManyToManyPattern) -> None:
        self.pattern = pattern

    def build_program(
        self,
        shape: TorusShape,
        msg_bytes: int = 0,
        params: Optional[MachineParams] = None,
        seed: int = 0,
        carry_data: bool = False,
        faults: Optional[FaultPlan] = None,
    ) -> _M2MDirectProgram:
        require(not carry_data, "many-to-many programs carry no data chunks")
        _reject_dead_nodes(faults, self.name)
        params = params or MachineParams.bluegene_l()
        require(self.pattern.nnodes == shape.nnodes, "pattern/shape mismatch")
        return _M2MDirectProgram(shape, self.pattern, params, seed)

    def predict_cycles(
        self,
        shape: TorusShape,
        msg_bytes: int = 0,
        params: Optional[MachineParams] = None,
    ) -> float:
        """Bisection bound generalized to the pattern's actual volume,
        plus per-message startups."""
        params = params or MachineParams.bluegene_l()
        p = shape.nnodes
        vol = self.pattern.total_bytes
        # Average per-node volume drives the Eq. 2-style term.
        mean_m = vol / max(1, p * (p - 1))
        msgs = sum(len(self.pattern.destinations(s)) for s in range(p)) / p
        return msgs * params.alpha_packet_cycles + p * (
            shape.contention_factor * mean_m * (p - 1) / p
        ) * params.beta_cycles_per_byte * (p - 1)


class ManyToManyTPS(ManyToManyDirect):
    """TPS-style indirect execution of a many-to-many pattern."""

    name = "M2M-TPS"
    fifo_groups = 2

    def __init__(
        self, pattern: ManyToManyPattern, linear_axis: Optional[int] = None
    ) -> None:
        super().__init__(pattern)
        self.linear_axis = linear_axis

    def build_program(
        self,
        shape: TorusShape,
        msg_bytes: int = 0,
        params: Optional[MachineParams] = None,
        seed: int = 0,
        carry_data: bool = False,
        faults: Optional[FaultPlan] = None,
    ) -> _M2MTPSProgram:
        require(not carry_data, "many-to-many programs carry no data chunks")
        _reject_dead_nodes(faults, self.name)
        params = params or MachineParams.bluegene_l()
        require(self.pattern.nnodes == shape.nnodes, "pattern/shape mismatch")
        return _M2MTPSProgram(
            shape, self.pattern, params, seed, linear_axis=self.linear_axis
        )
