"""The Two Phase Schedule (TPS) indirect strategy (Section 4.1).

Phase 1 sends every message along a chosen *linear* dimension to the
intermediate node whose linear coordinate matches the final destination
(and whose other coordinates match the source).  Phase 2 forwards from the
intermediate across the remaining *planar* dimensions.  The two phases
overlap: phase-1 packets and phase-2 packets use disjoint injection-FIFO
groups, so neither blocks behind the other, and both phases route
adaptively — which is exactly what distinguishes TPS from deterministic
dimension-order routing (three VCs stay usable, and planar packets never
sit behind linear packets in a VC FIFO).

Linear-dimension choice (paper): pick the dimension whose removal leaves
the remaining dimensions symmetric, if one exists; otherwise pick the
longest dimension (the bottleneck).  The table-3 performance argument: if
the longest dimension has size n and the second-longest m, near-peak only
needs the planar phase to run at (m/n) * 100% of peak.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.model.alltoall import peak_time_cycles
from repro.model.machine import MachineParams
from repro.model.torus import TorusShape
from repro.net.faults import FaultPlan
from repro.net.packet import Packet, PacketSpec, RoutingMode
from repro.strategies.base import AllToAllStrategy, DirectProgramBase
from repro.strategies.data import (
    PHASE_TPS1,
    PHASE_TPS2,
    ChunkTag,
    DataChunk,
    chunks_of,
)
from repro.util.rng import derive_seed
from repro.util.validation import require

#: Injection-FIFO group of phase-1 (linear) packets.
PHASE1_GROUP = 0
#: Injection-FIFO group of phase-2 (planar) packets.
PHASE2_GROUP = 1


def choose_linear_axis(shape: TorusShape) -> int:
    """The paper's linear-dimension rule.

    1. Prefer an axis whose removal leaves the remaining axes equal-extent
       (e.g. Z on 32x32x16, X on 16x8x8); among several such candidates
       take the longest (then the highest index, so 8x8x8 picks Z as in
       Table 3).
    2. Otherwise take the longest axis (Y on 8x32x16, X on 40x32x16).
    """
    require(shape.ndim >= 2, "TPS needs at least 2 dimensions")
    dims = shape.dims
    symmetric_candidates = []
    for axis in range(shape.ndim):
        rest = [d for i, d in enumerate(dims) if i != axis]
        if len(set(rest)) == 1:
            symmetric_candidates.append(axis)
    if symmetric_candidates:
        return max(symmetric_candidates, key=lambda a: (dims[a], a))
    longest = max(dims)
    return dims.index(longest)


class TPSProgram(DirectProgramBase):
    """Node program implementing TPS traffic."""

    def __init__(
        self,
        shape: TorusShape,
        msg_bytes: int,
        params: MachineParams,
        seed: int,
        carry_data: bool,
        linear_axis: Optional[int] = None,
        packets_per_round: int = 2,
        pipelined: bool = True,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        super().__init__(
            shape, msg_bytes, params, seed, carry_data, packets_per_round,
            faults=faults,
        )
        self.linear_axis = (
            choose_linear_axis(shape) if linear_axis is None else linear_axis
        )
        require(
            0 <= self.linear_axis < shape.ndim,
            f"linear_axis out of range for {shape.label}",
        )
        #: With pipelining off (ablation), phase-2 packets share group 0,
        #: so they queue behind phase-1 packets in the injection FIFOs.
        self.pipelined = pipelined
        self._stride = 1
        for a in range(self.linear_axis):
            self._stride *= shape.dims[a]
        self._payload_offsets = []
        off = 0
        for pl in self.payload_split:
            self._payload_offsets.append(off)
            off += pl
        # Surviving ranks grouped by linear coordinate, for intermediate
        # re-picks around dead nodes (built only under a fault plan).
        self._alive_on_line: Optional[dict[int, list[int]]] = None
        if self.dead_nodes:
            axis, stride = self.linear_axis, self._stride
            n = shape.dims[axis]
            lines: dict[int, list[int]] = {}
            for u in range(shape.nnodes):
                if u in self.dead_nodes:
                    continue
                lines.setdefault((u // stride) % n, []).append(u)
            self._alive_on_line = lines

    # -------------------------------------------------------------- #

    def intermediate_for(self, src: int, dst: int) -> int:
        """Intermediate rank: source's coords with the linear coordinate
        replaced by the destination's.  When that rank is dead, re-pick a
        surviving intermediate on the destination's linear plane (phase 2
        stays linear-free), deterministically per (src, dst)."""
        axis, stride = self.linear_axis, self._stride
        n = self.shape.dims[axis]
        src_c = (src // stride) % n
        dst_c = (dst // stride) % n
        mid = src + (dst_c - src_c) * stride
        if self._alive_on_line is not None and mid in self.dead_nodes:
            return self._alt_mid(src, dst, dst_c)
        return mid

    def _alt_mid(self, src: int, dst: int, dst_c: int) -> int:
        """A surviving intermediate sharing the destination's linear
        coordinate.  The destination itself is always a candidate (the
        message then degenerates to a direct send), so the set is never
        empty; the choice is a seeded hash so schedules stay deterministic
        and the replacement load spreads over the plane."""
        assert self._alive_on_line is not None
        cands = self._alive_on_line[dst_c]
        pick = cands[derive_seed(self.seed, "tpsmid", src, dst) % len(cands)]
        return pick

    def _specs_for_dst(self, src: int, dst: int) -> list[PacketSpec]:
        mid = self.intermediate_for(src, dst)
        phase2_direct = mid == src  # we already sit on the destination line
        group = PHASE2_GROUP if phase2_direct else PHASE1_GROUP
        if not self.pipelined:
            group = PHASE1_GROUP
        kind = PHASE_TPS2 if phase2_direct else PHASE_TPS1
        spec_dst = dst if phase2_direct else mid
        specs = []
        for i, wire in enumerate(self.packet_sizes):
            payload = self.payload_split[i]
            if self.carry_data and payload > 0:
                tag: object = ChunkTag(
                    kind,
                    (DataChunk(src, dst, self._payload_offsets[i], payload),),
                )
            else:
                tag = kind
            specs.append(
                PacketSpec(
                    dst=spec_dst,
                    wire_bytes=wire,
                    mode=RoutingMode.ADAPTIVE,
                    fifo_group=group,
                    new_message=(i == 0),
                    tag=tag,
                    final_dst=dst,
                    payload_bytes=payload,
                )
            )
        return specs

    def injection_plan(self, node: int) -> Iterator[PacketSpec]:
        if node in self.dead_nodes:
            return
        order = self.destination_order(node)
        npk = len(self.packet_sizes)
        k = self.packets_per_round
        cache: dict[int, list[PacketSpec]] = {}
        cursors = [0] * len(order)
        remaining = len(order) * npk
        while remaining > 0:
            for di in range(len(order)):
                c = cursors[di]
                take = min(k, npk - c)
                if take <= 0:
                    continue
                dst = int(order[di])
                specs = cache.get(dst)
                if specs is None:
                    specs = self._specs_for_dst(node, dst)
                    cache[dst] = specs
                for i in range(take):
                    yield specs[c + i]
                cursors[di] = c + take
                remaining -= take
                if cursors[di] >= npk:
                    del cache[dst]

    def on_delivery(
        self, node: int, packet: Packet, now: float
    ) -> Iterable[PacketSpec]:
        if packet.final_dst == node:
            return ()
        # Phase-1 packet at its intermediate: forward across the plane.
        chunks = chunks_of(packet)
        tag: object = (
            ChunkTag(PHASE_TPS2, chunks) if chunks else PHASE_TPS2
        )
        return (
            PacketSpec(
                dst=packet.final_dst,
                wire_bytes=packet.wire_bytes,
                mode=RoutingMode.ADAPTIVE,
                fifo_group=PHASE2_GROUP if self.pipelined else PHASE1_GROUP,
                new_message=False,
                tag=tag,
                final_dst=packet.final_dst,
                payload_bytes=packet.payload_bytes,
            ),
        )

    def expected_final_deliveries(self) -> int:
        a = self.alive_count()
        return a * (a - 1) * len(self.packet_sizes)


class TwoPhaseSchedule(AllToAllStrategy):
    """The paper's Two Phase Schedule indirect all-to-all."""

    name = "TPS"
    fifo_groups = 2

    def __init__(
        self,
        linear_axis: Optional[int] = None,
        pipelined: bool = True,
        packets_per_round: int = 2,
    ) -> None:
        #: Force a specific linear dimension (ablation); None = paper rule.
        self.linear_axis = linear_axis
        #: Reserved-FIFO pipelining of the two phases (ablation switch).
        self.pipelined = pipelined
        self.packets_per_round = packets_per_round

    def supports(self, shape: TorusShape) -> bool:
        return shape.ndim >= 2

    def build_program(
        self,
        shape: TorusShape,
        msg_bytes: int,
        params: Optional[MachineParams] = None,
        seed: int = 0,
        carry_data: bool = False,
        faults: Optional[FaultPlan] = None,
    ) -> TPSProgram:
        params = params or MachineParams.bluegene_l()
        return TPSProgram(
            shape,
            msg_bytes,
            params,
            seed,
            carry_data,
            linear_axis=self.linear_axis,
            packets_per_round=self.packets_per_round,
            pipelined=self.pipelined,
            faults=faults,
        )

    def predict_cycles(
        self,
        shape: TorusShape,
        msg_bytes: int,
        params: Optional[MachineParams] = None,
    ) -> float:
        """Pipelined two-phase model: completion ~= startup + the slower of
        (linear-phase network, planar-phase network, the node CPU, which
        handles every byte four times: inject, intermediate drain,
        re-inject, final drain)."""
        params = params or MachineParams.bluegene_l()
        axis = (
            choose_linear_axis(shape)
            if self.linear_axis is None
            else self.linear_axis
        )
        p = shape.nnodes
        beta = params.beta_cycles_per_byte
        # Linear phase: every byte crosses the linear dimension's links.
        c_lin = shape.contention_factor_dim(axis)
        t1 = p * c_lin * msg_bytes * beta
        # Planar phase: the remaining dimensions' bottleneck.
        planar = [
            shape.contention_factor_dim(a)
            for a in range(shape.ndim)
            if a != axis
        ]
        t2 = p * max(planar, default=0.0) * msg_bytes * beta
        # CPU: 4 packet handlings per packet (2 injections + 2 drains).
        sizes = params.packetize_message(msg_bytes)
        per_msg_cpu = 4.0 * sum(
            params.cpu_packet_handling_cycles(w) for w in sizes
        )
        t_cpu = p * (params.alpha_packet_cycles + per_msg_cpu)
        return p * params.alpha_packet_cycles + max(t1, t2, t_cpu - p * params.alpha_packet_cycles)
