import sys, time
sys.path.insert(0, sys.argv[1])
from repro.api import simulate_alltoall
from repro.model.torus import TorusShape
from repro.strategies.direct import ARDirect
shape = TorusShape.parse(sys.argv[2])
reps = int(sys.argv[3]) if len(sys.argv) > 3 else 3
best = None
for _ in range(reps):
    t0 = time.process_time()
    res = simulate_alltoall(ARDirect(), shape, 64, seed=1).result
    dt = time.process_time() - t0
    best = dt if best is None or dt < best else best
print('%s %s: cpu %.2fs ev/s %.0f events=%d' % (
    sys.argv[1], sys.argv[2], best, res.events_processed / best,
    res.events_processed))
