"""Scenario: why all-to-all degrades on asymmetric tori, and how the
Two Phase Schedule fixes it (the paper's Sections 3.2 and 4.1).

Sweeps partition aspect ratio at fixed node count, showing
(a) per-dimension link utilization imbalance under adaptive routing,
(b) the AR efficiency collapse, and (c) TPS recovering near the
symmetric baseline.

Run:  python examples/asymmetric_torus.py
"""

from repro import TorusShape, simulate_alltoall
from repro.analysis import render_table
from repro.model import asymmetry_metrics
from repro.strategies import ARDirect, TwoPhaseSchedule

# 128 nodes in three aspect ratios (1:1:2 up to 1:2:4).
PARTITIONS = ["4x4x8", "8x4x4", "4x8x4", "2x8x8", "4x4x4"]
MSG_BYTES = 464


def main() -> None:
    rows = []
    for lbl in PARTITIONS:
        shape = TorusShape.parse(lbl)
        metrics = asymmetry_metrics(shape)
        ar = simulate_alltoall(ARDirect(), shape, MSG_BYTES)
        tps = simulate_alltoall(TwoPhaseSchedule(), shape, MSG_BYTES)
        axis_util = ar.result.axis_utilization(shape)
        rows.append(
            {
                "partition": lbl,
                "balance": metrics.balance,
                "link util X/Y/Z": "/".join(f"{u:.2f}" for u in axis_util),
                "AR %": ar.percent_of_peak,
                "TPS %": tps.percent_of_peak,
                "TPS speedup": ar.time_cycles / tps.time_cycles,
            }
        )
    print(
        render_table(
            "Asymmetry -> AR congestion -> TPS recovery "
            f"(m={MSG_BYTES} B)",
            ["partition", "balance", "link util X/Y/Z", "AR %", "TPS %",
             "TPS speedup"],
            rows,
            notes=[
                "balance < 1 means some dimensions idle while the longest "
                "saturates (Section 3.2); TPS routes phase 1 along the "
                "long dimension and recovers the loss (Section 4.1).",
            ],
        )
    )


if __name__ == "__main__":
    main()
