"""Scenario: the Section 5 recipe as an autotuner, plus bounded-memory
forwarding with credit-based flow control.

Walks a realistic mix of (partition, message size) workloads — the kind a
collectives library sees from FFT transposes, halo redistribution and
graph shuffles — showing which algorithm ``select_strategy`` picks and
what it would cost against the alternatives; then demonstrates the
credit-based flow control of Section 5 bounding intermediate memory for
a fraction of a percent of bandwidth.

Run:  python examples/autotuner.py
"""

from repro import TorusShape, simulate_alltoall
from repro.analysis import render_table
from repro.strategies import (
    ARDirect,
    TwoPhaseSchedule,
    VirtualMesh2D,
    select_strategy,
)
from repro.strategies.flowcontrol import CreditedTPS

WORKLOADS = [
    ("4x4x4", 8),      # spectral transpose, tiny rows
    ("4x4x4", 2048),   # dense transpose, symmetric partition
    ("4x4x8", 16),     # short messages, asymmetric partition
    ("4x4x8", 1024),   # large messages, asymmetric partition
    ("4x8x2M", 464),   # mesh dimension (unwired wrap)
]


def main() -> None:
    rows = []
    for lbl, m in WORKLOADS:
        shape = TorusShape.parse(lbl)
        candidates = {
            "AR": ARDirect(),
            "TPS": TwoPhaseSchedule(),
            "VMesh": VirtualMesh2D(),
        }
        times = {
            name: simulate_alltoall(s, shape, m).time_us
            for name, s in candidates.items()
        }
        picked = select_strategy(shape, m).name
        best = min(times, key=times.get)
        rows.append(
            {
                "partition": lbl,
                "m bytes": m,
                "AR us": times["AR"],
                "TPS us": times["TPS"],
                "VMesh us": times["VMesh"],
                "selector picks": picked,
                "actual best": best,
            }
        )
    print(
        render_table(
            "Autotuned all-to-all (Section 5: direct on symmetric, TPS on "
            "asymmetric, VMesh below the crossover)",
            ["partition", "m bytes", "AR us", "TPS us", "VMesh us",
             "selector picks", "actual best"],
            rows,
        )
    )

    # --- bounded intermediate memory (Section 5 future work) -----------
    shape = TorusShape.parse("4x4x8")
    m = 1024
    plain = simulate_alltoall(TwoPhaseSchedule(), shape, m)
    credited = simulate_alltoall(
        CreditedTPS(window=8, packets_per_credit=4), shape, m
    )
    overhead = 100.0 * (credited.time_cycles / plain.time_cycles - 1.0)
    print(
        f"\ncredit flow control on {shape.label} (m={m} B): "
        f"window=8 pkts/intermediate, 1 credit per 4 packets -> "
        f"{overhead:+.1f}% time vs unbounded TPS"
    )


if __name__ == "__main__":
    main()
