"""Quickstart: simulate one all-to-all and verify a real data exchange.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import TorusShape, simulate_alltoall
from repro.runtime import Communicator
from repro.strategies import ARDirect, TwoPhaseSchedule, select_strategy


def main() -> None:
    # --- 1. Time an all-to-all on an asymmetric BG/L partition ---------
    shape = TorusShape.parse("4x4x8")  # a 2n-aspect torus, 128 nodes
    msg_bytes = 464

    ar = simulate_alltoall(ARDirect(), shape, msg_bytes)
    tps = simulate_alltoall(TwoPhaseSchedule(), shape, msg_bytes)
    print(f"partition {shape.label}, {msg_bytes} B per rank pair")
    print(f"  AR  (direct, adaptive): {ar.time_us:8.1f} us"
          f"  = {ar.percent_of_peak:5.1f}% of peak")
    print(f"  TPS (two-phase)       : {tps.time_us:8.1f} us"
          f"  = {tps.percent_of_peak:5.1f}% of peak")
    print(f"  paper's headline: the indirect TPS overtakes direct AR on "
          f"asymmetric tori -> speedup {ar.time_cycles / tps.time_cycles:.2f}x")

    # --- 2. The auto-selector picks the paper's best algorithm ---------
    for m in (8, 1024):
        chosen = select_strategy(shape, m)
        print(f"  select_strategy({shape.label}, m={m}B) -> {chosen.name}")

    # --- 3. Move real bytes through the schedule and verify ------------
    comm = Communicator(TorusShape.parse("4x4"))
    p, m = comm.size, 16
    send = np.arange(p * p * m, dtype=np.uint8).reshape(p, p, m)
    outcome = comm.alltoall(send, simulate_timing=True)
    assert (outcome.recv[3, 5] == send[5, 3]).all()
    assert outcome.run is not None
    print(f"  verified {p}x{p} exchange of {m} B messages via "
          f"{outcome.strategy}: {outcome.run.time_us:.1f} us simulated")


if __name__ == "__main__":
    main()
