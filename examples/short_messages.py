"""Scenario: short-message all-to-all and the virtual-mesh combining win
(the paper's Section 4.2 / Figures 5-7).

FFT-style transposes and particle codes exchange a few bytes per rank
pair; per-destination startup (alpha) then dominates.  The 2-D virtual
mesh replaces P startups with pvx+pvy at the price of moving every byte
twice.  This example sweeps the message size to locate the crossover and
compares it against the paper's h - 2*proto = 32 B model value.

Run:  python examples/short_messages.py
"""

from repro import TorusShape, predict_alltoall, simulate_alltoall
from repro.analysis import render_table
from repro.model import MachineParams, ar_vmesh_crossover_bytes
from repro.strategies import ARDirect, VirtualMesh2D
from repro.util.units import cycles_to_us

SHAPE = TorusShape.parse("4x4x4")
SIZES = [1, 4, 8, 16, 32, 64, 128, 256]


def main() -> None:
    params = MachineParams.bluegene_l()
    vmesh = VirtualMesh2D()
    rows = []
    crossover_measured = None
    for m in SIZES:
        ar = simulate_alltoall(ARDirect(), SHAPE, m, params)
        vm = simulate_alltoall(vmesh, SHAPE, m, params)
        speedup = ar.time_cycles / vm.time_cycles
        if crossover_measured is None and speedup <= 1.0:
            crossover_measured = m
        rows.append(
            {
                "m bytes": m,
                "AR us": ar.time_us,
                "VMesh us": vm.time_us,
                "AR model us": cycles_to_us(
                    predict_alltoall(ARDirect(), SHAPE, m, params)
                ),
                "VMesh model us": cycles_to_us(
                    predict_alltoall(vmesh, SHAPE, m, params)
                ),
                "speedup": speedup,
            }
        )
    print(
        render_table(
            f"Short-message all-to-all on {SHAPE.label}",
            ["m bytes", "AR us", "VMesh us", "AR model us",
             "VMesh model us", "speedup"],
            rows,
        )
    )
    print(
        f"model crossover (h - 2*proto): {ar_vmesh_crossover_bytes(params)} B;"
        f" measured crossover: ~{crossover_measured} B"
        " (the paper observed it between 32 and 64 B)"
    )


if __name__ == "__main__":
    main()
