"""Setup shim: lets ``pip install -e .`` work offline (no wheel package
available for PEP-517 editable builds); all metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
