"""Unit tests for the experiment framework (registry, scaling, drivers).

Driver outputs are exercised at tiny scale; the full qualitative-shape
checks live in the benchmarks.
"""

import pytest

from repro.experiments.common import (
    ExperimentResult,
    resolve_scale,
    scale_shape,
    shape_for_scale,
)
from repro.experiments.registry import ABLATIONS, EXPERIMENTS, get_driver, run_experiment
from repro.model.torus import TorusShape


class TestScaling:
    def test_resolve_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert resolve_scale(None) == "small"
        assert resolve_scale("tiny") == "tiny"

    def test_resolve_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert resolve_scale(None) == "full"

    def test_resolve_scale_invalid(self):
        with pytest.raises(ValueError):
            resolve_scale("huge")

    def test_scale_shape_preserves_ratio(self):
        shape, div = scale_shape(TorusShape.parse("32x32x16"), 512)
        assert div == 4
        assert shape.dims == (8, 8, 4)

    def test_scale_shape_noop_when_small(self):
        shape, div = scale_shape(TorusShape.parse("8x8"), 512)
        assert div == 1
        assert shape.dims == (8, 8)

    def test_scale_shape_preserves_mesh_flags(self):
        shape, _ = scale_shape(TorusShape.parse("16x16x8M"), 128)
        assert shape.torus == (True, True, False)

    def test_scale_shape_floors_at_two(self):
        shape, _ = scale_shape(TorusShape.parse("40x32x16"), 64)
        assert min(shape.dims) >= 2

    def test_scale_shape_warns_when_bottomed_out(self):
        # 2x2x2 = 8 nodes can't be reduced below all-2 dims, so a
        # budget of 4 is unreachable: the caller must be told.
        with pytest.warns(UserWarning, match="bottomed out.*max_nodes=4"):
            shape, _ = scale_shape(TorusShape.parse("2x2x2"), 4)
        assert shape.dims == (2, 2, 2)

    def test_scale_shape_no_warning_when_it_fits(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            scale_shape(TorusShape.parse("32x32x16"), 512)

    def test_shape_for_scale_tiers(self):
        s, tier = shape_for_scale(TorusShape.parse("4x4"), "tiny")
        assert tier == "A" and s.dims == (4, 4)
        s, tier = shape_for_scale(TorusShape.parse("32x32x16"), "tiny")
        assert tier == "B" and s.nnodes <= 128


class TestRegistry:
    def test_eleven_paper_experiments(self):
        # One driver per table and figure in the paper's evaluation.
        assert len(EXPERIMENTS) == 11

    def test_ablations_and_extensions(self):
        # five ablations + scaling study + resilience sweep
        assert len(ABLATIONS) == 7

    def test_unknown_id(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_driver("nope")

    def test_ids_match_modules(self):
        for eid in ("tab1_symmetric", "fig7_compare_4096"):
            assert callable(get_driver(eid))


class TestResultType:
    def test_row_by_and_column(self):
        r = ExperimentResult("x", "t", ["a", "b"], rows=[{"a": 1, "b": 2}])
        assert r.row_by("a", 1)["b"] == 2
        assert r.column("b") == [2]
        with pytest.raises(KeyError):
            r.row_by("a", 9)

    def test_row_by_error_lists_available_keys(self):
        r = ExperimentResult(
            "x", "t", ["a", "b"], rows=[{"a": 1, "b": 2}, {"a": 3, "b": 4}]
        )
        with pytest.raises(KeyError, match=r"no row with a=9.*\[1, 3\]"):
            r.row_by("a", 9)

    def test_render_contains_id(self):
        r = ExperimentResult("myexp", "title", ["a"], rows=[{"a": 1}])
        assert "[myexp]" in r.render()


class TestDriversTiny:
    """Each driver runs end-to-end at tiny scale and yields sane rows."""

    @pytest.mark.parametrize(
        "exp_id",
        ["fig5_vmesh_pred", "tab1_symmetric", "fig1_ar_midplane"],
    )
    def test_driver_runs(self, exp_id):
        result = run_experiment(exp_id, scale="tiny")
        assert result.rows
        assert result.exp_id == exp_id
        for row in result.rows:
            for col in result.columns:
                assert col in row

    def test_fig2_has_model_column(self):
        result = run_experiment("fig2_ar_4096", scale="tiny")
        assert all(v > 0 for v in result.column("Eq.3 % of peak"))

    def test_resilience_sweep(self):
        result = run_experiment("resilience_sweep", scale="tiny")
        # Baseline row first, then increasingly faulty rows that still
        # complete; faults must actually cost bandwidth.
        pct = result.column("% of baseline")
        assert pct[0] == 100.0
        assert all(0.0 < v < 100.0 for v in pct[1:])
        baseline, faulty = result.rows[0], result.rows[-1]
        assert baseline["lost"] == 0 and baseline["rerouted hops"] == 0
        assert faulty["lost"] > 0
        assert faulty["retx"] >= faulty["lost"]
        assert faulty["links alive"] < baseline["links alive"]
