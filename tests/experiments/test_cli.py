"""CLI smoke tests (bgl-alltoall)."""

import pytest

from repro.experiments.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "tab3_tps" in out
    assert "[paper]" in out
    assert "[ablation]" in out


def test_run_model_experiment(capsys):
    assert main(["run", "fig5_vmesh_pred", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "[fig5_vmesh_pred]" in out
    assert "VMesh pred us" in out


def test_run_unknown_id():
    with pytest.raises(KeyError):
        main(["run", "nope"])


def test_bad_scale_rejected():
    with pytest.raises(SystemExit):
        main(["run", "fig5_vmesh_pred", "--scale", "huge"])
