"""CLI smoke tests (bgl-alltoall)."""

import json

import pytest

from repro.experiments.cli import main


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    from repro.runner.pool import counters

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    counters.reset()
    yield
    counters.reset()


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "tab3_tps" in out
    assert "[paper]" in out
    assert "[ablation]" in out


def test_run_model_experiment(capsys):
    assert main(["run", "fig5_vmesh_pred", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "[fig5_vmesh_pred]" in out
    assert "VMesh pred us" in out


def test_run_unknown_id():
    with pytest.raises(KeyError):
        main(["run", "nope"])


def test_bad_scale_rejected():
    with pytest.raises(SystemExit):
        main(["run", "fig5_vmesh_pred", "--scale", "huge"])


def test_trace_and_metrics_flags(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    metrics = tmp_path / "metrics.json"
    assert (
        main(
            [
                "run", "fig1_ar_midplane", "--scale", "tiny",
                "--trace", str(trace), "--trace-sample", "8",
                "--metrics", str(metrics),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "trace:" in out and "metrics:" in out
    doc = json.loads(trace.read_text())
    assert doc["traceEvents"], "Chrome trace has no events"
    assert {e["ph"] for e in doc["traceEvents"]} <= {"M", "X", "i"}
    mdoc = json.loads(metrics.read_text())
    assert mdoc["points"], "metrics file has no per-point entries"
    first = mdoc["points"][0]["metrics"]
    assert "link_utilization.x" in first
    assert "aggregate" in mdoc


def test_trace_jsonl_extension(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    assert (
        main(
            [
                "run", "fig1_ar_midplane", "--scale", "tiny",
                "--trace", str(trace), "--trace-sample", "16",
            ]
        )
        == 0
    )
    lines = trace.read_text().splitlines()
    assert lines
    rec = json.loads(lines[0])
    assert "kind" in rec and "t" in rec and "point" in rec


def test_cache_stats_flag(capsys):
    assert (
        main(
            ["run", "fig5_vmesh_pred", "--scale", "tiny", "--cache-stats"]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "cache:" in out
    assert "hit(s)" in out and "miss(es)" in out and "store(s)" in out


def test_provenance_flag(capsys):
    assert (
        main(
            ["run", "fig5_vmesh_pred", "--scale", "tiny", "--provenance"]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert '"config_fingerprint"' in out
    assert '"schema_version"' in out


def _fingerprint(out):
    for block in out.split("\n{"):
        if '"config_fingerprint"' in block:
            doc = json.loads("{" + block.split("\n}")[0] + "\n}")
            return doc["config_fingerprint"]
    raise AssertionError("no provenance record in output")


def test_provenance_fingerprint_stable_across_runs(capsys):
    argv = ["run", "fig1_ar_midplane", "--scale", "tiny", "--provenance"]
    assert main(argv) == 0
    first = _fingerprint(capsys.readouterr().out)
    assert main(argv) == 0
    second = _fingerprint(capsys.readouterr().out)
    assert first == second


def test_cache_stats_warm_run_reports_hits(capsys):
    argv = ["run", "fig1_ar_midplane", "--scale", "tiny", "--cache-stats"]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "0 hit(s)" in cold and "0 corrupt" in cold
    assert main(argv) == 0
    warm = capsys.readouterr().out
    assert "0 miss(es)" in warm and "0 hit(s)" not in warm
    assert "0 point(s) simulated" in warm


def test_cache_stats_counts_corrupt_entries(capsys):
    from repro.runner import cache_root

    argv = ["run", "fig1_ar_midplane", "--scale", "tiny", "--cache-stats"]
    assert main(argv) == 0
    capsys.readouterr()
    entries = list(cache_root().rglob("*.json"))
    assert entries
    for entry in entries:
        entry.write_text("{truncated")
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert f"{len(entries)} corrupt" in out
    # A corrupt entry is a miss: the point re-simulates and re-stores.
    assert "0 point(s) simulated" not in out
    assert "0 store(s)" not in out


def test_check_flag_bypasses_cache(capsys):
    argv = ["run", "fig1_ar_midplane", "--scale", "tiny", "--cache-stats"]
    assert main(argv) == 0
    capsys.readouterr()
    # Even with a warm cache, --check must re-simulate every point on the
    # oracle-checked network and store nothing.
    assert main(argv + ["--check"]) == 0
    out = capsys.readouterr().out
    assert "0 hit(s)" in out and "0 store(s)" in out
    assert "0 point(s) simulated" not in out


def test_quiet_and_verbose_flags():
    assert main(["-q", "run", "fig5_vmesh_pred", "--scale", "tiny"]) == 0
    assert main(["-v", "run", "fig5_vmesh_pred", "--scale", "tiny"]) == 0
