"""CLI smoke tests (bgl-alltoall)."""

import json

import pytest

from repro.experiments.cli import main


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "tab3_tps" in out
    assert "[paper]" in out
    assert "[ablation]" in out


def test_run_model_experiment(capsys):
    assert main(["run", "fig5_vmesh_pred", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "[fig5_vmesh_pred]" in out
    assert "VMesh pred us" in out


def test_run_unknown_id():
    with pytest.raises(KeyError):
        main(["run", "nope"])


def test_bad_scale_rejected():
    with pytest.raises(SystemExit):
        main(["run", "fig5_vmesh_pred", "--scale", "huge"])


def test_trace_and_metrics_flags(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    metrics = tmp_path / "metrics.json"
    assert (
        main(
            [
                "run", "fig1_ar_midplane", "--scale", "tiny",
                "--trace", str(trace), "--trace-sample", "8",
                "--metrics", str(metrics),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "trace:" in out and "metrics:" in out
    doc = json.loads(trace.read_text())
    assert doc["traceEvents"], "Chrome trace has no events"
    assert {e["ph"] for e in doc["traceEvents"]} <= {"M", "X", "i"}
    mdoc = json.loads(metrics.read_text())
    assert mdoc["points"], "metrics file has no per-point entries"
    first = mdoc["points"][0]["metrics"]
    assert "link_utilization.x" in first
    assert "aggregate" in mdoc


def test_trace_jsonl_extension(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    assert (
        main(
            [
                "run", "fig1_ar_midplane", "--scale", "tiny",
                "--trace", str(trace), "--trace-sample", "16",
            ]
        )
        == 0
    )
    lines = trace.read_text().splitlines()
    assert lines
    rec = json.loads(lines[0])
    assert "kind" in rec and "t" in rec and "point" in rec


def test_cache_stats_flag(capsys):
    assert (
        main(
            ["run", "fig5_vmesh_pred", "--scale", "tiny", "--cache-stats"]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "cache:" in out
    assert "hit(s)" in out and "miss(es)" in out and "store(s)" in out


def test_provenance_flag(capsys):
    assert (
        main(
            ["run", "fig5_vmesh_pred", "--scale", "tiny", "--provenance"]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert '"config_fingerprint"' in out
    assert '"schema_version"' in out


def test_quiet_and_verbose_flags():
    assert main(["-q", "run", "fig5_vmesh_pred", "--scale", "tiny"]) == 0
    assert main(["-v", "run", "fig5_vmesh_pred", "--scale", "tiny"]) == 0
