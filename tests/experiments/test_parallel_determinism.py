"""Every experiment driver is deterministic under the parallel runner.

Satellite of the fast-path PR: at tiny scale each driver must produce
identical rows with ``jobs=1`` and ``jobs=4``, and a second (warm-cache)
run must execute zero simulations.
"""

from __future__ import annotations

import pytest

from repro.experiments.registry import ALL, run_experiment
from repro.runner import counters


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    counters.reset()


@pytest.mark.parametrize("exp_id", sorted(ALL))
def test_driver_rows_identical_across_job_counts(exp_id: str) -> None:
    seq = run_experiment(exp_id, scale="tiny", jobs=1)
    par = run_experiment(exp_id, scale="tiny", jobs=4)
    assert par.columns == seq.columns
    assert par.rows == seq.rows
    assert par.render() == seq.render()


@pytest.mark.parametrize("exp_id", sorted(ALL))
def test_second_run_is_served_entirely_from_cache(exp_id: str) -> None:
    cold = run_experiment(exp_id, scale="tiny", jobs=1)
    first_simulated = counters.simulated
    counters.reset()
    warm = run_experiment(exp_id, scale="tiny", jobs=4)
    assert counters.simulated == 0, (
        f"{exp_id}: warm rerun executed {counters.simulated} simulations"
    )
    # fig5 is a pure closed-form model: zero points either way is fine.
    if first_simulated:
        assert counters.cache_hits == first_simulated
    assert warm.rows == cold.rows
