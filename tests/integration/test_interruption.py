"""End-to-end interruption drills: SIGINT mid-sweep, chaos worker kills,
torn journals — resumed runs must be bit-identical to uninterrupted ones.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.runner.supervise import SweepJournal

REPO = Path(__file__).resolve().parents[2]

#: Stall harness: runs the real CLI but wedges the sweep after the first
#: two points have completed, so the parent can SIGINT a mid-sweep run
#: at a deterministic spot.  Patching ``_simulate_encoded`` on the pool
#: module is visible to the sequential supervised path (workers import
#: it by attribute at call time).
_STALL_HARNESS = """
import sys, time
import repro.runner.pool as pool_mod
from repro.experiments.cli import main

orig = pool_mod._simulate_encoded
completed = 0

def gated(point, obs, check):
    global completed
    if completed >= 2:
        print("STALLED", flush=True)
        time.sleep(300)
    completed += 1
    return orig(point, obs, check)

pool_mod._simulate_encoded = gated
sys.exit(main(sys.argv[1:]))
"""

_TIMING_RE = re.compile(r"^\s*\(\d+(\.\d+)?s\)$")


def _env(tmp_path, **extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["REPRO_CACHE"] = "0"
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    env.pop("REPRO_CHAOS", None)
    env.pop("REPRO_POINT_TIMEOUT", None)
    env.pop("REPRO_JOBS", None)
    env.update(extra)
    return env


def _table_lines(stdout: str) -> list[str]:
    """CLI output minus the wall-time line (the only nondeterminism)."""
    return [
        ln
        for ln in stdout.splitlines()
        if ln.strip() and not _TIMING_RE.match(ln)
        and not ln.startswith(("cache:", "supervision:"))
    ]


def _run_cli(args, env, timeout=180):
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments.cli", *args],
        cwd=REPO,
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.fixture(scope="module")
def clean_output(tmp_path_factory):
    """The uninterrupted --jobs 1 reference table for fig1 tiny."""
    tmp = tmp_path_factory.mktemp("clean")
    proc = _run_cli(
        ["run", "fig1_ar_midplane", "--scale", "tiny", "--jobs", "1"],
        _env(tmp),
    )
    assert proc.returncode == 0, proc.stderr
    return _table_lines(proc.stdout)


class TestSigintResume:
    def test_sigint_mid_sweep_then_resume_is_bit_identical(
        self, tmp_path, clean_output
    ):
        journal = tmp_path / "sweep.jsonl"
        env = _env(tmp_path)
        child = subprocess.Popen(
            [
                sys.executable,
                "-c",
                _STALL_HARNESS,
                "run",
                "fig1_ar_midplane",
                "--scale",
                "tiny",
                "--journal",
                str(journal),
            ],
            cwd=REPO,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            # Wait for the harness to report it is wedged mid-sweep.
            deadline = time.monotonic() + 120
            for line in child.stdout:
                if "STALLED" in line:
                    break
                assert time.monotonic() < deadline, "harness never stalled"
            child.send_signal(signal.SIGINT)
            child.wait(timeout=60)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait()
        _, err = child.communicate()
        assert child.returncode == 130
        assert "resume with" in err
        # Two completed points were checkpointed before the interrupt.
        assert len(SweepJournal.load(journal)) == 2

        resumed = _run_cli(
            [
                "run",
                "fig1_ar_midplane",
                "--scale",
                "tiny",
                "--resume",
                str(journal),
                "--cache-stats",
            ],
            _env(tmp_path),
        )
        assert resumed.returncode == 0, resumed.stderr
        assert _table_lines(resumed.stdout) == clean_output
        # Only the two missing points simulated; two came from the journal.
        assert "2 point(s) simulated" in resumed.stdout
        assert "journal 2 hit(s)" in resumed.stdout
        # The journal healed to the full sweep.
        assert len(SweepJournal.load(journal)) == 4


class TestChaosWorkerKill:
    @pytest.mark.slow
    def test_pooled_sweep_survives_sigkilled_workers(
        self, tmp_path, clean_output
    ):
        proc = _run_cli(
            [
                "run",
                "fig1_ar_midplane",
                "--scale",
                "tiny",
                "--jobs",
                "2",
                "--retries",
                "9",
                "--cache-stats",
            ],
            # The chaos draw hashes (seed, point key, attempt) and point
            # keys embed the codec SCHEMA_VERSION, so a schema bump
            # re-rolls every draw.  Re-pick a seed that actually kills
            # at least one first attempt whenever the schema changes.
            _env(tmp_path, REPRO_CHAOS="kill:0.3,seed=2"),
        )
        assert proc.returncode == 0, proc.stderr
        assert _table_lines(proc.stdout) == clean_output
        # Chaos actually struck: the supervision summary is present.
        assert "supervision:" in proc.stdout


class TestTornJournalResume:
    def test_truncated_and_torn_journal_resumes_cleanly(
        self, tmp_path, clean_output
    ):
        journal = tmp_path / "sweep.jsonl"
        first = _run_cli(
            [
                "run",
                "fig1_ar_midplane",
                "--scale",
                "tiny",
                "--journal",
                str(journal),
            ],
            _env(tmp_path),
        )
        assert first.returncode == 0, first.stderr
        assert len(SweepJournal.load(journal)) == 4
        # Chop the last record and leave a torn half-line behind it, as a
        # SIGKILL mid-write would.
        lines = journal.read_text().splitlines()
        journal.write_text(
            "\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2]
        )
        assert len(SweepJournal.load(journal)) == 3

        resumed = _run_cli(
            [
                "run",
                "fig1_ar_midplane",
                "--scale",
                "tiny",
                "--resume",
                str(journal),
                "--cache-stats",
            ],
            _env(tmp_path),
        )
        assert resumed.returncode == 0, resumed.stderr
        assert _table_lines(resumed.stdout) == clean_output
        assert "1 point(s) simulated" in resumed.stdout
        assert "journal 3 hit(s)" in resumed.stdout
        # Healed journal: well-formed, all four points present.
        loaded = SweepJournal.load(journal)
        assert len(loaded) == 4
        for payload in loaded.values():
            assert json.loads(json.dumps(payload)) == payload
