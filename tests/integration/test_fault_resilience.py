"""End-to-end fault resilience: the acceptance bar of the fault subsystem.

With a connected plan of >= 5% dead links plus 1% per-hop packet loss on a
4x4x4 torus, every built-in all-to-all strategy must (a) run to completion
in the timed simulator — routing around the cuts and recovering losses via
retransmission + dedup — and (b) pass the functional exchange verification
(every surviving pair's bytes delivered exactly once).  Dead-node plans are
additionally exercised for the strategies that can degrade around them.
"""

import pytest

pytestmark = pytest.mark.slow

from repro.api import simulate_alltoall
from repro.functional.verify import run_and_verify
from repro.model.torus import TorusShape
from repro.net import FaultPlan
from repro.strategies import (
    ARDirect,
    CreditedTPS,
    DRDirect,
    ManyToManyDirect,
    MPIDirect,
    ThrottledAR,
    TwoPhaseSchedule,
    VirtualMesh2D,
    select_strategy,
)

SHAPE = TorusShape.parse("4x4x4")

#: >= 5% of the 192 wires dead (connected), 1% per-hop loss.
PLAN = FaultPlan.random(
    SHAPE,
    seed=1,
    dead_link_fraction=0.05,
    loss_prob=0.01,
    retx_timeout_cycles=10_000.0,
)

#: A plan that also takes ranks down entirely.
DEAD_NODE_PLAN = FaultPlan.random(
    SHAPE,
    seed=2,
    dead_link_fraction=0.02,
    dead_node_fraction=0.05,
    loss_prob=0.01,
    retx_timeout_cycles=10_000.0,
)

ALL_STRATEGIES = [
    ARDirect(),
    DRDirect(),
    MPIDirect(),
    ThrottledAR(),
    TwoPhaseSchedule(),
    CreditedTPS(),
    VirtualMesh2D(),
]


def _n_dead_wires(plan):
    return len(plan.dead_links)


def test_plan_meets_acceptance_fault_level():
    assert _n_dead_wires(PLAN) >= 0.05 * SHAPE.total_links / 2
    assert PLAN.loss_prob == 0.01


@pytest.mark.parametrize(
    "strategy", ALL_STRATEGIES, ids=lambda s: s.name
)
def test_timed_run_completes_under_faults(strategy):
    run = simulate_alltoall(strategy, SHAPE, 64, seed=0, faults=PLAN)
    p = SHAPE.nnodes
    assert run.result.final_deliveries > 0
    assert run.time_cycles > 0
    # Losses occurred and every one was recovered.
    assert run.result.lost_packets > 0
    assert run.result.retransmitted_packets >= run.result.lost_packets
    # Dead links forced detours.
    assert run.result.rerouted_hops > 0


@pytest.mark.parametrize(
    "strategy", ALL_STRATEGIES, ids=lambda s: s.name
)
def test_exchange_verifies_under_faults(strategy):
    _, report = run_and_verify(strategy, SHAPE, 64, seed=0, faults=PLAN)
    assert report.ok, report.summary()


@pytest.mark.parametrize(
    "strategy",
    [ARDirect(), DRDirect(), MPIDirect(), TwoPhaseSchedule(), CreditedTPS()],
    ids=lambda s: s.name,
)
def test_dead_nodes_degrade_gracefully(strategy):
    run = simulate_alltoall(
        strategy, SHAPE, 64, seed=0, faults=DEAD_NODE_PLAN
    )
    alive = SHAPE.nnodes - len(DEAD_NODE_PLAN.dead_nodes)
    assert len(DEAD_NODE_PLAN.dead_nodes) > 0
    assert run.result.final_deliveries > 0
    _, report = run_and_verify(
        strategy, SHAPE, 64, seed=0, faults=DEAD_NODE_PLAN
    )
    assert report.ok, report.summary()
    # The exchange is restricted to the survivors.
    assert alive < SHAPE.nnodes


def test_bijective_strategies_refuse_dead_nodes():
    from repro.strategies import random_access_pattern

    with pytest.raises(ValueError, match="dead nodes"):
        VirtualMesh2D().build_program(SHAPE, 64, faults=DEAD_NODE_PLAN)
    pattern = random_access_pattern(SHAPE, 4)
    with pytest.raises(ValueError, match="dead nodes"):
        ManyToManyDirect(pattern).build_program(
            SHAPE, faults=DEAD_NODE_PLAN
        )


def test_selector_falls_back_to_adaptive_direct():
    # Under faults the selector must pick the most fault-tolerant strategy
    # regardless of the message-size crossover.
    assert select_strategy(SHAPE, 64, faults=PLAN).name == ARDirect().name
    assert select_strategy(SHAPE, 1_000_000, faults=PLAN).name == ARDirect().name
    assert select_strategy(SHAPE, 64, faults=None).name != ""


def test_deterministic_under_faults():
    a = simulate_alltoall(ARDirect(), SHAPE, 64, seed=0, faults=PLAN)
    b = simulate_alltoall(ARDirect(), SHAPE, 64, seed=0, faults=PLAN)
    assert a.time_cycles == b.time_cycles
    assert a.result.lost_packets == b.result.lost_packets
    assert a.result.events_processed == b.result.events_processed
