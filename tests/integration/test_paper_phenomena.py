"""Integration tests: the paper's qualitative phenomena at test scale.

These run complete timed simulations on small partitions and assert the
*contrasts* the paper reports — who wins, in which regime — which are the
reproduction targets (absolute percentages differ; see DESIGN.md 5).
"""

import pytest

pytestmark = pytest.mark.slow

from repro.api import simulate_alltoall
from repro.model.machine import MachineParams
from repro.model.torus import TorusShape
from repro.strategies import (
    ARDirect,
    DRDirect,
    MPIDirect,
    ThrottledAR,
    TwoPhaseSchedule,
    VirtualMesh2D,
)

# Two full packets per destination: enough traffic to reach the
# contention-dominated steady state the tables measure (a single packet
# per destination is still startup-dominated at this scale).
M_LARGE = 464

#: A 1:1:4 torus: strong asymmetry, like the paper's 8x32x16.
ASYM = "4x4x16"


@pytest.fixture(scope="module")
def runs():
    """Shared simulation results (each takes seconds; run once)."""
    out = {}
    sym = TorusShape.parse("4x4x4")
    asym = TorusShape.parse(ASYM)
    out["ar_sym"] = simulate_alltoall(ARDirect(), sym, M_LARGE)
    out["ar_asym"] = simulate_alltoall(ARDirect(), asym, M_LARGE)
    out["dr_sym"] = simulate_alltoall(DRDirect(), sym, M_LARGE)
    out["tps_sym"] = simulate_alltoall(TwoPhaseSchedule(), sym, M_LARGE)
    out["tps_asym"] = simulate_alltoall(TwoPhaseSchedule(), asym, M_LARGE)
    return out


class TestSection32_AsymmetricContention:
    def test_ar_degrades_on_asymmetric_torus(self, runs):
        # Table 2's core finding at 2:1 aspect.
        assert runs["ar_asym"].percent_of_peak < runs["ar_sym"].percent_of_peak

    def test_long_dimension_runs_hotter(self, runs):
        # "in a 2n x n x n torus ... the X links have twice the utilization"
        util = runs["ar_asym"].result.axis_utilization(
            TorusShape.parse(ASYM)
        )
        assert util[2] > 1.5 * util[0]
        assert util[2] > 1.5 * util[1]

    def test_dr_loses_to_ar_on_symmetric(self, runs):
        # Figure 4: head-of-line blocking on the single bubble VC.
        assert runs["dr_sym"].percent_of_peak < runs["ar_sym"].percent_of_peak


class TestSection41_TwoPhaseSchedule:
    def test_tps_beats_ar_on_asymmetric(self, runs):
        # The headline result (Table 3 vs Table 2).
        assert (
            runs["tps_asym"].percent_of_peak
            > runs["ar_asym"].percent_of_peak
        )

    def test_ar_beats_tps_on_small_symmetric(self, runs):
        # Table 3's 512-node case: TPS is CPU-bound on small symmetric
        # partitions (forwarding doubles the processor's byte handling).
        assert runs["tps_sym"].percent_of_peak < runs["ar_sym"].percent_of_peak

    def test_tps_forwards_roughly_all_offline_traffic(self, runs):
        res = runs["tps_asym"].result
        # Every phase-1 packet is forwarded exactly once.
        assert res.forwarded_packets > 0
        assert res.injected_packets == res.delivered_packets

    def test_tps_latency_penalty_small_partition(self):
        # Table 4: 1 B all-to-all is slower under TPS on small partitions.
        shape = TorusShape.parse("4x4x4")
        tps = simulate_alltoall(TwoPhaseSchedule(), shape, 1)
        ar = simulate_alltoall(ARDirect(), shape, 1)
        assert tps.time_cycles > ar.time_cycles


class TestSection42_VirtualMesh:
    def test_vmesh_wins_small_messages(self):
        shape = TorusShape.parse("4x4x4")
        ar = simulate_alltoall(ARDirect(), shape, 8)
        vm = simulate_alltoall(VirtualMesh2D(), shape, 8)
        assert vm.time_cycles < ar.time_cycles / 1.2

    def test_vmesh_loses_large_messages(self):
        shape = TorusShape.parse("4x4x4")
        ar = simulate_alltoall(ARDirect(), shape, 256)
        vm = simulate_alltoall(VirtualMesh2D(), shape, 256)
        assert vm.time_cycles > ar.time_cycles

    def test_crossover_location(self):
        # Paper: between 32 and 64 B (we allow up to 128 B: the smaller
        # partition shifts alpha amortization slightly).
        shape = TorusShape.parse("4x4x4")
        speedup = {}
        for m in (16, 32, 64, 128):
            ar = simulate_alltoall(ARDirect(), shape, m)
            vm = simulate_alltoall(VirtualMesh2D(), shape, m)
            speedup[m] = ar.time_cycles / vm.time_cycles
        assert speedup[16] > 1.0
        assert speedup[128] < 1.0


class TestSection3_DirectVariants:
    def test_mpi_slower_than_ar(self):
        # Section 3: the AR runtime cuts per-destination overhead vs MPI.
        shape = TorusShape.parse("4x4")
        mpi = simulate_alltoall(MPIDirect(), shape, 64)
        ar = simulate_alltoall(ARDirect(), shape, 64)
        assert mpi.time_cycles > ar.time_cycles

    def test_throttling_never_catastrophic(self):
        # Figure 4: the paper saw throttling help AR by only 2-3%.  Our
        # packet-granularity router congests harder than the hardware, so
        # bisection-rate pacing helps *more* here (a documented deviation,
        # see EXPERIMENTS.md); the invariant we pin is that throttling to
        # the Eq. 2 rate never slows the all-to-all down much and never
        # beats the bisection bound.
        shape = TorusShape.parse("4x4x8")
        thr = simulate_alltoall(ThrottledAR(), shape, M_LARGE)
        ar = simulate_alltoall(ARDirect(), shape, M_LARGE)
        ratio = thr.time_cycles / ar.time_cycles
        assert 0.6 < ratio < 1.3
        assert thr.percent_of_peak <= 100.0


class TestModelTracksMeasurement:
    def test_eq3_within_2x_of_des(self):
        # Figures 1-2: the analytic model is "an accurate predictor".
        shape = TorusShape.parse("4x4")
        for m in (64, 208, 464):
            run = simulate_alltoall(ARDirect(), shape, m)
            ratio = run.time_cycles / run.predicted_cycles
            assert 0.5 < ratio < 2.5, (m, ratio)

    def test_cpu_model_binds_small_machines(self):
        # On small partitions the 4-link CPU is the binding resource;
        # doubling CPU speed must help, slowing it must hurt.
        shape = TorusShape.parse("4x4x4")
        base = simulate_alltoall(ARDirect(), shape, M_LARGE)
        fast = simulate_alltoall(
            ARDirect(), shape, M_LARGE,
            MachineParams.bluegene_l().with_updates(cpu_links=8.0),
        )
        slow = simulate_alltoall(
            ARDirect(), shape, M_LARGE,
            MachineParams.bluegene_l().with_updates(cpu_links=2.0),
        )
        assert fast.time_cycles < base.time_cycles < slow.time_cycles
