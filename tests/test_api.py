"""Unit tests for the top-level API."""

import pytest

from repro import (
    AllToAllRun,
    MachineParams,
    TorusShape,
    predict_alltoall,
    simulate_alltoall,
)
from repro.model.alltoall import peak_time_cycles
from repro.strategies import ARDirect, TwoPhaseSchedule


class TestSimulateAlltoall:
    def test_returns_run(self):
        run = simulate_alltoall(ARDirect(), TorusShape.parse("4x4"), 64)
        assert isinstance(run, AllToAllRun)
        assert run.strategy == "AR"
        assert run.time_cycles > 0

    def test_percent_of_peak_consistent(self):
        run = simulate_alltoall(ARDirect(), TorusShape.parse("4x4"), 64)
        peak = peak_time_cycles(run.shape, 64, run.params)
        assert run.percent_of_peak == pytest.approx(
            100 * peak / run.time_cycles
        )

    def test_time_units_consistent(self):
        run = simulate_alltoall(ARDirect(), TorusShape.parse("4x4"), 64)
        assert run.time_ms == pytest.approx(run.time_us / 1000)

    def test_bandwidth_positive(self):
        run = simulate_alltoall(ARDirect(), TorusShape.parse("4x4"), 64)
        assert run.per_node_mb_per_s > 0

    def test_tps_sets_fifo_groups(self):
        # TPS requires 2 FIFO groups; the API must configure the network.
        run = simulate_alltoall(TwoPhaseSchedule(), TorusShape.parse("4x4"), 64)
        assert run.result.forwarded_packets > 0

    def test_custom_params(self):
        prm = MachineParams.bluegene_l().with_updates(alpha_packet_cycles=0.0)
        fast = simulate_alltoall(ARDirect(), TorusShape.parse("4x4"), 16, prm)
        slow = simulate_alltoall(ARDirect(), TorusShape.parse("4x4"), 16)
        assert fast.time_cycles < slow.time_cycles


class TestPredict:
    def test_prediction_matches_strategy(self):
        shape = TorusShape.parse("8x8")
        assert predict_alltoall(ARDirect(), shape, 100) == ARDirect().predict_cycles(
            shape, 100, MachineParams.bluegene_l()
        )

    def test_run_carries_prediction(self):
        run = simulate_alltoall(ARDirect(), TorusShape.parse("4x4"), 64)
        assert run.predicted_cycles == pytest.approx(
            predict_alltoall(ARDirect(), run.shape, 64, run.params)
        )
