"""Unit tests for argument validation helpers."""

import math

import pytest

from repro.util.validation import check_nonneg, check_positive_int, require


def test_require_passes():
    require(True, "never raised")


def test_require_raises():
    with pytest.raises(ValueError, match="boom"):
        require(False, "boom")


class TestPositiveInt:
    def test_accepts_int(self):
        assert check_positive_int(3, "x") == 3

    def test_accepts_integral_float(self):
        assert check_positive_int(3.0, "x") == 3

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(-1, "x")

    def test_rejects_fractional(self):
        with pytest.raises(TypeError):
            check_positive_int(1.5, "x")

    def test_rejects_string(self):
        with pytest.raises((TypeError, ValueError)):
            check_positive_int("three", "x")


class TestNonneg:
    def test_accepts_zero(self):
        assert check_nonneg(0, "x") == 0.0

    def test_accepts_positive(self):
        assert check_nonneg(1.5, "x") == 1.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonneg(-0.1, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_nonneg(math.nan, "x")

    def test_rejects_non_number(self):
        with pytest.raises(TypeError):
            check_nonneg(object(), "x")
