"""Unit tests for deterministic RNG stream derivation."""

from repro.util.rng import derive_rng, derive_seed


def test_same_key_same_seed():
    assert derive_seed(1, "node", 3) == derive_seed(1, "node", 3)


def test_different_keys_differ():
    assert derive_seed(1, "node", 3) != derive_seed(1, "node", 4)
    assert derive_seed(1, "node", 3) != derive_seed(2, "node", 3)


def test_key_order_matters():
    assert derive_seed(1, "node", 12) != derive_seed(1, 12, "node")


def test_structured_vs_concatenated():
    # ("ab", "c") must differ from ("a", "bc").
    assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")


def test_rng_reproducible():
    a = derive_rng(7, "x").integers(0, 1 << 30, 10)
    b = derive_rng(7, "x").integers(0, 1 << 30, 10)
    assert (a == b).all()


def test_rng_streams_independent():
    a = derive_rng(7, "x").integers(0, 1 << 30, 10)
    b = derive_rng(7, "y").integers(0, 1 << 30, 10)
    assert (a != b).any()


def test_seed_in_31_bit_range():
    for seed in (0, 1, 2**31 - 1, 123456789):
        s = derive_seed(seed, "k")
        assert 0 <= s < 2**31
