"""Unit tests for torus coordinate algebra."""

import pytest
from hypothesis import given, strategies as st

from repro.util.coords import (
    all_coords,
    coord_to_rank,
    hop_count,
    hop_vector,
    mean_hops_per_dim,
    rank_to_coord,
    signed_displacement,
)


class TestLinearization:
    def test_x_fastest(self):
        assert coord_to_rank((1, 0, 0), (8, 8, 8)) == 1
        assert coord_to_rank((0, 1, 0), (8, 8, 8)) == 8
        assert coord_to_rank((0, 0, 1), (8, 8, 8)) == 64

    def test_roundtrip_example(self):
        assert rank_to_coord(209, (8, 8, 8)) == (1, 2, 3)
        assert coord_to_rank((1, 2, 3), (8, 8, 8)) == 209

    def test_out_of_range_coord_raises(self):
        with pytest.raises(ValueError):
            coord_to_rank((8, 0, 0), (8, 8, 8))

    def test_out_of_range_rank_raises(self):
        with pytest.raises(ValueError):
            rank_to_coord(512, (8, 8, 8))

    def test_dim_mismatch_raises(self):
        with pytest.raises(ValueError):
            coord_to_rank((1, 2), (8, 8, 8))

    def test_1d(self):
        assert coord_to_rank((5,), (8,)) == 5
        assert rank_to_coord(5, (8,)) == (5,)

    @given(st.integers(0, 8 * 4 * 2 - 1))
    def test_roundtrip_property(self, rank):
        dims = (8, 4, 2)
        assert coord_to_rank(rank_to_coord(rank, dims), dims) == rank

    def test_all_coords_rank_order(self):
        dims = (3, 2, 2)
        coords = list(all_coords(dims))
        assert len(coords) == 12
        for i, c in enumerate(coords):
            assert coord_to_rank(c, dims) == i


class TestDisplacement:
    def test_mesh_is_plain_difference(self):
        assert signed_displacement(1, 6, 8, torus=False) == 5
        assert signed_displacement(6, 1, 8, torus=False) == -5

    def test_torus_wraps(self):
        assert signed_displacement(0, 7, 8, torus=True) == -1
        assert signed_displacement(7, 0, 8, torus=True) == 1

    def test_torus_half_tie_positive(self):
        assert signed_displacement(0, 4, 8, torus=True) == 4

    def test_zero(self):
        assert signed_displacement(3, 3, 8, torus=True) == 0

    @given(st.integers(0, 7), st.integers(0, 7))
    def test_torus_displacement_minimal(self, s, t):
        d = signed_displacement(s, t, 8, torus=True)
        assert abs(d) <= 4
        assert (s + d) % 8 == t

    @given(st.integers(0, 6), st.integers(0, 6))
    def test_odd_torus_unambiguous(self, s, t):
        d = signed_displacement(s, t, 7, torus=True)
        assert abs(d) <= 3
        assert (s + d) % 7 == t


class TestHops:
    def test_hop_vector_3d(self):
        dims, torus = (8, 8, 8), (True, True, True)
        assert hop_vector((0, 0, 0), (1, 7, 4), dims, torus) == (1, -1, 4)

    def test_hop_count(self):
        dims, torus = (8, 8, 8), (True, True, True)
        assert hop_count((0, 0, 0), (1, 7, 4), dims, torus) == 6

    def test_mixed_mesh_torus(self):
        dims, torus = (8, 8), (True, False)
        assert hop_vector((0, 0), (7, 7), dims, torus) == (-1, 7)


class TestMeanHops:
    def test_even_torus_is_quarter(self):
        # The paper's M/4 average (Section 2.1).
        assert mean_hops_per_dim(8, torus=True) == pytest.approx(2.0)
        assert mean_hops_per_dim(16, torus=True) == pytest.approx(4.0)

    def test_odd_torus_exact(self):
        n = 7
        exact = sum(
            abs(signed_displacement(s, t, n, True)) for s in range(n) for t in range(n)
        ) / n**2
        assert mean_hops_per_dim(n, torus=True) == pytest.approx(exact)

    def test_mesh_exact(self):
        n = 8
        exact = sum(abs(t - s) for s in range(n) for t in range(n)) / n**2
        assert mean_hops_per_dim(n, torus=False) == pytest.approx(exact)

    def test_size_one(self):
        assert mean_hops_per_dim(1, torus=True) == 0.0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            mean_hops_per_dim(0, torus=True)
