"""Unit tests for cycle/time/bandwidth conversions."""

import pytest

from repro.util import units


def test_clock_is_700mhz():
    assert units.CLOCK_HZ == pytest.approx(700e6)


def test_ns_per_cycle():
    assert units.NS_PER_CYCLE == pytest.approx(1.428571, rel=1e-5)


def test_cycles_to_ns_roundtrip():
    assert units.ns_to_cycles(units.cycles_to_ns(123.0)) == pytest.approx(123.0)


def test_paper_alpha_consistency():
    # 450 cycles ~ 0.64 us (the paper's measured AR startup).
    assert units.cycles_to_us(450) == pytest.approx(0.643, abs=0.01)


def test_paper_beta_consistency():
    # 6.48 ns/B ~ 4.54 cycles/B.
    assert units.per_byte_ns_to_cycles(6.48) == pytest.approx(4.536, abs=1e-3)


def test_us_to_cycles():
    assert units.us_to_cycles(1.0) == pytest.approx(700.0)


def test_cycles_to_ms_and_s():
    assert units.cycles_to_ms(700e3) == pytest.approx(1.0)
    assert units.cycles_to_s(700e6) == pytest.approx(1.0)


def test_bandwidth_conversion():
    # 1 byte/cycle at 700 MHz = 0.7 GB/s.
    assert units.bytes_per_cycle_to_gb_per_s(1.0) == pytest.approx(0.7)
