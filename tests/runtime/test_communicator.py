"""Unit tests for the Communicator facade."""

import numpy as np
import pytest

from repro.model.torus import TorusShape
from repro.runtime import Communicator
from repro.strategies import ARDirect, TwoPhaseSchedule


@pytest.fixture
def comm():
    return Communicator(TorusShape.parse("4x4"))


class TestAlltoall:
    def test_exchange_transposes(self, comm):
        p, m = comm.size, 8
        rng = np.random.default_rng(0)
        send = rng.integers(0, 256, (p, p, m), dtype=np.uint8)
        out = comm.alltoall(send)
        assert (out.recv == np.swapaxes(send, 0, 1)).all()

    def test_timing_optional(self, comm):
        p, m = comm.size, 8
        send = np.zeros((p, p, m), dtype=np.uint8)
        out = comm.alltoall(send)
        assert out.run is None
        out2 = comm.alltoall(send, simulate_timing=True)
        assert out2.run is not None
        assert out2.run.time_cycles > 0

    def test_explicit_strategy(self, comm):
        p, m = comm.size, 8
        send = np.zeros((p, p, m), dtype=np.uint8)
        out = comm.alltoall(send, strategy=TwoPhaseSchedule())
        assert out.strategy == "TPS"

    def test_auto_selection_short(self, comm):
        send = np.zeros((comm.size, comm.size, 8), dtype=np.uint8)
        assert comm.alltoall(send).strategy == "VMesh"

    def test_shape_validation(self, comm):
        with pytest.raises(ValueError):
            comm.alltoall(np.zeros((3, 3, 8), dtype=np.uint8))
        with pytest.raises(ValueError):
            comm.alltoall(np.zeros((16, 16), dtype=np.uint8))


class TestTiming:
    def test_alltoall_time(self, comm):
        run = comm.alltoall_time(100, ARDirect())
        assert run.time_cycles > 0
        assert run.strategy == "AR"

    def test_ptp_time(self, comm):
        bd = comm.ptp_time(1000, src=0, dst=5)
        assert bd.total > bd.startup

    def test_size_and_coords(self, comm):
        assert comm.size == 16
        assert comm.coords(5) == (1, 1)
