"""The fuzz driver: spec grammar, sampler, shrinker, self-test, CLI."""

import random

import pytest

from repro.check.fuzz import (
    FuzzCase,
    InvalidCase,
    _run_one,
    broken_dedup,
    main,
    parse_budget,
    run_cases,
    sample_case,
    shrink,
)
from repro.runner.pool import counters


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    counters.reset()
    yield
    counters.reset()


class TestSpecGrammar:
    @pytest.mark.parametrize(
        "spec",
        [
            "AR@4x4x2/m256/s1/fp0.05,s3,t2000",
            "TPS.ax1@2x4x4/m100/s3/fn0.1,l0.05,p0.02,d0.25,s7,t2000",
            "VM@8x8M/m8/s0",
            "CTPS@3x3/m1024/s999",
            "THR@1x4/m17/s5",
            "MPI@5/m64/s0",
        ],
    )
    def test_round_trip(self, spec):
        case = FuzzCase.parse(spec)
        again = FuzzCase.parse(case.spec())
        assert case == again
        assert hash(case) == hash(again)
        assert case.spec() == again.spec()

    @pytest.mark.parametrize(
        "bad",
        [
            "AR/m8/s0",  # no @SHAPE
            "AR@4x4/m8",  # missing seed
            "AR@4x4/s0",  # missing msg
            "AR@4x4/m8/s0/fx1",  # unknown fault key
            "AR@4x4/m8/s0/q9",  # unknown segment
            "AR@4x4//s0",  # empty segment
        ],
    )
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            FuzzCase.parse(bad)

    def test_unknown_strategy_code_is_invalid_case(self):
        with pytest.raises(InvalidCase):
            run_cases([FuzzCase.parse("XX@4x4/m8/s0")])

    def test_pure_st_fault_fields_normalize_away(self):
        # A "fault plan" with no actual fault fraction is fault-free.
        case = FuzzCase.parse("AR@4x4/m8/s0/fs3,t2000")
        assert case.faults == {}
        assert case.spec() == "AR@4x4/m8/s0"

    def test_strategy_materialization(self):
        case = FuzzCase.parse("TPS.ax1@2x4x4/m100/s3")
        strategy = case.strategy()
        assert strategy.name == "TPS"
        assert strategy.linear_axis == 1
        point = case.to_point()
        assert point.msg_bytes == 100
        assert point.shape.dims == (2, 4, 4)
        assert point.faults is None

    def test_budget_parsing(self):
        assert parse_budget("60s") == 60.0
        assert parse_budget("2m") == 120.0
        assert parse_budget("15") == 15.0
        with pytest.raises(ValueError):
            parse_budget("soon")
        with pytest.raises(ValueError):
            parse_budget("-3s")


class TestSampler:
    def test_deterministic_per_seed(self):
        a = [sample_case(random.Random(11)).spec() for _ in range(1)]
        specs1 = [sample_case(random.Random(42)).spec() for _ in range(25)]
        specs2 = [sample_case(random.Random(42)).spec() for _ in range(25)]
        assert specs1 == specs2
        assert a  # distinct seed stream doesn't interfere

    def test_samples_are_materializable_and_supported(self):
        rng = random.Random(9)
        for _ in range(40):
            case = sample_case(rng)
            strategy = case.strategy()
            shape = case.torus_shape()
            assert strategy.supports(shape)
            assert 2 <= shape.nnodes <= 64
            case.fault_plan()  # must not raise: pre-validated

    def test_domain_coverage(self):
        rng = random.Random(0)
        specs = [sample_case(rng) for _ in range(120)]
        ndims = {len(c.torus_shape().dims) for c in specs}
        assert ndims == {1, 2, 3}
        assert any("M" in c.shape for c in specs), "no mesh axes sampled"
        assert any(
            1 in c.torus_shape().dims for c in specs
        ), "no extent-1 axes sampled"
        assert any(c.faults for c in specs)
        assert any(not c.faults for c in specs)


@pytest.mark.fuzz
class TestFuzzRuns:
    def test_short_clean_run(self, capsys):
        assert main(["--budget", "3s", "--seed", "1", "--max-cases", "6"]) == 0
        out = capsys.readouterr().out
        assert "fuzz clean" in out

    def test_replay_case(self, capsys):
        assert main(["--case", "AR@2x2/m8/s0"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_self_test_catches_and_shrinks(self, capsys):
        assert main(["--self-test"]) == 0
        out = capsys.readouterr().out
        assert "self-test OK" in out
        assert "exactly_once" in out
        reproducer_lines = [
            l for l in out.splitlines() if l.startswith("REPRODUCER: ")
        ]
        assert len(reproducer_lines) == 1
        # The reproducer is a single line that replays through --case.
        spec = reproducer_lines[0].split("--case ")[1].strip().strip("'")
        case = FuzzCase.parse(spec)
        with broken_dedup():
            report = _run_one(case)
        assert report is not None and not report.ok


@pytest.mark.fuzz
class TestShrinker:
    def test_shrinks_toward_minimal(self):
        big = FuzzCase.parse("AR@4x4x2/m256/s1/fp0.05,s3,t2000")
        with broken_dedup():
            assert not _run_one(big).ok
            small, evals = shrink(big)
            report = _run_one(small)
        assert report is not None and not report.ok
        assert evals > 0
        # Strictly simpler on every shrunk dimension.
        assert small.msg_bytes <= big.msg_bytes
        assert small.torus_shape().nnodes <= big.torus_shape().nnodes
        # Loss must survive shrinking (it is what produces duplicates).
        assert small.faults.get("p")

    def test_passing_case_shrinks_to_itself(self):
        case = FuzzCase.parse("AR@2x2/m8/s0")
        small, evals = shrink(case, max_evals=4)
        assert evals <= 4


class TestCaseWatchdog:
    def test_hung_batch_is_skipped_with_replay_spec(
        self, capsys, monkeypatch
    ):
        import time as _time

        import repro.check.fuzz as fuzz_mod

        def wedged(cases, bands=None, check=None, jobs=1):
            _time.sleep(60)

        monkeypatch.setattr(fuzz_mod, "run_cases", wedged)
        rc = fuzz_mod.fuzz(
            budget_s=30.0, seed=0, max_cases=1, jobs=1, case_timeout=0.2
        )
        out = capsys.readouterr().out
        # A hung case must not fail the run — it is skipped and reported
        # with its exact replay command.
        assert rc == 0
        assert "TIMEOUT" in out
        assert "REPLAY: python -m repro.check.fuzz --case '" in out
        assert "1 skipped on the watchdog" in out
        # The printed spec round-trips through the grammar.
        replay_line = next(
            l for l in out.splitlines() if l.strip().startswith("REPLAY:")
        )
        spec = replay_line.split("--case ")[1].strip().strip("'")
        FuzzCase.parse(spec)

    def test_hung_shrink_candidate_is_skipped(self, monkeypatch):
        import time as _time

        import repro.check.fuzz as fuzz_mod

        def wedged(case, bands=None, check=None):
            _time.sleep(60)

        monkeypatch.setattr(fuzz_mod, "_run_one", wedged)
        case = FuzzCase.parse("AR@4x4/m64/s1")
        t0 = _time.monotonic()
        small, evals = shrink(case, max_evals=3, case_timeout=0.2)
        # Every candidate hung -> every candidate skipped -> the original
        # case survives, and the walk stays time-bounded.
        assert small == case
        assert evals == 3
        assert _time.monotonic() - t0 < 30

    def test_zero_disables_the_watchdog(self, capsys):
        from repro.check.fuzz import main

        # --case-timeout 0 must parse and run a tiny clean sweep.
        assert main(["--max-cases", "2", "--case-timeout", "0"]) == 0
        assert "fuzz clean" in capsys.readouterr().out
