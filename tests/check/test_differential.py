"""The differential harness: three engines, one verdict."""

import pytest

from repro.check import (
    CheckConfig,
    DifferentialReport,
    ToleranceBands,
    default_bands,
)
from repro.check.differential import (
    differential_point,
    differential_points,
    functional_leg,
    model_leg,
)
from repro.model.torus import TorusShape
from repro.net.faults import FaultPlan
from repro.runner.point import SimPoint
from repro.runner.pool import counters
from repro.strategies import ARDirect, TwoPhaseSchedule, VirtualMesh2D


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    counters.reset()
    yield
    counters.reset()


def _point(strategy=None, shape="4x4", msg=128, seed=0, faults=None):
    return SimPoint(
        strategy or ARDirect(),
        TorusShape.parse(shape),
        msg,
        None,
        None,
        seed,
        faults,
    )


class TestCleanPoints:
    def test_direct_point_agrees(self):
        report = differential_point(_point())
        assert report.ok, report.failures
        assert report.model_checked
        assert report.functional_ok
        assert 0 < report.ratio
        assert "OK" in report.summary()

    def test_indirect_point_agrees(self):
        report = differential_point(_point(TwoPhaseSchedule(), "2x4x4"))
        assert report.ok, report.failures

    def test_faulty_point_skips_model_leg(self):
        shape = TorusShape.parse("4x4")
        plan = FaultPlan.random(
            shape, seed=3, loss_prob=0.05, retx_timeout_cycles=2000.0
        )
        report = differential_point(_point(shape="4x4", faults=plan))
        assert report.ok, report.failures
        assert not report.model_checked
        assert report.ratio == 0.0

    def test_batch_returns_reports_in_order(self):
        points = [
            _point(msg=64),
            _point(TwoPhaseSchedule(), "2x4x4", msg=100),
            _point(VirtualMesh2D(), "4x4", msg=32),
        ]
        reports = differential_points(points)
        assert len(reports) == 3
        assert all(r.ok for r in reports), [r.failures for r in reports]
        assert reports[1].label.startswith("TPS@")

    def test_checked_sim_leg_bypasses_cache(self):
        differential_point(_point())
        assert counters.simulated == 1
        assert counters.cache_stores == 0
        differential_point(_point())
        assert counters.simulated == 2
        assert counters.cache_hits == 0


class TestLegs:
    def test_model_leg_trips_on_tight_band(self):
        from repro.runner.pool import run_points

        run = run_points([_point()])[0]
        failures = model_leg(
            run, ToleranceBands(default=(0.999, 1.001))
        )
        assert failures and "ratio" in failures[0]

    def test_model_leg_passes_default_band(self):
        from repro.runner.pool import run_points

        run = run_points([_point()])[0]
        assert model_leg(run) == []

    def test_functional_leg_counts_cross_checked(self):
        from repro.runner.pool import run_points

        point = _point(TwoPhaseSchedule(), "2x4x4", msg=100)
        run = run_points([point])[0]
        assert functional_leg(point, sim_run=run) == []

    def test_functional_leg_detects_count_mismatch(self):
        import dataclasses

        from repro.runner.pool import run_points

        point = _point()
        run = run_points([point])[0]
        tampered = dataclasses.replace(
            run,
            result=dataclasses.replace(
                run.result,
                delivered_packets=run.result.delivered_packets + 1,
            ),
        )
        failures = functional_leg(point, sim_run=tampered)
        assert failures and "delivered" in failures[0]

    def test_default_bands_cover_observed_sweep(self):
        bands = default_bands()
        lo, hi = bands.band_for("AR")
        # Observed fault-free extremes were 0.53 and 1.50; the defaults
        # must keep real margin beyond both (DESIGN.md section 11).
        assert lo <= 0.53 / 2
        assert hi >= 1.50 * 2

    def test_report_failure_summary(self):
        report = DifferentialReport(label="x", failures=["model: off"])
        assert not report.ok
        assert "FAILED" in report.summary()


class TestInvariantTripSurfacesAsFailure:
    def test_sabotaged_run_reports_not_raises(self):
        from repro.check.fuzz import broken_dedup

        shape = TorusShape.parse("4x4x2")
        plan = FaultPlan.random(
            shape, seed=3, loss_prob=0.05, retx_timeout_cycles=2000.0
        )
        point = _point(shape="4x4x2", msg=256, seed=1, faults=plan)
        with broken_dedup():
            report = differential_point(point, check=CheckConfig())
        assert not report.ok
        assert any("exactly_once" in f for f in report.failures)
