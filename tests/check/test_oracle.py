"""The invariant oracles: silent on correct runs, loud on sabotaged ones,
and bit-identical to the unchecked network either way."""

import pytest

from repro.api import simulate_alltoall
from repro.check import CheckConfig, InvariantError
from repro.check.fuzz import broken_dedup
from repro.model.torus import TorusShape
from repro.net.faults import FaultPlan
from repro.net.faultsim import FaultyTorusNetwork, build_network
from repro.net.simulator import TorusNetwork
from repro.strategies import (
    ARDirect,
    CreditedTPS,
    DRDirect,
    MPIDirect,
    ThrottledAR,
    TwoPhaseSchedule,
    VirtualMesh2D,
)

CHECK = CheckConfig(audit_interval=64)
SHAPE = TorusShape.parse("4x4x2")
STRATEGIES = [
    ARDirect(),
    DRDirect(),
    ThrottledAR(),
    MPIDirect(),
    TwoPhaseSchedule(),
    TwoPhaseSchedule(linear_axis=2),
    CreditedTPS(),
    VirtualMesh2D(),
]


def _lossy_plan(shape=SHAPE, **kw):
    kw.setdefault("loss_prob", 0.05)
    kw.setdefault("retx_timeout_cycles", 2000.0)
    return FaultPlan.random(shape, seed=3, **kw)


class TestCleanRunsStaySilent:
    @pytest.mark.parametrize(
        "strategy", STRATEGIES, ids=lambda s: s.name + str(id(s) % 7)
    )
    def test_all_oracles_pass_and_run_is_bit_identical(self, strategy):
        plain = simulate_alltoall(strategy, SHAPE, 128, seed=1)
        checked = simulate_alltoall(
            strategy, SHAPE, 128, seed=1, check=CHECK
        )
        assert checked.result.time_cycles == plain.result.time_cycles
        assert (
            checked.result.events_processed == plain.result.events_processed
        )
        assert checked.result.total_hops == plain.result.total_hops

    def test_faulty_lossy_run_passes_with_duplicates_seen(self):
        # The exactly-once ledger must stay silent precisely because the
        # network's dedup works — and the run must produce real duplicate
        # discards for that claim to mean anything.
        plan = _lossy_plan()
        plain = simulate_alltoall(
            ARDirect(), SHAPE, 256, seed=1, faults=plan
        )
        checked = simulate_alltoall(
            ARDirect(), SHAPE, 256, seed=1, faults=plan, check=CHECK
        )
        assert checked.result.duplicate_packets > 0
        assert checked.result.time_cycles == plain.result.time_cycles
        assert (
            checked.result.events_processed == plain.result.events_processed
        )

    def test_dead_node_tps_run_passes(self):
        plan = FaultPlan.random(SHAPE, seed=5, dead_node_fraction=0.1)
        checked = simulate_alltoall(
            TwoPhaseSchedule(), SHAPE, 100, seed=2, faults=plan, check=CHECK
        )
        assert checked.result.final_deliveries > 0


class TestBuildNetworkSelection:
    def test_disabled_config_selects_plain_classes(self):
        all_off = CheckConfig(
            conservation=False, exactly_once=False, credits=False,
            progress=False, phases=False,
        )
        assert not all_off.enabled
        net = build_network(SHAPE, check=all_off)
        assert type(net) is TorusNetwork
        assert type(build_network(SHAPE, check=None)) is TorusNetwork

    def test_enabled_config_selects_checked_classes(self):
        from repro.check import CheckedFaultyTorusNetwork, CheckedTorusNetwork

        assert (
            type(build_network(SHAPE, check=CHECK)) is CheckedTorusNetwork
        )
        plan = FaultPlan.random(SHAPE, seed=1, dead_link_fraction=0.05)
        net = build_network(SHAPE, faults=plan, check=CHECK)
        assert type(net) is CheckedFaultyTorusNetwork
        assert isinstance(net, FaultyTorusNetwork)

    def test_check_stacks_over_obs(self):
        from repro.check.oracle import CheckedInstrumentedTorusNetwork
        from repro.obs.config import ObsConfig

        net = build_network(
            SHAPE, obs=ObsConfig(metrics=True), check=CHECK
        )
        assert type(net) is CheckedInstrumentedTorusNetwork

    def test_audit_interval_validated(self):
        with pytest.raises(ValueError):
            CheckConfig(audit_interval=0)


class TestSabotageIsCaught:
    def test_broken_dedup_trips_exactly_once_oracle(self):
        plan = _lossy_plan()
        with broken_dedup():
            with pytest.raises(InvariantError) as exc_info:
                simulate_alltoall(
                    ARDirect(), SHAPE, 256, seed=1, faults=plan, check=CHECK
                )
        assert exc_info.value.oracle == "exactly_once"
        assert "seq" in exc_info.value.context

    def test_oracle_beats_the_unchecked_diagnostic(self):
        # Without the oracle the corruption only surfaces at the very end
        # as a generic completion-count mismatch; the oracle instead names
        # the exact packet at the exact cycle the invariant first broke.
        from repro.net.errors import DeadlockError

        plan = _lossy_plan()
        with broken_dedup():
            with pytest.raises(DeadlockError):
                simulate_alltoall(
                    ARDirect(), SHAPE, 256, seed=1, faults=plan
                )
            with pytest.raises(InvariantError) as exc_info:
                simulate_alltoall(
                    ARDirect(), SHAPE, 256, seed=1, faults=plan, check=CHECK
                )
        assert {"cycle", "seq", "pid"} <= exc_info.value.context.keys()

    def test_counter_corruption_trips_progress_audit(self):
        shape = TorusShape.parse("4x4")
        strategy = ARDirect()
        net = build_network(shape, check=CheckConfig(audit_interval=16))

        original = TorusNetwork._finish_delivery
        state = {"fired": False}

        def corrupt_once(self, u, pkt):
            original(self, u, pkt)
            if not state["fired"]:
                # A lost decrement: the queued counter drifts from the
                # actual queue contents (the classic stuck-queue bug).
                state["fired"] = True
                self._queued[u] += 1

        try:
            TorusNetwork._finish_delivery = corrupt_once
            with pytest.raises(InvariantError) as exc_info:
                net.run(strategy.build_program(shape, 100))
        finally:
            TorusNetwork._finish_delivery = original
        assert exc_info.value.oracle == "progress"

    def test_phase_violation_trips_phase_oracle(self):
        # A TPS program whose phase-1 intermediates sit OFF the
        # destination's linear line: geometry the phase oracle must veto.
        shape = TorusShape.parse("4x4")
        strategy = TwoPhaseSchedule(linear_axis=0)
        program = strategy.build_program(shape, 100)
        axis = program.linear_axis

        class LyingProgram:
            """Proxy that claims the OTHER axis is linear."""

            def __init__(self, inner):
                self._inner = inner
                self.linear_axis = 1 - axis
                self.dead_nodes = frozenset()

            def __getattr__(self, name):
                return getattr(self._inner, name)

        net = build_network(shape, check=CHECK)
        net.set_fifo_groups(strategy.fifo_groups)
        with pytest.raises(InvariantError) as exc_info:
            net.run(LyingProgram(program))
        assert exc_info.value.oracle == "phases"


class TestZeroCostStructure:
    def test_plain_classes_carry_no_check_hooks(self):
        # The zero-cost-when-off contract is structural: no check code,
        # no check slots, on the plain classes.
        for cls in (TorusNetwork, FaultyTorusNetwork):
            assert "check" not in cls.__slots__
            assert not any(
                s.startswith("_chk") for s in cls.__slots__
            )

    def test_mixin_overrides_call_super_first(self):
        import inspect

        from repro.check.oracle import _CheckedMixin

        for name in (
            "_launch", "_begin_injection", "_on_arrive", "_finish_delivery",
        ):
            src = inspect.getsource(getattr(_CheckedMixin, name))
            body = src[: src.index("super()._")]
            # Nothing before the super() call may mutate state: reads only.
            assert "raise" not in body
