"""Edge-case coverage for the struct-of-arrays simulator core (v2).

Three families the ordinary suites exercise only incidentally:

* packet-pool exhaustion and in-place regrowth (column references the
  simulator hoisted at construction must survive a ``grow()``);
* VC/injection ring-buffer wraparound under heavy backpressure, audited
  event-by-event by the invariant oracle;
* fixed-point tick <-> float round-trip exactness for every timing
  parameter in :class:`~repro.model.machine.MachineParams` — the property
  the integer timebase's bit-identity rests on.
"""

import pytest

from repro.check import CheckedTorusNetwork
from repro.model.machine import MachineParams
from repro.model.torus import TorusShape
from repro.net import ListProgram, NetworkConfig, PacketSpec, TorusNetwork
from repro.net.packet import NO_VC, Packet, PacketPool, RoutingMode
from repro.net.simulator import TICK_SCALE, TICK_UNSCALE


# --------------------------------------------------------------------- #
# packet pool: exhaustion and regrowth
# --------------------------------------------------------------------- #


def _spec(dst=3, **over):
    base = dict(
        dst=dst,
        wire_bytes=64,
        mode=RoutingMode.ADAPTIVE,
        tag="t",
        final_dst=5,
        payload_bytes=10,
        seq=7,
    )
    base.update(over)
    return PacketSpec(**base)


class TestPacketPool:
    def test_alloc_initializes_like_from_spec(self):
        pool = PacketPool(4)
        spec = _spec()
        h = pool.alloc(11, 2, spec, 123.0)
        ref = Packet.from_spec(11, 2, spec, 123.0)
        pkt = pool.materialize(h, 123.0, 456.0)
        assert (pkt.pid, pkt.src, pkt.dst) == (ref.pid, ref.src, ref.dst)
        assert pkt.wire_bytes == ref.wire_bytes
        assert pkt.mode is RoutingMode.ADAPTIVE
        assert pkt.tag == ref.tag
        assert pkt.final_dst == ref.final_dst
        assert pkt.payload_bytes == ref.payload_bytes
        assert pkt.hops == 0 and pkt.vc == NO_VC
        assert pkt.halfbits == ref.halfbits
        assert pkt.seq == ref.seq and pkt.downphase is False
        assert pkt.deliver_time == 456.0

    def test_release_recycles_lifo(self):
        pool = PacketPool(4)
        h = pool.alloc(0, 0, _spec(), 0.0)
        pool.release(h)
        assert pool.alloc(1, 0, _spec(), 0.0) == h
        assert pool.live == 1

    def test_exhaustion_grows_columns_in_place(self):
        pool = PacketPool(2)
        # The simulator hoists column references once, at construction.
        src_col, dst_col, tag_col = pool.src, pool.dst, pool.tag
        handles = [pool.alloc(i, i, _spec(dst=i + 10), 0.0) for i in range(5)]
        # 2 -> 4 -> 8: two doublings to satisfy the fifth allocation.
        assert pool.capacity == 8
        assert pool.live == 5
        # Growth extended the existing lists rather than rebinding them,
        # so the borrowed references still see every live packet.
        assert pool.src is src_col
        assert pool.dst is dst_col
        assert pool.tag is tag_col
        assert len(handles) == len(set(handles))
        for i, h in enumerate(handles):
            assert src_col[h] == i
            assert dst_col[h] == i + 10

    def test_regrowth_preserves_free_list_integrity(self):
        pool = PacketPool(1)
        seen = set()
        for i in range(9):
            h = pool.alloc(i, 0, _spec(), 0.0)
            assert h not in seen
            seen.add(h)
        assert pool.live == 9
        assert pool.capacity == 16
        assert len(pool.free) == 7

    def test_simulation_survives_pool_regrowth(self):
        # 7 senders x 64 packets at one hot receiver: far more packets
        # in flight (injection FIFOs + VC buffers + reception backlog)
        # than the initial pool holds, so the pool must regrow mid-run
        # while the simulator keeps using its hoisted column references.
        shape = TorusShape.parse("2x2x2")
        net = TorusNetwork(shape)
        cap0 = net._pool.capacity
        plans = [[PacketSpec(dst=0, wire_bytes=256)] * 64 for _ in range(8)]
        plans[0] = []
        res = net.run(ListProgram(plans))
        assert res.final_deliveries == 7 * 64
        assert net._pool.capacity > cap0
        assert net._P_src is net._pool.src
        assert net._P_dst is net._pool.dst
        # Quiescent: every handle came back to the free list.
        assert net._pool.live == 0


# --------------------------------------------------------------------- #
# ring buffers: wraparound under backpressure
# --------------------------------------------------------------------- #


class TestRingWraparound:
    def test_vc_and_fifo_rings_wrap_under_backpressure(self):
        # Depth-2 VC rings on an 8-ring with every node streaming 48
        # exact-half (4-hop) packets: thousands of hops cycle through a
        # few dozen ring slots, so every ring head wraps its window many
        # times over.  The invariant oracle audits the ring occupancy
        # accounting after every event and the exactly-once ledger checks
        # each delivery, so any wraparound bug (head/index arithmetic,
        # stride overlap) trips an assertion rather than corrupting
        # traffic silently.
        shape = TorusShape.parse("8")
        config = NetworkConfig(vc_depth=2)
        net = CheckedTorusNetwork(shape, MachineParams(), config)
        plans = [
            [PacketSpec(dst=(u + 4) % 8, wire_bytes=256)] * 48
            for u in range(8)
        ]
        res = net.run(ListProgram(plans))
        assert res.final_deliveries == 8 * 48
        # Minimal routes only: every packet crosses exactly 4 links.
        assert res.total_hops == 8 * 48 * 4
        # Pigeonhole witnesses that wraparound actually occurred: the
        # traffic far exceeds the total ring capacity...
        total_vc_slots = 8 * net._nvp * config.vc_depth
        assert res.total_hops > 4 * total_vc_slots
        # ... and each node injected more packets than its FIFOs hold.
        fifo_slots = net._nfifos * config.injection_fifo_depth
        assert 48 > fifo_slots

    def test_reception_ring_wraps_at_hot_receiver(self):
        # All-to-one with a reception FIFO of 4: the receiver's pending
        # ring turns over dozens of times while backpressure holds
        # senders' packets in depth-2 VC rings.
        shape = TorusShape.parse("4x2")
        config = NetworkConfig(vc_depth=2, reception_fifo_depth=4)
        net = CheckedTorusNetwork(shape, MachineParams(), config)
        plans = [[PacketSpec(dst=0, wire_bytes=64)] * 32 for _ in range(8)]
        plans[0] = []
        res = net.run(ListProgram(plans))
        assert res.final_deliveries == 7 * 32
        assert res.final_deliveries > 8 * config.reception_fifo_depth


# --------------------------------------------------------------------- #
# fixed-point tick <-> float round-trips
# --------------------------------------------------------------------- #


def _assert_roundtrip(cycles: float) -> None:
    """cycles -> ticks -> cycles must be exact, and the tick value must
    be an integer-valued double (the calendar queue buckets on it)."""
    ticks = cycles * TICK_SCALE
    assert ticks.is_integer(), f"{cycles!r} does not scale to an integer"
    assert ticks * TICK_UNSCALE == cycles


_TIMING_PARAMS = [
    "alpha_packet_cycles",
    "alpha_message_cycles",
    "beta_cycles_per_byte",
    "gamma_cycles_per_byte",
    "hop_latency_cycles",
    "packet_cpu_cycles",
    "cpu_incremental_cycles_per_byte",
]


class TestTickRoundTrip:
    @pytest.mark.parametrize("name", _TIMING_PARAMS)
    def test_paper_param_roundtrips(self, name):
        _assert_roundtrip(getattr(MachineParams.bluegene_l(), name))

    @pytest.mark.parametrize("name", _TIMING_PARAMS)
    def test_perturbed_param_roundtrips(self, name):
        # The property is generic for any plausible magnitude (>= 2**-11
        # cycles), not an accident of the paper's round numbers.
        prm = MachineParams(
            alpha_packet_cycles=451.7,
            alpha_message_cycles=1169.3,
            beta_ns_per_byte=6.47,
            gamma_ns_per_byte=1.61,
            hop_latency_cycles=69.9,
            packet_cpu_cycles=100.1,
        )
        _assert_roundtrip(getattr(prm, name))

    @pytest.mark.parametrize("wire_bytes", list(range(64, 257, 32)))
    def test_derived_packet_costs_roundtrip(self, wire_bytes):
        prm = MachineParams.bluegene_l()
        _assert_roundtrip(prm.packet_service_cycles(wire_bytes))
        _assert_roundtrip(prm.cpu_packet_handling_cycles(wire_bytes))

    def test_tick_addition_commutes_with_float_rounding(self):
        # The isomorphism the core rests on: fl(a*S + b*S) == fl(a+b)*S
        # for the power-of-two S, so running the event arithmetic in
        # ticks reproduces the historical float results bit for bit.
        prm = MachineParams.bluegene_l()
        values = [getattr(prm, n) for n in _TIMING_PARAMS]
        values += [prm.packet_service_cycles(w) for w in (64, 96, 256)]
        acc_f = 0.0
        acc_t = 0.0
        for v in values * 7:
            acc_f += v
            acc_t += v * TICK_SCALE
            assert acc_t == acc_f * TICK_SCALE
        assert acc_t * TICK_UNSCALE == acc_f
