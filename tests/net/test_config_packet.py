"""Unit tests for network config and packet types."""

import pytest

from repro.model.machine import MachineParams
from repro.net.config import NetworkConfig
from repro.net.packet import NO_VC, Packet, PacketSpec, RoutingMode


class TestNetworkConfig:
    def test_defaults_from_machine(self):
        prm = MachineParams.bluegene_l()
        cfg = NetworkConfig.from_machine(prm)
        assert cfg.num_dynamic_vcs == prm.num_dynamic_vcs
        assert cfg.vc_depth == prm.vc_depth_packets
        assert cfg.num_vcs == 3
        assert cfg.bubble_vc == 2

    def test_overrides(self):
        cfg = NetworkConfig.from_machine(
            MachineParams.bluegene_l(), vc_depth=7, num_injection_fifos=2
        )
        assert cfg.vc_depth == 7
        assert cfg.num_injection_fifos == 2

    def test_rejects_multiple_bubbles(self):
        with pytest.raises(ValueError):
            NetworkConfig(num_bubble_vcs=2)

    def test_rejects_zero_depth(self):
        with pytest.raises(ValueError):
            NetworkConfig(vc_depth=0)


class TestPacketSpec:
    def test_defaults(self):
        s = PacketSpec(dst=3, wire_bytes=64)
        assert s.mode == RoutingMode.ADAPTIVE
        assert s.final_dst == -1
        assert s.alpha_cycles < 0

    def test_frozen(self):
        s = PacketSpec(dst=3, wire_bytes=64)
        with pytest.raises(AttributeError):
            s.dst = 4  # type: ignore[misc]


class TestPacket:
    def test_from_spec_defaults_final_dst(self):
        s = PacketSpec(dst=3, wire_bytes=64)
        p = Packet.from_spec(0, 1, s, 10.0)
        assert p.final_dst == 3
        assert p.src == 1
        assert p.inject_time == 10.0
        assert p.vc == NO_VC
        assert p.hops == 0

    def test_from_spec_keeps_explicit_final_dst(self):
        s = PacketSpec(dst=3, wire_bytes=64, final_dst=7)
        p = Packet.from_spec(0, 1, s, 0.0)
        assert p.final_dst == 7
        assert p.dst == 3

    def test_halfbits_vary_with_pid(self):
        s = PacketSpec(dst=3, wire_bytes=64)
        bits = {
            Packet.from_spec(pid, 0, s, 0.0).halfbits & 0x7
            for pid in range(64)
        }
        # The per-axis tie-break bits take multiple values across packets
        # (a constant would re-introduce the 25% direction imbalance).
        assert len(bits) > 1

    def test_halfbits_balanced(self):
        s = PacketSpec(dst=3, wire_bytes=64)
        ones = sum(
            (Packet.from_spec(pid, 0, s, 0.0).halfbits >> 0) & 1
            for pid in range(1000)
        )
        assert 350 < ones < 650
