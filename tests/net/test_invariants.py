"""Conservation/consistency invariants of the simulator.

The invariants themselves — every token returned, every FIFO/reception
slot freed, packet accounting closed, busy time equal to observed
launches — are defined ONCE, in :mod:`repro.check.oracle`, and enforced
at runtime by the checked network classes.  These tests run real programs
under ``build_network(check=...)`` so the conservation/progress oracles
verify the whole run (any leak raises :class:`InvariantError`), then keep
only the assertions the oracles cannot know: exact service-time algebra,
minimal-hop routing, latency ordering.  Detection of *violations* is
covered by the sabotage tests in ``tests/check/test_oracle.py``.
"""

import pytest

from repro.check import CheckConfig
from repro.model.machine import MachineParams
from repro.model.torus import TorusShape
from repro.net import ListProgram, PacketSpec
from repro.net.faultsim import build_network
from repro.strategies import ARDirect, TwoPhaseSchedule, VirtualMesh2D

CHECK = CheckConfig(audit_interval=64)


def run_checked(shape_lbl, program, fifo_groups=1):
    """Run *program* with every repro.check oracle armed."""
    shape = TorusShape.parse(shape_lbl)
    net = build_network(shape, MachineParams.bluegene_l(), check=CHECK)
    if fifo_groups > 1:
        net.set_fifo_groups(fifo_groups)
    return net, net.run(program)


@pytest.mark.parametrize(
    "strategy", [ARDirect(), TwoPhaseSchedule(), VirtualMesh2D()]
)
def test_resource_conservation_oracles_stay_silent(strategy):
    # A completed checked run IS the assertion: the conservation oracle
    # raises if any token/FIFO slot/reception slot leaks or any packet
    # goes unaccounted, and the progress oracle audits queue counters
    # throughout.
    shape = TorusShape.parse("2x4x4")
    net, res = run_checked(
        "2x4x4",
        strategy.build_program(shape, 100),
        fifo_groups=strategy.fifo_groups,
    )
    assert res.delivered_packets == res.injected_packets
    # Belt and braces: the oracle checked these before _result returned.
    assert all(t == net.config.vc_depth for t in net._tokens)
    assert all(f == net.config.injection_fifo_depth for f in net._fifo_free)
    assert all(r == net.config.reception_fifo_depth for r in net._recv_free)


def test_busy_cycles_match_hops_exactly():
    # Uniform 256 B packets: total link-busy time == hops * service.
    # (Stronger than the oracle's launch-accounting identity, which holds
    # for any mix of sizes; this pins the actual service-time algebra.)
    plans = [
        [PacketSpec(dst=(u + 5) % 16, wire_bytes=256)] * 3 for u in range(16)
    ]
    net, res = run_checked("4x4", ListProgram(plans))
    beta = net.params.beta_cycles_per_byte
    assert res.link_busy_cycles.sum() == pytest.approx(
        res.total_hops * 256 * beta
    )


def test_hops_are_minimal_for_direct_traffic():
    shape = TorusShape.parse("4x4x4")
    from repro.net.topology import Topology

    topo = Topology(shape)
    plans = [[] for _ in range(64)]
    total_min = 0
    for u in (0, 17, 40):
        for v in (3, 22, 63):
            if u == v:
                continue
            plans[u].append(PacketSpec(dst=v, wire_bytes=64))
            total_min += topo.min_hops(u, v)
    _, res = run_checked("4x4x4", ListProgram(plans))
    assert res.total_hops == total_min


def test_delivery_counts_consistent():
    shape = TorusShape.parse("2x4x4")
    strat = TwoPhaseSchedule()
    _, res = run_checked(
        "2x4x4", strat.build_program(shape, 100), fifo_groups=2
    )
    # Every injected packet is eventually drained exactly once.
    assert res.delivered_packets == res.injected_packets
    assert res.final_deliveries + res.forwarded_packets == res.delivered_packets


def test_mean_latency_positive_and_bounded():
    shape = TorusShape.parse("4x4")
    _, res = run_checked("4x4", ARDirect().build_program(shape, 64))
    assert 0 < res.mean_final_latency <= res.max_final_latency
    assert res.max_final_latency <= res.time_cycles
