"""Conservation/consistency invariants of the simulator.

These inspect internal state after a run to prove resource accounting is
leak-free: every token returns, every FIFO slot frees, link-busy time
matches the traffic actually moved.
"""

import pytest

from repro.model.machine import MachineParams
from repro.model.torus import TorusShape
from repro.net import ListProgram, PacketSpec, TorusNetwork
from repro.strategies import ARDirect, TwoPhaseSchedule, VirtualMesh2D


def run_net(shape_lbl, program):
    shape = TorusShape.parse(shape_lbl)
    net = TorusNetwork(shape, MachineParams.bluegene_l())
    if getattr(program, "fifo_groups", 1) > 1:
        net.set_fifo_groups(program.fifo_groups)
    res = net.run(program)
    return net, res


@pytest.mark.parametrize(
    "strategy", [ARDirect(), TwoPhaseSchedule(), VirtualMesh2D()]
)
def test_all_tokens_returned(strategy):
    shape = TorusShape.parse("2x4x4")
    net = TorusNetwork(shape)
    if strategy.fifo_groups > 1:
        net.set_fifo_groups(strategy.fifo_groups)
    net.run(strategy.build_program(shape, 100))
    assert all(t == net.config.vc_depth for t in net._tokens)


@pytest.mark.parametrize(
    "strategy", [ARDirect(), TwoPhaseSchedule(), VirtualMesh2D()]
)
def test_all_fifo_and_reception_slots_returned(strategy):
    shape = TorusShape.parse("2x4x4")
    net = TorusNetwork(shape)
    if strategy.fifo_groups > 1:
        net.set_fifo_groups(strategy.fifo_groups)
    net.run(strategy.build_program(shape, 100))
    assert all(
        f == net.config.injection_fifo_depth for f in net._fifo_free
    )
    assert all(r == net.config.reception_fifo_depth for r in net._recv_free)


def test_busy_cycles_match_hops_exactly():
    # Uniform 256 B packets: total link-busy time == hops * service.
    shape = TorusShape.parse("4x4")
    plans = [
        [PacketSpec(dst=(u + 5) % 16, wire_bytes=256)] * 3 for u in range(16)
    ]
    net = TorusNetwork(shape)
    res = net.run(ListProgram(plans))
    beta = net.params.beta_cycles_per_byte
    assert res.link_busy_cycles.sum() == pytest.approx(
        res.total_hops * 256 * beta
    )


def test_hops_are_minimal_for_direct_traffic():
    shape = TorusShape.parse("4x4x4")
    from repro.net.topology import Topology

    topo = Topology(shape)
    plans = [[] for _ in range(64)]
    total_min = 0
    for u in (0, 17, 40):
        for v in (3, 22, 63):
            if u == v:
                continue
            plans[u].append(PacketSpec(dst=v, wire_bytes=64))
            total_min += topo.min_hops(u, v)
    net = TorusNetwork(shape)
    res = net.run(ListProgram(plans))
    assert res.total_hops == total_min


def test_delivery_counts_consistent():
    shape = TorusShape.parse("2x4x4")
    strat = TwoPhaseSchedule()
    net = TorusNetwork(shape)
    net.set_fifo_groups(2)
    res = net.run(strat.build_program(shape, 100))
    # Every injected packet is eventually drained exactly once.
    assert res.delivered_packets == res.injected_packets
    assert res.final_deliveries + res.forwarded_packets == res.delivered_packets


def test_mean_latency_positive_and_bounded():
    shape = TorusShape.parse("4x4")
    net = TorusNetwork(shape)
    res = net.run(ARDirect().build_program(shape, 64))
    assert 0 < res.mean_final_latency <= res.max_final_latency
    assert res.max_final_latency <= res.time_cycles
