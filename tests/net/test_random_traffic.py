"""Property-based simulator tests under arbitrary random traffic.

Hypothesis drives random shapes, traffic matrices, packet sizes and
routing modes through the full network; the invariants are exact delivery
accounting, resource conservation and timing sanity.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.model.machine import MachineParams
from repro.model.torus import TorusShape
from repro.net import ListProgram, PacketSpec, RoutingMode, TorusNetwork

SHAPES = ["4", "2x4", "4x4", "2x2x2", "2x2x4", "3x3", "5", "4x2M"]

COMMON = dict(
    deadline=None,
    max_examples=20,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def traffic_case(draw):
    lbl = draw(st.sampled_from(SHAPES))
    shape = TorusShape.parse(lbl)
    p = shape.nnodes
    n_flows = draw(st.integers(1, 12))
    flows = []
    for _ in range(n_flows):
        src = draw(st.integers(0, p - 1))
        dst = draw(st.integers(0, p - 1))
        count = draw(st.integers(1, 4))
        wire = draw(st.sampled_from([64, 96, 160, 256]))
        mode = draw(
            st.sampled_from([RoutingMode.ADAPTIVE, RoutingMode.DETERMINISTIC])
        )
        flows.append((src, dst, count, wire, mode))
    return lbl, flows


@given(case=traffic_case())
@settings(**COMMON)
def test_every_packet_delivered_exactly_once(case):
    lbl, flows = case
    shape = TorusShape.parse(lbl)
    plans = [[] for _ in range(shape.nnodes)]
    total = 0
    for src, dst, count, wire, mode in flows:
        for _ in range(count):
            plans[src].append(PacketSpec(dst=dst, wire_bytes=wire, mode=mode))
            total += 1
    net = TorusNetwork(shape)
    res = net.run(ListProgram(plans))
    assert res.final_deliveries == total
    assert res.delivered_packets == total
    # All resources returned.
    assert all(t == net.config.vc_depth for t in net._tokens)
    assert all(
        f == net.config.injection_fifo_depth for f in net._fifo_free
    )


@given(case=traffic_case())
@settings(**COMMON)
def test_timing_sane(case):
    lbl, flows = case
    shape = TorusShape.parse(lbl)
    plans = [[] for _ in range(shape.nnodes)]
    for src, dst, count, wire, mode in flows:
        plans[src].extend(
            PacketSpec(dst=dst, wire_bytes=wire, mode=mode)
            for _ in range(count)
        )
    net = TorusNetwork(shape)
    res = net.run(ListProgram(plans))
    # Completion after every per-link busy interval it accounts.
    assert res.time_cycles >= 0
    assert res.link_busy_cycles.max(initial=0.0) <= res.time_cycles or (
        res.time_cycles == 0.0
    )
    assert res.mean_final_latency >= 0


@given(
    lbl=st.sampled_from(SHAPES),
    seed=st.integers(0, 1000),
    m=st.sampled_from([1, 100]),
)
@settings(deadline=None, max_examples=15)
def test_strategy_runs_deterministic(lbl, seed, m):
    from repro.strategies import ARDirect

    shape = TorusShape.parse(lbl)
    r1 = TorusNetwork(shape).run(ARDirect().build_program(shape, m, seed=seed))
    r2 = TorusNetwork(shape).run(ARDirect().build_program(shape, m, seed=seed))
    assert r1.time_cycles == r2.time_cycles
    assert r1.total_hops == r2.total_hops
