"""Failure injection: broken programs must be *detected*, not silently
tolerated.  The simulator's quiescence and delivery accounting, and the
functional engine's exchange verification, are the safety nets these
tests exercise.
"""

import pytest

from repro.functional.engine import FunctionalEngine
from repro.functional.verify import verify_exchange
from repro.model.torus import TorusShape
from repro.net import DeadlockError, PacketSpec, TorusNetwork
from repro.net.program import BaseProgram
from repro.strategies import TwoPhaseSchedule
from repro.strategies.data import ChunkTag, DataChunk


class DroppingTPS(BaseProgram):
    """A TPS-like program whose intermediate drops every 5th forward."""

    def __init__(self, inner):
        self.inner = inner
        self._count = 0

    def injection_plan(self, node):
        return self.inner.injection_plan(node)

    def on_delivery(self, node, packet, now):
        out = list(self.inner.on_delivery(node, packet, now))
        if out:
            self._count += 1
            if self._count % 5 == 0:
                return ()  # drop the forward
        return out

    def expected_final_deliveries(self):
        return self.inner.expected_final_deliveries()

    def pace_cycles(self, node):
        return 0.0


def test_dropped_forwards_detected_by_simulator():
    shape = TorusShape.parse("2x4x4")
    inner = TwoPhaseSchedule().build_program(shape, 100)
    net = TorusNetwork(shape)
    net.set_fifo_groups(2)
    with pytest.raises(DeadlockError, match="final deliveries"):
        net.run(DroppingTPS(inner))


def test_dropped_forwards_detected_functionally():
    shape = TorusShape.parse("2x4x4")
    inner = TwoPhaseSchedule().build_program(shape, 100, carry_data=True)
    res = FunctionalEngine(shape).execute(DroppingTPS(inner))
    report = verify_exchange(res, shape.nnodes, 100)
    assert not report.ok
    assert report.missing_pairs


class MisroutingProgram(BaseProgram):
    """Sends a chunk labeled for rank 2 to rank 3 (a corruption bug)."""

    def injection_plan(self, node):
        if node != 0:
            return iter(())
        bad = PacketSpec(
            dst=3,
            wire_bytes=64,
            tag=ChunkTag("direct", (DataChunk(0, 2, 0, 10),)),
            final_dst=3,
            payload_bytes=10,
        )
        return iter([bad])

    def expected_final_deliveries(self):
        return 1


def test_misrouted_chunk_detected():
    shape = TorusShape.parse("4")
    res = FunctionalEngine(shape).execute(MisroutingProgram())
    # The chunk for rank 2 never reached rank 2.
    report = verify_exchange(res, 1, 10)  # restrict universe: pair (0,2)
    # Simpler check: nothing was recorded for (0, 2).
    assert (0, 2) not in res.received


class DuplicatingProgram(BaseProgram):
    """Delivers the same chunk twice (an at-least-once bug)."""

    def injection_plan(self, node):
        if node != 0:
            return iter(())
        spec = PacketSpec(
            dst=1,
            wire_bytes=64,
            tag=ChunkTag("direct", (DataChunk(0, 1, 0, 10),)),
            final_dst=1,
            payload_bytes=10,
        )
        return iter([spec, spec])

    def expected_final_deliveries(self):
        return 2


def test_duplicate_delivery_detected():
    shape = TorusShape.parse("2")
    res = FunctionalEngine(shape).execute(DuplicatingProgram())
    report = verify_exchange(res, 2, 10)
    assert not report.ok
    assert any("overlap" in p for _, _, p in report.bad_coverage)


class OverpromisingProgram(BaseProgram):
    """Claims more deliveries than it produces."""

    def injection_plan(self, node):
        if node == 0:
            return iter([PacketSpec(dst=1, wire_bytes=64)])
        return iter(())

    def expected_final_deliveries(self):
        return 5


def test_overpromised_deliveries_detected():
    with pytest.raises(DeadlockError):
        TorusNetwork(TorusShape.parse("2")).run(OverpromisingProgram())
