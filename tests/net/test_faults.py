"""Unit tests of the fault-injection subsystem.

Covers the declarative :class:`FaultPlan` (validation, determinism,
connectivity rejection), neighbor masking, the fault-aware up*/down*
routing table, the deterministic loss hash, and the behaviors
:class:`FaultyTorusNetwork` layers on top of the pristine simulator:
lossy-wire retransmission with exactly-once delivery, degraded links,
transient outages, dead-node guards — plus the zero-fault fast path
(an empty plan must be bit-identical to no plan at all).
"""

import pytest

from repro.api import simulate_alltoall
from repro.model.machine import MachineParams
from repro.model.torus import TorusShape
from repro.net import (
    FaultPlan,
    FaultRoutingTable,
    FaultyTorusNetwork,
    LinkOutage,
    ListProgram,
    PacketSpec,
    PartitionedNetworkError,
    SimulationError,
    TorusNetwork,
    build_network,
)
from repro.net.faults import loss_draw, loss_salt, masked_neighbors
from repro.net.topology import Topology
from repro.strategies import ARDirect


def ideal_params(**over):
    """Zero-overhead machine for pure network-timing tests."""
    base = dict(
        alpha_packet_cycles=0.0,
        packet_cpu_cycles=0.0,
        cpu_links=1e6,
        hop_latency_cycles=0.0,
    )
    base.update(over)
    return MachineParams(**base)


def run_faulty(shape_lbl, plans, plan, params=None, config=None):
    shape = TorusShape.parse(shape_lbl)
    net = FaultyTorusNetwork(
        shape, params or ideal_params(), config, faults=plan
    )
    return net.run(ListProgram(plans))


class TestFaultPlan:
    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.is_empty
        assert not plan.has_loss
        assert plan.describe() == "no faults"

    def test_non_empty_predicates(self):
        assert not FaultPlan(loss_prob=0.01).is_empty
        assert FaultPlan(loss_prob=0.01).has_loss
        assert not FaultPlan(dead_links=frozenset({(0, 0)})).has_loss
        assert FaultPlan(link_loss={(0, 0): 0.5}).has_loss
        assert FaultPlan(dead_nodes=frozenset({3})).node_dead(3)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(loss_prob=1.0),
            dict(loss_prob=-0.1),
            dict(link_loss={(0, 0): 1.5}),
            dict(degraded_links={(0, 0): 0.5}),
            dict(retx_timeout_cycles=0.0),
            dict(retx_backoff=0.5),
            dict(max_retx=0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_outage_validation(self):
        with pytest.raises(ValueError):
            LinkOutage(0, 0, start=10.0, end=5.0)
        with pytest.raises(ValueError):
            LinkOutage(0, 0, start=-1.0, end=5.0)

    def test_random_is_deterministic(self):
        shape = TorusShape.parse("4x4x4")
        a = FaultPlan.random(shape, seed=7, dead_link_fraction=0.05)
        b = FaultPlan.random(shape, seed=7, dead_link_fraction=0.05)
        assert a.dead_links == b.dead_links
        assert a.dead_nodes == b.dead_nodes
        c = FaultPlan.random(shape, seed=8, dead_link_fraction=0.05)
        assert c.dead_links != a.dead_links

    def test_random_stays_connected(self):
        shape = TorusShape.parse("4x4")
        plan = FaultPlan.random(
            shape, seed=3, dead_link_fraction=0.1, dead_node_fraction=0.1
        )
        # A returned plan must always admit a full routing table.
        FaultRoutingTable(Topology(shape), plan)

    def test_random_rejects_impossible(self):
        # Killing 3 of 4 wires of a 2x2 ring disconnects it; rejection
        # sampling must give up with PartitionedNetworkError.
        with pytest.raises(PartitionedNetworkError):
            FaultPlan.random(
                TorusShape.parse("2x2"),
                seed=0,
                dead_link_fraction=0.75,
                max_attempts=8,
            )


class TestMasking:
    def test_no_fault_mask_is_identity(self):
        topo = Topology(TorusShape.parse("4x4"))
        assert masked_neighbors(topo, FaultPlan()) == topo.neighbor.tolist()

    def test_dead_wire_kills_both_directions(self):
        topo = Topology(TorusShape.parse("4"))
        nbr = masked_neighbors(
            topo, FaultPlan(dead_links=frozenset({(0, 0)}))
        )
        v = topo.neighbor[0][0]
        assert nbr[0][0] == -1
        assert nbr[v][1] == -1  # reverse entry masked too

    def test_dead_node_kills_all_its_links(self):
        topo = Topology(TorusShape.parse("4x4"))
        dead = 5
        nbr = masked_neighbors(
            topo, FaultPlan(dead_nodes=frozenset({dead}))
        )
        assert all(n == -1 for n in nbr[dead])
        for u in range(topo.nnodes):
            assert dead not in nbr[u]


class TestRoutingTable:
    def test_partition_detected(self):
        # Cut every wire of node 0 on a 1-D ring of 4 -> 0 is stranded.
        topo = Topology(TorusShape.parse("4"))
        plan = FaultPlan(dead_links=frozenset({(0, 0), (0, 1)}))
        with pytest.raises(PartitionedNetworkError) as ei:
            FaultRoutingTable(topo, plan)
        assert len(ei.value.unreachable) > 0

    def test_escape_path_reaches_every_destination(self):
        # Walk the up*/down* escape next-hops from every src to every dst
        # on a faulty torus: the walk must terminate at dst without loops.
        shape = TorusShape.parse("4x4")
        topo = Topology(shape)
        plan = FaultPlan.random(shape, seed=11, dead_link_fraction=0.1)
        rt = FaultRoutingTable(topo, plan)
        p = topo.nnodes
        for dst in range(p):
            base = dst * p
            for src in range(p):
                u, down, hops = src, False, 0
                while u != dst:
                    d = rt.nh_down[base + u] if down else rt.nh_up[base + u]
                    assert d >= 0, f"no escape hop at {u} toward {dst}"
                    v = rt.nbr[u][d]
                    assert v >= 0
                    if rt.order[v] > rt.order[u]:
                        down = True
                    u = v
                    hops += 1
                    assert hops <= 2 * p, "escape walk is looping"

    def test_dist_is_bfs_on_surviving_links(self):
        shape = TorusShape.parse("4x4")
        topo = Topology(shape)
        plan = FaultPlan(dead_links=frozenset({(0, 0)}))
        rt = FaultRoutingTable(topo, plan)
        v = topo.neighbor[0][0]
        # The pristine distance 0 -> v is 1; with the wire cut the faulty
        # BFS must route around (distance >= 2, here exactly 3 on a 4-ring
        # axis... at least strictly longer than pristine).
        assert rt.dist[v * topo.nnodes + 0] > 1

    def test_num_links_counts_survivors(self):
        shape = TorusShape.parse("4x4")
        topo = Topology(shape)
        rt = FaultRoutingTable(topo, FaultPlan(dead_links=frozenset({(0, 0)})))
        assert rt.num_links == topo.num_links - 2


class TestLossHash:
    def test_deterministic_and_uniform_range(self):
        salt = loss_salt(FaultPlan(loss_prob=0.1, seed=42))
        draws = [loss_draw(salt, pid, 3, 17) for pid in range(1000)]
        assert draws == [loss_draw(salt, pid, 3, 17) for pid in range(1000)]
        assert all(0.0 <= x < 1.0 for x in draws)
        # Crude uniformity: about 10% below 0.1.
        frac = sum(x < 0.1 for x in draws) / len(draws)
        assert 0.05 < frac < 0.2

    def test_salt_depends_on_seed(self):
        s1 = loss_salt(FaultPlan(loss_prob=0.1, seed=1))
        s2 = loss_salt(FaultPlan(loss_prob=0.1, seed=2))
        assert s1 != s2


class TestFaultyNetwork:
    def test_lossy_wire_exactly_once(self):
        # 20% loss: every packet still arrives exactly once, losses and
        # retransmissions are accounted, and dedup absorbs any duplicates.
        plan = FaultPlan(loss_prob=0.2, seed=9, retx_timeout_cycles=2_000.0)
        plans = [[PacketSpec(dst=2, wire_bytes=64)] * 30, [], [], []]
        res = run_faulty("4", plans, plan)
        assert res.final_deliveries == 30
        assert res.lost_packets > 0
        assert res.retransmitted_packets >= res.lost_packets
        assert res.duplicate_packets >= 0

    def test_zero_loss_plan_counts_nothing(self):
        plan = FaultPlan(dead_links=frozenset({(0, 0)}))
        plans = [[PacketSpec(dst=1, wire_bytes=64)] * 5, [], [], []]
        res = run_faulty("4", plans, plan)
        assert res.final_deliveries == 5
        assert res.lost_packets == 0
        assert res.retransmitted_packets == 0
        assert res.duplicate_packets == 0

    def test_dead_link_routes_around(self):
        # Cut the direct wire 0 -> 1 on a 4-ring: the packet must take the
        # long way (3 hops instead of 1).
        plan = FaultPlan(dead_links=frozenset({(0, 0)}))
        plans = [[PacketSpec(dst=1, wire_bytes=64)], [], [], []]
        res = run_faulty("4", plans, plan)
        assert res.final_deliveries == 1
        assert res.total_hops == 3
        assert res.rerouted_hops > 0

    def test_degraded_link_is_slower(self):
        plans = [[PacketSpec(dst=1, wire_bytes=256)], [], [], []]
        base = run_faulty("4", plans, FaultPlan())
        slow = run_faulty(
            "4", plans, FaultPlan(degraded_links={(0, 0): 4.0})
        )
        assert slow.time_cycles > base.time_cycles

    def test_outage_delays_and_is_recorded(self):
        plan = FaultPlan(outages=(LinkOutage(0, 0, 0.0, 5_000.0),))
        plans = [[PacketSpec(dst=1, wire_bytes=64)], [], [], []]
        res = run_faulty("4", plans, plan)
        assert res.outage_cycles == 5_000.0
        assert res.time_cycles >= 5_000.0

    def test_dead_node_cannot_inject(self):
        plan = FaultPlan(dead_nodes=frozenset({0}))
        plans = [[PacketSpec(dst=1, wire_bytes=64)], [], [], []]
        with pytest.raises(SimulationError, match="dead"):
            run_faulty("4", plans, plan)

    def test_dead_node_cannot_receive(self):
        plan = FaultPlan(dead_nodes=frozenset({1}))
        plans = [[], [], [PacketSpec(dst=1, wire_bytes=64)], []]
        with pytest.raises(SimulationError):
            run_faulty("4", plans, plan)


class TestZeroFaultFastPath:
    def test_factory_returns_plain_network(self):
        shape = TorusShape.parse("4x4")
        assert type(build_network(shape)) is TorusNetwork
        assert type(build_network(shape, faults=None)) is TorusNetwork
        assert type(build_network(shape, faults=FaultPlan())) is TorusNetwork
        net = build_network(shape, faults=FaultPlan(loss_prob=0.01))
        assert type(net) is FaultyTorusNetwork

    def test_empty_plan_reproduces_baseline_exactly(self):
        # The acceptance bar: an empty FaultPlan must be *bit-identical* to
        # running without one — same schedule, same event count, same time.
        import dataclasses

        import numpy as np

        shape = TorusShape.parse("4x4")
        a = simulate_alltoall(ARDirect(), shape, 240, seed=3, faults=None)
        b = simulate_alltoall(
            ARDirect(), shape, 240, seed=3, faults=FaultPlan()
        )
        for f in dataclasses.fields(a.result):
            va, vb = getattr(a.result, f.name), getattr(b.result, f.name)
            if isinstance(va, np.ndarray):
                assert np.array_equal(va, vb), f.name
            else:
                assert va == vb, f.name
