"""Behavioral tests of the torus network simulator.

These pin the semantics the strategies rely on: link service timing,
pipelining, token flow control, local delivery, deterministic vs adaptive
routing, FIFO reservation groups, pacing, and error detection.
"""

import pytest

from repro.model.machine import MachineParams
from repro.model.torus import TorusShape
from repro.net import (
    DeadlockError,
    ListProgram,
    NetworkConfig,
    PacketSpec,
    RoutingMode,
    SimulationLimitError,
    TorusNetwork,
)
from repro.net.program import BaseProgram


def ideal_params(**over):
    """Zero-overhead machine for pure network-timing tests."""
    base = dict(
        alpha_packet_cycles=0.0,
        packet_cpu_cycles=0.0,
        cpu_links=1e6,
        hop_latency_cycles=0.0,
    )
    base.update(over)
    return MachineParams(**base)


def run_plans(shape_lbl, plans, params=None, config=None):
    shape = TorusShape.parse(shape_lbl)
    net = TorusNetwork(shape, params or ideal_params(), config)
    return net.run(ListProgram(plans))


class TestBasicDelivery:
    def test_single_packet(self):
        res = run_plans("4", [[PacketSpec(dst=1, wire_bytes=256)], [], [], []])
        assert res.final_deliveries == 1
        assert res.injected_packets == 1
        assert res.total_hops == 1

    def test_self_message_bypasses_network(self):
        res = run_plans("4", [[PacketSpec(dst=0, wire_bytes=64)], [], [], []])
        assert res.final_deliveries == 1
        assert res.total_hops == 0

    def test_all_nodes_inject(self):
        plans = [[PacketSpec(dst=(i + 1) % 4, wire_bytes=64)] for i in range(4)]
        res = run_plans("4", plans)
        assert res.final_deliveries == 4

    def test_wrong_expectation_raises(self):
        shape = TorusShape.parse("4")
        prog = ListProgram([[PacketSpec(dst=1, wire_bytes=64)], [], [], []])
        prog._total = 2  # sabotage
        with pytest.raises(DeadlockError):
            TorusNetwork(shape, ideal_params()).run(prog)


class TestLinkTiming:
    def test_stream_throughput(self):
        # 100 packets over one link: exactly 100 service times.
        prm = ideal_params()
        s = 256 * prm.beta_cycles_per_byte
        plans = [[PacketSpec(dst=1, wire_bytes=256)] * 100, [], [], []]
        res = run_plans("4", plans, prm)
        assert res.time_cycles == pytest.approx(100 * s, rel=1e-6)

    def test_cut_through_pipelining(self):
        # A multi-hop stream costs ~1 extra header latency per hop plus
        # one tail service, not a full service time per hop (virtual
        # cut-through).  dst=3 keeps the route unambiguous (a 4-hop
        # destination on an 8-ring would split over both directions).
        prm = ideal_params(hop_latency_cycles=50.0)
        s = 256 * prm.beta_cycles_per_byte
        plans = [[PacketSpec(dst=3, wire_bytes=256)] * 50] + [[]] * 7
        res = run_plans("8", plans, prm)
        assert res.time_cycles == pytest.approx(50 * s + 3 * 50, rel=0.01)

    def test_half_displacement_splits_both_directions(self):
        # Exactly-half torus displacements use both minimal directions
        # (a fixed tie-break would halve the achievable rate).
        prm = ideal_params()
        s = 256 * prm.beta_cycles_per_byte
        plans = [[PacketSpec(dst=4, wire_bytes=256)] * 50] + [[]] * 7
        res = run_plans("8", plans, prm)
        assert res.time_cycles < 30 * s  # ~25*S with the split
        busy = res.link_busy_cycles
        assert busy[0, 0] > 0 and busy[0, 1] > 0

    def test_service_scales_with_wire_bytes(self):
        prm = ideal_params()
        r64 = run_plans("4", [[PacketSpec(dst=1, wire_bytes=64)] * 10, [], [], []], prm)
        r256 = run_plans("4", [[PacketSpec(dst=1, wire_bytes=256)] * 10, [], [], []], prm)
        assert r256.time_cycles == pytest.approx(4 * r64.time_cycles, rel=1e-6)

    def test_link_utilization_accounting(self):
        prm = ideal_params()
        plans = [[PacketSpec(dst=1, wire_bytes=256)] * 10, [], [], []]
        res = run_plans("4", plans, prm)
        # Exactly one link busy the whole time.
        assert res.max_link_utilization == pytest.approx(1.0, rel=1e-6)
        busy = res.link_busy_cycles
        assert busy.sum() == pytest.approx(res.time_cycles)


class TestRoutingModes:
    def test_adaptive_spreads_over_profitable_dirs(self):
        # Node 0 -> diagonally opposite on 4x4: both +x and +y profitable.
        prm = ideal_params()
        shape = TorusShape.parse("4x4")
        dst = shape.rank((1, 1))
        plans = [[] for _ in range(16)]
        plans[0] = [PacketSpec(dst=dst, wire_bytes=256)] * 40
        net = TorusNetwork(shape, prm)
        res = net.run(ListProgram(plans))
        busy = res.link_busy_cycles
        # Both the +x and +y links out of node 0 carried traffic.
        assert busy[0, 0] > 0 and busy[0, 2] > 0

    def test_deterministic_uses_x_first_only(self):
        prm = ideal_params()
        shape = TorusShape.parse("4x4")
        dst = shape.rank((1, 1))
        plans = [[] for _ in range(16)]
        plans[0] = [
            PacketSpec(dst=dst, wire_bytes=256, mode=RoutingMode.DETERMINISTIC)
        ] * 40
        net = TorusNetwork(shape, prm)
        res = net.run(ListProgram(plans))
        busy = res.link_busy_cycles
        # All traffic leaves node 0 on +x; none on +y.
        assert busy[0, 0] > 0
        assert busy[0, 2] == 0

    def test_deterministic_slower_under_turn_contention(self):
        # All nodes send diagonal traffic: DR serializes on X-then-Y while
        # AR balances, so DR must not be faster.
        prm = ideal_params()
        shape = TorusShape.parse("4x4")
        def plan(mode):
            plans = []
            for u in range(16):
                c = shape.coord(u)
                d = shape.rank(((c[0] + 1) % 4, (c[1] + 1) % 4))
                plans.append([PacketSpec(dst=d, wire_bytes=256, mode=mode)] * 20)
            return plans
        t_ar = run_plans("4x4", plan(RoutingMode.ADAPTIVE), prm).time_cycles
        t_dr = run_plans("4x4", plan(RoutingMode.DETERMINISTIC), prm).time_cycles
        assert t_dr >= t_ar * 0.99

    def test_minimal_routing_hop_counts(self):
        prm = ideal_params()
        shape = TorusShape.parse("4x4x4")
        src = shape.rank((0, 0, 0))
        dst = shape.rank((2, 1, 3))
        plans = [[] for _ in range(64)]
        plans[src] = [PacketSpec(dst=dst, wire_bytes=64)] * 8
        res = run_plans("4x4x4", plans, prm)
        # 2 + 1 + 1 = 4 minimal hops per packet.
        assert res.total_hops == 8 * 4


class TestCpuModel:
    def test_alpha_charged_per_message(self):
        prm = ideal_params(alpha_packet_cycles=1000.0)
        plans = [[
            PacketSpec(dst=1, wire_bytes=64, new_message=True),
            PacketSpec(dst=1, wire_bytes=64),
        ], [], [], []]
        res = run_plans("4", plans, prm)
        r2 = run_plans("4", [[
            PacketSpec(dst=1, wire_bytes=64),
            PacketSpec(dst=1, wire_bytes=64),
        ], [], [], []], prm)
        assert res.time_cycles == pytest.approx(r2.time_cycles + 1000.0)

    def test_alpha_override(self):
        prm = ideal_params(alpha_packet_cycles=1000.0)
        plans = [[PacketSpec(dst=1, wire_bytes=64, new_message=True,
                             alpha_cycles=5000.0)], [], [], []]
        base = [[PacketSpec(dst=1, wire_bytes=64, new_message=True)], [], [], []]
        assert run_plans("4", plans, prm).time_cycles == pytest.approx(
            run_plans("4", base, prm).time_cycles + 4000.0
        )

    def test_cpu_byte_rate_limits_injection(self):
        # CPU at 1 link's bandwidth cannot saturate two outgoing links.
        prm = ideal_params(cpu_links=1.0)
        shape = TorusShape.parse("8")
        plans = [[] for _ in range(8)]
        # Split traffic between +1 and -1 neighbors: network could do 2
        # links in parallel but the CPU feeds at 1 link rate.
        plans[0] = [
            PacketSpec(dst=1 if i % 2 else 7, wire_bytes=256) for i in range(40)
        ]
        res = run_plans("8", plans, prm)
        s = 256 * prm.beta_cycles_per_byte
        assert res.time_cycles >= 40 * s * 0.95

    def test_extra_cpu_cycles_charged(self):
        prm = ideal_params()
        withx = [[PacketSpec(dst=1, wire_bytes=64, extra_cpu_cycles=500.0)]] + [[]] * 3
        base = [[PacketSpec(dst=1, wire_bytes=64)]] + [[]] * 3
        assert run_plans("4", withx, prm).time_cycles == pytest.approx(
            run_plans("4", base, prm).time_cycles + 500.0
        )


class TestPacing:
    def test_paced_injection_spacing(self):
        prm = ideal_params()

        class Paced(ListProgram):
            def pace_cycles(self, node):
                return 10_000.0

        plans = [[PacketSpec(dst=1, wire_bytes=64)] * 5, [], [], []]
        shape = TorusShape.parse("4")
        res = TorusNetwork(shape, prm).run(Paced(plans))
        assert res.time_cycles >= 4 * 10_000.0


class TestFifoGroups:
    def test_group_validation(self):
        net = TorusNetwork(TorusShape.parse("4"), ideal_params())
        with pytest.raises(ValueError):
            net.set_fifo_groups(3)  # does not divide 4
        net.set_fifo_groups(2)

    def test_traffic_in_both_groups_delivered(self):
        prm = ideal_params()
        shape = TorusShape.parse("4")
        net = TorusNetwork(shape, prm)
        net.set_fifo_groups(2)
        plans = [[
            PacketSpec(dst=1, wire_bytes=64, fifo_group=0),
            PacketSpec(dst=2, wire_bytes=64, fifo_group=1),
        ], [], [], []]
        res = net.run(ListProgram(plans))
        assert res.final_deliveries == 2


class TestFlowControl:
    def test_finite_buffers_backpressure(self):
        # With depth-1 VCs a burst still delivers everything (no deadlock,
        # no loss) - just more slowly than with deep buffers.
        prm = ideal_params()
        shallow = NetworkConfig.from_machine(prm, vc_depth=1)
        deep = NetworkConfig.from_machine(prm, vc_depth=64)
        plans = [[PacketSpec(dst=4, wire_bytes=256)] * 30] + [[]] * 7
        r_sh = run_plans("8", plans, prm, shallow)
        r_dp = run_plans("8", plans, prm, deep)
        assert r_sh.final_deliveries == r_dp.final_deliveries == 30
        assert r_sh.time_cycles >= r_dp.time_cycles

    def test_reception_backpressure(self):
        # A tiny reception FIFO with a slow CPU still delivers everything.
        prm = ideal_params(cpu_links=0.5)
        cfg = NetworkConfig.from_machine(prm, reception_fifo_depth=1)
        plans = [[PacketSpec(dst=1, wire_bytes=256)] * 20, [], [], []]
        res = run_plans("4", plans, prm, cfg)
        assert res.final_deliveries == 20


class TestLimits:
    def test_event_limit(self):
        prm = ideal_params()
        cfg = NetworkConfig.from_machine(prm, max_events=10)
        plans = [[PacketSpec(dst=1, wire_bytes=64)] * 50, [], [], []]
        with pytest.raises(SimulationLimitError):
            run_plans("4", plans, prm, cfg)

    def test_cycle_limit(self):
        prm = ideal_params()
        cfg = NetworkConfig.from_machine(prm, max_cycles=10.0)
        plans = [[PacketSpec(dst=1, wire_bytes=256)] * 50, [], [], []]
        with pytest.raises(SimulationLimitError):
            run_plans("4", plans, prm, cfg)

    def test_limit_error_carries_diagnostics(self):
        # A limit abort must say *where* the simulation was stuck, not just
        # that it stopped: event count, packets still in the network, and
        # the per-node pending-work hotspots.
        prm = ideal_params()
        cfg = NetworkConfig.from_machine(prm, max_events=10)
        plans = [[PacketSpec(dst=1, wire_bytes=64)] * 50, [], [], []]
        with pytest.raises(SimulationLimitError) as ei:
            run_plans("4", plans, prm, cfg)
        err = ei.value
        assert err.events_processed >= 10
        assert err.packets_in_flight >= 0
        assert isinstance(err.pending_by_node, dict)
        msg = str(err)
        assert "events_processed=" in msg
        assert "packets_in_flight=" in msg


class TestDeterminism:
    def test_identical_runs_identical_results(self):
        from repro.strategies import ARDirect

        shape = TorusShape.parse("4x4")
        prog1 = ARDirect().build_program(shape, 100, seed=5)
        prog2 = ARDirect().build_program(shape, 100, seed=5)
        r1 = TorusNetwork(shape).run(prog1)
        r2 = TorusNetwork(shape).run(prog2)
        assert r1.time_cycles == r2.time_cycles
        assert r1.events_processed == r2.events_processed

    def test_seed_changes_schedule(self):
        from repro.strategies import ARDirect

        shape = TorusShape.parse("4x4")
        r1 = TorusNetwork(shape).run(ARDirect().build_program(shape, 100, seed=1))
        r2 = TorusNetwork(shape).run(ARDirect().build_program(shape, 100, seed=2))
        assert r1.time_cycles != r2.time_cycles


class TestForwarding:
    def test_on_delivery_forwarding(self):
        """A relay program: node 1 bounces everything to node 2."""

        class Relay(BaseProgram):
            def injection_plan(self, node):
                if node == 0:
                    return iter(
                        [PacketSpec(dst=1, wire_bytes=64, final_dst=2)] * 5
                    )
                return iter(())

            def on_delivery(self, node, packet, now):
                if packet.final_dst == node:
                    return ()
                return (PacketSpec(dst=2, wire_bytes=64, final_dst=2),)

            def expected_final_deliveries(self):
                return 5

        shape = TorusShape.parse("4")
        res = TorusNetwork(shape, ideal_params()).run(Relay())
        assert res.final_deliveries == 5
        assert res.forwarded_packets == 5
        assert res.injected_packets == 10  # 5 original + 5 re-injected
