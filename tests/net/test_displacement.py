"""Displacement tables vs the original inline wrap/mod/halfbits logic.

The tables in :mod:`repro.net.displacement` replaced a branch cluster that
was written out four times in the simulator; these tests pin the exact
old-vs-new equivalence on odd, even and mesh dimensions, plus the halfbit
tie-break semantics the Section 3 load balance depends on.
"""

from __future__ import annotations

import pytest

from repro.model.torus import TorusShape
from repro.net.displacement import (
    DisplacementTables,
    displacement_tables,
    reference_displacement,
)


def _inline_disp(n: int, wrap: bool, cc: int, cd: int, halfbit: int) -> int:
    """The simulator's original inline branch cluster, verbatim."""
    d = cd - cc
    if wrap:
        d %= n
        half = n // 2
        if d > half:
            d -= n
        elif d == half and not (n & 1) and not halfbit:
            d -= n
    return d


@pytest.mark.parametrize("n", [2, 3, 4, 5, 7, 8, 16])
@pytest.mark.parametrize("wrap", [True, False])
def test_reference_matches_inline_cluster(n: int, wrap: bool) -> None:
    for cc in range(n):
        for cd in range(n):
            for hb in (0, 1):
                assert reference_displacement(n, wrap, cd - cc, hb) == (
                    _inline_disp(n, wrap, cc, cd, hb)
                )


@pytest.mark.parametrize(
    "spec",
    [
        "5x4",          # odd torus x even torus
        "4x4x4",        # even symmetric torus
        "8x4x2",        # mixed extents (2 is degenerate-wrap)
        "3x3x3",        # odd symmetric torus
        "4x6M",         # torus x mesh
        "7M",           # odd mesh line
    ],
)
def test_tables_match_reference_everywhere(spec: str) -> None:
    shape = TorusShape.parse(spec)
    tabs = DisplacementTables(shape)
    for axis in range(shape.ndim):
        n = shape.dims[axis]
        wrap = shape.wrap_effective(axis)
        for cc in range(n):
            for cd in range(n):
                for hb in (0, 1):
                    want = reference_displacement(n, wrap, cd - cc, hb)
                    got = tabs.disp[axis][hb][cc * n + cd]
                    assert got == want, (spec, axis, cc, cd, hb)
                    want_dir = (
                        -1 if want == 0 else 2 * axis + (0 if want > 0 else 1)
                    )
                    assert tabs.dirs[axis][hb][cc * n + cd] == want_dir
                    assert tabs.displacement(axis, cc, cd, hb << axis) == want
                    assert tabs.direction(axis, cc, cd, hb << axis) == want_dir


def test_halfbit_breaks_even_torus_ties_both_ways() -> None:
    """Exact-half displacement on an even torus axis goes + with the bit
    set and - with it clear; everything else ignores the bit."""
    shape = TorusShape.parse("8")
    tabs = DisplacementTables(shape)
    n = 8
    for cc in range(n):
        cd = (cc + n // 2) % n
        assert tabs.disp[0][1][cc * n + cd] == n // 2
        assert tabs.disp[0][0][cc * n + cd] == -(n // 2)
        for off in range(1, n // 2):
            cd2 = (cc + off) % n
            assert tabs.disp[0][0][cc * n + cd2] == tabs.disp[0][1][cc * n + cd2]


@pytest.mark.parametrize("spec", ["5x4", "3x3x3", "4x6M"])
def test_halfbit_variants_shared_when_irrelevant(spec: str) -> None:
    """Odd/mesh/tiny axes share one table object per axis (object reuse)."""
    shape = TorusShape.parse(spec)
    tabs = DisplacementTables(shape)
    for axis in range(shape.ndim):
        n = shape.dims[axis]
        can_tie = shape.wrap_effective(axis) and n % 2 == 0 and n > 2
        if can_tie:
            assert tabs.disp[axis][0] is not tabs.disp[axis][1]
        else:
            assert tabs.disp[axis][0] is tabs.disp[axis][1]
            assert tabs.dirs[axis][0] is tabs.dirs[axis][1]


def test_tables_memoized_per_shape() -> None:
    a = displacement_tables(TorusShape.parse("4x4x4"))
    b = displacement_tables(TorusShape.parse("4x4x4"))
    assert a is b
    assert displacement_tables(TorusShape.parse("4x4x2")) is not a


def test_mesh_axis_is_plain_difference() -> None:
    shape = TorusShape.parse("6M")
    tabs = DisplacementTables(shape)
    for cc in range(6):
        for cd in range(6):
            assert tabs.disp[0][0][cc * 6 + cd] == cd - cc
