"""Unit tests for topology tables."""

import numpy as np
import pytest

from repro.model.torus import TorusShape
from repro.net.topology import (
    Topology,
    direction_axis,
    direction_of,
    direction_sign,
)


class TestDirections:
    def test_encoding(self):
        assert direction_of(0, True) == 0
        assert direction_of(0, False) == 1
        assert direction_of(2, True) == 4

    def test_decoding(self):
        for d in range(6):
            assert direction_of(direction_axis(d), direction_sign(d) > 0) == d

    def test_reverse_is_xor_1(self):
        for d in range(6):
            rev = d ^ 1
            assert direction_axis(rev) == direction_axis(d)
            assert direction_sign(rev) == -direction_sign(d)


class TestNeighborTable:
    def test_torus_all_links_present(self):
        topo = Topology(TorusShape.parse("4x4x4"))
        assert (topo.neighbor >= 0).all()
        assert topo.num_links == 6 * 64

    def test_mesh_edges_missing(self):
        topo = Topology(TorusShape.parse("4x4M"))
        shape = topo.shape
        # Node at y=0 has no -y link; node at y=3 no +y.
        for x in range(4):
            assert topo.neighbor[shape.rank((x, 0)), direction_of(1, False)] == -1
            assert topo.neighbor[shape.rank((x, 3)), direction_of(1, True)] == -1

    def test_neighbors_reciprocal(self):
        topo = Topology(TorusShape.parse("4x2M"))
        for u in range(topo.nnodes):
            for d in range(topo.ndirs):
                v = topo.neighbor[u, d]
                if v >= 0:
                    assert topo.neighbor[v, d ^ 1] == u

    def test_wrap_neighbor(self):
        topo = Topology(TorusShape.parse("8"))
        assert topo.neighbor[7, direction_of(0, True)] == 0
        assert topo.neighbor[0, direction_of(0, False)] == 7

    def test_extent_one_dimension_has_no_links(self):
        topo = Topology(TorusShape((4, 1), (True, True)))
        assert (topo.neighbor[:, 2:] == -1).all()


class TestDegenerateShapes:
    """Extent-1 dimensions, meshes, and tiny rings: the neighbor table must
    stay reciprocal, ``num_links`` must match the shape's own count, and no
    routing helper may ever point at an absent (-1) link."""

    SHAPES = [
        TorusShape.parse("1"),
        TorusShape.parse("2"),
        TorusShape.parse("2x2"),
        TorusShape.parse("1x4"),
        TorusShape.parse("4M"),
        TorusShape.parse("3x1x3"),
        TorusShape.parse("2x2M"),
        TorusShape((1, 1, 5), (True, True, True)),
    ]

    @pytest.mark.parametrize("shape", SHAPES, ids=lambda s: s.label)
    def test_neighbor_table_consistent(self, shape):
        topo = Topology(shape)
        present = 0
        for u in range(topo.nnodes):
            for d in range(topo.ndirs):
                v = topo.neighbor[u, d]
                if v >= 0:
                    assert topo.neighbor[v, d ^ 1] == u
                    assert v != u or shape.dims[d >> 1] == 1
                    present += 1
        assert topo.num_links == present

    @pytest.mark.parametrize("shape", SHAPES, ids=lambda s: s.label)
    def test_routing_never_uses_absent_links(self, shape):
        topo = Topology(shape)
        for src in range(topo.nnodes):
            for dst in range(topo.nnodes):
                for d in topo.profitable_directions(src, dst):
                    assert topo.neighbor[src, d] >= 0
                d = topo.dimension_order_direction(src, dst)
                if src != dst:
                    assert d >= 0
                    assert topo.neighbor[src, d] >= 0
                else:
                    assert d == -1

    def test_extent_two_ring_is_effectively_a_mesh(self):
        # Wrapping a 2-ring would create a double link between the two
        # nodes; the table instead keeps a single wire per axis (positive
        # direction from the lower coordinate), i.e. an effective mesh.
        topo = Topology(TorusShape.parse("2x2"))
        shape = topo.shape
        for axis in range(2):
            assert not shape.wrap_effective(axis)
        lo = shape.rank((0, 0))
        hi = shape.rank((1, 0))
        assert topo.neighbor[lo, direction_of(0, True)] == hi
        assert topo.neighbor[lo, direction_of(0, False)] == -1
        assert topo.neighbor[hi, direction_of(0, False)] == lo
        assert topo.neighbor[hi, direction_of(0, True)] == -1


class TestRouting:
    def test_profitable_directions(self):
        topo = Topology(TorusShape.parse("8x8x8"))
        src = topo.shape.rank((0, 0, 0))
        dst = topo.shape.rank((1, 7, 0))
        dirs = topo.profitable_directions(src, dst)
        assert direction_of(0, True) in dirs    # +x
        assert direction_of(1, False) in dirs   # -y (wrap)
        assert len(dirs) == 2

    def test_dimension_order(self):
        topo = Topology(TorusShape.parse("8x8x8"))
        src = topo.shape.rank((0, 0, 0))
        dst = topo.shape.rank((2, 3, 0))
        assert topo.dimension_order_direction(src, dst) == direction_of(0, True)
        mid = topo.shape.rank((2, 0, 0))
        assert topo.dimension_order_direction(mid, dst) == direction_of(1, True)

    def test_dor_at_destination(self):
        topo = Topology(TorusShape.parse("4x4"))
        assert topo.dimension_order_direction(5, 5) == -1

    def test_min_hops(self):
        topo = Topology(TorusShape.parse("8x8x8"))
        a = topo.shape.rank((0, 0, 0))
        b = topo.shape.rank((4, 4, 4))
        assert topo.min_hops(a, b) == 12

    def test_coords_consistent_with_shape(self):
        shape = TorusShape.parse("4x2x3")
        topo = Topology(shape)
        for rank in range(shape.nnodes):
            assert tuple(topo.coords[rank]) == shape.coord(rank)
