"""Per-axis utilization reporting on degenerate and mismatched shapes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import simulate_alltoall
from repro.model.torus import TorusShape
from repro.net.trace import SimulationResult
from repro.strategies import ARDirect


def _result_for(shape: TorusShape):
    return simulate_alltoall(ARDirect(), shape, 64, seed=1).result


def _zero_result(nnodes: int, ndim: int) -> SimulationResult:
    return SimulationResult(
        time_cycles=0.0,
        link_busy_cycles=np.zeros((nnodes, 2 * ndim)),
        num_links=0,
        injected_packets=0,
        delivered_packets=0,
        final_deliveries=0,
        forwarded_packets=0,
        injected_wire_bytes=0,
        total_hops=0,
        events_processed=0,
        mean_final_latency=0.0,
        max_final_latency=0.0,
    )


#: Shapes covering every degenerate case: extent-2 dims (wrap == mesh
#: link), extent-1 dims (no links at all), mesh flags, and 1-2 dims.
DEGENERATE_SHAPES = [
    "4x4x2",
    "2x2x2",
    "4x2x2",
    "4x1x1",
    "4x4x2M",
    "8x2",
    "4x4",
]


class TestDegenerateShapes:
    @pytest.mark.parametrize("spec", DEGENERATE_SHAPES)
    def test_axis_means_are_consistent_with_global_mean(self, spec):
        shape = TorusShape.parse(spec)
        res = _result_for(shape)
        per_axis = res.axis_utilization(shape)
        assert len(per_axis) == shape.ndim
        # Weighted by per-axis link counts, the axis means reconstruct
        # the global mean exactly.
        weighted = sum(
            u * shape.links_in_dim(a) for a, u in enumerate(per_axis)
        )
        assert weighted / res.num_links == pytest.approx(
            res.mean_link_utilization, rel=1e-12
        )

    def test_extent1_axis_reports_zero(self):
        shape = TorusShape.parse("4x1x1")
        res = _result_for(shape)
        per_axis = res.axis_utilization(shape)
        assert per_axis[1] == 0.0
        assert per_axis[2] == 0.0
        assert per_axis[0] > 0.0

    @pytest.mark.parametrize("spec", DEGENERATE_SHAPES)
    def test_utilization_bounded(self, spec):
        shape = TorusShape.parse(spec)
        res = _result_for(shape)
        for u in res.axis_utilization(shape):
            assert 0.0 <= u <= 1.0 + 1e-9


class TestShapeMismatch:
    def test_wrong_node_count_raises(self):
        res = _result_for(TorusShape.parse("4x4x2"))
        with pytest.raises(ValueError, match="does not match"):
            res.axis_utilization(TorusShape.parse("4x4x4"))

    def test_wrong_ndim_raises(self):
        res = _result_for(TorusShape.parse("4x4x2"))
        with pytest.raises(ValueError, match="does not match"):
            res.axis_utilization(TorusShape.parse("8x4"))

    def test_matching_shape_variant_is_accepted(self):
        # Same node count and ndim but different torus flags: cannot be
        # distinguished from the busy matrix alone, so it is accepted.
        res = _result_for(TorusShape.parse("4x4x2"))
        res.axis_utilization(TorusShape.parse("4x4x2M"))


class TestZeroRuns:
    def test_zero_time_and_zero_links_are_all_zero(self):
        res = _zero_result(8, 3)
        shape = TorusShape.parse("2x2x2")
        assert res.mean_link_utilization == 0.0
        assert res.max_link_utilization == 0.0
        assert res.axis_utilization(shape) == [0.0, 0.0, 0.0]

    def test_empty_busy_matrix_max_is_zero(self):
        res = _zero_result(0, 3)
        assert res.max_link_utilization == 0.0
