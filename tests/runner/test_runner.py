"""Runner package: cache keys, payload round-trips, pool semantics."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import simulate_alltoall
from repro.model.machine import MachineParams
from repro.model.torus import TorusShape
from repro.net.config import NetworkConfig
from repro.net.faults import FaultPlan
from repro.runner import (
    SimPoint,
    canonical_extras,
    counters,
    decode_run,
    encode_run,
    point_fingerprint,
    point_key,
    resolve_jobs,
    run_point,
    run_points,
)
from repro.strategies import ARDirect, TwoPhaseSchedule


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    counters.reset()


def _point(**kw) -> SimPoint:
    defaults = dict(
        strategy=ARDirect(),
        shape=TorusShape.parse("4x4x2"),
        msg_bytes=64,
        seed=1,
    )
    defaults.update(kw)
    return SimPoint(**defaults)


class TestKeys:
    def test_key_is_stable_across_processes_conceptually(self):
        # Same logical point built twice -> same key.
        assert point_key(_point()) == point_key(_point())

    def test_fingerprint_is_json_canonical(self):
        fp = point_fingerprint(_point())
        assert json.loads(json.dumps(fp)) == fp

    def test_every_input_perturbs_the_key(self):
        base = point_key(_point())
        variants = [
            _point(msg_bytes=128),
            _point(seed=2),
            _point(shape=TorusShape.parse("4x4x4")),
            _point(strategy=TwoPhaseSchedule()),
            _point(strategy=TwoPhaseSchedule(packets_per_round=3)),
            _point(params=MachineParams(hop_latency_cycles=80.0)),
            _point(config=NetworkConfig(vc_depth=8)),
            _point(faults=FaultPlan(loss_prob=0.01)),
        ]
        keys = {point_key(p) for p in variants}
        assert base not in keys
        assert len(keys) == len(variants)

    def test_strategy_options_are_part_of_the_key(self):
        a = point_key(_point(strategy=TwoPhaseSchedule(pipelined=True)))
        b = point_key(_point(strategy=TwoPhaseSchedule(pipelined=False)))
        assert a != b


class TestCodec:
    def test_roundtrip_is_exact(self):
        run = simulate_alltoall(ARDirect(), TorusShape.parse("4x4x2"), 64, seed=1)
        back = decode_run(json.loads(json.dumps(encode_run(run))))
        assert back.strategy == run.strategy
        assert back.shape == run.shape
        assert back.msg_bytes == run.msg_bytes
        assert back.params == run.params
        assert back.predicted_cycles == run.predicted_cycles
        assert back.result.time_cycles == run.result.time_cycles
        assert back.result.events_processed == run.result.events_processed
        assert back.result.mean_final_latency == run.result.mean_final_latency
        assert np.array_equal(
            back.result.link_busy_cycles, run.result.link_busy_cycles
        )
        assert back.result.link_busy_cycles.dtype == np.float64
        # Derived metrics (what the tables render) are bit-equal too.
        assert back.percent_of_peak == run.percent_of_peak
        assert back.per_node_mb_per_s == run.per_node_mb_per_s


class TestPool:
    def test_results_in_input_order_and_identical_across_jobs(self):
        pts = [
            _point(msg_bytes=m, strategy=s())
            for m in (32, 64)
            for s in (ARDirect, TwoPhaseSchedule)
        ]
        seq = run_points(pts, jobs=1)
        counters.reset()
        par = run_points(pts, jobs=4)
        assert counters.simulated == 0  # second call hit the cache
        for a, b, p in zip(seq, par, pts):
            assert a.msg_bytes == p.msg_bytes
            assert a.strategy == p.strategy.name
            assert json.dumps(encode_run(a), sort_keys=True) == json.dumps(
                encode_run(b), sort_keys=True
            )

    def test_parallel_cold_cache_matches_sequential(self, monkeypatch, tmp_path):
        pts = [_point(msg_bytes=m) for m in (32, 64, 96)]
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "a"))
        seq = run_points(pts, jobs=1)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "b"))
        par = run_points(pts, jobs=3)
        for a, b in zip(seq, par):
            assert json.dumps(encode_run(a), sort_keys=True) == json.dumps(
                encode_run(b), sort_keys=True
            )

    def test_cache_hit_executes_no_simulation(self):
        p = _point()
        run_point(p)
        assert counters.simulated == 1
        counters.reset()
        again = run_point(p)
        assert counters.simulated == 0
        assert counters.cache_hits == 1
        assert again.result.time_cycles > 0

    def test_cache_disable_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        p = _point()
        run_point(p)
        run_point(p)
        assert counters.simulated == 2
        assert counters.cache_hits == 0

    def test_faulty_points_cache_too(self):
        shape = TorusShape.parse("4x4x2")
        plan = FaultPlan.random(shape, seed=3, dead_link_fraction=0.05)
        p = _point(shape=shape, faults=plan)
        first = run_point(p)
        counters.reset()
        second = run_point(p)
        assert counters.simulated == 0
        assert json.dumps(encode_run(first), sort_keys=True) == json.dumps(
            encode_run(second), sort_keys=True
        )

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path, monkeypatch):
        from repro.runner import cache_root

        p = _point()
        run_point(p)
        entries = list(cache_root().rglob("*.json"))
        assert len(entries) == 1
        entries[0].write_text("{not json")
        counters.reset()
        run_point(p)
        assert counters.simulated == 1

    def test_corrupt_entry_warns_with_path_and_is_counted(
        self, caplog, monkeypatch
    ):
        import logging

        from repro.runner import cache_root

        # Undo any CLI-style logger configuration a prior test left on
        # the "repro" tree so caplog (root handler) sees the warning.
        monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)
        p = _point()
        run_point(p)
        entry = next(cache_root().rglob("*.json"))
        entry.write_text("{truncated")
        counters.reset()
        with caplog.at_level("WARNING", logger="repro.runner.cache"):
            run_point(p)
        assert counters.cache_corrupt == 1
        messages = [rec.getMessage() for rec in caplog.records]
        assert any(
            "corrupt cache entry" in m and str(entry) in m for m in messages
        )

    def test_corrupt_entry_is_quarantined_and_recomputed(self):
        from repro.runner import cache_root

        p = _point()
        run_point(p)
        entry = next(cache_root().rglob("*.json"))
        entry.write_text("{rotten")
        counters.reset()
        run_point(p)
        assert counters.simulated == 1
        assert counters.cache_corrupt == 1
        # The rotten bytes moved aside as evidence...
        quarantine = entry.with_name(entry.name.replace(".json", ".corrupt"))
        assert quarantine.exists()
        assert quarantine.read_text() == "{rotten"
        # ...and the entry was rewritten, so the next run is a clean hit
        # that never re-parses the corrupt file.
        counters.reset()
        run_point(p)
        assert counters.cache_hits == 1
        assert counters.cache_corrupt == 0
        assert counters.simulated == 0

    def test_cache_stats_counters(self):
        pts = [_point(msg_bytes=m) for m in (32, 64)]
        run_points(pts)
        assert counters.simulated == 2
        assert counters.cache_misses == 2
        assert counters.cache_stores == 2
        assert counters.cache_hits == 0
        assert counters.sim_events > 0
        assert counters.sim_cycles > 0.0
        assert len(counters.point_keys) == 2
        counters.reset()
        run_points(pts)
        assert counters.cache_hits == 2
        assert counters.cache_misses == 0
        assert counters.cache_stores == 0
        assert counters.simulated == 0
        # Executed point keys are recorded for hits too (provenance
        # fingerprints cover the whole sweep, not just fresh points).
        assert len(counters.point_keys) == 2

    def test_snapshot_is_a_copy(self):
        run_point(_point())
        snap = counters.snapshot()
        before = dict(snap, point_keys=list(snap["point_keys"]))
        run_point(_point(msg_bytes=96))
        assert snap["point_keys"] == before["point_keys"]
        assert len(counters.point_keys) == 2


class TestCanonicalExtras:
    def test_native_types_pass_through(self):
        val = {"a": 1, "b": [1.5, "x", True, None], "c": {"d": 2}}
        assert canonical_extras(val) == val

    def test_numpy_scalars_become_native(self):
        out = canonical_extras(
            {
                "i": np.int64(3),
                "f": np.float64(1.5),
                "b": np.bool_(True),
                "arr": np.array([1.0, 2.0]),
            }
        )
        assert out == {"i": 3, "f": 1.5, "b": True, "arr": [1.0, 2.0]}
        assert type(out["i"]) is int
        assert type(out["f"]) is float
        assert type(out["b"]) is bool
        assert json.loads(json.dumps(out)) == out

    def test_tuples_become_lists(self):
        assert canonical_extras({"t": (1, (2, 3))}) == {"t": [1, [2, 3]]}

    def test_non_string_key_raises_with_path(self):
        with pytest.raises(TypeError, match=r"extras\.outer: non-string"):
            canonical_extras({"outer": {1: "x"}})

    def test_unencodable_value_raises_with_path(self):
        with pytest.raises(TypeError, match=r"extras\.a\[1\]"):
            canonical_extras({"a": [0, object()]})

    def test_non_finite_float_raises(self):
        with pytest.raises(ValueError, match="non-finite"):
            canonical_extras({"x": float("nan")})
        with pytest.raises(ValueError, match="non-finite"):
            canonical_extras([float("inf")])

    def test_extras_roundtrip_through_encode(self):
        run = simulate_alltoall(
            ARDirect(), TorusShape.parse("4x4x2"), 64, seed=1
        )
        run.result.extras["custom"] = {
            "n": np.int32(7),
            "vals": (np.float64(1.0), 2.0),
        }
        back = decode_run(json.loads(json.dumps(encode_run(run))))
        assert back.result.extras["custom"] == {"n": 7, "vals": [1.0, 2.0]}


class TestResolveJobs:
    def test_default_is_sequential(self):
        assert resolve_jobs(None) == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(None) == 3
        assert resolve_jobs(2) == 2  # explicit argument wins

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) >= 1

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "lots")
        with pytest.raises(ValueError):
            resolve_jobs(None)
