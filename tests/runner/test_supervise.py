"""Supervision layer: watchdog, chaos, retries, journal, run_sweep."""

from __future__ import annotations

import json
import time

import pytest

from repro.model.torus import TorusShape
from repro.runner import (
    SimPoint,
    counters,
    encode_run,
    point_key,
    run_points,
    run_sweep,
)
from repro.runner.supervise import (
    ChaosPlan,
    PointTimeoutError,
    SuperviseConfig,
    SweepIncompleteError,
    SweepJournal,
    active_supervision,
    derive_timeout,
    resolve_supervision,
    supervising,
    watchdog,
)
from repro.strategies import ARDirect, DRDirect


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    monkeypatch.delenv("REPRO_POINT_TIMEOUT", raising=False)
    counters.reset()
    yield
    counters.reset()


def _points(n=3):
    return [
        SimPoint(
            strategy=ARDirect() if i % 2 == 0 else DRDirect(),
            shape=TorusShape.parse("2x2"),
            msg_bytes=16 + 16 * i,
            seed=1,
        )
        for i in range(n)
    ]


def _bits(runs):
    return [json.dumps(encode_run(r), sort_keys=True) for r in runs]


class TestChaosPlan:
    def test_parse_full_spec(self):
        plan = ChaosPlan.parse("kill:0.05,hang:0.02,seed=3,hang_s:9")
        assert plan.kill_prob == 0.05
        assert plan.hang_prob == 0.02
        assert plan.seed == 3
        assert plan.hang_s == 9.0
        assert plan.enabled

    def test_separators_interchangeable(self):
        assert ChaosPlan.parse("kill=0.1") == ChaosPlan.parse("kill:0.1")

    def test_bad_field_and_value_raise(self):
        with pytest.raises(ValueError, match="unknown chaos field"):
            ChaosPlan.parse("explode:0.5")
        with pytest.raises(ValueError, match="bad chaos value"):
            ChaosPlan.parse("kill:lots")
        with pytest.raises(ValueError, match="name:value"):
            ChaosPlan.parse("kill")

    def test_probability_bounds_enforced(self):
        with pytest.raises(ValueError):
            ChaosPlan(kill_prob=1.5)
        with pytest.raises(ValueError):
            ChaosPlan(hang_prob=-0.1)

    def test_disabled_by_default(self):
        assert not ChaosPlan().enabled

    def test_decide_is_deterministic_and_rerolls_per_attempt(self):
        plan = ChaosPlan(kill_prob=0.5, seed=7)
        fates1 = [plan.decide(f"k{i}", 1) for i in range(200)]
        fates2 = [plan.decide(f"k{i}", 1) for i in range(200)]
        assert fates1 == fates2
        kills = sum(1 for f in fates1 if f == "kill")
        assert 60 < kills < 140  # ~0.5 of 200
        # Retries re-roll: at least one key flips fate across attempts.
        assert any(
            plan.decide(f"k{i}", 1) != plan.decide(f"k{i}", 2)
            for i in range(50)
        )

    def test_decide_depends_on_seed(self):
        a = ChaosPlan(kill_prob=0.5, seed=0)
        b = ChaosPlan(kill_prob=0.5, seed=1)
        assert any(
            a.decide(f"k{i}", 1) != b.decide(f"k{i}", 1) for i in range(50)
        )


class TestWatchdog:
    def test_interrupts_a_sleep(self):
        t0 = time.monotonic()
        with pytest.raises(PointTimeoutError, match="wall-clock limit"):
            with watchdog(0.1, "test sleep"):
                time.sleep(10)
        assert time.monotonic() - t0 < 5.0

    def test_noop_without_timeout(self):
        with watchdog(None):
            pass
        with watchdog(0):
            pass

    def test_fast_block_passes(self):
        with watchdog(5.0):
            x = sum(range(100))
        assert x == 4950

    def test_nested_inner_fires(self):
        with watchdog(30.0, "outer"):
            with pytest.raises(PointTimeoutError, match="inner"):
                with watchdog(0.05, "inner"):
                    time.sleep(10)

    def test_nested_outer_rearmed_after_inner_exits(self):
        with pytest.raises(PointTimeoutError, match="outer"):
            with watchdog(0.2, "outer"):
                with watchdog(10.0, "inner"):
                    pass  # inner exits clean; outer must still fire
                time.sleep(10)


class TestConfig:
    def test_derived_timeout_scales_with_cost(self):
        small = SimPoint(ARDirect(), TorusShape.parse("2x2"), 16, seed=1)
        big = SimPoint(ARDirect(), TorusShape.parse("4x4x4"), 4096, seed=1)
        assert derive_timeout(big) > derive_timeout(small) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SuperviseConfig(max_attempts=0)
        with pytest.raises(ValueError):
            SuperviseConfig(quarantine_strikes=0)
        with pytest.raises(ValueError):
            SuperviseConfig(point_timeout_s=0.0)
        with pytest.raises(ValueError):
            SuperviseConfig(backoff_factor=0.5)

    def test_backoff_schedule_is_exponential_and_deterministic(self):
        cfg = SuperviseConfig(backoff_s=0.25, backoff_factor=2.0)
        assert cfg.backoff_for(2) == 0.25
        assert cfg.backoff_for(3) == 0.5
        assert cfg.backoff_for(4) == 1.0

    def test_inactive_config_has_no_timeout(self):
        cfg = SuperviseConfig()
        assert not cfg.is_active
        p = _points(1)[0]
        assert cfg.timeout_for(p) is None

    def test_explicit_timeout_beats_derived(self):
        cfg = SuperviseConfig(point_timeout_s=7.0)
        assert cfg.is_active
        assert cfg.timeout_for(_points(1)[0]) == 7.0

    def test_active_config_derives_timeout(self, tmp_path):
        cfg = SuperviseConfig(journal=tmp_path / "j.jsonl")
        p = _points(1)[0]
        assert cfg.timeout_for(p) == derive_timeout(p)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_POINT_TIMEOUT", "12.5")
        monkeypatch.setenv("REPRO_CHAOS", "kill:0.1,seed=4")
        cfg = SuperviseConfig.from_env()
        assert cfg.point_timeout_s == 12.5
        assert cfg.chaos == ChaosPlan(kill_prob=0.1, seed=4)
        # Explicit overrides win.
        cfg2 = SuperviseConfig.from_env(point_timeout_s=1.0)
        assert cfg2.point_timeout_s == 1.0

    def test_from_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_POINT_TIMEOUT", "soon")
        with pytest.raises(ValueError, match="REPRO_POINT_TIMEOUT"):
            SuperviseConfig.from_env()

    def test_supervising_context(self):
        assert active_supervision() is None
        cfg = SuperviseConfig(point_timeout_s=5.0)
        with supervising(cfg):
            assert active_supervision() is cfg
            assert resolve_supervision() is cfg
            explicit = SuperviseConfig(point_timeout_s=1.0)
            assert resolve_supervision(explicit) is explicit
        assert active_supervision() is None


class TestJournal:
    def test_roundtrip_and_idempotence(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with SweepJournal(path) as j:
            assert j.record("k1", {"a": 1})
            assert j.record("k2", {"b": 2})
            assert not j.record("k1", {"a": 999})  # idempotent per key
        loaded = SweepJournal.load(path)
        assert loaded == {"k1": {"a": 1}, "k2": {"b": 2}}

    def test_reopen_absorbs_existing_keys(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with SweepJournal(path) as j:
            j.record("k1", {"a": 1})
        with SweepJournal(path) as j:
            assert not j.record("k1", {"a": 2})
            assert j.record("k2", {"b": 2})
        assert SweepJournal.load(path) == {"k1": {"a": 1}, "k2": {"b": 2}}

    def test_torn_final_line_is_skipped_and_terminated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with SweepJournal(path) as j:
            j.record("k1", {"a": 1})
        # Simulate SIGKILL mid-write: a partial record, no newline.
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind":"point","key":"k2","payl')
        assert SweepJournal.load(path) == {"k1": {"a": 1}}
        # Appending after the torn write must not splice records.
        with SweepJournal(path) as j:
            assert j.record("k3", {"c": 3})
        assert SweepJournal.load(path) == {"k1": {"a": 1}, "k3": {"c": 3}}

    def test_schema_mismatch_refuses_to_load(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            '{"kind":"header","journal_version":1,"schema":999}\n'
        )
        with pytest.raises(ValueError, match="schema"):
            SweepJournal.load(path)


class TestRunSweepChaos:
    def test_sequential_chaos_kill_converges_bit_identically(self):
        pts = _points(3)
        clean = run_points(pts, jobs=1)
        counters.reset()
        cfg = SuperviseConfig(
            chaos=ChaosPlan(kill_prob=0.4, seed=2),
            backoff_s=0.01,
            max_attempts=10,
        )
        sweep = run_sweep(pts, jobs=1, supervise=cfg)
        assert sweep.complete, sweep.failures
        # Cache was warm from the clean run; chaos runs still went
        # through it, so results must be byte-identical regardless.
        assert _bits(sweep.runs) == _bits(clean)

    def test_sequential_chaos_kill_cold_cache(self, monkeypatch, tmp_path):
        pts = _points(3)
        clean = run_points(pts, jobs=1)
        monkeypatch.setenv("REPRO_CACHE", "0")
        counters.reset()
        cfg = SuperviseConfig(
            chaos=ChaosPlan(kill_prob=0.4, seed=2),
            backoff_s=0.01,
            max_attempts=10,
        )
        sweep = run_sweep(pts, jobs=1, supervise=cfg)
        assert sweep.complete, sweep.failures
        assert _bits(sweep.runs) == _bits(clean)
        assert counters.retries >= 1  # chaos actually struck

    @pytest.mark.slow
    def test_pooled_chaos_kill_survives_pool_breaks(
        self, monkeypatch, tmp_path
    ):
        pts = _points(4)
        clean = run_points(pts, jobs=1)
        monkeypatch.setenv("REPRO_CACHE", "0")
        counters.reset()
        cfg = SuperviseConfig(
            chaos=ChaosPlan(kill_prob=0.4, seed=2),
            backoff_s=0.01,
            max_attempts=10,
            quarantine_strikes=10,
        )
        sweep = run_sweep(pts, jobs=2, supervise=cfg)
        assert sweep.complete, sweep.failures
        assert _bits(sweep.runs) == _bits(clean)
        assert counters.pool_breaks >= 1

    def test_chaos_hang_trips_timeout_then_converges(self, monkeypatch):
        pts = _points(2)
        clean = run_points(pts, jobs=1)
        monkeypatch.setenv("REPRO_CACHE", "0")
        counters.reset()
        cfg = SuperviseConfig(
            chaos=ChaosPlan(hang_prob=0.5, seed=1, hang_s=30.0),
            point_timeout_s=0.5,
            backoff_s=0.01,
            max_attempts=10,
        )
        sweep = run_sweep(pts, jobs=1, supervise=cfg)
        assert sweep.complete, sweep.failures
        assert _bits(sweep.runs) == _bits(clean)
        assert counters.timeouts >= 1

    def test_graceful_exhaustion_returns_structured_failures(self):
        pts = _points(2)
        cfg = SuperviseConfig(
            chaos=ChaosPlan(kill_prob=1.0, seed=0),
            backoff_s=0.0,
            max_attempts=2,
        )
        sweep = run_sweep(pts, jobs=1, supervise=cfg)
        assert not sweep.complete
        assert sweep.completed == 0
        assert sweep.runs == [None, None]
        assert len(sweep.failures) == 2
        for f, p in zip(sweep.failures, pts):
            assert f.kind == "crash"
            assert f.attempts == 2
            assert f.key == point_key(p)
            d = f.to_dict()
            assert json.loads(json.dumps(d)) == d

    def test_strict_mode_raises_sweep_incomplete(self):
        pts = _points(2)
        cfg = SuperviseConfig(
            chaos=ChaosPlan(kill_prob=1.0, seed=0),
            backoff_s=0.0,
            max_attempts=2,
        )
        with pytest.raises(SweepIncompleteError) as ei:
            run_points(pts, jobs=1, supervise=cfg)
        # The partial result rides along.
        assert len(ei.value.sweep.failures) == 2
        assert "crash" in str(ei.value)

    def test_deterministic_error_reraises_unchanged(self, monkeypatch):
        import repro.runner.pool as pool_mod

        def boom(point, obs, check):
            raise ZeroDivisionError("deterministic bug")

        monkeypatch.setattr(pool_mod, "_simulate_encoded", boom)
        pts = _points(1)
        cfg = SuperviseConfig(point_timeout_s=30.0)
        with pytest.raises(ZeroDivisionError, match="deterministic bug"):
            run_points(pts, jobs=1, supervise=cfg)
        # Graceful mode records it instead, without retrying.
        counters.reset()
        sweep = run_sweep(pts, jobs=1, supervise=cfg)
        assert len(sweep.failures) == 1
        assert sweep.failures[0].kind == "error"
        assert sweep.failures[0].attempts == 1
        assert counters.retries == 0


class TestRunSweepJournal:
    def test_journal_records_every_point_and_resume_skips_them(
        self, monkeypatch, tmp_path
    ):
        pts = _points(3)
        clean = run_points(pts, jobs=1)
        monkeypatch.setenv("REPRO_CACHE", "0")
        path = tmp_path / "sweep.jsonl"
        counters.reset()
        sweep = run_sweep(
            pts, jobs=1, supervise=SuperviseConfig(journal=path)
        )
        assert sweep.complete
        assert counters.journal_records == 3
        assert set(SweepJournal.load(path)) == {point_key(p) for p in pts}
        # Resume: nothing left to simulate, bit-identical results.
        counters.reset()
        resumed = run_sweep(
            pts, jobs=1, supervise=SuperviseConfig(resume=path)
        )
        assert counters.simulated == 0
        assert counters.journal_hits == 3
        assert _bits(resumed.runs) == _bits(clean)

    def test_partial_journal_resumes_only_missing_points(
        self, monkeypatch, tmp_path
    ):
        pts = _points(3)
        clean = run_points(pts, jobs=1)
        monkeypatch.setenv("REPRO_CACHE", "0")
        path = tmp_path / "sweep.jsonl"
        run_sweep(pts, jobs=1, supervise=SuperviseConfig(journal=path))
        # Drop the last record (simulates dying mid-sweep).
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        counters.reset()
        resumed = run_sweep(
            pts,
            jobs=1,
            supervise=SuperviseConfig(journal=path, resume=path),
        )
        assert resumed.complete
        assert counters.journal_hits == 2
        assert counters.simulated == 1
        assert _bits(resumed.runs) == _bits(clean)
        # The journal healed: all three points are present again.
        assert len(SweepJournal.load(path)) == 3

    def test_journal_is_self_contained_with_cache_hits(
        self, monkeypatch, tmp_path
    ):
        pts = _points(2)
        run_points(pts, jobs=1)  # warm the cache
        path = tmp_path / "sweep.jsonl"
        counters.reset()
        sweep = run_sweep(
            pts, jobs=1, supervise=SuperviseConfig(journal=path)
        )
        assert sweep.complete
        assert counters.simulated == 0  # all cache hits
        # Cache-served points still land in the journal, so the journal
        # alone can resume the sweep on a cacheless machine.
        assert set(SweepJournal.load(path)) == {point_key(p) for p in pts}
