"""Property tests: the canonical codec really is canonical.

``canonical_extras`` guards the cache/IPC boundary: whatever strategies or
the obs layer stuff into ``extras``, the canonical form must consist of
exact native JSON types (no numpy scalars, no IntEnum, no np.str_), be a
fixed point, and survive a JSON text round-trip with types intact — that
is what makes fresh, pooled and cached results bit-identical.
"""

import enum
import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.runner.codec import canonical_extras


class Mode(enum.IntEnum):
    """Stand-in for RoutingMode-style enums that leak into extras."""

    A = 0
    B = 3


_NATIVE = (bool, int, float, str, list, dict)

finite_floats = st.floats(allow_nan=False, allow_infinity=False)

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**60), max_value=2**60),
    finite_floats,
    st.text(max_size=8),
    st.sampled_from([Mode.A, Mode.B]),
    st.integers(-1000, 1000).map(np.int32),
    st.integers(-(2**40), 2**40).map(np.int64),
    finite_floats.map(np.float64),
    st.booleans().map(np.bool_),
    st.text(max_size=4).map(np.str_),
    st.lists(finite_floats, max_size=4).map(np.asarray),
    st.lists(st.integers(-9, 9), max_size=4).map(
        lambda xs: np.asarray(xs, dtype=np.int64)
    ),
)

payloads = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.tuples(children, children),
        st.dictionaries(st.text(max_size=6), children, max_size=4),
    ),
    max_leaves=24,
)


def assert_exact_native(value, path="root"):
    """Every node is an EXACT base JSON type — subclasses don't count."""
    if value is None:
        return
    t = type(value)
    assert t in _NATIVE, f"{path}: {t.__name__} is not an exact native type"
    if t is list:
        for i, item in enumerate(value):
            assert_exact_native(item, f"{path}[{i}]")
    elif t is dict:
        for k, item in value.items():
            assert type(k) is str, f"{path}: non-str key {k!r}"
            assert_exact_native(item, f"{path}.{k}")


def type_shape(value):
    """Value with every node tagged by its exact type (deep equality on
    this catches int-vs-float and subclass drift that ``==`` forgives)."""
    if isinstance(value, list):
        return [type_shape(v) for v in value]
    if isinstance(value, dict):
        return {k: type_shape(v) for k, v in value.items()}
    return (type(value).__name__, value)


@given(payload=payloads)
@settings(deadline=None, max_examples=200)
def test_canonical_form_is_exact_native_types(payload):
    assert_exact_native(canonical_extras(payload))


@given(payload=payloads)
@settings(deadline=None, max_examples=200)
def test_canonicalization_is_idempotent(payload):
    once = canonical_extras(payload)
    twice = canonical_extras(once)
    assert type_shape(twice) == type_shape(once)


@given(payload=payloads)
@settings(deadline=None, max_examples=200)
def test_json_text_round_trip_preserves_value_and_type(payload):
    canon = canonical_extras(payload)
    back = json.loads(json.dumps(canon))
    assert type_shape(back) == type_shape(canon)


def test_int_enum_coerced_to_plain_int():
    # The asymmetry this suite was written to pin down: an IntEnum passed
    # isinstance(int) untouched, so the fresh payload carried the enum
    # while its decoded-from-cache twin carried a plain int.
    out = canonical_extras({"mode": Mode.B})
    assert type(out["mode"]) is int
    assert out["mode"] == 3


def test_numpy_str_coerced_to_plain_str():
    out = canonical_extras(np.str_("adaptive"))
    assert type(out) is str
    assert out == "adaptive"


def test_numpy_scalars_and_arrays_coerced():
    out = canonical_extras(
        {
            "i": np.int64(7),
            "f": np.float64(1.5),
            "b": np.bool_(True),
            "a": np.arange(3, dtype=np.int32),
            "nested": (np.float32(0.25), [np.uint8(9)]),
        }
    )
    assert type_shape(out) == type_shape(
        {"i": 7, "f": 1.5, "b": True, "a": [0, 1, 2], "nested": [0.25, [9]]}
    )


@pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
def test_non_finite_floats_rejected_with_path(bad):
    with pytest.raises(ValueError, match=r"extras\.x\[0\]"):
        canonical_extras({"x": [bad]})


def test_non_string_keys_rejected_with_path():
    with pytest.raises(TypeError, match=r"extras\.outer"):
        canonical_extras({"outer": {3: "v"}})


def test_unencodable_type_rejected_with_path():
    with pytest.raises(TypeError, match=r"extras\.s"):
        canonical_extras({"s": {1, 2}})
