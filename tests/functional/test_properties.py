"""Property-based tests (hypothesis) on core invariants.

The exchange postcondition — every ordered pair delivered exactly once —
must hold for every strategy on arbitrary small shapes, message sizes and
seeds; the timed simulator must agree with the functional engine on
delivery counts; packetization must conserve payload bytes.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.functional.verify import run_and_verify
from repro.model.machine import MachineParams
from repro.model.torus import TorusShape
from repro.strategies import (
    ARDirect,
    DRDirect,
    ThrottledAR,
    TwoPhaseSchedule,
    VirtualMesh2D,
)

BGL = MachineParams.bluegene_l()

# Small shapes keep each case fast while still covering 1-D/2-D/3-D,
# mesh dims, and odd extents.
shape_labels = st.sampled_from(
    ["4", "5", "8", "2x4", "4x4", "3x3", "4x2M", "2x2x4", "2x4x4", "3x2x2"]
)
msg_sizes = st.sampled_from([1, 7, 16, 32, 33, 64, 100, 250, 300])
seeds = st.integers(0, 2**16)

COMMON = dict(
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(lbl=shape_labels, m=msg_sizes, seed=seeds)
@settings(**COMMON)
def test_direct_exchange_exactly_once(lbl, m, seed):
    shape = TorusShape.parse(lbl)
    _, rep = run_and_verify(ARDirect(), shape, m, BGL, seed)
    assert rep.ok, (lbl, m, seed, rep.summary())


@given(lbl=shape_labels, m=msg_sizes, seed=seeds)
@settings(**COMMON)
def test_dr_exchange_exactly_once(lbl, m, seed):
    shape = TorusShape.parse(lbl)
    _, rep = run_and_verify(DRDirect(), shape, m, BGL, seed)
    assert rep.ok, (lbl, m, seed, rep.summary())


@given(lbl=shape_labels, m=msg_sizes, seed=seeds)
@settings(**COMMON)
def test_tps_exchange_exactly_once(lbl, m, seed):
    shape = TorusShape.parse(lbl)
    if shape.ndim < 2:
        return
    _, rep = run_and_verify(TwoPhaseSchedule(), shape, m, BGL, seed)
    assert rep.ok, (lbl, m, seed, rep.summary())


@given(lbl=shape_labels, m=msg_sizes, seed=seeds, axis=st.integers(0, 2))
@settings(**COMMON)
def test_tps_any_linear_axis_exchange(lbl, m, seed, axis):
    shape = TorusShape.parse(lbl)
    if shape.ndim < 2:
        return
    axis = axis % shape.ndim
    _, rep = run_and_verify(
        TwoPhaseSchedule(linear_axis=axis), shape, m, BGL, seed
    )
    assert rep.ok, (lbl, m, seed, axis, rep.summary())


@given(lbl=shape_labels, m=msg_sizes, seed=seeds)
@settings(**COMMON)
def test_vmesh_exchange_exactly_once(lbl, m, seed):
    shape = TorusShape.parse(lbl)
    _, rep = run_and_verify(VirtualMesh2D(), shape, m, BGL, seed)
    assert rep.ok, (lbl, m, seed, rep.summary())


@given(m=st.integers(1, 5000))
@settings(deadline=None, max_examples=60)
def test_packetization_conserves_bytes(m):
    sizes = BGL.packetize_message(m)
    # Wire total covers payload + header, within rounding + min-packet.
    total = sum(sizes)
    assert total >= m + BGL.header_bytes
    assert total <= m + BGL.header_bytes + 64
    assert all(64 <= s <= 256 and s % 32 == 0 for s in sizes)


@given(
    lbl=st.sampled_from(["2x4", "4x4", "2x2x4"]),
    m=st.sampled_from([1, 40, 300]),
    seed=st.integers(0, 100),
)
@settings(deadline=None, max_examples=12)
def test_timed_and_functional_agree_on_final_deliveries(lbl, m, seed):
    from repro.api import simulate_alltoall
    from repro.functional.engine import FunctionalEngine

    shape = TorusShape.parse(lbl)
    strat = TwoPhaseSchedule() if shape.ndim >= 2 else ARDirect()
    run = simulate_alltoall(strat, shape, m, BGL, seed=seed)
    prog = strat.build_program(shape, m, BGL, seed, carry_data=True)
    func = FunctionalEngine(shape).execute(prog)
    # Timed final deliveries == total packets functionally delivered at
    # their final destination.
    assert run.result.final_deliveries == (
        func.packets_delivered - func.packets_forwarded
    )
