"""Property-based tests (hypothesis) on core invariants.

The exchange postcondition — every ordered pair delivered exactly once —
must hold for every strategy on arbitrary small shapes, message sizes and
seeds.  Since the differential-verification subsystem, the checks
themselves live in :mod:`repro.check.differential`: the functional leg
(payload permutation + sim-vs-functional delivered-count agreement) and
the full three-engine cross-check are defined once there and driven here
over randomized inputs.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.check.differential import differential_point, functional_leg
from repro.model.machine import MachineParams
from repro.model.torus import TorusShape
from repro.runner.point import SimPoint
from repro.strategies import (
    ARDirect,
    DRDirect,
    ThrottledAR,
    TwoPhaseSchedule,
    VirtualMesh2D,
)

BGL = MachineParams.bluegene_l()

# Small shapes keep each case fast while still covering 1-D/2-D/3-D,
# mesh dims, and odd extents.
shape_labels = st.sampled_from(
    ["4", "5", "8", "2x4", "4x4", "3x3", "4x2M", "2x2x4", "2x4x4", "3x2x2"]
)
msg_sizes = st.sampled_from([1, 7, 16, 32, 33, 64, 100, 250, 300])
seeds = st.integers(0, 2**16)

COMMON = dict(
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)


def assert_exchange_ok(strategy, lbl, m, seed, **ctx):
    """The repro.check functional leg, as a test assertion."""
    point = SimPoint(strategy, TorusShape.parse(lbl), m, BGL, None, seed, None)
    failures = functional_leg(point)
    assert not failures, (lbl, m, seed, ctx, failures)


@given(lbl=shape_labels, m=msg_sizes, seed=seeds)
@settings(**COMMON)
def test_direct_exchange_exactly_once(lbl, m, seed):
    assert_exchange_ok(ARDirect(), lbl, m, seed)


@given(lbl=shape_labels, m=msg_sizes, seed=seeds)
@settings(**COMMON)
def test_dr_exchange_exactly_once(lbl, m, seed):
    assert_exchange_ok(DRDirect(), lbl, m, seed)


@given(lbl=shape_labels, m=msg_sizes, seed=seeds)
@settings(**COMMON)
def test_tps_exchange_exactly_once(lbl, m, seed):
    if TorusShape.parse(lbl).ndim < 2:
        return
    assert_exchange_ok(TwoPhaseSchedule(), lbl, m, seed)


@given(lbl=shape_labels, m=msg_sizes, seed=seeds, axis=st.integers(0, 2))
@settings(**COMMON)
def test_tps_any_linear_axis_exchange(lbl, m, seed, axis):
    shape = TorusShape.parse(lbl)
    if shape.ndim < 2:
        return
    axis = axis % shape.ndim
    assert_exchange_ok(
        TwoPhaseSchedule(linear_axis=axis), lbl, m, seed, axis=axis
    )


@given(lbl=shape_labels, m=msg_sizes, seed=seeds)
@settings(**COMMON)
def test_vmesh_exchange_exactly_once(lbl, m, seed):
    assert_exchange_ok(VirtualMesh2D(), lbl, m, seed)


@given(m=st.integers(1, 5000))
@settings(deadline=None, max_examples=60)
def test_packetization_conserves_bytes(m):
    sizes = BGL.packetize_message(m)
    # Wire total covers payload + header, within rounding + min-packet.
    total = sum(sizes)
    assert total >= m + BGL.header_bytes
    assert total <= m + BGL.header_bytes + 64
    assert all(64 <= s <= 256 and s % 32 == 0 for s in sizes)


@given(
    lbl=st.sampled_from(["2x4", "4x4", "2x2x4"]),
    m=st.sampled_from([1, 40, 300]),
    seed=st.integers(0, 100),
)
@settings(deadline=None, max_examples=12)
def test_three_engines_agree(lbl, m, seed):
    # The full differential harness: oracle-checked simulation, model
    # tolerance band, functional payload permutation, and exact
    # sim-vs-functional delivered-count agreement — one call.
    shape = TorusShape.parse(lbl)
    strat = TwoPhaseSchedule() if shape.ndim >= 2 else ARDirect()
    point = SimPoint(strat, shape, m, BGL, None, seed, None)
    report = differential_point(point)
    assert report.ok, (lbl, m, seed, report.failures)


@given(lbl=st.sampled_from(["2x4", "2x2x4"]), seed=st.integers(0, 50))
@settings(deadline=None, max_examples=8)
def test_throttled_exchange_exactly_once(lbl, seed):
    assert_exchange_ok(ThrottledAR(), lbl, 64, seed)
