"""Unit tests for the functional execution engine and verification."""

import pytest

from repro.functional.engine import FunctionalEngine
from repro.functional.verify import run_and_verify, verify_exchange
from repro.model.machine import MachineParams
from repro.model.torus import TorusShape
from repro.net.packet import PacketSpec
from repro.net.program import ListProgram
from repro.strategies import ARDirect, TwoPhaseSchedule, VirtualMesh2D
from repro.strategies.data import ChunkTag, DataChunk


@pytest.fixture
def bgl():
    return MachineParams.bluegene_l()


def chunk_spec(src, dst, offset, nbytes, kind="direct"):
    return PacketSpec(
        dst=dst,
        wire_bytes=64,
        tag=ChunkTag(kind, (DataChunk(src, dst, offset, nbytes),)),
        final_dst=dst,
        payload_bytes=nbytes,
    )


class TestEngine:
    def test_collects_chunks(self):
        shape = TorusShape.parse("4")
        plans = [[chunk_spec(0, 1, 0, 10)], [], [], []]
        res = FunctionalEngine(shape).execute(ListProgram(plans))
        assert (0, 1) in res.received
        assert res.packets_delivered == 1

    def test_forward_depth(self, bgl):
        shape = TorusShape.parse("4x4x8")
        prog = TwoPhaseSchedule().build_program(shape, 16, bgl, carry_data=True)
        res = FunctionalEngine(shape).execute(prog)
        assert res.max_forward_depth == 1  # one forwarding phase

    def test_direct_has_no_forwarding(self, bgl):
        shape = TorusShape.parse("4x4")
        prog = ARDirect().build_program(shape, 16, bgl, carry_data=True)
        res = FunctionalEngine(shape).execute(prog)
        assert res.packets_forwarded == 0
        assert res.max_forward_depth == 0

    def test_indirect_buffers_intermediate_memory(self, bgl):
        # Section 4: indirect strategies pay extra intermediate space.
        shape = TorusShape.parse("4x4x8")
        direct = FunctionalEngine(shape).execute(
            ARDirect().build_program(shape, 16, bgl, carry_data=True)
        )
        indirect = FunctionalEngine(shape).execute(
            TwoPhaseSchedule().build_program(shape, 16, bgl, carry_data=True)
        )
        assert direct.peak_intermediate_bytes == 0
        assert indirect.peak_intermediate_bytes > 0


class TestVerification:
    def test_complete_exchange_passes(self):
        rep = verify_exchange(
            _manual_result({(0, 1): [(0, 10)], (1, 0): [(0, 10)]}), 2, 10
        )
        assert rep.ok

    def test_missing_pair_detected(self):
        rep = verify_exchange(_manual_result({(0, 1): [(0, 10)]}), 2, 10)
        assert not rep.ok
        assert (1, 0) in rep.missing_pairs

    def test_gap_detected(self):
        rep = verify_exchange(
            _manual_result({(0, 1): [(0, 4), (6, 4)], (1, 0): [(0, 10)]}), 2, 10
        )
        assert not rep.ok
        assert rep.bad_coverage and "gap" in rep.bad_coverage[0][2]

    def test_overlap_detected(self):
        rep = verify_exchange(
            _manual_result({(0, 1): [(0, 6), (4, 6)], (1, 0): [(0, 10)]}), 2, 10
        )
        assert not rep.ok
        assert "overlap" in rep.bad_coverage[0][2]

    def test_short_coverage_detected(self):
        rep = verify_exchange(
            _manual_result({(0, 1): [(0, 6)], (1, 0): [(0, 10)]}), 2, 10
        )
        assert not rep.ok
        assert "covered 6 of 10" in rep.bad_coverage[0][2]

    def test_self_pair_unexpected(self):
        rep = verify_exchange(
            _manual_result({(0, 0): [(0, 10)], (0, 1): [(0, 10)],
                            (1, 0): [(0, 10)]}), 2, 10
        )
        assert not rep.ok
        assert (0, 0) in rep.unexpected_pairs

    def test_summary_strings(self):
        good = verify_exchange(
            _manual_result({(0, 1): [(0, 1)], (1, 0): [(0, 1)]}), 2, 1
        )
        assert "verified" in good.summary()
        bad = verify_exchange(_manual_result({}), 2, 1)
        assert "FAILED" in bad.summary()


def _manual_result(pairs):
    from repro.functional.engine import FunctionalResult

    received = {
        (s, d): [DataChunk(s, d, off, n) for off, n in chunks]
        for (s, d), chunks in pairs.items()
    }
    return FunctionalResult(received=received)


class TestStrategyCorrectness:
    """The central exchange-correctness matrix (beyond the property tests)."""

    @pytest.mark.parametrize("shape_lbl", ["4x4", "2x4x8", "4x2M", "8"])
    @pytest.mark.parametrize("m", [1, 33, 300])
    def test_ar(self, shape_lbl, m):
        _, rep = run_and_verify(ARDirect(), TorusShape.parse(shape_lbl), m)
        assert rep.ok, rep.summary()

    @pytest.mark.parametrize("shape_lbl", ["4x4", "2x4x8", "4x8x2M"])
    @pytest.mark.parametrize("m", [1, 33, 300])
    def test_tps(self, shape_lbl, m):
        _, rep = run_and_verify(
            TwoPhaseSchedule(), TorusShape.parse(shape_lbl), m
        )
        assert rep.ok, rep.summary()

    @pytest.mark.parametrize("shape_lbl", ["4x4", "2x4x8", "8"])
    @pytest.mark.parametrize("m", [1, 33, 300])
    def test_vmesh(self, shape_lbl, m):
        _, rep = run_and_verify(
            VirtualMesh2D(), TorusShape.parse(shape_lbl), m
        )
        assert rep.ok, rep.summary()

    def test_vmesh_paper_layout_512(self):
        # The 32x16-on-8x8x8 layout of Section 4.2 moves data correctly.
        _, rep = run_and_verify(
            VirtualMesh2D(pvx=32, pvy=16), TorusShape.parse("8x8x8"), 4
        )
        assert rep.ok, rep.summary()
