"""Unit tests for the direct strategies' plans and packetization."""

import numpy as np
import pytest

from repro.model.machine import MachineParams
from repro.model.torus import TorusShape
from repro.net.packet import RoutingMode
from repro.strategies.direct import ARDirect, DRDirect, MPIDirect, ThrottledAR


@pytest.fixture
def bgl():
    return MachineParams.bluegene_l()


@pytest.fixture
def shape():
    return TorusShape.parse("4x4")


def collect_plan(program, node):
    return list(program.injection_plan(node))


class TestPlanStructure:
    def test_every_destination_once(self, shape, bgl):
        prog = ARDirect().build_program(shape, 100, bgl)
        specs = collect_plan(prog, 0)
        dests = {s.dst for s in specs}
        assert dests == set(range(1, 16))  # all but self

    def test_packet_count(self, shape, bgl):
        # 100 B + 48 B header -> one 160 B packet per destination.
        prog = ARDirect().build_program(shape, 100, bgl)
        specs = collect_plan(prog, 3)
        assert len(specs) == 15
        assert all(s.wire_bytes == 160 for s in specs)

    def test_multi_packet_message(self, shape, bgl):
        prog = ARDirect().build_program(shape, 500, bgl)
        specs = collect_plan(prog, 0)
        assert len(specs) == 15 * 3  # 500+48 -> 256+256+64
        per_dest = {}
        for s in specs:
            per_dest.setdefault(s.dst, []).append(s)
        for dst, lst in per_dest.items():
            assert sorted(x.wire_bytes for x in lst) == [64, 256, 256]
            # alpha once per destination message
            assert sum(1 for x in lst if x.new_message) == 1

    def test_payload_accounting(self, shape, bgl):
        prog = ARDirect().build_program(shape, 500, bgl)
        specs = collect_plan(prog, 0)
        per_dest = {}
        for s in specs:
            per_dest[s.dst] = per_dest.get(s.dst, 0) + s.payload_bytes
        assert all(v == 500 for v in per_dest.values())

    def test_round_robin_interleaves(self, shape, bgl):
        # With 3 packets/message and k=2, the first sweep sends 2 packets
        # to each destination before any destination gets its third.
        prog = ARDirect().build_program(shape, 500, bgl)
        specs = collect_plan(prog, 0)
        first_sweep = specs[: 15 * 2]
        counts = {}
        for s in first_sweep:
            counts[s.dst] = counts.get(s.dst, 0) + 1
        assert all(v == 2 for v in counts.values())

    def test_order_differs_across_nodes(self, shape, bgl):
        prog = ARDirect().build_program(shape, 100, bgl)
        o1 = [s.dst for s in collect_plan(prog, 1)]
        o2 = [s.dst for s in collect_plan(prog, 2)]
        assert o1 != o2

    def test_order_deterministic_per_seed(self, shape, bgl):
        p1 = ARDirect().build_program(shape, 100, bgl, seed=9)
        p2 = ARDirect().build_program(shape, 100, bgl, seed=9)
        assert [s.dst for s in collect_plan(p1, 5)] == [
            s.dst for s in collect_plan(p2, 5)
        ]

    def test_expected_deliveries(self, shape, bgl):
        prog = ARDirect().build_program(shape, 500, bgl)
        assert prog.expected_final_deliveries() == 16 * 15 * 3


class TestModes:
    def test_ar_is_adaptive(self, shape, bgl):
        prog = ARDirect().build_program(shape, 64, bgl)
        assert all(
            s.mode == RoutingMode.ADAPTIVE for s in collect_plan(prog, 0)
        )

    def test_dr_is_deterministic(self, shape, bgl):
        prog = DRDirect().build_program(shape, 64, bgl)
        assert all(
            s.mode == RoutingMode.DETERMINISTIC for s in collect_plan(prog, 0)
        )

    def test_mpi_uses_message_alpha(self, shape, bgl):
        prog = MPIDirect().build_program(shape, 64, bgl)
        firsts = [s for s in collect_plan(prog, 0) if s.new_message]
        assert all(s.alpha_cycles == bgl.alpha_message_cycles for s in firsts)

    def test_ar_uses_default_alpha(self, shape, bgl):
        prog = ARDirect().build_program(shape, 64, bgl)
        assert all(s.alpha_cycles < 0 for s in collect_plan(prog, 0))


class TestThrottle:
    def test_pace_positive(self, shape, bgl):
        prog = ThrottledAR().build_program(shape, 464, bgl)
        pace = prog.pace_cycles(0)
        assert pace > 0

    def test_pace_matches_bisection_rate(self, shape, bgl):
        prog = ThrottledAR().build_program(shape, 464, bgl)
        sizes = bgl.packetize_message(464)
        mean_wire = sum(sizes) / len(sizes)
        c = shape.contention_factor
        assert prog.pace_cycles(0) == pytest.approx(
            c * mean_wire * bgl.beta_cycles_per_byte
        )

    def test_slack_scales_pace(self, shape, bgl):
        p1 = ThrottledAR(slack=1.0).build_program(shape, 464, bgl)
        p2 = ThrottledAR(slack=2.0).build_program(shape, 464, bgl)
        assert p2.pace_cycles(0) == pytest.approx(2 * p1.pace_cycles(0))

    def test_invalid_slack(self):
        with pytest.raises(ValueError):
            ThrottledAR(slack=0.0)


class TestPrediction:
    def test_ar_prediction_is_eq3(self, shape, bgl):
        from repro.model.alltoall import simple_direct_time_cycles

        assert ARDirect().predict_cycles(shape, 777, bgl) == pytest.approx(
            simple_direct_time_cycles(shape, 777, bgl)
        )

    def test_mpi_predicts_slower_than_ar(self, shape, bgl):
        assert MPIDirect().predict_cycles(shape, 64, bgl) > ARDirect().predict_cycles(
            shape, 64, bgl
        )
