"""Unit tests for the many-to-many extension (paper Section 1/5:
applying the all-to-all techniques to irregular patterns)."""

import numpy as np
import pytest

from repro.api import simulate_alltoall
from repro.model.torus import TorusShape
from repro.strategies.manytomany import (
    ManyToManyDirect,
    ManyToManyPattern,
    ManyToManyTPS,
    random_access_pattern,
)


@pytest.fixture
def shape():
    return TorusShape.parse("4x4")


class TestPattern:
    def test_dense_matrix(self, shape):
        m = np.full((16, 16), 8, dtype=np.int64)
        pat = ManyToManyPattern(16, matrix=m)
        assert pat.bytes_for(0, 1) == 8
        assert pat.total_bytes == 8 * 16 * 15  # diagonal excluded

    def test_sparse(self):
        pat = ManyToManyPattern(8, sparse={(0, 1): 100, (2, 3): 50})
        assert pat.bytes_for(0, 1) == 100
        assert pat.bytes_for(1, 0) == 0
        assert list(pat.destinations(0)) == [1]

    def test_requires_one_source(self):
        with pytest.raises(ValueError):
            ManyToManyPattern(4)
        with pytest.raises(ValueError):
            ManyToManyPattern(
                4, matrix=np.zeros((4, 4)), sparse={(0, 1): 1}
            )

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ManyToManyPattern(4, matrix=-np.ones((4, 4)))

    def test_max_incast(self):
        pat = ManyToManyPattern(4, sparse={(0, 3): 10, (1, 3): 20, (2, 0): 5})
        assert pat.max_incast() == 30


class TestRandomAccess:
    def test_volume(self, shape):
        pat = random_access_pattern(shape, updates_per_node=100, update_bytes=8)
        assert pat.total_bytes == 16 * 100 * 8

    def test_never_self(self, shape):
        pat = random_access_pattern(shape, 50, seed=3)
        for s in range(16):
            assert pat.bytes_for(s, s) == 0

    def test_seeded(self, shape):
        a = random_access_pattern(shape, 50, seed=1)
        b = random_access_pattern(shape, 50, seed=1)
        assert a.total_bytes == b.total_bytes
        assert (a._matrix == b._matrix).all()


class TestExecution:
    def test_direct_delivers_everything(self, shape):
        pat = random_access_pattern(shape, 30)
        run = simulate_alltoall(ManyToManyDirect(pat), shape, 0)
        assert run.result.final_deliveries > 0
        assert run.result.forwarded_packets == 0

    def test_tps_forwards(self, shape):
        pat = random_access_pattern(shape, 30)
        run = simulate_alltoall(ManyToManyTPS(pat), shape, 0)
        assert run.result.forwarded_packets > 0
        assert run.result.final_deliveries > 0

    def test_sparse_neighbor_pattern(self, shape):
        # A halo-exchange-like pattern: each rank to its +x neighbor only.
        sparse = {}
        for u in range(16):
            c = shape.coord(u)
            v = shape.rank(((c[0] + 1) % 4, c[1]))
            sparse[(u, v)] = 256
        pat = ManyToManyPattern(16, sparse=sparse)
        run = simulate_alltoall(ManyToManyDirect(pat), shape, 0)
        # One 256+48 -> two packets per rank... exactly 2 packets/rank.
        assert run.result.final_deliveries == 16 * 2

    def test_tps_helps_on_asymmetric_hotspotted_traffic(self):
        # Uniform random updates on a strongly asymmetric torus: the
        # indirect scheme keeps its advantage outside pure all-to-all.
        shape = TorusShape.parse("2x2x8")
        pat = random_access_pattern(shape, 60, update_bytes=64)
        direct = simulate_alltoall(ManyToManyDirect(pat), shape, 0)
        tps = simulate_alltoall(ManyToManyTPS(pat), shape, 0)
        # Sanity rather than strict ordering at this tiny scale: both
        # complete, within 2x of each other.
        ratio = tps.time_cycles / direct.time_cycles
        assert 0.4 < ratio < 2.5

    def test_mismatched_shape_rejected(self, shape):
        pat = ManyToManyPattern(8, sparse={(0, 1): 8})
        with pytest.raises(ValueError):
            simulate_alltoall(ManyToManyDirect(pat), shape, 0)
