"""Unit tests for the Two Phase Schedule strategy."""

import pytest

from repro.model.machine import MachineParams
from repro.model.torus import TorusShape
from repro.strategies.tps import (
    PHASE1_GROUP,
    PHASE2_GROUP,
    TwoPhaseSchedule,
    choose_linear_axis,
)


@pytest.fixture
def bgl():
    return MachineParams.bluegene_l()


class TestLinearAxisRule:
    def test_table3_choices(self):
        """The Phase-1 dimension column of Table 3 (symmetric-remainder
        rule first, then longest; fully-symmetric shapes are arbitrary and
        pinned to Z here)."""
        expected = {
            "16x8x8": 0,   # X (leaves 8x8)
            "8x16x8": 1,   # Y
            "8x8x16": 2,   # Z
            "16x16x8": 2,  # Z (leaves 16x16)
            "16x8x16": 1,  # Y
            "8x16x16": 0,  # X
            "8x32x16": 1,  # Y (longest; no symmetric remainder)
            "16x32x16": 1, # Y (leaves 16x16, also longest)
            "32x16x16": 0, # X
            "32x32x16": 2, # Z (leaves 32x32)
            "40x32x16": 0, # X (longest)
        }
        for lbl, axis in expected.items():
            assert choose_linear_axis(TorusShape.parse(lbl)) == axis, lbl

    def test_symmetric_pins_z(self):
        assert choose_linear_axis(TorusShape.parse("8x8x8")) == 2

    def test_2d(self):
        assert choose_linear_axis(TorusShape.parse("8x16")) == 1

    def test_1d_rejected(self):
        with pytest.raises(ValueError):
            choose_linear_axis(TorusShape.parse("8"))


class TestIntermediates:
    def test_intermediate_coordinates(self, bgl):
        shape = TorusShape.parse("4x4x8")
        prog = TwoPhaseSchedule().build_program(shape, 64, bgl)
        assert prog.linear_axis == 2
        src = shape.rank((1, 2, 3))
        dst = shape.rank((3, 0, 6))
        mid = prog.intermediate_for(src, dst)
        # Same planar coords as src, linear coord of dst.
        assert shape.coord(mid) == (1, 2, 6)

    def test_intermediate_identity_on_own_line(self, bgl):
        shape = TorusShape.parse("4x4x8")
        prog = TwoPhaseSchedule().build_program(shape, 64, bgl)
        src = shape.rank((1, 2, 3))
        dst = shape.rank((1, 2, 7))  # same planar coords
        assert prog.intermediate_for(src, dst) == dst

    def test_forced_axis(self, bgl):
        shape = TorusShape.parse("4x4x8")
        prog = TwoPhaseSchedule(linear_axis=0).build_program(shape, 64, bgl)
        assert prog.linear_axis == 0


class TestPlan:
    def test_phase_groups(self, bgl):
        shape = TorusShape.parse("4x4x8")
        prog = TwoPhaseSchedule().build_program(shape, 64, bgl)
        specs = list(prog.injection_plan(0))
        p1 = [s for s in specs if s.fifo_group == PHASE1_GROUP]
        p2 = [s for s in specs if s.fifo_group == PHASE2_GROUP]
        # Destinations sharing this node's linear (z) coordinate need no
        # phase-1 hop - the source is its own intermediate and sends
        # phase-2 direct across the plane: 4*4-1 = 15 of them.
        assert len(p2) == 15
        assert len(p1) == 128 - 1 - 15

    def test_phase1_targets_linear_intermediate(self, bgl):
        shape = TorusShape.parse("4x4x8")
        prog = TwoPhaseSchedule().build_program(shape, 64, bgl)
        for s in prog.injection_plan(5):
            if s.fifo_group == PHASE1_GROUP:
                # Network dst differs from 5 only in the linear (z) coord.
                c_mid = shape.coord(s.dst)
                c_src = shape.coord(5)
                assert c_mid[:2] == c_src[:2]
                # and matches the final destination's z.
                assert c_mid[2] == shape.coord(s.final_dst)[2]

    def test_unpipelined_uses_single_group(self, bgl):
        shape = TorusShape.parse("4x4x8")
        prog = TwoPhaseSchedule(pipelined=False).build_program(shape, 64, bgl)
        assert all(
            s.fifo_group == PHASE1_GROUP for s in prog.injection_plan(0)
        )

    def test_forwarding_spec(self, bgl):
        from repro.net.packet import Packet, PacketSpec

        shape = TorusShape.parse("4x4x8")
        prog = TwoPhaseSchedule().build_program(shape, 64, bgl)
        src = shape.rank((1, 1, 0))
        dst = shape.rank((2, 3, 5))
        mid = prog.intermediate_for(src, dst)
        spec = PacketSpec(dst=mid, wire_bytes=128, tag="tps1", final_dst=dst)
        pkt = Packet.from_spec(0, src, spec, 0.0)
        fwd = list(prog.on_delivery(mid, pkt, 0.0))
        assert len(fwd) == 1
        assert fwd[0].dst == dst
        assert fwd[0].fifo_group == PHASE2_GROUP
        assert not fwd[0].new_message

    def test_final_delivery_no_forward(self, bgl):
        from repro.net.packet import Packet, PacketSpec

        shape = TorusShape.parse("4x4x8")
        prog = TwoPhaseSchedule().build_program(shape, 64, bgl)
        spec = PacketSpec(dst=3, wire_bytes=128, tag="tps2", final_dst=3)
        pkt = Packet.from_spec(0, 0, spec, 0.0)
        assert list(prog.on_delivery(3, pkt, 0.0)) == []


class TestPrediction:
    def test_near_peak_on_2nnn(self, bgl):
        # On 16x8x8 the linear phase is the bottleneck and equals Eq. 2's
        # peak; prediction must be within startup terms of peak.
        from repro.model.alltoall import peak_time_cycles

        shape = TorusShape.parse("16x8x8")
        m = 1 << 15
        pred = TwoPhaseSchedule().predict_cycles(shape, m, bgl)
        peak = peak_time_cycles(shape, m, bgl)
        assert pred == pytest.approx(peak, rel=0.05)

    def test_supports(self):
        assert TwoPhaseSchedule().supports(TorusShape.parse("4x4"))
        assert not TwoPhaseSchedule().supports(TorusShape.parse("8"))
