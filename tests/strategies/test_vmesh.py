"""Unit tests for the 2-D Virtual Mesh strategy."""

import pytest

from repro.model.machine import MachineParams
from repro.model.torus import TorusShape
from repro.strategies.vmesh import VirtualMesh2D, VMeshMapping


@pytest.fixture
def bgl():
    return MachineParams.bluegene_l()


class TestMapping:
    def test_bijection(self):
        shape = TorusShape.parse("4x4x4")
        m = VMeshMapping(shape, 8, 8)
        seen = set()
        for node in range(64):
            rc = m.row_col(node)
            assert m.node_at(*rc) == node
            seen.add(rc)
        assert len(seen) == 64

    def test_paper_512_layout(self):
        # 32x16 vmesh on 8x8x8 with the identity order: each row is half
        # an XY plane (Section 4.2's layout).
        shape = TorusShape.parse("8x8x8")
        m = VMeshMapping(shape, 32, 16)
        # All 32 members of row 0 share z=0, y in 0..3.
        members = [m.node_at(0, c) for c in range(32)]
        coords = [shape.coord(n) for n in members]
        assert {c[2] for c in coords} == {0}
        assert {c[1] for c in coords} == {0, 1, 2, 3}

    def test_paper_4096_layout(self):
        # 128x32 vmesh on 8x32x16 with order (X, Z, Y): rows are XZ
        # planes, columns are Y lines.
        shape = TorusShape.parse("8x32x16")
        m = VMeshMapping(shape, 128, 32, axis_order=(0, 2, 1))
        members = [m.node_at(5, c) for c in range(128)]
        coords = [shape.coord(n) for n in members]
        assert {c[1] for c in coords} == {5}  # fixed y = row
        # Column 3 spans all y at fixed (x, z).
        col = [m.node_at(r, 3) for r in range(32)]
        ccoords = [shape.coord(n) for n in col]
        assert len({(c[0], c[2]) for c in ccoords}) == 1

    def test_requires_tiling(self):
        with pytest.raises(ValueError):
            VMeshMapping(TorusShape.parse("4x4"), 5, 3)

    def test_bad_axis_order(self):
        with pytest.raises(ValueError):
            VMeshMapping(TorusShape.parse("4x4"), 4, 4, axis_order=(0, 0))


class TestFactors:
    def test_default_balanced(self):
        v = VirtualMesh2D()
        assert v.factors(TorusShape.parse("8x8x8")) == (32, 16)
        assert v.factors(TorusShape.parse("4x4")) == (4, 4)

    def test_explicit(self):
        v = VirtualMesh2D(pvx=128, pvy=32)
        assert v.factors(TorusShape.parse("8x32x16")) == (128, 32)

    def test_half_specified_rejected(self):
        with pytest.raises(ValueError):
            VirtualMesh2D(pvx=8)


class TestProgram:
    def test_message_sizes(self, bgl):
        shape = TorusShape.parse("4x4")
        prog = VirtualMesh2D().build_program(shape, 8, bgl)
        # pvx=pvy=4; row message combines 4 chunks of (8+8) B = 64 B + 48 B
        # header -> one 128 B packet.
        assert prog.row_packets == [128]
        assert prog.col_packets == [128]

    def test_plan_counts(self, bgl):
        shape = TorusShape.parse("4x4")
        prog = VirtualMesh2D().build_program(shape, 8, bgl)
        specs = list(prog.injection_plan(0))
        assert len(specs) == 3  # pvx-1 row messages (phase 2 is reactive)

    def test_alpha_is_message_level(self, bgl):
        shape = TorusShape.parse("4x4")
        prog = VirtualMesh2D().build_program(shape, 8, bgl)
        for s in prog.injection_plan(1):
            if s.new_message:
                assert s.alpha_cycles == bgl.alpha_message_cycles

    def test_gamma_charged(self, bgl):
        shape = TorusShape.parse("4x4")
        prog = VirtualMesh2D().build_program(shape, 8, bgl)
        for s in prog.injection_plan(1):
            assert s.extra_cpu_cycles == pytest.approx(
                bgl.gamma_cycles_per_byte * s.wire_bytes
            )

    def test_expected_deliveries(self, bgl):
        shape = TorusShape.parse("4x4")
        prog = VirtualMesh2D().build_program(shape, 8, bgl)
        # per node: 3 row packets + 3 col packets.
        assert prog.expected_final_deliveries() == 16 * 6

    def test_phase2_triggered_after_all_rows(self, bgl):
        from repro.net.packet import Packet, PacketSpec

        shape = TorusShape.parse("4x4")
        prog = VirtualMesh2D().build_program(shape, 8, bgl)
        node = 0
        fwd_total = []
        for i in range(prog.phase1_expected):
            spec = PacketSpec(dst=node, wire_bytes=128, tag="vmesh1",
                              final_dst=node)
            pkt = Packet.from_spec(i, 1, spec, 0.0)
            fwd_total.extend(prog.on_delivery(node, pkt, 0.0))
        # Nothing until the last row message, then all column messages.
        assert len(fwd_total) == (prog.map.pvy - 1) * len(prog.col_packets)


class TestPrediction:
    def test_eq4(self, bgl):
        from repro.model.alltoall import vmesh_time_cycles

        shape = TorusShape.parse("8x8x8")
        pred = VirtualMesh2D().predict_cycles(shape, 8, bgl)
        assert pred == pytest.approx(vmesh_time_cycles(shape, 8, bgl, 32, 16))
