"""Unit tests for strategy auto-selection and credit flow control."""

import pytest

from repro.api import simulate_alltoall
from repro.functional import run_and_verify
from repro.model.machine import MachineParams
from repro.model.torus import TorusShape
from repro.strategies import select_strategy
from repro.strategies.flowcontrol import CreditedTPS, CreditedTPSProgram


class TestSelector:
    def test_short_messages_pick_vmesh(self):
        assert select_strategy(TorusShape.parse("8x8x8"), 8).name == "VMesh"
        assert select_strategy(TorusShape.parse("8x32x16"), 32).name == "VMesh"

    def test_symmetric_large_picks_ar(self):
        assert select_strategy(TorusShape.parse("8x8x8"), 4096).name == "AR"
        assert select_strategy(TorusShape.parse("16x16"), 1024).name == "AR"

    def test_asymmetric_large_picks_tps(self):
        for lbl in ("8x8x16", "8x32x16", "40x32x16", "8x8x2M"):
            assert select_strategy(TorusShape.parse(lbl), 1024).name == "TPS"

    def test_1d_always_direct(self):
        # TPS needs >= 2 dimensions.
        assert select_strategy(TorusShape.parse("16"), 1024).name == "AR"

    def test_tiny_partition_skips_vmesh(self):
        # Too few nodes for combining to pay off.
        assert select_strategy(TorusShape.parse("2x2"), 8).name == "AR"


class TestCreditedTPS:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CreditedTPS(window=2, packets_per_credit=4)  # k > window
        with pytest.raises(ValueError):
            CreditedTPS(window=0)

    def test_functional_correctness(self):
        shape = TorusShape.parse("2x4x4")
        _, rep = run_and_verify(
            CreditedTPS(window=2, packets_per_credit=2), shape, 300
        )
        assert rep.ok, rep.summary()

    def test_credits_emitted(self):
        shape = TorusShape.parse("2x4x4")
        strat = CreditedTPS(window=2, packets_per_credit=2)
        prog = strat.build_program(shape, 300)
        from repro.net import TorusNetwork

        net = TorusNetwork(shape)
        net.set_fifo_groups(2)
        net.run(prog)
        assert prog.credits_sent > 0

    def test_time_close_to_plain_tps(self):
        from repro.strategies import TwoPhaseSchedule

        shape = TorusShape.parse("2x4x4")
        plain = simulate_alltoall(TwoPhaseSchedule(), shape, 300)
        credited = simulate_alltoall(
            CreditedTPS(window=8, packets_per_credit=4), shape, 300
        )
        # Flow control costs little (Section 5's point).
        assert credited.time_cycles < plain.time_cycles * 1.3

    def test_overhead_prediction(self):
        strat = CreditedTPS(packets_per_credit=10)
        # one 32 B credit per ten 256 B packets = 1.25 %.
        assert strat.credit_bandwidth_overhead() == pytest.approx(
            32 / 2560
        )

    def test_smaller_window_still_completes(self):
        shape = TorusShape.parse("2x4x4")
        run = simulate_alltoall(
            CreditedTPS(window=1, packets_per_credit=1), shape, 300
        )
        assert run.result.final_deliveries > 0
