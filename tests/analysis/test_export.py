"""Unit tests for CSV export."""

from pathlib import Path

from repro.analysis.export import export_all, to_csv_text, write_csv
from repro.experiments.common import ExperimentResult


def make_result():
    return ExperimentResult(
        "exp1", "title", ["a", "b"],
        rows=[{"a": 1, "b": 2.5}, {"a": 3, "b": None}],
    )


def test_csv_text_header_and_rows():
    text = to_csv_text(make_result())
    lines = text.strip().splitlines()
    assert lines[0] == "a,b"
    assert lines[1] == "1,2.5"
    assert len(lines) == 3


def test_write_csv(tmp_path: Path):
    p = write_csv(make_result(), tmp_path / "sub" / "out.csv")
    assert p.exists()
    assert p.read_text().startswith("a,b")


def test_export_all(tmp_path: Path):
    r1, r2 = make_result(), make_result()
    r2.exp_id = "exp2"
    paths = export_all([r1, r2], tmp_path)
    assert {p.name for p in paths} == {"exp1.csv", "exp2.csv"}


def test_extra_row_keys_ignored():
    r = make_result()
    r.rows.append({"a": 9, "b": 9, "zzz": 1})
    assert "zzz" not in to_csv_text(r)
