"""Unit tests for analysis helpers (report rendering, sweeps, metrics)."""

import pytest

from repro.analysis import (
    geometric_sizes,
    message_size_sweep,
    normalized_efficiency,
    render_series,
    render_table,
    speedup,
)
from repro.model.torus import TorusShape
from repro.strategies import ARDirect


class TestRenderTable:
    def test_basic(self):
        out = render_table(
            "T", ["a", "b"], [{"a": 1, "b": 2.5}, {"a": 10, "b": None}]
        )
        assert "T" in out
        assert "2.5" in out
        assert "-" in out  # None placeholder
        lines = out.splitlines()
        assert len(lines) >= 5

    def test_empty_rows(self):
        out = render_table("T", ["col"], [])
        assert "col" in out

    def test_notes(self):
        out = render_table("T", ["a"], [{"a": 1}], notes=["hello"])
        assert "note: hello" in out


class TestRenderSeries:
    def test_aligned(self):
        out = render_series("S", "m", [1, 2], {"y1": [1.0, 2.0], "y2": [3.0, 4.0]})
        assert "y1" in out and "y2" in out
        assert "4.0" in out


class TestGeometricSizes:
    def test_includes_endpoints(self):
        sizes = geometric_sizes(8, 4096)
        assert sizes[0] == 8
        assert sizes[-1] == 4096

    def test_monotone_unique(self):
        sizes = geometric_sizes(1, 1000, per_decade=5)
        assert sizes == sorted(set(sizes))


class TestSweep:
    def test_message_size_sweep(self):
        pts = message_size_sweep(
            ARDirect(), TorusShape.parse("4x4"), [16, 64]
        )
        assert [p.m_bytes for p in pts] == [16, 64]
        assert all(p.time_us > 0 for p in pts)
        assert pts[1].run.time_cycles >= pts[0].run.time_cycles


class TestMetrics:
    def test_normalized_and_speedup(self):
        shape = TorusShape.parse("4x4")
        pts = message_size_sweep(ARDirect(), shape, [64, 64])
        a, b = pts[0].run, pts[1].run
        assert normalized_efficiency(a, b) == pytest.approx(100.0)
        assert speedup(a, b) == pytest.approx(1.0)
