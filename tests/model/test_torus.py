"""Unit tests for partition shapes."""

import pytest
from hypothesis import given, strategies as st

from repro.model.torus import TorusShape


class TestParsing:
    def test_parse_3d(self):
        s = TorusShape.parse("8x8x16")
        assert s.dims == (8, 8, 16)
        assert s.torus == (True, True, True)

    def test_parse_mesh_suffix(self):
        s = TorusShape.parse("8x8x2M")
        assert s.dims == (8, 8, 2)
        assert s.torus == (True, True, False)

    def test_parse_1d(self):
        s = TorusShape.parse("16")
        assert s.dims == (16,)

    def test_label_roundtrip(self):
        for lbl in ("8", "8x16", "8x4M", "40x32x16", "8x8x2M"):
            assert TorusShape.parse(lbl).label == lbl

    def test_parse_garbage_raises(self):
        with pytest.raises(ValueError):
            TorusShape.parse("8xx8")
        with pytest.raises(ValueError):
            TorusShape.parse("8x8x8x8")
        with pytest.raises(ValueError):
            TorusShape.parse("abc")

    def test_constructors(self):
        assert TorusShape.line(8).dims == (8,)
        assert TorusShape.plane(8, 16).dims == (8, 16)
        assert TorusShape.cube(8, 8, 8).nnodes == 512


class TestTopology:
    def test_nnodes(self):
        assert TorusShape.parse("40x32x16").nnodes == 20480

    def test_max_dim_and_axis(self):
        s = TorusShape.parse("8x32x16")
        assert s.max_dim == 32
        assert s.longest_axis == 1

    def test_symmetry(self):
        assert TorusShape.parse("8x8x8").is_symmetric
        assert TorusShape.parse("16x16").is_symmetric
        assert TorusShape.parse("8").is_symmetric
        assert not TorusShape.parse("8x8x16").is_symmetric
        assert not TorusShape.parse("8x8M").is_symmetric  # mesh dim

    def test_links_torus(self):
        # Paper Section 2.1: 2*P directed links per torus dimension.
        s = TorusShape.parse("8x8x8")
        for a in range(3):
            assert s.links_in_dim(a) == 2 * 512
        assert s.total_links == 6 * 512

    def test_links_mesh(self):
        s = TorusShape.parse("8x4M")
        assert s.links_in_dim(0) == 2 * 32       # torus dim
        assert s.links_in_dim(1) == 2 * 32 * 3 // 4  # mesh: 2*P*(n-1)/n

    def test_links_extent_one(self):
        s = TorusShape((4, 1), (True, True))
        assert s.links_in_dim(1) == 0

    def test_extent_two_torus_counts_as_mesh_links(self):
        # A wrap link on a 2-extent dimension duplicates the mesh link.
        s = TorusShape.parse("8x2")
        assert s.links_in_dim(1) == TorusShape.parse("8x2M").links_in_dim(1)

    def test_wrap_effective(self):
        assert TorusShape.parse("8x2").wrap_effective(0)
        assert not TorusShape.parse("8x2").wrap_effective(1)
        assert not TorusShape.parse("8x4M").wrap_effective(1)


class TestContention:
    def test_eq2_torus(self):
        # C = M/8 on an all-torus partition.
        assert TorusShape.parse("8x8x8").contention_factor == pytest.approx(1.0)
        assert TorusShape.parse("40x32x16").contention_factor == pytest.approx(5.0)

    def test_mesh_dimension_doubles(self):
        # A mesh dimension has half the bisection: C_d = n/4.
        assert TorusShape.parse("8x8M").contention_factor == pytest.approx(2.0)
        assert TorusShape.parse("8x8").contention_factor == pytest.approx(1.0)

    def test_bottleneck_axis(self):
        assert TorusShape.parse("8x32x16").bottleneck_axis == 1
        # 8-mesh (C=2) beats 16-torus (C=2): tie goes to the first.
        s = TorusShape.parse("8Mx16")
        assert s.contention_factor_dim(0) == pytest.approx(2.0)
        assert s.contention_factor_dim(1) == pytest.approx(2.0)

    def test_per_node_peak_bandwidth(self):
        # 1/(C*beta): the Figure 3 "peak bisection bandwidth/node" series.
        s = TorusShape.parse("8x8x8")
        beta = 4.536
        assert s.per_node_peak_bandwidth(beta) == pytest.approx(1 / beta)

    def test_bisection_links(self):
        s = TorusShape.parse("8x8x8")
        assert s.bisection_links(0) == 2 * 64
        m = TorusShape.parse("8x8x8M")
        assert m.bisection_links(2) == 64


class TestCoordinates:
    @given(st.integers(0, 511))
    def test_coord_rank_roundtrip(self, rank):
        s = TorusShape.parse("8x8x8")
        assert s.rank(s.coord(rank)) == rank

    def test_hops(self):
        s = TorusShape.parse("8x8x8")
        assert s.hops((0, 0, 0), (7, 1, 4)) == (-1, 1, 4)

    def test_mean_total_hops_symmetric(self):
        s = TorusShape.parse("8x8x8")
        assert s.mean_total_hops == pytest.approx(6.0)


class TestValidation:
    def test_rejects_4d(self):
        with pytest.raises(ValueError):
            TorusShape((2, 2, 2, 2))

    def test_rejects_zero_extent(self):
        with pytest.raises(ValueError):
            TorusShape((0, 8))

    def test_len_is_nnodes(self):
        assert len(TorusShape.parse("4x4")) == 16
