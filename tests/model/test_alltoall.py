"""Unit tests for the Eq. 2-4 all-to-all cost models."""

import pytest

from repro.model.alltoall import (
    ar_vmesh_crossover_bytes,
    asymptotic_direct_efficiency,
    balanced_vmesh_factors,
    peak_time_cycles,
    percent_of_peak,
    simple_direct_time_cycles,
    throughput_point,
    vmesh_time_cycles,
)
from repro.model.machine import MachineParams
from repro.model.torus import TorusShape


@pytest.fixture
def bgl():
    return MachineParams.bluegene_l()


class TestPeak:
    def test_eq2_midplane(self, bgl):
        # T = P * (M/8) * m * beta on 8x8x8.
        shape = TorusShape.parse("8x8x8")
        t = peak_time_cycles(shape, 1000, bgl)
        assert t == pytest.approx(512 * 1.0 * 1000 * bgl.beta_cycles_per_byte)

    def test_scales_linearly_in_m(self, bgl):
        shape = TorusShape.parse("8x8x16")
        assert peak_time_cycles(shape, 2000, bgl) == pytest.approx(
            2 * peak_time_cycles(shape, 1000, bgl)
        )

    def test_livermore_machine(self, bgl):
        # 64x32x32: C = 8.
        shape = TorusShape.parse("64x32x32")
        t = peak_time_cycles(shape, 1, bgl)
        assert t == pytest.approx(65536 * 8 * bgl.beta_cycles_per_byte)


class TestDirectModel:
    def test_eq3_structure(self, bgl):
        shape = TorusShape.parse("8x8x8")
        m = 1000
        t = simple_direct_time_cycles(shape, m, bgl)
        expected = 512 * 450 + 512 * 1.0 * (m + 48) * bgl.beta_cycles_per_byte
        assert t == pytest.approx(expected)

    def test_alpha_dominates_small_messages(self, bgl):
        shape = TorusShape.parse("8x8x8")
        t1 = simple_direct_time_cycles(shape, 1, bgl)
        assert t1 > 512 * 450  # startup floor

    def test_asymptotic_efficiency_near_one(self, bgl):
        shape = TorusShape.parse("16x16x16")
        eff = asymptotic_direct_efficiency(shape, bgl)
        assert 0.95 < eff < 1.0


class TestVMeshModel:
    def test_eq4_structure(self, bgl):
        shape = TorusShape.parse("8x8x8")
        m, pvx, pvy = 8, 32, 16
        t = vmesh_time_cycles(shape, m, bgl, pvx, pvy)
        per_byte = 1.0 * bgl.beta_cycles_per_byte + bgl.gamma_cycles_per_byte
        expected = (pvx + pvy) * 1170 + 2 * 512 * (m + 8) * per_byte
        assert t == pytest.approx(expected)

    def test_requires_tiling(self, bgl):
        with pytest.raises(ValueError):
            vmesh_time_cycles(TorusShape.parse("8x8x8"), 8, bgl, 100, 5)

    def test_vmesh_wins_small_loses_large(self, bgl):
        # The Section 4.2 crossover: VMesh below ~32 B, direct above.
        shape = TorusShape.parse("8x8x8")
        small_v = vmesh_time_cycles(shape, 8, bgl, 32, 16)
        small_d = simple_direct_time_cycles(shape, 8, bgl)
        assert small_v < small_d
        large_v = vmesh_time_cycles(shape, 4096, bgl, 32, 16)
        large_d = simple_direct_time_cycles(shape, 4096, bgl)
        assert large_v > large_d

    def test_crossover_value(self, bgl):
        # m = h - 2*proto = 48 - 16 = 32 (Section 4.2).
        assert ar_vmesh_crossover_bytes(bgl) == 32


class TestThroughput:
    def test_percent_of_peak(self, bgl):
        shape = TorusShape.parse("8x8x8")
        peak = peak_time_cycles(shape, 1000, bgl)
        assert percent_of_peak(shape, 1000, peak, bgl) == pytest.approx(100.0)
        assert percent_of_peak(shape, 1000, 2 * peak, bgl) == pytest.approx(50.0)

    def test_throughput_point(self, bgl):
        shape = TorusShape.parse("8x8x8")
        peak = peak_time_cycles(shape, 1000, bgl)
        pt = throughput_point(shape, 1000, peak, bgl)
        assert pt.fraction_of_peak == pytest.approx(1.0)
        assert pt.per_node_bytes_per_cycle == pytest.approx(
            shape.per_node_peak_bandwidth(bgl.beta_cycles_per_byte)
        )

    def test_zero_time_rejected(self, bgl):
        with pytest.raises(ValueError):
            throughput_point(TorusShape.parse("8"), 10, 0.0, bgl)


class TestVMeshFactors:
    def test_square(self):
        assert balanced_vmesh_factors(512) == (32, 16)
        assert balanced_vmesh_factors(4096) == (64, 64)
        assert balanced_vmesh_factors(64) == (8, 8)

    def test_prime(self):
        assert balanced_vmesh_factors(13) == (13, 1)

    def test_pvx_at_least_pvy(self):
        for p in (2, 6, 12, 24, 100, 1024):
            pvx, pvy = balanced_vmesh_factors(p)
            assert pvx * pvy == p
            assert pvx >= pvy
