"""Unit tests for contention/asymmetry analysis."""

import pytest

from repro.model.contention import (
    ar_efficiency_estimate,
    asymmetry_metrics,
    contention_parameter,
    expect_ar_degradation,
)
from repro.model.torus import TorusShape


class TestContentionParameter:
    def test_m_over_8(self):
        assert contention_parameter(TorusShape.parse("8x8x8")) == 1.0
        assert contention_parameter(TorusShape.parse("8x32x16")) == 4.0


class TestAsymmetryMetrics:
    def test_symmetric_balanced(self):
        m = asymmetry_metrics(TorusShape.parse("16x16x16"))
        assert m.is_balanced
        assert m.balance == pytest.approx(1.0)

    def test_2nnn(self):
        m = asymmetry_metrics(TorusShape.parse("16x8x8"))
        assert not m.is_balanced
        assert m.bottleneck_axis == 0
        assert m.relative_utilization == pytest.approx((1.0, 0.5, 0.5))

    def test_mesh_induces_imbalance(self):
        # 8x4M has matched per-dimension C but uneven in-dimension loads.
        m = asymmetry_metrics(TorusShape.parse("8x4M"))
        assert not m.is_balanced


class TestDegradationPredicate:
    def test_paper_partitions(self):
        # Every asymmetric Table 2 partition must be flagged.
        for lbl in ("8x16", "8x32", "8x8x16", "8x16x16", "8x32x16",
                    "16x32x16", "32x32x16", "8x8x2M", "8x8x4M"):
            assert expect_ar_degradation(TorusShape.parse(lbl)), lbl
        # Symmetric Table 1 partitions must not.
        for lbl in ("8", "8x8", "16x16", "8x8x8", "16x16x16"):
            assert not expect_ar_degradation(TorusShape.parse(lbl)), lbl


class TestEfficiencyEstimate:
    def test_symmetric_near_99(self):
        for lbl in ("8x8x8", "16x16x16", "16x16"):
            assert ar_efficiency_estimate(TorusShape.parse(lbl)) == pytest.approx(
                0.99, abs=1e-6
            )

    def test_table2_within_8_points(self):
        # The explicitly-empirical fit must land within ~8 points of the
        # paper's Table 2 (it is a sanity band, not the instrument).
        table2 = {
            "8x16": 85.7,
            "8x32": 84.0,
            "8x8x16": 81.0,
            "8x16x16": 87.0,
            "8x32x16": 73.3,
            "16x32x16": 71.0,
            "32x32x16": 73.6,
        }
        for lbl, pct in table2.items():
            est = 100 * ar_efficiency_estimate(TorusShape.parse(lbl))
            assert abs(est - pct) < 8.5, (lbl, est, pct)

    def test_monotone_in_imbalance(self):
        e_sym = ar_efficiency_estimate(TorusShape.parse("16x16x16"))
        e_mild = ar_efficiency_estimate(TorusShape.parse("16x16x8"))
        e_bad = ar_efficiency_estimate(TorusShape.parse("32x8x8"))
        assert e_sym > e_mild > e_bad
