"""Unit tests for machine parameters and packetization."""

import pytest

from repro.model.machine import MachineParams


@pytest.fixture
def bgl():
    return MachineParams.bluegene_l()


class TestPaperValues:
    def test_alpha_packet(self, bgl):
        assert bgl.alpha_packet_cycles == 450.0

    def test_alpha_message(self, bgl):
        assert bgl.alpha_message_cycles == 1170.0

    def test_beta_cycles(self, bgl):
        assert bgl.beta_cycles_per_byte == pytest.approx(4.536, abs=1e-3)

    def test_gamma_cycles(self, bgl):
        assert bgl.gamma_cycles_per_byte == pytest.approx(1.12, abs=1e-2)

    def test_headers(self, bgl):
        assert bgl.header_bytes == 48
        assert bgl.proto_bytes == 8

    def test_cpu_four_links(self, bgl):
        # "the processor can only keep about four links busy" (Section 2).
        assert bgl.cpu_bytes_per_cycle == pytest.approx(
            4.0 / bgl.beta_cycles_per_byte
        )


class TestPacketization:
    def test_min_packet_64(self, bgl):
        # 1 B message + 48 B header -> one 64 B packet (Section 3).
        assert bgl.packetize_message(1) == [64]

    def test_16_bytes_exactly_64(self, bgl):
        assert bgl.packetize_message(16) == [64]

    def test_rounding_granularity(self, bgl):
        for m in range(1, 400, 7):
            for p in bgl.packetize_message(m):
                assert p % 32 == 0
                assert 64 <= p <= 256

    def test_multi_packet(self, bgl):
        # 500 B payload + 48 B header = 548 B -> 256 + 256 + 64.
        assert bgl.packetize_message(500) == [256, 256, 64]

    def test_wire_bytes_close_to_m_plus_h(self, bgl):
        # Eq. 3 charges (m + h) * beta; the wire total is that, rounded up.
        # Rounding adds at most one granule plus the 64 B minimum-packet
        # padding on the tail packet.
        for m in (1, 100, 1000, 4096):
            wire = bgl.message_wire_bytes(m)
            assert m + 48 <= wire <= m + 48 + 64

    def test_round_packet_bounds(self, bgl):
        assert bgl.round_packet(1) == 64
        assert bgl.round_packet(65) == 96
        assert bgl.round_packet(256) == 256
        with pytest.raises(ValueError):
            bgl.round_packet(257)
        with pytest.raises(ValueError):
            bgl.round_packet(0)


class TestCpuModel:
    def test_full_packet_matches_link_budget(self, bgl):
        # Calibration: a full packet costs exactly its share of the
        # 4-link CPU byte rate.
        cost = bgl.cpu_packet_handling_cycles(bgl.packet_max_bytes)
        assert cost == pytest.approx(
            bgl.packet_max_bytes / bgl.cpu_bytes_per_cycle
        )

    def test_small_packets_less_efficient(self, bgl):
        # Per-byte CPU cost of a 64 B packet exceeds a 256 B packet's.
        c64 = bgl.cpu_packet_handling_cycles(64) / 64
        c256 = bgl.cpu_packet_handling_cycles(256) / 256
        assert c64 > c256


class TestValidation:
    def test_rejects_negative_beta(self):
        with pytest.raises(ValueError):
            MachineParams(beta_ns_per_byte=-1.0)

    def test_rejects_bad_granularity(self):
        with pytest.raises(ValueError):
            MachineParams(packet_max_bytes=250)

    def test_rejects_payload_over_packet(self):
        with pytest.raises(ValueError):
            MachineParams(packet_payload_max=512)

    def test_with_updates(self, bgl):
        p2 = bgl.with_updates(alpha_packet_cycles=0.0)
        assert p2.alpha_packet_cycles == 0.0
        assert bgl.alpha_packet_cycles == 450.0
