"""Unit tests for the Eq. 1 point-to-point model."""

import pytest

from repro.model.machine import MachineParams
from repro.model.pointtopoint import ptp_time_cycles


@pytest.fixture
def bgl():
    return MachineParams.bluegene_l()


def test_components(bgl):
    bd = ptp_time_cycles(bgl, m_bytes=1000, hops=6, contention=1.0)
    assert bd.startup == 450.0
    assert bd.transfer == pytest.approx((1000 + 48) * bgl.beta_cycles_per_byte)
    assert bd.latency == pytest.approx(6 * bgl.hop_latency_cycles)
    assert bd.total == bd.startup + bd.transfer + bd.latency


def test_contention_scales_transfer_only(bgl):
    a = ptp_time_cycles(bgl, 1000, hops=2, contention=1.0)
    b = ptp_time_cycles(bgl, 1000, hops=2, contention=2.0)
    assert b.transfer == pytest.approx(2 * a.transfer)
    assert b.startup == a.startup
    assert b.latency == a.latency


def test_message_level_alpha(bgl):
    bd = ptp_time_cycles(bgl, 10, message_level=True)
    assert bd.startup == 1170.0


def test_zero_byte_message_ok(bgl):
    bd = ptp_time_cycles(bgl, 0)
    assert bd.transfer == pytest.approx(48 * bgl.beta_cycles_per_byte)


def test_negative_message_rejected(bgl):
    with pytest.raises(ValueError):
        ptp_time_cycles(bgl, -1)


def test_negative_contention_rejected(bgl):
    with pytest.raises(ValueError):
        ptp_time_cycles(bgl, 10, contention=-1.0)
