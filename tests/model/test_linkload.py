"""Unit tests for exact per-link load accounting."""

import numpy as np
import pytest

from repro.model.linkload import (
    dim_byte_hops,
    dim_utilization,
    dor_max_link_loads,
    network_lower_bound_cycles,
    uniform_link_loads,
)
from repro.model.machine import MachineParams
from repro.model.torus import TorusShape
from repro.model.alltoall import peak_time_cycles


@pytest.fixture
def bgl():
    return MachineParams.bluegene_l()


class TestByteHops:
    def test_matches_mean_hops(self):
        shape = TorusShape.parse("8x8x8")
        hops = dim_byte_hops(shape, 1.0)
        # P^2 * (n/4) per even torus dimension.
        assert hops[0] == pytest.approx(512**2 * 2.0)
        assert (hops == hops[0]).all()

    def test_asymmetric(self):
        shape = TorusShape.parse("8x16")
        hops = dim_byte_hops(shape, 1.0)
        assert hops[1] == pytest.approx(2 * hops[0])

    def test_scales_with_m(self):
        shape = TorusShape.parse("4x4")
        assert (dim_byte_hops(shape, 3.0) == 3 * dim_byte_hops(shape, 1.0)).all()


class TestUniformLoads:
    def test_torus_load_is_pn_over_8(self):
        # Per directed link: P*n*m/8 on an even torus dimension.
        shape = TorusShape.parse("8x8x8")
        loads = uniform_link_loads(shape, 1.0)
        assert loads[0] == pytest.approx(512 * 8 / 8)

    def test_2n_n_n_x_links_twice_loaded(self):
        # Section 3.2: on a 2n x n x n torus, X links carry 2x the load.
        shape = TorusShape.parse("16x8x8")
        loads = uniform_link_loads(shape, 1.0)
        assert loads[0] == pytest.approx(2 * loads[1])
        assert loads[1] == pytest.approx(loads[2])


class TestDorMaxLoads:
    def test_torus_equals_uniform(self):
        shape = TorusShape.parse("8x8")
        assert dor_max_link_loads(shape, 1.0) == pytest.approx(
            uniform_link_loads(shape, 1.0)
        )

    def test_mesh_center_link_hotter(self):
        shape = TorusShape.parse("8x8M")
        dor = dor_max_link_loads(shape, 1.0)
        uni = uniform_link_loads(shape, 1.0)
        assert dor[1] > uni[1]
        # max_i (i+1)(n-1-i) = 16 at the centre of an 8-mesh.
        assert dor[1] == pytest.approx(16 * 8)


class TestLowerBound:
    def test_matches_eq2_on_torus(self, bgl):
        # The link-capacity bound must coincide with Eq. 2 on tori.
        for lbl in ("8", "8x8", "8x8x8", "16x8x8", "8x32x16"):
            shape = TorusShape.parse(lbl)
            lb = network_lower_bound_cycles(shape, 1000.0, bgl)
            assert lb == pytest.approx(peak_time_cycles(shape, 1000, bgl)), lbl

    def test_mesh_matches_generalized_c(self, bgl):
        shape = TorusShape.parse("8x8M")
        lb = network_lower_bound_cycles(shape, 1000.0, bgl)
        assert lb == pytest.approx(peak_time_cycles(shape, 1000, bgl))


class TestUtilization:
    def test_symmetric_balanced(self):
        u = dim_utilization(TorusShape.parse("8x8x8"))
        assert u.per_axis == pytest.approx((1.0, 1.0, 1.0))
        assert u.mean == pytest.approx(1.0)

    def test_asymmetric_imbalanced(self):
        u = dim_utilization(TorusShape.parse("16x8x8"))
        assert u.bottleneck_axis == 0
        assert u.per_axis[0] == pytest.approx(1.0)
        assert u.per_axis[1] == pytest.approx(0.5)
        assert u.mean < 1.0
